//! `streamad` — command-line streaming anomaly detection.
//!
//! Runs any of the paper's 26 algorithms over a CSV time series
//! (`t,ch0,…,chN-1,label` — the format of `streamad::data::csv`; the label
//! column may be all zeros if unlabelled) and reports detections. With
//! ground-truth labels present, the full metric suite is printed.
//!
//! ```sh
//! streamad --list                         # show the 26 algorithms
//! streamad data.csv                       # run the default algorithm
//! streamad data.csv --algo 13 --window 50 --warmup 1000 --threshold 0.9
//! ```

use std::io::Write;
use std::process::ExitCode;
use streamad::core::{paper_algorithms, DetectorConfig, ScoreKind};
use streamad::data::csv::load_csv;
use streamad::metrics::{best_f1, intervals_from_labels, nab_score, pr_auc, vus_pr};
use streamad::models::{build_detector, BuildParams};

struct Args {
    path: Option<String>,
    algo: usize,
    window: usize,
    warmup: usize,
    capacity: usize,
    threshold: f64,
    score: ScoreKind,
    seed: u64,
    list: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        path: None,
        algo: 12, // USAD / SW / μσ
        window: 25,
        warmup: 500,
        capacity: 40,
        threshold: 0.9,
        score: ScoreKind::AnomalyLikelihood,
        seed: 42,
        list: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--list" => args.list = true,
            "--algo" => args.algo = value("--algo")?.parse().map_err(|e| format!("--algo: {e}"))?,
            "--window" => {
                args.window = value("--window")?.parse().map_err(|e| format!("--window: {e}"))?
            }
            "--warmup" => {
                args.warmup = value("--warmup")?.parse().map_err(|e| format!("--warmup: {e}"))?
            }
            "--capacity" => {
                args.capacity =
                    value("--capacity")?.parse().map_err(|e| format!("--capacity: {e}"))?
            }
            "--threshold" => {
                args.threshold =
                    value("--threshold")?.parse().map_err(|e| format!("--threshold: {e}"))?
            }
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--score" => {
                args.score = match value("--score")?.as_str() {
                    "raw" => ScoreKind::Raw,
                    "avg" => ScoreKind::Average,
                    "al" => ScoreKind::AnomalyLikelihood,
                    other => return Err(format!("unknown score {other:?} (raw|avg|al)")),
                }
            }
            "--help" | "-h" => {
                return Err("usage: streamad <csv> [--algo N] [--window W] [--warmup N] \
                            [--capacity M] [--score raw|avg|al] [--threshold T] [--seed S] [--list]"
                    .into())
            }
            other if !other.starts_with('-') && args.path.is_none() => {
                args.path = Some(other.to_string())
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let specs = paper_algorithms();
    if args.list {
        // Write in one shot and ignore EPIPE so `streamad --list | head`
        // does not panic when the pipe closes early.
        let listing: String =
            specs.iter().enumerate().map(|(i, s)| format!("{i:2}  {}\n", s.label())).collect();
        let _ = std::io::stdout().write_all(listing.as_bytes());
        return ExitCode::SUCCESS;
    }
    let Some(path) = &args.path else {
        eprintln!("no input file (try --help)");
        return ExitCode::FAILURE;
    };
    if args.algo >= specs.len() {
        eprintln!("--algo must be 0..{} (see --list)", specs.len() - 1);
        return ExitCode::FAILURE;
    }
    let series = match load_csv(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to load {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if series.len() <= args.warmup {
        eprintln!(
            "series has {} steps but warm-up needs more than {} (use --warmup)",
            series.len(),
            args.warmup
        );
        return ExitCode::FAILURE;
    }

    let spec = specs[args.algo];
    eprintln!(
        "running {} on {} ({} steps x {} channels), w={}, warm-up {}",
        spec.label(),
        series.name,
        series.len(),
        series.channels(),
        args.window,
        args.warmup
    );
    let config = DetectorConfig {
        window: args.window,
        channels: series.channels(),
        warmup: args.warmup,
        initial_epochs: 10,
        fine_tune_epochs: 1,
    };
    let params = BuildParams::new(config)
        .with_capacity(args.capacity)
        .with_score(args.score)
        .with_seed(args.seed);
    let mut detector = build_detector(spec, &params);
    let (scores, offset) = detector.score_series(&series.data);

    // Detections: maximal runs of scores above the threshold.
    let pred: Vec<bool> = scores.iter().map(|&s| s >= args.threshold).collect();
    let detections = intervals_from_labels(&pred);
    println!("detections (threshold {}):", args.threshold);
    for iv in &detections {
        let peak = scores[iv.start..iv.end].iter().cloned().fold(0.0f64, f64::max);
        println!("  t = {}..{}  peak score {:.3}", offset + iv.start, offset + iv.end, peak);
    }
    if detections.is_empty() {
        println!("  (none)");
    }
    eprintln!("fine-tune sessions: {}", detector.fine_tune_count());

    // If the file carries ground truth, report metrics.
    let labels = &series.labels[offset..];
    if labels.iter().any(|&l| l) {
        let (th, p, r, f1) = best_f1(&scores, labels, 40);
        let auc = pr_auc(&scores, labels, 40);
        let vus = vus_pr(&scores, labels, args.window, 40);
        let fixed: Vec<bool> = scores.iter().map(|&s| s >= args.threshold).collect();
        let nab = nab_score(&fixed, labels).score;
        println!("\nmetrics vs ground truth:");
        println!("  best-F1 threshold {th:.3}: precision {p:.3}, recall {r:.3}, F1 {f1:.3}");
        println!("  PR-AUC {auc:.3}   VUS-PR {vus:.3}   NAB (at --threshold) {nab:.3}");
    }
    ExitCode::SUCCESS
}
