//! `streamad` — command-line streaming anomaly detection.
//!
//! Runs any of the paper's 26 algorithms over a CSV time series
//! (`t,ch0,…,chN-1,label` — the format of `streamad::data::csv`; the label
//! column may be all zeros if unlabelled) and reports detections. With
//! ground-truth labels present, the full metric suite is printed.
//!
//! ```sh
//! streamad --list                         # show the 26 algorithms
//! streamad data.csv                       # run the default algorithm
//! streamad data.csv --algo 13 --window 50 --warmup 1000 --threshold 0.9
//! streamad data.csv --fleet 64 --algo 6   # serve 64 jittered copies as a fleet
//! ```
//!
//! `--fleet N` fans the CSV into `N` streams served through the sharded
//! [`streamad::fleet::DetectorFleet`]: stream 0 carries the file verbatim,
//! streams 1.. get a tiny (±1e-3) deterministic jitter after warm-up, so
//! all N detectors fit identical weights and the cross-stream batched NN
//! path engages. Reports serving throughput and round-latency percentiles
//! instead of detections.
//!
//! `--metrics-json PATH` writes the run's telemetry registry (detector
//! lifecycle counters; in `--fleet` mode also the per-shard serving
//! counters and latency histograms) as a JSON snapshot on exit, and
//! `--metrics-every N` prints a compact metrics line to stderr every `N`
//! fleet rounds.
//!
//! ## Serving over the wire
//!
//! `streamad serve` runs the ingestion engine instead of a file replay:
//! frames arrive over TCP (`--listen ADDR`) or stdin (`--stdin`), each
//! unknown stream id admits a freshly built detector (channel count taken
//! from its first frame), idle streams retire after `--idle-rounds`, and
//! full per-stream queues resolve under `--policy block|drop-newest|
//! drop-oldest`. Detections at or above `--threshold` print to stdout as
//! they happen; `--metrics-json` snapshots are flushed on EOF, after
//! every connection, *and* on dirty disconnects, so an interrupted server
//! still leaves its final counters behind.
//!
//! ```sh
//! streamad serve --stdin < frames.bin
//! streamad serve --listen 127.0.0.1:7650 --shards 4 --idle-rounds 2000
//! ```

use std::io::Write;
use std::process::ExitCode;
use std::time::Instant;
use streamad::core::{paper_algorithms, AlgorithmSpec, DetectorConfig, ScoreKind, StepOutput};
use streamad::data::csv::load_csv;
use streamad::data::LabeledSeries;
use streamad::fleet::{DetectorFleet, FleetConfig};
use streamad::ingest::{
    BackpressurePolicy, CsvTransport, DetectorTemplate, EngineConfig, EngineSink, FramedTransport,
    IngestEngine, IngestStats,
};
use streamad::metrics::{best_f1, intervals_from_labels, nab_score, pr_auc, vus_pr};
use streamad::models::{build_detector, BuildParams};
use streamad::obs::{Histogram, Registry};

struct Args {
    path: Option<String>,
    algo: usize,
    window: usize,
    warmup: usize,
    capacity: usize,
    threshold: f64,
    score: ScoreKind,
    seed: u64,
    list: bool,
    fleet: Option<usize>,
    shards: usize,
    no_batch: bool,
    f32_infer: bool,
    metrics_json: Option<String>,
    metrics_every: Option<usize>,
    serve: bool,
    listen: Option<String>,
    stdin: bool,
    csv: bool,
    policy: BackpressurePolicy,
    idle_rounds: Option<u64>,
    max_streams: usize,
    queue_cap: usize,
    max_conns: usize,
}

fn score_name(score: ScoreKind) -> &'static str {
    match score {
        ScoreKind::Raw => "raw",
        ScoreKind::Average => "avg",
        ScoreKind::AnomalyLikelihood => "al",
    }
}

/// The `--list` table: a header carrying the run defaults (so the values
/// behind `--seed`/`--score` are visible without reading the source),
/// then one row per Table I algorithm.
fn algorithm_table(specs: &[AlgorithmSpec], args: &Args) -> String {
    let mut out = format!(
        "the {} paper algorithms (run settings: --score {}, --seed {})\n\
         \x20#  model / Task 1 / Task 2\n",
        specs.len(),
        score_name(args.score),
        args.seed,
    );
    for (i, s) in specs.iter().enumerate() {
        out.push_str(&format!("{i:2}  {}\n", s.label()));
    }
    out
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        path: None,
        algo: 12, // USAD / SW / μσ
        window: 25,
        warmup: 500,
        capacity: 40,
        threshold: 0.9,
        score: ScoreKind::AnomalyLikelihood,
        seed: 42,
        list: false,
        fleet: None,
        shards: 1,
        no_batch: false,
        f32_infer: false,
        metrics_json: None,
        metrics_every: None,
        serve: false,
        listen: None,
        stdin: false,
        csv: false,
        policy: BackpressurePolicy::Block,
        idle_rounds: None,
        max_streams: 65_536,
        queue_cap: 4,
        max_conns: 0,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--list" => args.list = true,
            "--algo" => args.algo = value("--algo")?.parse().map_err(|e| format!("--algo: {e}"))?,
            "--window" => {
                args.window = value("--window")?.parse().map_err(|e| format!("--window: {e}"))?
            }
            "--warmup" => {
                args.warmup = value("--warmup")?.parse().map_err(|e| format!("--warmup: {e}"))?
            }
            "--capacity" => {
                args.capacity =
                    value("--capacity")?.parse().map_err(|e| format!("--capacity: {e}"))?
            }
            "--threshold" => {
                args.threshold =
                    value("--threshold")?.parse().map_err(|e| format!("--threshold: {e}"))?
            }
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--fleet" => {
                let n: usize = value("--fleet")?.parse().map_err(|e| format!("--fleet: {e}"))?;
                if n == 0 {
                    return Err("--fleet needs at least one stream".into());
                }
                args.fleet = Some(n);
            }
            "--shards" => {
                args.shards = value("--shards")?.parse().map_err(|e| format!("--shards: {e}"))?;
                if args.shards == 0 {
                    return Err("--shards must be positive".into());
                }
            }
            "--no-batch" => args.no_batch = true,
            "--f32-infer" => args.f32_infer = true,
            "--listen" => args.listen = Some(value("--listen")?),
            "--stdin" => args.stdin = true,
            "--csv" => args.csv = true,
            "--policy" => {
                args.policy = match value("--policy")?.as_str() {
                    "block" => BackpressurePolicy::Block,
                    "drop-newest" => BackpressurePolicy::DropNewest,
                    "drop-oldest" => BackpressurePolicy::DropOldest,
                    other => {
                        return Err(format!(
                            "unknown policy {other:?} (block|drop-newest|drop-oldest)"
                        ))
                    }
                }
            }
            "--idle-rounds" => {
                let n: u64 = value("--idle-rounds")?
                    .parse()
                    .map_err(|e| format!("--idle-rounds: {e}"))?;
                if n == 0 {
                    return Err("--idle-rounds must be positive".into());
                }
                args.idle_rounds = Some(n);
            }
            "--max-streams" => {
                args.max_streams =
                    value("--max-streams")?.parse().map_err(|e| format!("--max-streams: {e}"))?;
                if args.max_streams == 0 {
                    return Err("--max-streams must be positive".into());
                }
            }
            "--queue-cap" => {
                args.queue_cap =
                    value("--queue-cap")?.parse().map_err(|e| format!("--queue-cap: {e}"))?;
                if args.queue_cap == 0 {
                    return Err("--queue-cap must be positive".into());
                }
            }
            "--max-conns" => {
                args.max_conns =
                    value("--max-conns")?.parse().map_err(|e| format!("--max-conns: {e}"))?
            }
            "--metrics-json" => args.metrics_json = Some(value("--metrics-json")?),
            "--metrics-every" => {
                let n: usize = value("--metrics-every")?
                    .parse()
                    .map_err(|e| format!("--metrics-every: {e}"))?;
                if n == 0 {
                    return Err("--metrics-every must be positive".into());
                }
                args.metrics_every = Some(n);
            }
            "--score" => {
                args.score = match value("--score")?.as_str() {
                    "raw" => ScoreKind::Raw,
                    "avg" => ScoreKind::Average,
                    "al" => ScoreKind::AnomalyLikelihood,
                    other => return Err(format!("unknown score {other:?} (raw|avg|al)")),
                }
            }
            "--help" | "-h" => {
                return Err("usage: streamad <csv> [--algo N] [--window W] [--warmup N] \
                            [--capacity M] [--score raw|avg|al] [--threshold T] [--seed S] \
                            [--fleet N [--shards S] [--no-batch] [--f32-infer] \
                            [--metrics-every N]] [--metrics-json PATH] [--list]\n\
                            \x20      streamad serve (--listen ADDR [--max-conns N] | --stdin) \
                            [--csv] [--policy block|drop-newest|drop-oldest] [--idle-rounds N] \
                            [--max-streams N] [--queue-cap N] [--algo N] [--window W] \
                            [--warmup N] [--shards S] [--no-batch] [--f32-infer] \
                            [--metrics-json PATH] [--metrics-every N]"
                    .into())
            }
            "serve" if !args.serve && args.path.is_none() => args.serve = true,
            other if !other.starts_with('-') && args.path.is_none() && !args.serve => {
                args.path = Some(other.to_string())
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let specs = paper_algorithms();
    if args.list {
        // Write in one shot and ignore EPIPE so `streamad --list | head`
        // does not panic when the pipe closes early.
        let _ = std::io::stdout().write_all(algorithm_table(&specs, &args).as_bytes());
        return ExitCode::SUCCESS;
    }
    if args.algo >= specs.len() {
        // Show the whole table, not just the bound — the index→algorithm
        // mapping is exactly what the user is missing here.
        let msg = format!(
            "--algo {} is out of range; pick one of:\n{}",
            args.algo,
            algorithm_table(&specs, &args),
        );
        let _ = std::io::stderr().write_all(msg.as_bytes());
        return ExitCode::FAILURE;
    }
    if args.serve {
        return run_serve(&args, specs[args.algo]);
    }
    let Some(path) = &args.path else {
        eprintln!("no input file (try --help)");
        return ExitCode::FAILURE;
    };
    let series = match load_csv(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to load {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if series.len() <= args.warmup {
        eprintln!(
            "series has {} steps but warm-up needs more than {} (use --warmup)",
            series.len(),
            args.warmup
        );
        return ExitCode::FAILURE;
    }

    let spec = specs[args.algo];
    if let Some(n) = args.fleet {
        return run_fleet(&args, spec, &series, n);
    }
    eprintln!(
        "running {} on {} ({} steps x {} channels), w={}, warm-up {}",
        spec.label(),
        series.name,
        series.len(),
        series.channels(),
        args.window,
        args.warmup
    );
    let config = DetectorConfig {
        window: args.window,
        channels: series.channels(),
        warmup: args.warmup,
        initial_epochs: 10,
        fine_tune_epochs: 1,
    };
    let params = BuildParams::new(config)
        .with_capacity(args.capacity)
        .with_score(args.score)
        .with_seed(args.seed);
    let mut detector = build_detector(spec, &params);
    let (scores, offset) = detector.score_series(&series.data);

    // Detections: maximal runs of scores above the threshold.
    let pred: Vec<bool> = scores.iter().map(|&s| s >= args.threshold).collect();
    let detections = intervals_from_labels(&pred);
    println!("detections (threshold {}):", args.threshold);
    for iv in &detections {
        let peak = scores[iv.start..iv.end].iter().cloned().fold(0.0f64, f64::max);
        println!("  t = {}..{}  peak score {:.3}", offset + iv.start, offset + iv.end, peak);
    }
    if detections.is_empty() {
        println!("  (none)");
    }
    eprintln!("fine-tune sessions: {}", detector.fine_tune_count());
    eprintln!(
        "drift state: {} drift event(s){}, {} removal miss(es)",
        detector.drift_times().len(),
        match detector.drift_times() {
            [] => String::new(),
            times => format!(" at t = {times:?}"),
        },
        detector.drift_removal_misses(),
    );
    if let Some(path) = &args.metrics_json {
        if !write_metrics_json(path, &detector.export_metrics()) {
            return ExitCode::FAILURE;
        }
    }

    // If the file carries ground truth, report metrics.
    let labels = &series.labels[offset..];
    if labels.iter().any(|&l| l) {
        let (th, p, r, f1) = best_f1(&scores, labels, 40);
        let auc = pr_auc(&scores, labels, 40);
        let vus = vus_pr(&scores, labels, args.window, 40);
        let fixed: Vec<bool> = scores.iter().map(|&s| s >= args.threshold).collect();
        let nab = nab_score(&fixed, labels).score;
        println!("\nmetrics vs ground truth:");
        println!("  best-F1 threshold {th:.3}: precision {p:.3}, recall {r:.3}, F1 {f1:.3}");
        println!("  PR-AUC {auc:.3}   VUS-PR {vus:.3}   NAB (at --threshold) {nab:.3}");
    }
    ExitCode::SUCCESS
}

/// Deterministic ±1e-3 jitter for stream `i` at step `t`, channel `c`;
/// stream 0 carries the file verbatim. SplitMix64-style hash so reruns
/// reproduce without a RNG dependency in the binary.
fn jitter(i: usize, t: usize, c: usize) -> f64 {
    if i == 0 {
        return 0.0;
    }
    let mut h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (t as u64).wrapping_mul(0xD1B5_4A32_D192_ED03)
        ^ (c as u64).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 31;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    ((h >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 2e-3
}

/// Round-latency histogram for the CLI report: log-scale from 1 µs to 16 s
/// at quarter-octave resolution (bounds grow by 2^¼ ≈ 19%), fine enough
/// that the interpolated p50/p99 track exact sorted-sample percentiles.
fn latency_histogram() -> Histogram {
    let mut bounds = vec![1e-6];
    while *bounds.last().unwrap() < 16.0 {
        bounds.push(bounds.last().unwrap() * std::f64::consts::SQRT_2.sqrt());
    }
    Histogram::new(bounds)
}

/// Writes a registry snapshot as JSON to `path`; reports failure on stderr
/// and returns `false` so callers can exit non-zero.
fn write_metrics_json(path: &str, reg: &Registry) -> bool {
    let mut json = String::new();
    reg.render_json(&mut json);
    match std::fs::write(path, &json) {
        Ok(()) => {
            eprintln!("metrics -> {path}");
            true
        }
        Err(e) => {
            eprintln!("could not write {path}: {e}");
            false
        }
    }
}

/// Serve-mode sink: prints detections at or above the threshold as they
/// happen, plus the periodic `--metrics-every` stderr line.
struct ServeSink {
    threshold: f64,
    every: Option<u64>,
    outputs: u64,
    detections: u64,
}

impl EngineSink for ServeSink {
    fn output(&mut self, stream: u64, out: &StepOutput) {
        self.outputs += 1;
        if out.anomaly_score >= self.threshold {
            self.detections += 1;
            println!(
                "detect stream={} t={} score={:.3}{}",
                stream,
                out.t,
                out.anomaly_score,
                if out.drift { " drift" } else { "" },
            );
        }
    }

    fn round(&mut self, rounds: u64, stats: &IngestStats) {
        if let Some(every) = self.every {
            if rounds.is_multiple_of(every) {
                eprintln!(
                    "[metrics] round {}: {} frames, {} steps, {} live streams, \
                     {} dropped, {} detections",
                    rounds,
                    stats.frames,
                    stats.fleet.steps,
                    stats.fleet.admitted - stats.fleet.retired,
                    stats.fleet.bp_dropped_newest + stats.fleet.bp_dropped_oldest,
                    self.detections,
                );
            }
        }
    }
}

/// `streamad serve`: run the ingestion engine over TCP or stdin. Streams
/// admit on first contact (channel count from the first frame) and retire
/// after `--idle-rounds`; the engine — and so every stream's detector
/// state — persists across TCP connections.
fn run_serve(args: &Args, spec: AlgorithmSpec) -> ExitCode {
    if args.stdin == args.listen.is_some() {
        eprintln!("serve needs exactly one of --stdin or --listen ADDR (try --help)");
        return ExitCode::FAILURE;
    }
    // Channel count is a placeholder: the template stamps each stream's
    // real width from its first frame.
    let config = DetectorConfig {
        window: args.window,
        channels: 1,
        warmup: args.warmup,
        initial_epochs: 10,
        fine_tune_epochs: 1,
    };
    let params = BuildParams::new(config)
        .with_capacity(args.capacity)
        .with_score(args.score)
        .with_seed(args.seed);
    let fleet_config = FleetConfig {
        shards: args.shards,
        batching: !args.no_batch,
        parallel: false,
        queue_capacity: args.queue_cap,
        f32_infer: args.f32_infer,
        telemetry: true,
    };
    let engine_config = EngineConfig {
        policy: args.policy,
        idle_rounds: args.idle_rounds,
        round_frames: 0,
        max_streams: args.max_streams,
    };
    let mut engine = IngestEngine::new(DetectorTemplate::new(spec, params), fleet_config, engine_config);
    let mut sink = ServeSink {
        threshold: args.threshold,
        every: args.metrics_every.map(|n| n as u64),
        outputs: 0,
        detections: 0,
    };
    eprintln!(
        "serving {} ({} framing, {:?} back-pressure, {} shard(s), batching {}{})",
        spec.label(),
        if args.csv { "csv" } else { "binary" },
        args.policy,
        args.shards,
        if args.no_batch { "off" } else { "on" },
        if !args.no_batch && args.f32_infer { ", f32 inference" } else { "" },
    );

    let started = Instant::now();
    let clean = if args.stdin {
        let stdin = std::io::stdin();
        let result = if args.csv {
            engine.run(&mut CsvTransport::new(stdin.lock()), &mut sink)
        } else {
            engine.run(&mut FramedTransport::new(stdin.lock()), &mut sink)
        };
        match result {
            Ok(()) => true,
            Err(e) => {
                eprintln!("stdin stream failed: {e}");
                false
            }
        }
    } else {
        serve_listener(args, &mut engine, &mut sink)
    };

    // Final snapshot no matter how the stream ended — a dirty disconnect
    // must still leave the counters behind.
    if let Some(path) = &args.metrics_json {
        if !write_metrics_json(path, &engine.export_metrics()) {
            return ExitCode::FAILURE;
        }
    }
    let stats = engine.stats();
    let secs = started.elapsed().as_secs_f64();
    eprintln!(
        "served {} frames as {} detector steps over {} rounds ({:.0} frames/s)",
        stats.frames,
        stats.fleet.steps,
        stats.rounds,
        stats.frames as f64 / secs.max(1e-9),
    );
    eprintln!(
        "streams: {} admitted, {} idle-retired; {} frames dropped, {} rejected; \
         {} outputs, {} detections",
        stats.fleet.admitted,
        stats.idle_retired,
        stats.fleet.bp_dropped_newest + stats.fleet.bp_dropped_oldest,
        stats.rejected,
        sink.outputs,
        sink.detections,
    );
    if clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Accepts TCP connections sequentially into one shared engine. A client
/// dying mid-frame is logged and the server keeps listening (its backlog
/// is still drained and the metrics snapshot still flushed); with
/// `--max-conns N` the server exits after `N` connections.
fn serve_listener(args: &Args, engine: &mut IngestEngine, sink: &mut ServeSink) -> bool {
    let addr = args.listen.as_deref().expect("listen mode");
    let listener = match std::net::TcpListener::bind(addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("could not bind {addr}: {e}");
            return false;
        }
    };
    match listener.local_addr() {
        Ok(a) => eprintln!("listening on {a}"),
        Err(_) => eprintln!("listening on {addr}"),
    }
    let mut clean = true;
    let mut conns = 0usize;
    loop {
        let (socket, peer) = match listener.accept() {
            Ok(x) => x,
            Err(e) => {
                eprintln!("accept failed: {e}");
                return false;
            }
        };
        conns += 1;
        let result = if args.csv {
            engine.run(&mut CsvTransport::new(&socket), sink)
        } else {
            engine.run(&mut FramedTransport::new(&socket), sink)
        };
        match result {
            Ok(()) => eprintln!("connection {conns} from {peer} drained cleanly"),
            Err(e) => {
                eprintln!("connection {conns} from {peer} failed: {e}");
                clean = false;
            }
        }
        // Keep the on-disk snapshot current between connections so an
        // interrupted server still leaves its latest counters.
        if let Some(path) = &args.metrics_json {
            write_metrics_json(path, &engine.export_metrics());
        }
        if args.max_conns > 0 && conns >= args.max_conns {
            return clean;
        }
    }
}

/// `--fleet N`: fan the series into `N` streams (stream 0 verbatim, the
/// rest jittered after warm-up so every detector fits identical weights
/// and stays in one batching cohort) and report serving throughput.
fn run_fleet(args: &Args, spec: AlgorithmSpec, series: &LabeledSeries, n: usize) -> ExitCode {
    let batching = !args.no_batch;
    eprintln!(
        "fleet: {} x {} streams on {} ({} steps x {} channels), {} shard(s), batching {}{}",
        spec.label(),
        n,
        series.name,
        series.len(),
        series.channels(),
        args.shards,
        if batching { "on" } else { "off" },
        if batching && args.f32_infer { " (f32 inference)" } else { "" },
    );
    let config = DetectorConfig {
        window: args.window,
        channels: series.channels(),
        warmup: args.warmup,
        initial_epochs: 10,
        fine_tune_epochs: 1,
    };
    let params = BuildParams::new(config)
        .with_capacity(args.capacity)
        .with_score(args.score)
        .with_seed(args.seed);
    let detectors = (0..n).map(|_| build_detector(spec, &params)).collect();
    let fleet_config = FleetConfig {
        shards: args.shards,
        batching,
        parallel: false,
        queue_capacity: 4,
        f32_infer: args.f32_infer,
        telemetry: true,
    };
    let mut fleet = DetectorFleet::new(detectors, fleet_config);

    let mut out = Vec::new();
    let mut buf = vec![0.0; series.channels()];
    // Round latency measured at the CLI boundary (enqueue excluded) through
    // the shared histogram type — p50/p99 come from the same interpolation
    // the fleet's own per-shard round histograms use.
    let mut latency = latency_histogram();
    let mut total_ns = 0u64;
    for (t, s) in series.data.iter().enumerate() {
        for i in 0..n {
            for (c, &v) in s.iter().enumerate() {
                buf[c] = v + if t >= args.warmup { jitter(i, t, c) } else { 0.0 };
            }
            assert!(fleet.enqueue(i, &buf), "one vector per round cannot fill a queue");
        }
        let start = Instant::now();
        fleet.drain_round(&mut out);
        let elapsed = start.elapsed();
        latency.record(elapsed.as_secs_f64());
        total_ns += elapsed.as_nanos() as u64;
        if let Some(every) = args.metrics_every {
            if (t + 1) % every == 0 {
                let s = fleet.stats();
                eprintln!(
                    "[metrics] round {}: {} steps, {} batched rows, {} rebuilds, \
                     p50 {:.1} us, p99 {:.1} us",
                    t + 1,
                    s.steps,
                    s.batched_rows,
                    s.cohort_rebuilds,
                    latency.quantile(0.50) * 1e6,
                    latency.quantile(0.99) * 1e6,
                );
            }
        }
    }

    let stats = fleet.stats();
    let steps_per_sec = stats.steps as f64 / (total_ns.max(1) as f64 / 1e9);
    println!(
        "served {} detector steps: {} batched rows in {} shared passes ({} f32), {} scalar",
        stats.steps, stats.batched_rows, stats.batches, stats.f32_rows, stats.scalar_steps,
    );
    println!("cohort rebuilds: {}", stats.cohort_rebuilds);
    println!("throughput: {:.0} steps/s over {} rounds", steps_per_sec, latency.count());
    println!(
        "round latency: p50 {:.1} us, p99 {:.1} us",
        latency.quantile(0.50) * 1e6,
        latency.quantile(0.99) * 1e6,
    );
    if let Some(path) = &args.metrics_json {
        // Fleet serving + aggregated detector lifecycle, plus the
        // CLI-boundary round latency under its own name.
        let mut reg = fleet.export_metrics();
        let mut cli = Registry::new();
        cli.register_histogram(
            "sad_cli_round_seconds",
            "drain_round latency measured at the CLI boundary.",
            latency,
        );
        reg.absorb(&cli);
        if !write_metrics_json(path, &reg) {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
