//! # streamad
//!
//! A complete Rust implementation of **"Extended Framework and Evaluation
//! for Multivariate Streaming Anomaly Detection with Machine Learning"**
//! (ICDE 2024): the SAFARI framework extended to model-based detectors, the
//! five evaluated ML models, the three evaluation metric families, and
//! synthetic stand-ins for the three benchmark corpora.
//!
//! ## Quickstart
//!
//! ```
//! use streamad::core::{paper_algorithms, DetectorConfig};
//! use streamad::models::{build_detector, BuildParams};
//!
//! // Pick one of the paper's 26 algorithms (Table I)...
//! let spec = paper_algorithms()[0];
//! // ...configure the detector (window w, channels N, warm-up length)...
//! let config = DetectorConfig { window: 8, channels: 2, warmup: 60, initial_epochs: 2, fine_tune_epochs: 1 };
//! let mut detector = build_detector(spec, &BuildParams::new(config).with_capacity(15));
//! // ...and feed it a stream, one vector per step.
//! for t in 0..200usize {
//!     let s = vec![(t as f64 * 0.1).sin(), (t as f64 * 0.07).cos()];
//!     if let Some(out) = detector.step(&s) {
//!         assert!((0.0..=1.0).contains(&out.anomaly_score));
//!     }
//! }
//! ```
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |---|---|
//! | [`core`] | the framework: data representation, Task-1/Task-2 learning strategies, nonconformity, anomaly scoring, the [`core::Detector`] pipeline, the Table I registry |
//! | [`models`] | online ARIMA, VAR, PCB-iForest, 2-layer AE, USAD, N-BEATS + the spec→detector builder |
//! | [`fleet`] | multi-stream serving: the sharded [`fleet::DetectorFleet`] with cross-stream batched NN stepping |
//! | [`ingest`] | serving over the wire: framed transports, back-pressure, dynamic admission feeding the fleet |
//! | [`metrics`] | range precision/recall, PR-AUC, NAB, VUS |
//! | [`obs`] | zero-alloc telemetry substrate: metric registry, histograms, Prometheus/JSON exporters |
//! | [`data`] | synthetic Daphnet/Exathlon/SMD-like corpora, injectors, CSV I/O |
//! | [`forest`] | extended isolation forest substrate |
//! | [`nn`] | hand-rolled MLP substrate with verified backprop |
//! | [`stats`] | running statistics, KS test, Gaussian tail, op counting |
//! | [`tensor`] | dense linear algebra and optimizers |

pub use sad_core as core;
pub use sad_data as data;
pub use sad_fleet as fleet;
pub use sad_forest as forest;
pub use sad_ingest as ingest;
pub use sad_metrics as metrics;
pub use sad_models as models;
pub use sad_nn as nn;
pub use sad_obs as obs;
pub use sad_stats as stats;
pub use sad_tensor as tensor;
