//! Offline stand-in for the `rand` crate (API subset, `std`-only).
//!
//! The build environment for this repository has no access to a crates
//! registry, so the workspace vendors the small slice of the `rand 0.9`
//! API it actually uses (wired up as path dependencies in the root
//! `Cargo.toml`'s `[workspace.dependencies]` table):
//!
//! * [`RngCore`] / [`Rng`] with `random_range`, `random_bool`, `random`
//! * [`SeedableRng`] with `seed_from_u64` / `from_seed`
//! * [`rngs::StdRng`] — here a xoshiro256++ generator seeded via SplitMix64
//! * [`seq::index::sample`] — distinct-index sampling (partial Fisher–Yates)
//!
//! The stream of values differs from upstream `rand` (upstream `StdRng` is
//! ChaCha12); everything in this workspace only relies on *seeded
//! determinism*, never on the exact upstream stream. Statistical quality of
//! xoshiro256++ is more than adequate for synthetic-corpus generation and
//! model initialization.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next uniform 32-bit word.
    fn next_u32(&mut self) -> u32;
    /// Returns the next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing generator extension trait (the `rand 0.9` method names).
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: distr::SampleRange<T>,
        Self: Sized,
    {
        assert!(!range.is_empty(), "cannot sample from an empty range");
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability outside [0, 1]");
        distr::unit_f64(self) < p
    }

    /// Samples a value from the standard distribution of `T`.
    fn random<T>(&mut self) -> T
    where
        T: distr::StandardSample,
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generator construction.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` by expanding it with SplitMix64
    /// (the conventional seeding recipe for xoshiro-family generators).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    ///
    /// Not the upstream ChaCha12 stream — see the crate docs. 2^256 − 1
    /// period, passes BigCrush, 4 words of state.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is the one fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

/// Uniform-range sampling machinery (subset of `rand::distr`).
pub mod distr {
    use super::{Range, RangeInclusive, Rng};

    /// Uniform `f64` in `[0, 1)` with 53 random mantissa bits.
    #[inline]
    pub(crate) fn unit_f64<R: Rng>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Ranges a value of type `T` can be uniformly sampled from.
    pub trait SampleRange<T> {
        /// Draws one uniform sample. The caller guarantees non-emptiness.
        fn sample_single<R: Rng>(self, rng: &mut R) -> T;
        /// `true` if the range contains no values.
        fn is_empty(&self) -> bool;
    }

    impl SampleRange<f64> for Range<f64> {
        #[inline]
        fn sample_single<R: Rng>(self, rng: &mut R) -> f64 {
            let v = self.start + (self.end - self.start) * unit_f64(rng);
            // Floating rounding can land exactly on `end`; clamp into range.
            if v >= self.end {
                self.end - (self.end - self.start) * f64::EPSILON
            } else {
                v
            }
        }
        #[inline]
        fn is_empty(&self) -> bool {
            !matches!(self.start.partial_cmp(&self.end), Some(std::cmp::Ordering::Less))
        }
    }

    impl SampleRange<f64> for RangeInclusive<f64> {
        #[inline]
        fn sample_single<R: Rng>(self, rng: &mut R) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            lo + (hi - lo) * ((rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64))
        }
        #[inline]
        fn is_empty(&self) -> bool {
            !matches!(
                self.start().partial_cmp(self.end()),
                Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
            )
        }
    }

    impl SampleRange<f32> for RangeInclusive<f32> {
        #[inline]
        fn sample_single<R: Rng>(self, rng: &mut R) -> f32 {
            let (lo, hi) = (*self.start(), *self.end());
            lo + (hi - lo)
                * ((rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)) as f32
        }
        #[inline]
        fn is_empty(&self) -> bool {
            !matches!(
                self.start().partial_cmp(self.end()),
                Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
            )
        }
    }

    impl SampleRange<f32> for Range<f32> {
        #[inline]
        fn sample_single<R: Rng>(self, rng: &mut R) -> f32 {
            let v = self.start + (self.end - self.start) * (unit_f64(rng) as f32);
            if v >= self.end {
                self.end - (self.end - self.start) * f32::EPSILON
            } else {
                v
            }
        }
        #[inline]
        fn is_empty(&self) -> bool {
            !matches!(self.start.partial_cmp(&self.end), Some(std::cmp::Ordering::Less))
        }
    }

    /// Unbiased uniform integer in `[0, span)` via Lemire-style rejection.
    #[inline]
    pub(crate) fn uniform_u64_below<R: Rng>(rng: &mut R, span: u64) -> u64 {
        debug_assert!(span > 0);
        // Rejection zone keeps the multiply-shift method exactly uniform.
        let zone = span.wrapping_neg() % span;
        loop {
            let v = rng.next_u64();
            let (hi, lo) = {
                let wide = (v as u128) * (span as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= zone {
                return hi;
            }
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty => $u:ty),* $(,)?) => {$(
            impl SampleRange<$t> for Range<$t> {
                #[inline]
                fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                    let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                    self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
                }
                #[inline]
                fn is_empty(&self) -> bool {
                    !matches!(self.start.partial_cmp(&self.end), Some(std::cmp::Ordering::Less))
                }
            }

            impl SampleRange<$t> for RangeInclusive<$t> {
                #[inline]
                fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(uniform_u64_below(rng, span + 1) as $t)
                }
                #[inline]
                fn is_empty(&self) -> bool {
                    !matches!(
                self.start().partial_cmp(self.end()),
                Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
            )
                }
            }
        )*};
    }

    impl_int_range!(
        usize => usize,
        u64 => u64,
        u32 => u32,
        u16 => u16,
        u8 => u8,
        isize => usize,
        i64 => u64,
        i32 => u32,
        i16 => u16,
        i8 => u8,
    );

    /// Types samplable from their "standard" distribution
    /// (`Rng::random`).
    pub trait StandardSample {
        /// Draws one standard sample.
        fn sample_standard<R: Rng>(rng: &mut R) -> Self;
    }

    impl StandardSample for f64 {
        #[inline]
        fn sample_standard<R: Rng>(rng: &mut R) -> Self {
            unit_f64(rng)
        }
    }

    impl StandardSample for f32 {
        #[inline]
        fn sample_standard<R: Rng>(rng: &mut R) -> Self {
            unit_f64(rng) as f32
        }
    }

    impl StandardSample for bool {
        #[inline]
        fn sample_standard<R: Rng>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl StandardSample for u64 {
        #[inline]
        fn sample_standard<R: Rng>(rng: &mut R) -> Self {
            rng.next_u64()
        }
    }

    impl StandardSample for u32 {
        #[inline]
        fn sample_standard<R: Rng>(rng: &mut R) -> Self {
            rng.next_u32()
        }
    }
}

/// Sequence-related helpers (subset of `rand::seq`).
pub mod seq {
    /// Index sampling (subset of `rand::seq::index`).
    pub mod index {
        use crate::distr::uniform_u64_below;
        use crate::Rng;

        /// A set of sampled indices.
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Iterates over the sampled indices.
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }

            /// Consumes into a plain vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }

            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// `true` if no indices were sampled.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Samples `amount` distinct indices from `0..length` uniformly at
        /// random, in random order (partial Fisher–Yates shuffle).
        ///
        /// # Panics
        /// Panics if `amount > length`.
        pub fn sample<R: Rng + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(amount <= length, "cannot sample {amount} indices from {length}");
            let mut pool: Vec<usize> = (0..length).collect();
            let mut out = Vec::with_capacity(amount);
            for i in 0..amount {
                let j = i + uniform_u64_below(&mut &mut *rng, (length - i) as u64) as usize;
                pool.swap(i, j);
                out.push(pool[i]);
            }
            IndexVec(out)
        }
    }
}

pub use distr::SampleRange;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::index::sample;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.random_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&v), "{v}");
        }
        for _ in 0..10_000 {
            let v = rng.random_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn integer_ranges_cover_and_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v: usize = rng.random_range(0..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..10 appear");
        for _ in 0..1_000 {
            let v: usize = rng.random_range(3..=5);
            assert!((3..=5).contains(&v));
        }
    }

    #[test]
    fn unit_interval_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.random_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn sample_returns_distinct_indices() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let idx = sample(&mut rng, 20, 12);
            let mut v = idx.into_vec();
            assert_eq!(v.len(), 12);
            v.sort_unstable();
            v.dedup();
            assert_eq!(v.len(), 12, "indices are distinct");
        }
    }

    #[test]
    fn random_bool_probability_is_respected() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02, "{hits}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _: usize = rng.random_range(5..5);
    }
}
