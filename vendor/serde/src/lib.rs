//! Offline stand-in for `serde` (see `vendor/serde_derive`).
//!
//! Re-exports the no-op `Serialize`/`Deserialize` derives and declares the
//! marker traits so downstream bounds keep compiling. No data format is
//! wired up; the workspace writes its machine-readable outputs (e.g.
//! `bench_output/table3_timing.json`) by hand.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the stub).
pub trait SerializeMarker {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the stub).
pub trait DeserializeMarker<'de> {}
