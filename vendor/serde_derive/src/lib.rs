//! Offline no-op stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data containers
//! purely as forward-looking API decoration — nothing serializes yet, and
//! the build environment has no registry access. These derives therefore
//! expand to nothing; when real serialization lands, this vendored stub is
//! the single place to replace.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
