//! Offline stand-in for `criterion` (API subset).
//!
//! The build environment has no registry access; this vendored crate keeps
//! the workspace's `benches/` compiling and producing useful wall-clock
//! numbers with only `std`. Differences from upstream: no statistical
//! analysis (median / min / max over fixed-duration samples instead of
//! bootstrap confidence intervals), no HTML reports, no baseline storage.
//!
//! Supported surface: [`Criterion::bench_function`],
//! [`Criterion::bench_with_input`], [`Criterion::benchmark_group`] with
//! `sample_size` / `finish`, [`Bencher::iter`], [`BenchmarkId`],
//! [`criterion_group!`], [`criterion_main!`], and a `black_box` re-export.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Function name plus parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self { function: Some(function.into()), parameter: Some(parameter.to_string()) }
    }

    /// Parameter value only (the group name supplies the function part).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self { function: None, parameter: Some(parameter.to_string()) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self { function: Some(name.to_string()), parameter: None }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self { function: Some(name), parameter: None }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function, &self.parameter) {
            (Some(func), Some(p)) => write!(f, "{func}/{p}"),
            (Some(func), None) => write!(f, "{func}"),
            (None, Some(p)) => write!(f, "{p}"),
            (None, None) => write!(f, "?"),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Measured samples (total elapsed, iterations) per sample.
    samples: Vec<(Duration, u64)>,
    sample_size: usize,
}

impl Bencher {
    /// Calls `routine` repeatedly and records per-iteration timing.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: find an iteration count that takes ≥ ~2 ms per sample.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 24 {
                break;
            }
            iters = iters.saturating_mul(if elapsed.is_zero() {
                16
            } else {
                ((Duration::from_millis(3).as_nanos() / elapsed.as_nanos().max(1)) as u64)
                    .clamp(2, 16)
            });
        }
        // Measure.
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push((start.elapsed(), iters));
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<40} (no samples)");
            return;
        }
        let mut per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|(d, n)| d.as_nanos() as f64 / *n as f64)
            .collect();
        per_iter.sort_by(f64::total_cmp);
        let min = per_iter[0];
        let med = per_iter[per_iter.len() / 2];
        let max = per_iter[per_iter.len() - 1];
        println!(
            "{label:<44} time: [{} {} {}]",
            format_ns(min),
            format_ns(med),
            format_ns(max)
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <substring>` filters benchmarks by name; flags
        // cargo itself passes (e.g. `--bench`) are ignored.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self { filter, sample_size: 10 }
    }
}

impl Criterion {
    fn enabled(&self, label: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| label.contains(f))
    }

    fn run_one(&mut self, label: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
        if !self.enabled(label) {
            return;
        }
        let mut b = Bencher { samples: Vec::new(), sample_size };
        f(&mut b);
        b.report(label);
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        self.run_one(id, sample_size, |b| f(b));
        self
    }

    /// Benchmarks `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let sample_size = self.sample_size;
        self.run_one(&id.to_string(), sample_size, |b| f(b, input));
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, criterion: self }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        let sample_size = self.sample_size;
        self.criterion.run_one(&label, sample_size, |b| f(b));
        self
    }

    /// Benchmarks `f` with a borrowed input under `group/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let sample_size = self.sample_size;
        self.criterion.run_one(&label, sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (upstream flushes reports here; the stub prints
    /// eagerly, so this is a no-op kept for source compatibility).
    pub fn finish(self) {}
}

/// Declares a benchmark group function composed of target functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion { filter: None, sample_size: 3 };
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(1u64 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion { filter: Some("xyz".into()), sample_size: 3 };
        let mut ran = false;
        c.bench_function("abc", |b| {
            b.iter(|| 1);
            ran = true;
        });
        assert!(!ran);
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("f", 64).to_string(), "f/64");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
        assert_eq!(BenchmarkId::from("plain").to_string(), "plain");
    }

    #[test]
    fn format_ns_scales_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
    }
}
