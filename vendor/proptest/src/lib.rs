//! Offline stand-in for `proptest` (API subset, no shrinking).
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of proptest it uses (root `Cargo.toml`, `[patch.crates-io]`):
//!
//! * the [`proptest!`] macro with optional `#![proptest_config(..)]`
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`]
//! * [`strategy::Strategy`] with `prop_map`, implemented for numeric ranges
//! * [`collection::vec`] with exact or ranged sizes
//!
//! Differences from upstream: a fixed deterministic seed per test function
//! (derived from the test name, so failures reproduce exactly), no failure
//! persistence, and — most importantly — **no shrinking**: a failing case
//! reports its raw inputs via `Debug` instead of a minimized counterexample.

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A generator of random values of type `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.rng().random_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.rng().random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(f64, f32, usize, u8, u16, u32, u64, i8, i16, i32, i64);

    /// Marker for strategies over `bool` (upstream `any::<bool>()`).
    #[derive(Debug, Clone, Default)]
    pub struct AnyBool(PhantomData<bool>);

    impl Strategy for AnyBool {
        type Value = bool;
        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.rng().random()
        }
    }
}

/// Strategies over collections (subset of `proptest::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// An (inclusive) size range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for `Vec<S::Value>` with sizes drawn from a [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                rng.rng().random_range(self.size.lo..=self.size.hi)
            };
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Test-runner types (subset of `proptest::test_runner`).
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-test configuration. Only `cases` is honoured by the stub.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
        /// Accepted for source compatibility; unused (no shrinking).
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the full workspace suite
            // fast while still exercising each property broadly.
            Self { cases: 64, max_shrink_iters: 0 }
        }
    }

    /// Deterministic per-case RNG handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// RNG for case `case` of the test whose name hashes to `fn_hash`.
        pub fn for_case(fn_hash: u64, case: u32) -> Self {
            Self(StdRng::seed_from_u64(
                fn_hash ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ))
        }

        /// The underlying generator.
        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.0
        }
    }

    /// Failure value carried out of a property body.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// A `prop_assert!` failed with this message.
        Fail(String),
        /// A `prop_assume!` rejected the inputs (case is skipped).
        Reject(String),
    }

    impl TestCaseError {
        /// Builds a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self::Fail(msg.into())
        }

        /// Builds a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            Self::Reject(msg.into())
        }

        /// `true` for rejected (skipped) cases.
        pub fn is_reject(&self) -> bool {
            matches!(self, Self::Reject(_))
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                Self::Fail(m) => write!(f, "assertion failed: {m}"),
                Self::Reject(m) => write!(f, "inputs rejected: {m}"),
            }
        }
    }

    /// FNV-1a hash used to derive a per-test seed from the test name.
    #[must_use]
    pub fn fnv1a(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) so the runner can report the generating inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("condition failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Rejects the current case (skips it) unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Declares property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let __fn_seed = $crate::test_runner::fnv1a(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(__fn_seed, __case);
                    $(
                        let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut __rng);
                    )+
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err(e) if e.is_reject() => {}
                        ::std::result::Result::Err(e) => panic!(
                            "proptest {} case {}/{}: {}\n  inputs: {}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            e,
                            __inputs,
                        ),
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn vec_sizes_respect_ranges(v in collection::vec(0.0f64..1.0, 3..10)) {
            prop_assert!((3..10).contains(&v.len()), "len {}", v.len());
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn exact_vec_size(v in collection::vec(-1.0f64..1.0, 7)) {
            prop_assert_eq!(v.len(), 7);
        }

        #[test]
        fn prop_map_transforms(x in (0usize..10).prop_map(|v| v * 2)) {
            prop_assert!(x % 2 == 0 && x < 20);
        }
    }

    #[test]
    fn deterministic_per_test_seed() {
        let mut a = TestRng::for_case(crate::test_runner::fnv1a("t"), 0);
        let mut b = TestRng::for_case(crate::test_runner::fnv1a("t"), 0);
        let sa = crate::strategy::Strategy::new_value(&(0.0f64..1.0), &mut a);
        let sb = crate::strategy::Strategy::new_value(&(0.0f64..1.0), &mut b);
        assert_eq!(sa, sb);
    }

    #[test]
    #[should_panic(expected = "proptest")]
    fn failing_property_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]
            #[allow(dead_code)]
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
