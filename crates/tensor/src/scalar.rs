//! Element precision for the tensor substrate.
//!
//! [`Scalar`] is the sealed trait behind the generic [`Matrix`] — it is
//! implemented for exactly `f64` (the training/evaluation precision, whose
//! kernel reduction orders are **pinned** for bitwise reproducibility) and
//! `f32` (the inference-only precision, which trades ~half the memory
//! bandwidth for a relative-error tolerance instead of bit equality).
//!
//! ## Pinned reduction orders
//!
//! Every parity proof in this workspace (`batch_parity`, `fanout_parity`,
//! `tree_parity`, `fleet_parity`, grid stdout byte-identity) rests on the
//! f64 kernels performing IEEE-754 operations in a fixed order. The dot
//! kernel therefore uses a *per-precision* fixed lane count:
//!
//! * `f64`: 4 independent accumulator lanes (lane `j` sums `a[4k+j]·b[4k+j]`)
//!   reduced as `(l0+l2)+(l1+l3)`, scalar tail — exactly the `dot4` kernel
//!   every release since PR 1 has shipped.
//! * `f32`: 8 lanes (one AVX register width) reduced as
//!   `((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))`, scalar tail.
//!
//! The `simd` cargo feature (default-on, runtime-dispatched on AVX2
//! support) swaps in `core::arch` AVX2 variants of the dot kernels plus
//! the register-blocked micro-kernel layer in [`crate::microkernel`]: a
//! 2×4-output GEMM panel kernel for `A · Bᵀ` where every output keeps its
//! own pinned lane accumulator, and AVX2 element-wise axpy / rank-4 /
//! squared-distance sweeps. All of them use separate multiply and add
//! instructions — **never FMA**, which contracts the intermediate rounding
//! step and would change bits — and reduce horizontally in the same pinned
//! order, so enabling the feature is observationally invisible: the f64
//! parity suites pass with it on or off (asserted by
//! `tests/precision_parity.rs`).
//!
//! [`Matrix`]: crate::Matrix

use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

mod sealed {
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
}

/// Element precision of a [`Matrix`](crate::Matrix) / vector kernel.
///
/// Sealed: implemented for `f32` and `f64` only. The associated [`dot`]
/// kernel is the one place lane width differs per precision — everything
/// else in the substrate is width-generic element-wise code whose operation
/// order does not depend on `T`.
///
/// [`dot`]: Scalar::dot
pub trait Scalar:
    sealed::Sealed
    + Copy
    + Default
    + PartialEq
    + PartialOrd
    + fmt::Debug
    + fmt::Display
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Send
    + Sync
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Machine epsilon of this precision.
    const EPSILON: Self;
    /// Accumulator lanes in the pinned [`dot`](Scalar::dot) kernel.
    const LANES: usize;

    /// Lossy conversion from `f64` (rounds to nearest for `f32`).
    fn from_f64(v: f64) -> Self;
    /// Widening conversion to `f64` (exact for both precisions).
    fn to_f64(self) -> f64;
    /// Conversion from a count (used for means / averaging factors).
    fn from_usize(n: usize) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// IEEE-754 `max` (propagates the non-NaN operand).
    fn maxv(self, other: Self) -> Self;
    /// `clamp(self, lo, hi)` with the std float semantics.
    fn clampv(self, lo: Self, hi: Self) -> Self;
    /// `true` if neither infinite nor NaN.
    fn is_finite(self) -> bool;

    /// Dot product with this precision's pinned lane order.
    ///
    /// Dispatches to the AVX2 variant when the `simd` feature is enabled
    /// and the CPU supports it; both paths are bitwise-identical.
    fn dot(a: &[Self], b: &[Self]) -> Self;

    /// In-place `y += alpha · x` — the row-sweep kernel of
    /// [`matmul_into`](crate::Matrix::matmul_into),
    /// [`matmul_transpose_a_acc`](crate::Matrix::matmul_transpose_a_acc)
    /// and [`matvec_t`](crate::Matrix::matvec_t).
    ///
    /// Element-wise, so vectorization cannot change the per-element
    /// operation order: the AVX2 override (under `simd`) is bitwise-equal
    /// to the portable [`axpy_tiled`].
    #[inline]
    fn axpy(alpha: Self, x: &[Self], y: &mut [Self]) {
        axpy_tiled(alpha, x, y);
    }

    /// Fused rank-4 row update `y += a0·r0 + a1·r1 + a2·r2 + a3·r3` — the
    /// register-blocked inner tile of [`matmul_into`](crate::Matrix::matmul_into).
    ///
    /// Per element the four `+=` happen in ascending-`k` order (same chain
    /// on every dispatch leg — see [`rank4_update_tiled`]).
    #[inline]
    fn rank4_update(a: [Self; 4], r0: &[Self], r1: &[Self], r2: &[Self], r3: &[Self], y: &mut [Self]) {
        rank4_update_tiled(a, r0, r1, r2, r3, y);
    }

    /// Squared-distance sweep `acc[c] += (xj − refs[c])²` — the kNN
    /// snapshot kernel (one call per feature dimension, `refs` holding that
    /// feature across the packed reference set).
    ///
    /// Element-wise; every dispatch leg is bitwise-equal to
    /// [`sq_dist_accum_tiled`].
    #[inline]
    fn sq_dist_accum(xj: Self, refs: &[Self], acc: &mut [Self]) {
        sq_dist_accum_tiled(xj, refs, acc);
    }

    /// Register-blocked `out = A · Bᵀ` micro-kernel (`A` is `m×k`, `B` is
    /// `n×k`, both row-major).
    ///
    /// Returns `true` if a micro-kernel handled the product; `false` asks
    /// the caller to fall back to the portable per-element
    /// [`dot`](Scalar::dot) loop, so the runtime CPU check is hoisted to
    /// once per GEMM instead of once per output element. Every output
    /// element of the blocked path keeps its own pinned lane accumulator
    /// ([`crate::microkernel`]), so taking either path yields bitwise
    /// identical results.
    #[inline]
    fn gemm_tb_blocked(
        _a: &[Self],
        _b: &[Self],
        _out: &mut [Self],
        _m: usize,
        _n: usize,
        _k: usize,
    ) -> bool {
        false
    }
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const EPSILON: Self = f64::EPSILON;
    const LANES: usize = 4;

    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn from_usize(n: usize) -> Self {
        n as f64
    }
    #[inline]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline]
    fn maxv(self, other: Self) -> Self {
        f64::max(self, other)
    }
    #[inline]
    fn clampv(self, lo: Self, hi: Self) -> Self {
        f64::clamp(self, lo, hi)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }

    #[inline]
    fn dot(a: &[Self], b: &[Self]) -> Self {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if a.len() >= 4 && std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified at runtime.
            return unsafe { x86::dot_f64_avx2(a, b) };
        }
        dot_pinned_f64(a, b)
    }

    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[inline]
    fn axpy(alpha: Self, x: &[Self], y: &mut [Self]) {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified at runtime.
            unsafe { crate::microkernel::axpy_f64_avx2(alpha, x, y) }
        } else {
            axpy_tiled(alpha, x, y);
        }
    }

    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[inline]
    fn rank4_update(a: [Self; 4], r0: &[Self], r1: &[Self], r2: &[Self], r3: &[Self], y: &mut [Self]) {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified at runtime.
            unsafe { crate::microkernel::rank4_f64_avx2(a, r0, r1, r2, r3, y) }
        } else {
            rank4_update_tiled(a, r0, r1, r2, r3, y);
        }
    }

    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[inline]
    fn sq_dist_accum(xj: Self, refs: &[Self], acc: &mut [Self]) {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified at runtime.
            unsafe { crate::microkernel::sq_dist_accum_f64_avx2(xj, refs, acc) }
        } else {
            sq_dist_accum_tiled(xj, refs, acc);
        }
    }

    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[inline]
    fn gemm_tb_blocked(a: &[Self], b: &[Self], out: &mut [Self], m: usize, n: usize, k: usize) -> bool {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified at runtime; the shape
            // invariants are the caller's (matmul_transpose_b_into) asserts.
            unsafe { crate::microkernel::gemm_tb_f64_avx2(a, b, out, m, n, k) }
            true
        } else {
            false
        }
    }
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const EPSILON: Self = f32::EPSILON;
    const LANES: usize = 8;

    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn from_usize(n: usize) -> Self {
        n as f32
    }
    #[inline]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline]
    fn maxv(self, other: Self) -> Self {
        f32::max(self, other)
    }
    #[inline]
    fn clampv(self, lo: Self, hi: Self) -> Self {
        f32::clamp(self, lo, hi)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }

    #[inline]
    fn dot(a: &[Self], b: &[Self]) -> Self {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if a.len() >= 8 && std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified at runtime.
            return unsafe { x86::dot_f32_avx2(a, b) };
        }
        dot_pinned_f32(a, b)
    }

    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[inline]
    fn axpy(alpha: Self, x: &[Self], y: &mut [Self]) {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified at runtime.
            unsafe { crate::microkernel::axpy_f32_avx2(alpha, x, y) }
        } else {
            axpy_tiled(alpha, x, y);
        }
    }

    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[inline]
    fn rank4_update(a: [Self; 4], r0: &[Self], r1: &[Self], r2: &[Self], r3: &[Self], y: &mut [Self]) {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified at runtime.
            unsafe { crate::microkernel::rank4_f32_avx2(a, r0, r1, r2, r3, y) }
        } else {
            rank4_update_tiled(a, r0, r1, r2, r3, y);
        }
    }

    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[inline]
    fn sq_dist_accum(xj: Self, refs: &[Self], acc: &mut [Self]) {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified at runtime.
            unsafe { crate::microkernel::sq_dist_accum_f32_avx2(xj, refs, acc) }
        } else {
            sq_dist_accum_tiled(xj, refs, acc);
        }
    }

    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[inline]
    fn gemm_tb_blocked(a: &[Self], b: &[Self], out: &mut [Self], m: usize, n: usize, k: usize) -> bool {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified at runtime; the shape
            // invariants are the caller's (matmul_transpose_b_into) asserts.
            unsafe { crate::microkernel::gemm_tb_f32_avx2(a, b, out, m, n, k) }
            true
        } else {
            false
        }
    }
}

/// `true` when this build carries the `simd` AVX2 kernel variants (they
/// still runtime-dispatch on CPU support). Lets downstream harnesses
/// record which kernel family produced a measurement.
#[must_use]
pub const fn simd_enabled() -> bool {
    cfg!(all(feature = "simd", target_arch = "x86_64"))
}

/// Four-lane f64 dot product — the pinned kernel behind every f64 parity
/// proof (identical to the `dot4` of PR 1).
///
/// Lane `j` accumulates `a[4k+j]·b[4k+j]`; the lanes reduce as
/// `(l0+l2)+(l1+l3)` and the tail is summed scalar, in order. Exposed
/// (rather than private) so the `simd` build can assert the intrinsic
/// path is bitwise-equal to this reference.
#[inline]
pub fn dot_pinned_f64(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f64; 4];
    let chunks = a.len() / 4;
    let (a_head, a_tail) = a.split_at(chunks * 4);
    let (b_head, b_tail) = b.split_at(chunks * 4);
    for (ca, cb) in a_head.chunks_exact(4).zip(b_head.chunks_exact(4)) {
        acc[0] += ca[0] * cb[0];
        acc[1] += ca[1] * cb[1];
        acc[2] += ca[2] * cb[2];
        acc[3] += ca[3] * cb[3];
    }
    let mut sum = (acc[0] + acc[2]) + (acc[1] + acc[3]);
    for (x, y) in a_tail.iter().zip(b_tail) {
        sum += x * y;
    }
    sum
}

/// Eight-lane f32 dot product — one AVX register of accumulators.
///
/// Lane `j` accumulates `a[8k+j]·b[8k+j]`; the lanes reduce as
/// `((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))` — the order a 256→128→64→32 bit
/// horizontal add produces — and the tail is summed scalar, in order.
#[inline]
pub fn dot_pinned_f32(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 8];
    let chunks = a.len() / 8;
    let (a_head, a_tail) = a.split_at(chunks * 8);
    let (b_head, b_tail) = b.split_at(chunks * 8);
    for (ca, cb) in a_head.chunks_exact(8).zip(b_head.chunks_exact(8)) {
        acc[0] += ca[0] * cb[0];
        acc[1] += ca[1] * cb[1];
        acc[2] += ca[2] * cb[2];
        acc[3] += ca[3] * cb[3];
        acc[4] += ca[4] * cb[4];
        acc[5] += ca[5] * cb[5];
        acc[6] += ca[6] * cb[6];
        acc[7] += ca[7] * cb[7];
    }
    let mut sum = ((acc[0] + acc[4]) + (acc[2] + acc[6])) + ((acc[1] + acc[5]) + (acc[3] + acc[7]));
    for (x, y) in a_tail.iter().zip(b_tail) {
        sum += x * y;
    }
    sum
}

/// AVX2 `core::arch` variants of the pinned dot kernels.
///
/// Both use separate `mul`/`add` instructions (no FMA — FMA skips the
/// intermediate rounding and would change bits) and horizontal-reduce in
/// the exact order of the scalar reference, so they are bitwise-identical
/// to [`dot_pinned_f64`] / [`dot_pinned_f32`] on every input.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod x86 {
    use std::arch::x86_64::*;

    /// # Safety
    /// Caller must ensure the CPU supports AVX2 and `a.len() == b.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_f64_avx2(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let chunks = n / 4;
        let mut acc = _mm256_setzero_pd();
        for c in 0..chunks {
            let va = _mm256_loadu_pd(a.as_ptr().add(c * 4));
            let vb = _mm256_loadu_pd(b.as_ptr().add(c * 4));
            acc = _mm256_add_pd(acc, _mm256_mul_pd(va, vb));
        }
        // Reduce [l0,l1,l2,l3] as (l0+l2)+(l1+l3) — the dot_pinned_f64 order.
        let lo = _mm256_castpd256_pd128(acc); // [l0, l1]
        let hi = _mm256_extractf128_pd::<1>(acc); // [l2, l3]
        let s = _mm_add_pd(lo, hi); // [l0+l2, l1+l3]
        let upper = _mm_unpackhi_pd(s, s);
        let mut sum = _mm_cvtsd_f64(_mm_add_sd(s, upper));
        for i in chunks * 4..n {
            sum += a[i] * b[i];
        }
        sum
    }

    /// # Safety
    /// Caller must ensure the CPU supports AVX2 and `a.len() == b.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_f32_avx2(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let chunks = n / 8;
        let mut acc = _mm256_setzero_ps();
        for c in 0..chunks {
            let va = _mm256_loadu_ps(a.as_ptr().add(c * 8));
            let vb = _mm256_loadu_ps(b.as_ptr().add(c * 8));
            acc = _mm256_add_ps(acc, _mm256_mul_ps(va, vb));
        }
        // Reduce [l0..l7] as ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)) — the
        // dot_pinned_f32 order.
        let lo = _mm256_castps256_ps128(acc); // [l0, l1, l2, l3]
        let hi = _mm256_extractf128_ps::<1>(acc); // [l4, l5, l6, l7]
        let s = _mm_add_ps(lo, hi); // [l0+l4, l1+l5, l2+l6, l3+l7]
        let upper = _mm_movehl_ps(s, s); // [l2+l6, l3+l7, ...]
        let t = _mm_add_ps(s, upper); // [(l0+l4)+(l2+l6), (l1+l5)+(l3+l7), ..]
        let t1 = _mm_shuffle_ps::<0b01>(t, t); // lane 0 = t[1]
        let mut sum = _mm_cvtss_f32(_mm_add_ss(t, t1));
        for i in chunks * 8..n {
            sum += a[i] * b[i];
        }
        sum
    }
}

/// Tiled in-place `y += alpha · x`, the row-sweep kernel behind
/// [`matmul_into`](crate::Matrix::matmul_into),
/// [`matmul_transpose_a_acc`](crate::Matrix::matmul_transpose_a_acc) and
/// [`matvec_t`](crate::Matrix::matvec_t).
///
/// The body is an explicit 8-wide unrolled head plus scalar tail. Each
/// output element still receives exactly one `+= alpha·x[j]` — the tiling
/// changes *which instructions* the compiler emits (clean 256-bit
/// autovectorization for both precisions), never the per-element operation
/// order, so the f64 instantiation is bitwise-identical to the naive loop.
///
/// Public as the frozen portable reference the `simd` AVX2 override
/// ([`Scalar::axpy`]) is asserted bitwise-equal against.
#[inline]
pub fn axpy_tiled<T: Scalar>(alpha: T, x: &[T], y: &mut [T]) {
    debug_assert_eq!(x.len(), y.len());
    let chunks = x.len() / 8;
    let (xh, xt) = x.split_at(chunks * 8);
    let (yh, yt) = y.split_at_mut(chunks * 8);
    for (yc, xc) in yh.chunks_exact_mut(8).zip(xh.chunks_exact(8)) {
        yc[0] += alpha * xc[0];
        yc[1] += alpha * xc[1];
        yc[2] += alpha * xc[2];
        yc[3] += alpha * xc[3];
        yc[4] += alpha * xc[4];
        yc[5] += alpha * xc[5];
        yc[6] += alpha * xc[6];
        yc[7] += alpha * xc[7];
    }
    for (o, &v) in yt.iter_mut().zip(xt) {
        *o += alpha * v;
    }
}

/// Fused rank-4 row update `y += a0·r0 + a1·r1 + a2·r2 + a3·r3`, the
/// register-blocked inner tile of [`matmul_into`](crate::Matrix::matmul_into).
///
/// Per element `j` the four `+=` happen in ascending-`k` order — the same
/// operation sequence as four consecutive [`axpy_tiled`] sweeps — so the
/// blocking only buys register reuse (the output row is loaded and stored
/// once per four `k` instead of once per `k`), never a different result.
///
/// Public as the frozen portable reference for [`Scalar::rank4_update`].
#[inline]
pub fn rank4_update_tiled<T: Scalar>(
    a: [T; 4],
    r0: &[T],
    r1: &[T],
    r2: &[T],
    r3: &[T],
    y: &mut [T],
) {
    let n = y.len();
    assert!(r0.len() == n && r1.len() == n && r2.len() == n && r3.len() == n);
    for j in 0..n {
        let mut t = y[j];
        t += a[0] * r0[j];
        t += a[1] * r1[j];
        t += a[2] * r2[j];
        t += a[3] * r3[j];
        y[j] = t;
    }
}

/// Squared-distance sweep `acc[c] += (xj − refs[c])²` — the portable kNN
/// snapshot kernel behind [`Scalar::sq_dist_accum`].
///
/// Element-wise with one subtract, one multiply, one `+=` per accumulator
/// — exactly the operation sequence of the sequential per-point distance
/// `Σ_j (x_j − r_j)²` when called once per feature `j` over a transposed
/// (feature-major) reference snapshot, so the sweep reproduces the legacy
/// per-point sums bit for bit.
#[inline]
pub fn sq_dist_accum_tiled<T: Scalar>(xj: T, refs: &[T], acc: &mut [T]) {
    debug_assert_eq!(refs.len(), acc.len());
    for (o, &r) in acc.iter_mut().zip(refs) {
        let d = xj - r;
        *o += d * d;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series_f64(n: usize, salt: u64) -> Vec<f64> {
        let mut state = salt.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn dot_pinned_f64_matches_legacy_reduction_order() {
        // Hand-computed against the documented lane order on a length that
        // exercises both the 4-wide head and the scalar tail.
        let a: Vec<f64> = (0..7).map(|i| (i + 1) as f64).collect();
        let b: Vec<f64> = (0..7).map(|i| (7 - i) as f64).collect();
        let lanes: [f64; 4] = [1.0 * 7.0, 2.0 * 6.0, 3.0 * 5.0, 4.0 * 4.0];
        let mut expect = (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
        expect += 5.0 * 3.0;
        expect += 6.0 * 2.0;
        expect += 7.0 * 1.0;
        assert_eq!(dot_pinned_f64(&a, &b).to_bits(), expect.to_bits());
    }

    #[test]
    fn trait_dot_is_the_pinned_kernel() {
        for n in [0usize, 1, 3, 4, 5, 7, 8, 9, 15, 16, 17, 64, 129] {
            let a = series_f64(n, 1);
            let b = series_f64(n, 2);
            assert_eq!(
                <f64 as Scalar>::dot(&a, &b).to_bits(),
                dot_pinned_f64(&a, &b).to_bits(),
                "f64 dot dispatch must stay bitwise-pinned at n={n}",
            );
            let af: Vec<f32> = a.iter().map(|&v| v as f32).collect();
            let bf: Vec<f32> = b.iter().map(|&v| v as f32).collect();
            assert_eq!(
                <f32 as Scalar>::dot(&af, &bf).to_bits(),
                dot_pinned_f32(&af, &bf).to_bits(),
                "f32 dot dispatch must stay bitwise-pinned at n={n}",
            );
        }
    }

    #[test]
    fn axpy_tiled_is_bitwise_naive() {
        for n in [0usize, 1, 7, 8, 9, 23, 64, 100] {
            let x = series_f64(n, 3);
            let mut y = series_f64(n, 4);
            let mut y_ref = y.clone();
            let alpha = 0.37;
            axpy_tiled(alpha, &x, &mut y);
            for (o, &v) in y_ref.iter_mut().zip(&x) {
                *o += alpha * v;
            }
            assert_eq!(
                y.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                y_ref.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            );
        }
    }

    #[test]
    fn rank4_update_tiled_is_four_sequential_axpys() {
        for n in [1usize, 5, 8, 13, 32] {
            let r: Vec<Vec<f64>> = (0..4).map(|s| series_f64(n, 10 + s)).collect();
            let a = [0.5, -1.25, 0.0, 3.5];
            let mut y = series_f64(n, 20);
            let mut y_ref = y.clone();
            rank4_update_tiled(a, &r[0], &r[1], &r[2], &r[3], &mut y);
            for (t, alpha) in a.iter().enumerate() {
                for (o, &v) in y_ref.iter_mut().zip(&r[t]) {
                    *o += alpha * v;
                }
            }
            assert_eq!(
                y.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                y_ref.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            );
        }
    }
}
