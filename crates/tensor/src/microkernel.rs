//! Register-blocked AVX2 micro-kernels behind the `simd` feature.
//!
//! Every kernel here is an *instruction-level* rewrite of a pinned portable
//! kernel in [`crate::scalar`] — same IEEE-754 operations, same order, so
//! the f64 results are bitwise identical and the f32 results match the
//! pinned 8-lane layout exactly. The wins come from instruction selection
//! only:
//!
//! * **GEMM panel kernel** ([`gemm_tb_f64_avx2`] / [`gemm_tb_f32_avx2`]):
//!   the `A · Bᵀ` serving GEMM computed as 2-row × 4-column output panels.
//!   Each of the 8 panel outputs keeps its *own* lane-accumulator register
//!   (4 lanes f64 / 8 lanes f32) — the k-loop of one output is never split
//!   across registers, so each output's reduction order is exactly
//!   [`dot_pinned_f64`](crate::scalar::dot_pinned_f64) /
//!   [`dot_pinned_f32`](crate::scalar::dot_pinned_f32). What the blocking
//!   buys is ILP (8 independent add chains hide the 4-cycle vector-add
//!   latency that bounds a single-accumulator dot) and load reuse (each
//!   `a` vector feeds 4 outputs, each `b` vector feeds 2).
//! * **axpy / rank-4 row update**: element-wise sweeps where vectorization
//!   cannot change the per-element operation order; AVX2 only widens the
//!   lanes past the SSE2 baseline the default target emits.
//! * **Squared-distance sweep** ([`sq_dist_accum_f64_avx2`]): the kNN
//!   snapshot kernel, `acc[c] += (x_j − refs[c])²` — element-wise, same
//!   argument.
//!
//! No kernel uses FMA: fused multiply-add skips the intermediate rounding
//! of the product and would change bits (see the crate-level discussion in
//! [`crate::scalar`]).

use std::arch::x86_64::*;

/// Reduce a 4-lane f64 accumulator in the pinned `(l0+l2)+(l1+l3)` order.
///
/// # Safety
/// Requires AVX2 (callers are `#[target_feature(enable = "avx2")]`).
#[target_feature(enable = "avx2")]
unsafe fn hreduce_pd(acc: __m256d) -> f64 {
    let lo = _mm256_castpd256_pd128(acc); // [l0, l1]
    let hi = _mm256_extractf128_pd::<1>(acc); // [l2, l3]
    let s = _mm_add_pd(lo, hi); // [l0+l2, l1+l3]
    let upper = _mm_unpackhi_pd(s, s);
    _mm_cvtsd_f64(_mm_add_sd(s, upper))
}

/// Reduce an 8-lane f32 accumulator in the pinned
/// `((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))` order.
///
/// # Safety
/// Requires AVX2.
#[target_feature(enable = "avx2")]
unsafe fn hreduce_ps(acc: __m256) -> f32 {
    let lo = _mm256_castps256_ps128(acc); // [l0, l1, l2, l3]
    let hi = _mm256_extractf128_ps::<1>(acc); // [l4, l5, l6, l7]
    let s = _mm_add_ps(lo, hi); // [l0+l4, l1+l5, l2+l6, l3+l7]
    let upper = _mm_movehl_ps(s, s);
    let t = _mm_add_ps(s, upper); // [(l0+l4)+(l2+l6), (l1+l5)+(l3+l7), ..]
    let t1 = _mm_shuffle_ps::<0b01>(t, t);
    _mm_cvtss_f32(_mm_add_ss(t, t1))
}

/// Register-blocked `out = A · Bᵀ` (f64): `A` is `m×k`, `B` is `n×k`, both
/// row-major, `out` is `m×n`.
///
/// 2×4 output panels, one 4-lane accumulator per output, pinned horizontal
/// reduce + ascending scalar tail per output — bitwise-equal to one
/// `dot_pinned_f64(a.row(i), b.row(j))` per element. Panel remainders
/// (odd trailing row, `n % 4` trailing columns) fall back to the plain
/// AVX2 dot, which shares the same pinned order.
///
/// # Safety
/// Caller must verify AVX2 at runtime and pass consistent dimensions
/// (`a.len() == m*k`, `b.len() == n*k`, `out.len() == m*n`).
#[target_feature(enable = "avx2")]
pub unsafe fn gemm_tb_f64_avx2(a: &[f64], b: &[f64], out: &mut [f64], m: usize, n: usize, k: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    let kc = k / 4 * 4;
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let mut i = 0;
    while i + 2 <= m {
        let ar0 = ap.add(i * k);
        let ar1 = ap.add((i + 1) * k);
        let mut j = 0;
        while j + 4 <= n {
            let br0 = bp.add(j * k);
            let br1 = bp.add((j + 1) * k);
            let br2 = bp.add((j + 2) * k);
            let br3 = bp.add((j + 3) * k);
            let mut c00 = _mm256_setzero_pd();
            let mut c01 = _mm256_setzero_pd();
            let mut c02 = _mm256_setzero_pd();
            let mut c03 = _mm256_setzero_pd();
            let mut c10 = _mm256_setzero_pd();
            let mut c11 = _mm256_setzero_pd();
            let mut c12 = _mm256_setzero_pd();
            let mut c13 = _mm256_setzero_pd();
            let mut kk = 0;
            while kk < kc {
                let va0 = _mm256_loadu_pd(ar0.add(kk));
                let va1 = _mm256_loadu_pd(ar1.add(kk));
                let vb0 = _mm256_loadu_pd(br0.add(kk));
                let vb1 = _mm256_loadu_pd(br1.add(kk));
                let vb2 = _mm256_loadu_pd(br2.add(kk));
                let vb3 = _mm256_loadu_pd(br3.add(kk));
                c00 = _mm256_add_pd(c00, _mm256_mul_pd(va0, vb0));
                c01 = _mm256_add_pd(c01, _mm256_mul_pd(va0, vb1));
                c02 = _mm256_add_pd(c02, _mm256_mul_pd(va0, vb2));
                c03 = _mm256_add_pd(c03, _mm256_mul_pd(va0, vb3));
                c10 = _mm256_add_pd(c10, _mm256_mul_pd(va1, vb0));
                c11 = _mm256_add_pd(c11, _mm256_mul_pd(va1, vb1));
                c12 = _mm256_add_pd(c12, _mm256_mul_pd(va1, vb2));
                c13 = _mm256_add_pd(c13, _mm256_mul_pd(va1, vb3));
                kk += 4;
            }
            let panel = [[c00, c01, c02, c03], [c10, c11, c12, c13]];
            let arows = [ar0, ar1];
            let brows = [br0, br1, br2, br3];
            for (r, accs) in panel.iter().enumerate() {
                let orow = out.as_mut_ptr().add((i + r) * n + j);
                for (c, &acc) in accs.iter().enumerate() {
                    let mut s = hreduce_pd(acc);
                    for t in kc..k {
                        s += *arows[r].add(t) * *brows[c].add(t);
                    }
                    *orow.add(c) = s;
                }
            }
            j += 4;
        }
        while j < n {
            let br = bp.add(j * k);
            for (r, &ar) in [ar0, ar1].iter().enumerate() {
                *out.as_mut_ptr().add((i + r) * n + j) = dot_raw_f64(ar, br, k);
            }
            j += 1;
        }
        i += 2;
    }
    if i < m {
        let ar = ap.add(i * k);
        for j in 0..n {
            *out.as_mut_ptr().add(i * n + j) = dot_raw_f64(ar, bp.add(j * k), k);
        }
    }
}

/// Raw-pointer form of the pinned AVX2 f64 dot (panel-remainder fallback).
///
/// # Safety
/// Requires AVX2 and `k` readable elements behind both pointers.
#[target_feature(enable = "avx2")]
unsafe fn dot_raw_f64(a: *const f64, b: *const f64, k: usize) -> f64 {
    let kc = k / 4 * 4;
    let mut acc = _mm256_setzero_pd();
    let mut kk = 0;
    while kk < kc {
        let va = _mm256_loadu_pd(a.add(kk));
        let vb = _mm256_loadu_pd(b.add(kk));
        acc = _mm256_add_pd(acc, _mm256_mul_pd(va, vb));
        kk += 4;
    }
    let mut sum = hreduce_pd(acc);
    for t in kc..k {
        sum += *a.add(t) * *b.add(t);
    }
    sum
}

/// Register-blocked `out = A · Bᵀ` (f32) — the 8-lane counterpart of
/// [`gemm_tb_f64_avx2`]: 2×4 output panels, one 8-lane accumulator per
/// output, pinned `dot_pinned_f32` reduce + ascending tail.
///
/// # Safety
/// Caller must verify AVX2 at runtime and pass consistent dimensions.
#[target_feature(enable = "avx2")]
pub unsafe fn gemm_tb_f32_avx2(a: &[f32], b: &[f32], out: &mut [f32], m: usize, n: usize, k: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    let kc = k / 8 * 8;
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let mut i = 0;
    while i + 2 <= m {
        let ar0 = ap.add(i * k);
        let ar1 = ap.add((i + 1) * k);
        let mut j = 0;
        while j + 4 <= n {
            let br0 = bp.add(j * k);
            let br1 = bp.add((j + 1) * k);
            let br2 = bp.add((j + 2) * k);
            let br3 = bp.add((j + 3) * k);
            let mut c00 = _mm256_setzero_ps();
            let mut c01 = _mm256_setzero_ps();
            let mut c02 = _mm256_setzero_ps();
            let mut c03 = _mm256_setzero_ps();
            let mut c10 = _mm256_setzero_ps();
            let mut c11 = _mm256_setzero_ps();
            let mut c12 = _mm256_setzero_ps();
            let mut c13 = _mm256_setzero_ps();
            let mut kk = 0;
            while kk < kc {
                let va0 = _mm256_loadu_ps(ar0.add(kk));
                let va1 = _mm256_loadu_ps(ar1.add(kk));
                let vb0 = _mm256_loadu_ps(br0.add(kk));
                let vb1 = _mm256_loadu_ps(br1.add(kk));
                let vb2 = _mm256_loadu_ps(br2.add(kk));
                let vb3 = _mm256_loadu_ps(br3.add(kk));
                c00 = _mm256_add_ps(c00, _mm256_mul_ps(va0, vb0));
                c01 = _mm256_add_ps(c01, _mm256_mul_ps(va0, vb1));
                c02 = _mm256_add_ps(c02, _mm256_mul_ps(va0, vb2));
                c03 = _mm256_add_ps(c03, _mm256_mul_ps(va0, vb3));
                c10 = _mm256_add_ps(c10, _mm256_mul_ps(va1, vb0));
                c11 = _mm256_add_ps(c11, _mm256_mul_ps(va1, vb1));
                c12 = _mm256_add_ps(c12, _mm256_mul_ps(va1, vb2));
                c13 = _mm256_add_ps(c13, _mm256_mul_ps(va1, vb3));
                kk += 8;
            }
            let panel = [[c00, c01, c02, c03], [c10, c11, c12, c13]];
            let arows = [ar0, ar1];
            let brows = [br0, br1, br2, br3];
            for (r, accs) in panel.iter().enumerate() {
                let orow = out.as_mut_ptr().add((i + r) * n + j);
                for (c, &acc) in accs.iter().enumerate() {
                    let mut s = hreduce_ps(acc);
                    for t in kc..k {
                        s += *arows[r].add(t) * *brows[c].add(t);
                    }
                    *orow.add(c) = s;
                }
            }
            j += 4;
        }
        while j < n {
            let br = bp.add(j * k);
            for (r, &ar) in [ar0, ar1].iter().enumerate() {
                *out.as_mut_ptr().add((i + r) * n + j) = dot_raw_f32(ar, br, k);
            }
            j += 1;
        }
        i += 2;
    }
    if i < m {
        let ar = ap.add(i * k);
        for j in 0..n {
            *out.as_mut_ptr().add(i * n + j) = dot_raw_f32(ar, bp.add(j * k), k);
        }
    }
}

/// Raw-pointer form of the pinned AVX2 f32 dot (panel-remainder fallback).
///
/// # Safety
/// Requires AVX2 and `k` readable elements behind both pointers.
#[target_feature(enable = "avx2")]
unsafe fn dot_raw_f32(a: *const f32, b: *const f32, k: usize) -> f32 {
    let kc = k / 8 * 8;
    let mut acc = _mm256_setzero_ps();
    let mut kk = 0;
    while kk < kc {
        let va = _mm256_loadu_ps(a.add(kk));
        let vb = _mm256_loadu_ps(b.add(kk));
        acc = _mm256_add_ps(acc, _mm256_mul_ps(va, vb));
        kk += 8;
    }
    let mut sum = hreduce_ps(acc);
    for t in kc..k {
        sum += *a.add(t) * *b.add(t);
    }
    sum
}

/// AVX2 `y += alpha · x` (f64). Element-wise: each output element receives
/// exactly one `+= alpha·x[j]`, same as the portable
/// [`axpy_tiled`](crate::scalar::axpy_tiled).
///
/// # Safety
/// Caller must verify AVX2 at runtime; `x.len() == y.len()`.
#[target_feature(enable = "avx2")]
pub unsafe fn axpy_f64_avx2(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    let n = x.len();
    let va = _mm256_set1_pd(alpha);
    let xp = x.as_ptr();
    let yp = y.as_mut_ptr();
    let mut i = 0;
    while i + 8 <= n {
        let y0 = _mm256_loadu_pd(yp.add(i));
        let y1 = _mm256_loadu_pd(yp.add(i + 4));
        let x0 = _mm256_loadu_pd(xp.add(i));
        let x1 = _mm256_loadu_pd(xp.add(i + 4));
        _mm256_storeu_pd(yp.add(i), _mm256_add_pd(y0, _mm256_mul_pd(va, x0)));
        _mm256_storeu_pd(yp.add(i + 4), _mm256_add_pd(y1, _mm256_mul_pd(va, x1)));
        i += 8;
    }
    while i + 4 <= n {
        let y0 = _mm256_loadu_pd(yp.add(i));
        let x0 = _mm256_loadu_pd(xp.add(i));
        _mm256_storeu_pd(yp.add(i), _mm256_add_pd(y0, _mm256_mul_pd(va, x0)));
        i += 4;
    }
    while i < n {
        *yp.add(i) += alpha * *xp.add(i);
        i += 1;
    }
}

/// AVX2 `y += alpha · x` (f32).
///
/// # Safety
/// Caller must verify AVX2 at runtime; `x.len() == y.len()`.
#[target_feature(enable = "avx2")]
pub unsafe fn axpy_f32_avx2(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    let n = x.len();
    let va = _mm256_set1_ps(alpha);
    let xp = x.as_ptr();
    let yp = y.as_mut_ptr();
    let mut i = 0;
    while i + 8 <= n {
        let y0 = _mm256_loadu_ps(yp.add(i));
        let x0 = _mm256_loadu_ps(xp.add(i));
        _mm256_storeu_ps(yp.add(i), _mm256_add_ps(y0, _mm256_mul_ps(va, x0)));
        i += 8;
    }
    while i < n {
        *yp.add(i) += alpha * *xp.add(i);
        i += 1;
    }
}

/// AVX2 fused rank-4 row update `y += a0·r0 + a1·r1 + a2·r2 + a3·r3` (f64).
///
/// Per element the four `+=` happen in ascending-`k` order — the identical
/// chain of the portable [`rank4_update_tiled`](crate::scalar::rank4_update_tiled).
///
/// # Safety
/// Caller must verify AVX2 at runtime; all slices share `y.len()`.
#[target_feature(enable = "avx2")]
pub unsafe fn rank4_f64_avx2(a: [f64; 4], r0: &[f64], r1: &[f64], r2: &[f64], r3: &[f64], y: &mut [f64]) {
    let n = y.len();
    debug_assert!(r0.len() == n && r1.len() == n && r2.len() == n && r3.len() == n);
    let va0 = _mm256_set1_pd(a[0]);
    let va1 = _mm256_set1_pd(a[1]);
    let va2 = _mm256_set1_pd(a[2]);
    let va3 = _mm256_set1_pd(a[3]);
    let yp = y.as_mut_ptr();
    let mut i = 0;
    while i + 4 <= n {
        let mut t = _mm256_loadu_pd(yp.add(i));
        t = _mm256_add_pd(t, _mm256_mul_pd(va0, _mm256_loadu_pd(r0.as_ptr().add(i))));
        t = _mm256_add_pd(t, _mm256_mul_pd(va1, _mm256_loadu_pd(r1.as_ptr().add(i))));
        t = _mm256_add_pd(t, _mm256_mul_pd(va2, _mm256_loadu_pd(r2.as_ptr().add(i))));
        t = _mm256_add_pd(t, _mm256_mul_pd(va3, _mm256_loadu_pd(r3.as_ptr().add(i))));
        _mm256_storeu_pd(yp.add(i), t);
        i += 4;
    }
    while i < n {
        let mut t = *yp.add(i);
        t += a[0] * *r0.get_unchecked(i);
        t += a[1] * *r1.get_unchecked(i);
        t += a[2] * *r2.get_unchecked(i);
        t += a[3] * *r3.get_unchecked(i);
        *yp.add(i) = t;
        i += 1;
    }
}

/// AVX2 fused rank-4 row update (f32).
///
/// # Safety
/// Caller must verify AVX2 at runtime; all slices share `y.len()`.
#[target_feature(enable = "avx2")]
pub unsafe fn rank4_f32_avx2(a: [f32; 4], r0: &[f32], r1: &[f32], r2: &[f32], r3: &[f32], y: &mut [f32]) {
    let n = y.len();
    debug_assert!(r0.len() == n && r1.len() == n && r2.len() == n && r3.len() == n);
    let va0 = _mm256_set1_ps(a[0]);
    let va1 = _mm256_set1_ps(a[1]);
    let va2 = _mm256_set1_ps(a[2]);
    let va3 = _mm256_set1_ps(a[3]);
    let yp = y.as_mut_ptr();
    let mut i = 0;
    while i + 8 <= n {
        let mut t = _mm256_loadu_ps(yp.add(i));
        t = _mm256_add_ps(t, _mm256_mul_ps(va0, _mm256_loadu_ps(r0.as_ptr().add(i))));
        t = _mm256_add_ps(t, _mm256_mul_ps(va1, _mm256_loadu_ps(r1.as_ptr().add(i))));
        t = _mm256_add_ps(t, _mm256_mul_ps(va2, _mm256_loadu_ps(r2.as_ptr().add(i))));
        t = _mm256_add_ps(t, _mm256_mul_ps(va3, _mm256_loadu_ps(r3.as_ptr().add(i))));
        _mm256_storeu_ps(yp.add(i), t);
        i += 8;
    }
    while i < n {
        let mut t = *yp.add(i);
        t += a[0] * *r0.get_unchecked(i);
        t += a[1] * *r1.get_unchecked(i);
        t += a[2] * *r2.get_unchecked(i);
        t += a[3] * *r3.get_unchecked(i);
        *yp.add(i) = t;
        i += 1;
    }
}

/// AVX2 squared-distance sweep `acc[c] += (x_j − refs[c])²` (f64) — the
/// kNN snapshot kernel. Element-wise: each accumulator receives one
/// subtract, one multiply, one add, same as the portable
/// [`sq_dist_accum_tiled`](crate::scalar::sq_dist_accum_tiled).
///
/// # Safety
/// Caller must verify AVX2 at runtime; `refs.len() == acc.len()`.
#[target_feature(enable = "avx2")]
pub unsafe fn sq_dist_accum_f64_avx2(xj: f64, refs: &[f64], acc: &mut [f64]) {
    debug_assert_eq!(refs.len(), acc.len());
    let n = refs.len();
    let vx = _mm256_set1_pd(xj);
    let rp = refs.as_ptr();
    let ap = acc.as_mut_ptr();
    let mut i = 0;
    while i + 8 <= n {
        let d0 = _mm256_sub_pd(vx, _mm256_loadu_pd(rp.add(i)));
        let d1 = _mm256_sub_pd(vx, _mm256_loadu_pd(rp.add(i + 4)));
        let a0 = _mm256_loadu_pd(ap.add(i));
        let a1 = _mm256_loadu_pd(ap.add(i + 4));
        _mm256_storeu_pd(ap.add(i), _mm256_add_pd(a0, _mm256_mul_pd(d0, d0)));
        _mm256_storeu_pd(ap.add(i + 4), _mm256_add_pd(a1, _mm256_mul_pd(d1, d1)));
        i += 8;
    }
    while i + 4 <= n {
        let d0 = _mm256_sub_pd(vx, _mm256_loadu_pd(rp.add(i)));
        let a0 = _mm256_loadu_pd(ap.add(i));
        _mm256_storeu_pd(ap.add(i), _mm256_add_pd(a0, _mm256_mul_pd(d0, d0)));
        i += 4;
    }
    while i < n {
        let d = xj - *rp.add(i);
        *ap.add(i) += d * d;
        i += 1;
    }
}

/// AVX2 squared-distance sweep (f32).
///
/// # Safety
/// Caller must verify AVX2 at runtime; `refs.len() == acc.len()`.
#[target_feature(enable = "avx2")]
pub unsafe fn sq_dist_accum_f32_avx2(xj: f32, refs: &[f32], acc: &mut [f32]) {
    debug_assert_eq!(refs.len(), acc.len());
    let n = refs.len();
    let vx = _mm256_set1_ps(xj);
    let rp = refs.as_ptr();
    let ap = acc.as_mut_ptr();
    let mut i = 0;
    while i + 8 <= n {
        let d0 = _mm256_sub_ps(vx, _mm256_loadu_ps(rp.add(i)));
        let a0 = _mm256_loadu_ps(ap.add(i));
        _mm256_storeu_ps(ap.add(i), _mm256_add_ps(a0, _mm256_mul_ps(d0, d0)));
        i += 8;
    }
    while i < n {
        let d = xj - *rp.add(i);
        *ap.add(i) += d * d;
        i += 1;
    }
}
