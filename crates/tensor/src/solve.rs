//! Direct linear solvers.
//!
//! The vector-autoregressive model (paper §IV-C) estimates its coefficient
//! matrices by least squares on the current sliding window. Window sizes in
//! the evaluation are in the hundreds, so an `O(n^3)` dense Gaussian
//! elimination with partial pivoting is entirely adequate and avoids pulling
//! in a LAPACK binding.

use crate::matrix::Matrix;

/// Errors from the direct solvers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveError {
    /// The system matrix is singular (or numerically so) to working precision.
    Singular,
    /// Operand shapes are incompatible with the requested operation.
    ShapeMismatch,
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Singular => write!(f, "matrix is singular to working precision"),
            SolveError::ShapeMismatch => write!(f, "operand shapes are incompatible"),
        }
    }
}

impl std::error::Error for SolveError {}

const PIVOT_EPS: f64 = 1e-12;

/// Solves `A X = B` for `X` with Gaussian elimination and partial pivoting.
///
/// `A` must be square; `B` may have any number of right-hand-side columns.
pub fn solve(a: &Matrix, b: &Matrix) -> Result<Matrix, SolveError> {
    let n = a.rows();
    if a.cols() != n || b.rows() != n {
        return Err(SolveError::ShapeMismatch);
    }
    let m = b.cols();
    let mut lu = a.clone();
    let mut x = b.clone();

    for k in 0..n {
        // Partial pivoting: bring the largest remaining element in column k
        // to the diagonal to keep the elimination numerically stable. The
        // strided `col_iter` walk replaces per-element `(i, k)` indexing
        // (each of which re-derives the row offset).
        let (pivot_row, pivot_val) = lu
            .col_iter(k)
            .enumerate()
            .skip(k)
            .map(|(i, v)| (i, v.abs()))
            .max_by(|l, r| l.1.total_cmp(&r.1))
            .expect("non-empty pivot range");
        if pivot_val < PIVOT_EPS {
            return Err(SolveError::Singular);
        }
        if pivot_row != k {
            swap_rows(&mut lu, k, pivot_row);
            swap_rows(&mut x, k, pivot_row);
        }
        let pivot = lu[(k, k)];
        // Row-sweep elimination: split the storage below the pivot row so
        // row k can be read while rows k+1.. are updated — every inner loop
        // walks contiguous slices instead of striding column k with `(i, j)`
        // index arithmetic.
        let (lu_top, lu_below) = lu.as_mut_slice().split_at_mut((k + 1) * n);
        let lu_pivot_tail = &lu_top[k * n + k + 1..(k + 1) * n];
        let (x_top, x_below) = x.as_mut_slice().split_at_mut((k + 1) * m);
        let x_pivot_row = &x_top[k * m..(k + 1) * m];
        for (lu_row, x_row) in lu_below.chunks_exact_mut(n).zip(x_below.chunks_exact_mut(m)) {
            let factor = lu_row[k] / pivot;
            if factor == 0.0 {
                continue;
            }
            lu_row[k] = 0.0;
            for (v, &p) in lu_row[k + 1..].iter_mut().zip(lu_pivot_tail) {
                *v -= factor * p;
            }
            for (v, &p) in x_row.iter_mut().zip(x_pivot_row) {
                *v -= factor * p;
            }
        }
    }

    // Back substitution, also as row sweeps: subtract each already-solved
    // row i > k from row k (both contiguous in `x`), then divide by the
    // pivot — instead of walking x's column j with stride `m` per cell.
    for k in (0..n).rev() {
        let pivot = lu[(k, k)];
        let lu_row_k = lu.row(k);
        let (x_head, x_tail) = x.as_mut_slice().split_at_mut((k + 1) * m);
        let x_row_k = &mut x_head[k * m..];
        for (i, x_row_i) in x_tail.chunks_exact(m).enumerate() {
            let c = lu_row_k[k + 1 + i];
            if c == 0.0 {
                continue;
            }
            for (v, &p) in x_row_k.iter_mut().zip(x_row_i) {
                *v -= c * p;
            }
        }
        for v in x_row_k.iter_mut() {
            *v /= pivot;
        }
    }
    Ok(x)
}

/// Inverts a square matrix.
pub fn invert(a: &Matrix) -> Result<Matrix, SolveError> {
    solve(a, &Matrix::identity(a.rows()))
}

/// Solves the least-squares problem `min_X ||A X - B||_F` via the normal
/// equations `(A^T A + ridge I) X = A^T B`.
///
/// A tiny ridge term keeps the normal equations well conditioned when the
/// regressor matrix is rank deficient — which happens whenever a channel in
/// the sliding window is constant. Pass `ridge = 0.0` for the pure solution.
pub fn least_squares(a: &Matrix, b: &Matrix, ridge: f64) -> Result<Matrix, SolveError> {
    if a.rows() != b.rows() {
        return Err(SolveError::ShapeMismatch);
    }
    // `A^T A` and `A^T B` via the rank-1 row-sweep kernel: no transpose is
    // ever materialized (the old path allocated and strided-copied `A^T`,
    // the dominant cost for the tall-skinny windows VAR refits on).
    let mut ata = a.matmul_transpose_a(a);
    if ridge > 0.0 {
        for i in 0..ata.rows() {
            ata[(i, i)] += ridge;
        }
    }
    let atb = a.matmul_transpose_a(b);
    solve(&ata, &atb)
}

fn swap_rows(m: &mut Matrix, a: usize, b: usize) {
    if a == b {
        return;
    }
    let cols = m.cols();
    let data = m.as_mut_slice();
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    let (head, tail) = data.split_at_mut(hi * cols);
    head[lo * cols..(lo + 1) * cols].swap_with_slice(&mut tail[..cols]);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &Matrix, b: &Matrix, tol: f64) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn solve_2x2_known_solution() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let b = Matrix::from_rows(&[&[5.0], &[10.0]]);
        let x = solve(&a, &b).unwrap();
        assert_close(&x, &Matrix::from_rows(&[&[1.0], &[3.0]]), 1e-10);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero on the diagonal forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let b = Matrix::from_rows(&[&[2.0], &[3.0]]);
        let x = solve(&a, &b).unwrap();
        assert_close(&x, &Matrix::from_rows(&[&[3.0], &[2.0]]), 1e-12);
    }

    #[test]
    fn solve_multiple_rhs() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let x = solve(&a, &b).unwrap();
        assert_close(&a.matmul(&x), &Matrix::identity(2), 1e-10);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[2.0]]);
        assert_eq!(solve(&a, &b), Err(SolveError::Singular));
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 1);
        assert_eq!(solve(&a, &b), Err(SolveError::ShapeMismatch));
    }

    #[test]
    fn invert_round_trip() {
        let a = Matrix::from_rows(&[&[3.0, 1.0, 0.0], &[1.0, 2.0, 1.0], &[0.0, 1.0, 4.0]]);
        let inv = invert(&a).unwrap();
        assert_close(&a.matmul(&inv), &Matrix::identity(3), 1e-9);
    }

    #[test]
    fn least_squares_recovers_exact_system() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let truth = Matrix::from_rows(&[&[2.0], &[-1.0]]);
        let b = a.matmul(&truth);
        let x = least_squares(&a, &b, 0.0).unwrap();
        assert_close(&x, &truth, 1e-9);
    }

    #[test]
    fn least_squares_overdetermined_line_fit() {
        // Fit y = 2x + 1 through noisy-free points; design matrix [x, 1].
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let a = Matrix::from_fn(xs.len(), 2, |i, j| if j == 0 { xs[i] } else { 1.0 });
        let b = Matrix::from_fn(xs.len(), 1, |i, _| 2.0 * xs[i] + 1.0);
        let x = least_squares(&a, &b, 0.0).unwrap();
        assert_close(&x, &Matrix::from_rows(&[&[2.0], &[1.0]]), 1e-9);
    }

    #[test]
    fn least_squares_ridge_handles_rank_deficiency() {
        // Second column is all zeros -> A^T A singular without ridge.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[2.0, 0.0], &[3.0, 0.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        assert_eq!(least_squares(&a, &b, 0.0), Err(SolveError::Singular));
        let x = least_squares(&a, &b, 1e-8).unwrap();
        assert!((x[(0, 0)] - 1.0).abs() < 1e-4);
        assert!(x[(1, 0)].abs() < 1e-4);
    }

    #[test]
    fn random_like_system_residual_is_small() {
        // Deterministic pseudo-random matrix via a simple LCG.
        let mut state = 42_u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let n = 12;
        let a = Matrix::from_fn(n, n, |_, _| next());
        let truth = Matrix::from_fn(n, 1, |_, _| next());
        let b = a.matmul(&truth);
        let x = solve(&a, &b).unwrap();
        let resid = a.matmul(&x).sub(&b).frobenius_norm();
        assert!(resid < 1e-8, "residual {resid}");
    }
}
