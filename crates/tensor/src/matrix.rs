//! Dense row-major matrix, generic over element precision.
//!
//! [`Matrix<T>`] stores `rows * cols` values contiguously in row-major order
//! for `T ∈ {f32, f64}` (the sealed [`Scalar`] trait). `Matrix` with no
//! parameter means `Matrix<f64>` — the training/evaluation precision whose
//! kernel operation order is pinned for bitwise reproducibility (see
//! [`crate::scalar`]); `Matrix<f32>` backs the inference-only fast path.
//!
//! All binary operations panic on shape mismatch — a shape mismatch in this
//! workspace is always a programming error, never a data error, so the panic
//! sites double as cheap internal assertions for the model implementations.

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::scalar::Scalar;

/// A dense row-major matrix over precision `T` (default `f64`).
#[derive(Clone, PartialEq)]
pub struct Matrix<T: Scalar = f64> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Matrix<T> {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![T::ZERO; rows * cols] }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: T) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::ONE;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Changes the logical row count in place, keeping `cols` fixed.
    ///
    /// Shrinking truncates the row-major storage; growing appends zeroed
    /// rows. Within the largest row count the matrix has ever had, neither
    /// direction allocates — this is what lets the NN workspaces process a
    /// trailing partial minibatch without touching the heap.
    pub fn resize_rows(&mut self, rows: usize) {
        self.rows = rows;
        self.data.resize(rows * self.cols, T::ZERO);
    }

    /// Overwrites `self` element-wise from `rhs` (no allocation).
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn copy_from(&mut self, rhs: &Matrix<T>) {
        assert_eq!(self.shape(), rhs.shape(), "copy_from shape mismatch");
        self.data.copy_from_slice(&rhs.data);
    }

    /// Overwrites `self` element-wise from another precision (no
    /// allocation) — the weight-refresh kernel of the f32 inference plans.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn convert_from<U: Scalar>(&mut self, src: &Matrix<U>) {
        assert_eq!(self.shape(), src.shape(), "convert_from shape mismatch");
        for (o, &v) in self.data.iter_mut().zip(&src.data) {
            *o = T::from_f64(v.to_f64());
        }
    }

    /// Creates a matrix by converting every element of `src` to `T`.
    pub fn from_precision<U: Scalar>(src: &Matrix<U>) -> Self {
        let mut out = Self::zeros(src.rows, src.cols);
        out.convert_from(src);
        out
    }

    /// Sets every element to `value` in place (no allocation).
    pub fn fill(&mut self, value: T) {
        self.data.fill(value);
    }

    /// Creates a matrix from nested row slices (convenient in tests).
    pub fn from_rows(rows: &[&[T]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows in Matrix::from_rows");
            data.extend_from_slice(row);
        }
        Self { rows: r, cols: c, data }
    }

    /// Builds a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable access to the underlying row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Borrows row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[T] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a fresh vector.
    ///
    /// Allocates; column-walking hot paths should prefer the strided
    /// [`Matrix::col_iter`].
    pub fn col(&self, j: usize) -> Vec<T> {
        self.col_iter(j).collect()
    }

    /// Iterates column `j` top to bottom without allocating — one strided
    /// load per row.
    #[inline]
    pub fn col_iter(&self, j: usize) -> impl Iterator<Item = T> + '_ {
        assert!(j < self.cols, "column index {j} out of range for {} cols", self.cols);
        self.data.iter().skip(j).step_by(self.cols).copied()
    }

    /// Matrix product `self * rhs`.
    ///
    /// Uses the classic i-k-j loop order so the innermost loop walks both
    /// operands contiguously (see the Rust Performance Book on cache-friendly
    /// traversal).
    ///
    /// # Panics
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix<T>) -> Matrix<T> {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// Allocation-free [`Matrix::matmul`]: writes `self * rhs` into `out`
    /// (overwriting it). The batched NN training path calls this every step
    /// with a workspace-owned output buffer.
    ///
    /// The i-k-j sweep is register-blocked 4 deep in `k`: when four
    /// consecutive `a` coefficients are all nonzero the four row sweeps fuse
    /// into one [`rank4_update_tiled`] pass (the output row is loaded/stored
    /// once per tile instead of once per `k`); otherwise each `k` falls back
    /// to an individual [`axpy_tiled`] sweep with the historical
    /// skip-zero-coefficient shortcut. Per output element the `+=` sequence
    /// stays in ascending-`k` order either way, so the f64 instantiation is
    /// bitwise-identical to the pre-tiled kernel.
    ///
    /// # Panics
    /// Panics if `self.cols != rhs.rows` or `out` is not `self.rows x rhs.cols`.
    pub fn matmul_into(&self, rhs: &Matrix<T>, out: &mut Matrix<T>) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        assert_eq!(out.shape(), (self.rows, rhs.cols), "matmul_into output shape mismatch");
        out.data.fill(T::ZERO);
        let n = rhs.cols;
        for i in 0..self.rows {
            let arow = &self.data[i * self.cols..(i + 1) * self.cols];
            let orow = &mut out.data[i * n..(i + 1) * n];
            let mut k = 0;
            while k + 4 <= self.cols {
                let a = [arow[k], arow[k + 1], arow[k + 2], arow[k + 3]];
                let rr = &rhs.data[k * n..(k + 4) * n];
                if a[0] != T::ZERO && a[1] != T::ZERO && a[2] != T::ZERO && a[3] != T::ZERO {
                    T::rank4_update(a, &rr[..n], &rr[n..2 * n], &rr[2 * n..3 * n], &rr[3 * n..], orow);
                } else {
                    for (t, &av) in a.iter().enumerate() {
                        if av == T::ZERO {
                            continue;
                        }
                        T::axpy(av, &rr[t * n..(t + 1) * n], orow);
                    }
                }
                k += 4;
            }
            for (kk, &av) in arow.iter().enumerate().skip(k) {
                if av == T::ZERO {
                    continue;
                }
                T::axpy(av, &rhs.data[kk * n..(kk + 1) * n], orow);
            }
        }
    }

    /// Transposed-left product `self^T * rhs` without materializing the
    /// transpose — the normal-equations kernel (`A^T A`, `A^T B`).
    ///
    /// Accumulates one rank-1 row sweep per shared row `i`: the innermost
    /// loop walks `rhs` and the output contiguously, matching the cache
    /// behaviour of the i-k-j [`Matrix::matmul`] while skipping the
    /// `O(rows·cols)` transpose allocation + strided copy entirely.
    ///
    /// # Panics
    /// Panics if `self.rows != rhs.rows`.
    pub fn matmul_transpose_a(&self, rhs: &Matrix<T>) -> Matrix<T> {
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        self.matmul_transpose_a_acc(rhs, &mut out);
        out
    }

    /// Accumulating, allocation-free [`Matrix::matmul_transpose_a`]:
    /// `out += self^T * rhs`.
    ///
    /// This is the minibatch weight-gradient kernel: with `self = δ`
    /// (`batch x out_dim`) and `rhs = X` (`batch x in_dim`) it accumulates
    /// `Σ_s δ_s x_s^T` — one rank-1 row sweep per *sample*, in ascending
    /// sample order. The summation order therefore matches a per-sample
    /// backward loop exactly, which is what makes the batched training path
    /// bitwise-reproducible against the per-sample path (see the parity
    /// tests in `sad-nn`). Each sweep runs through the 8-wide
    /// [`axpy_tiled`] tile, which preserves that order element-for-element.
    ///
    /// # Panics
    /// Panics if `self.rows != rhs.rows` or `out` is not `self.cols x rhs.cols`.
    pub fn matmul_transpose_a_acc(&self, rhs: &Matrix<T>, out: &mut Matrix<T>) {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_transpose_a shape mismatch: ({}x{})^T * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        assert_eq!(
            out.shape(),
            (self.cols, rhs.cols),
            "matmul_transpose_a_acc output shape mismatch"
        );
        let n = rhs.cols;
        for i in 0..self.rows {
            let arow = &self.data[i * self.cols..(i + 1) * self.cols];
            let rrow = &rhs.data[i * n..(i + 1) * n];
            for (k, &a) in arow.iter().enumerate() {
                if a == T::ZERO {
                    continue;
                }
                T::axpy(a, rrow, &mut out.data[k * n..(k + 1) * n]);
            }
        }
    }

    /// Transposed-right product `self * rhs^T` without materializing the
    /// transpose.
    ///
    /// Every output element is a dot product of two *contiguous* rows, so
    /// the kernel never strides: `out[i][j] = self.row(i) · rhs.row(j)`.
    ///
    /// # Panics
    /// Panics if `self.cols != rhs.cols`.
    pub fn matmul_transpose_b(&self, rhs: &Matrix<T>) -> Matrix<T> {
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        self.matmul_transpose_b_into(rhs, &mut out);
        out
    }

    /// Allocation-free [`Matrix::matmul_transpose_b`]: writes
    /// `self * rhs^T` into `out` (overwriting it).
    ///
    /// This is the minibatch *forward* kernel: with `self = X`
    /// (`batch x in_dim`) and `rhs = W` (`out_dim x in_dim`) every output
    /// element is [`Scalar::dot`] of `x_s` and `w_j` — the identical
    /// pinned-lane dot product [`Matrix::matvec`] uses per sample, so the
    /// batched forward is bitwise-equal to `batch` independent matvecs.
    ///
    /// # Panics
    /// Panics if `self.cols != rhs.cols` or `out` is not `self.rows x rhs.rows`.
    pub fn matmul_transpose_b_into(&self, rhs: &Matrix<T>, out: &mut Matrix<T>) {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_transpose_b shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        assert_eq!(out.shape(), (self.rows, rhs.rows), "matmul_transpose_b_into shape mismatch");
        // Register-blocked micro-kernel (AVX2 panel, one pinned lane
        // accumulator per output element) when the build and CPU carry it;
        // the per-element dot loop below is the bitwise-identical portable
        // path. The dispatch check runs once per GEMM, not per element.
        if T::gemm_tb_blocked(&self.data, &rhs.data, &mut out.data, self.rows, rhs.rows, self.cols) {
            return;
        }
        for i in 0..self.rows {
            let arow = &self.data[i * self.cols..(i + 1) * self.cols];
            let orow = &mut out.data[i * rhs.rows..(i + 1) * rhs.rows];
            for (j, o) in orow.iter_mut().enumerate() {
                let rrow = &rhs.data[j * rhs.cols..(j + 1) * rhs.cols];
                *o = T::dot(arow, rrow);
            }
        }
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols`.
    pub fn matvec(&self, v: &[T]) -> Vec<T> {
        assert_eq!(v.len(), self.cols, "matvec shape mismatch");
        (0..self.rows).map(|i| T::dot(self.row(i), v)).collect()
    }

    /// Transposed matrix-vector product `self^T * v` without materializing
    /// the transpose (hot in backprop).
    ///
    /// # Panics
    /// Panics if `v.len() != self.rows`.
    pub fn matvec_t(&self, v: &[T]) -> Vec<T> {
        assert_eq!(v.len(), self.rows, "matvec_t shape mismatch");
        let mut out = vec![T::ZERO; self.cols];
        for (i, &vi) in v.iter().enumerate() {
            if vi == T::ZERO {
                continue;
            }
            T::axpy(vi, self.row(i), &mut out);
        }
        out
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix<T> {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for j in 0..self.cols {
            for (o, v) in out.row_mut(j).iter_mut().zip(self.col_iter(j)) {
                *o = v;
            }
        }
        out
    }

    /// Element-wise sum `self + rhs`.
    pub fn add(&self, rhs: &Matrix<T>) -> Matrix<T> {
        self.zip_with(rhs, |a, b| a + b)
    }

    /// Element-wise difference `self - rhs`.
    pub fn sub(&self, rhs: &Matrix<T>) -> Matrix<T> {
        self.zip_with(rhs, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, rhs: &Matrix<T>) -> Matrix<T> {
        self.zip_with(rhs, |a, b| a * b)
    }

    /// Scales every element by `s`, returning a new matrix.
    pub fn scale(&self, s: T) -> Matrix<T> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| v * s).collect(),
        }
    }

    /// Scales every element by `s` in place (no allocation) — the gradient
    /// averaging kernel of the minibatch training path.
    pub fn scale_mut(&mut self, s: T) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// In-place `self += s * rhs` (the workhorse of gradient updates).
    pub fn add_scaled(&mut self, rhs: &Matrix<T>, s: T) {
        assert_eq!(self.shape(), rhs.shape(), "add_scaled shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += s * b;
        }
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(T) -> T) -> Matrix<T> {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&v| f(v)).collect() }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> T {
        self.data.iter().fold(T::ZERO, |acc, &v| acc + v * v).sqrt()
    }

    /// `true` if every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    fn zip_with(&self, rhs: &Matrix<T>, f: impl Fn(T, T) -> T) -> Matrix<T> {
        assert_eq!(self.shape(), rhs.shape(), "element-wise op shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(&a, &b)| f(a, b)).collect(),
        }
    }
}

impl<T: Scalar> Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl<T: Scalar> IndexMut<(usize, usize)> for Matrix<T> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl<T: Scalar> fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", self.row(i))?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::<f64>::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Matrix::<f64>::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i[(2, 2)], 1.0);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        assert_eq!(a.matmul(&Matrix::identity(3)), a);
        assert_eq!(Matrix::identity(3).matmul(&a), a);
    }

    #[test]
    fn matmul_f32_known_product() {
        let a: Matrix<f32> = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b: Matrix<f32> = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        assert_eq!(a.matmul(&b), Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn precision_conversion_round_trips_exact_values() {
        let a = Matrix::from_fn(3, 5, |i, j| (i as f64) - (j as f64) * 0.5);
        let f: Matrix<f32> = Matrix::from_precision(&a);
        let mut back = Matrix::zeros(3, 5);
        back.convert_from(&f);
        // Halves and small integers are exact in both precisions.
        assert_eq!(back, a);
    }

    #[test]
    fn matmul_transpose_a_equals_explicit_transpose() {
        let a = Matrix::from_fn(4, 3, |i, j| (i * 3 + j) as f64 - 5.0);
        let b = Matrix::from_fn(4, 2, |i, j| (i as f64) * 0.5 - (j as f64));
        assert_eq!(a.matmul_transpose_a(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_transpose_b_equals_explicit_transpose() {
        let a = Matrix::from_fn(3, 5, |i, j| (i + 2 * j) as f64 * 0.25);
        let b = Matrix::from_fn(4, 5, |i, j| (i as f64) - (j as f64) * 1.5);
        assert_eq!(a.matmul_transpose_b(&b), a.matmul(&b.transpose()));
    }

    #[test]
    #[should_panic(expected = "matmul_transpose_a shape mismatch")]
    fn matmul_transpose_a_shape_mismatch_panics() {
        let _ = Matrix::<f64>::zeros(2, 3).matmul_transpose_a(&Matrix::zeros(3, 2));
    }

    #[test]
    #[should_panic(expected = "matmul_transpose_b shape mismatch")]
    fn matmul_transpose_b_shape_mismatch_panics() {
        let _ = Matrix::<f64>::zeros(2, 3).matmul_transpose_b(&Matrix::zeros(3, 2));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[&[1.0, -1.0, 2.0], &[0.0, 3.0, 1.0]]);
        let v = vec![2.0, 1.0, 0.5];
        assert_eq!(a.matvec(&v), vec![2.0, 3.5]);
    }

    #[test]
    fn matvec_t_equals_transpose_matvec() {
        let a = Matrix::from_fn(4, 3, |i, j| (i as f64) - (j as f64) * 0.5);
        let v = vec![1.0, -2.0, 0.5, 3.0];
        assert_eq!(a.matvec_t(&v), a.transpose().matvec(&v));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(2, 5, |i, j| (i + j) as f64 * 1.5);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 5.0]]);
        assert_eq!(a.add(&b), Matrix::from_rows(&[&[4.0, 7.0]]));
        assert_eq!(b.sub(&a), Matrix::from_rows(&[&[2.0, 3.0]]));
        assert_eq!(a.hadamard(&b), Matrix::from_rows(&[&[3.0, 10.0]]));
        assert_eq!(a.scale(2.0), Matrix::from_rows(&[&[2.0, 4.0]]));
    }

    #[test]
    fn scale_mut_matches_scale() {
        let a = Matrix::from_fn(3, 4, |i, j| (i * 4 + j) as f64 - 5.5);
        let mut b = a.clone();
        b.scale_mut(-0.25);
        assert_eq!(b, a.scale(-0.25));
    }

    #[test]
    fn matmul_into_matches_matmul() {
        let a = Matrix::from_fn(3, 4, |i, j| (i + j) as f64 * 0.5 - 1.0);
        let b = Matrix::from_fn(4, 2, |i, j| (i as f64) - (j as f64) * 2.0);
        let mut out = Matrix::filled(3, 2, 99.0); // stale contents must be overwritten
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
    }

    #[test]
    fn matmul_transpose_a_acc_accumulates() {
        let a = Matrix::from_fn(4, 3, |i, j| (i * 3 + j) as f64 - 5.0);
        let b = Matrix::from_fn(4, 2, |i, j| (i as f64) * 0.5 - (j as f64));
        let mut out = Matrix::zeros(3, 2);
        a.matmul_transpose_a_acc(&b, &mut out);
        a.matmul_transpose_a_acc(&b, &mut out);
        let twice = a.matmul_transpose_a(&b).scale(2.0);
        assert_eq!(out, twice);
    }

    #[test]
    fn matmul_transpose_b_into_matches() {
        let a = Matrix::from_fn(3, 5, |i, j| (i + 2 * j) as f64 * 0.25);
        let b = Matrix::from_fn(4, 5, |i, j| (i as f64) - (j as f64) * 1.5);
        let mut out = Matrix::filled(3, 4, -3.0);
        a.matmul_transpose_b_into(&b, &mut out);
        assert_eq!(out, a.matmul_transpose_b(&b));
    }

    #[test]
    fn resize_rows_shrinks_and_regrows_zeroed() {
        let mut m = Matrix::from_fn(4, 3, |i, j| (i * 3 + j) as f64 + 1.0);
        m.resize_rows(2);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        m.resize_rows(4);
        assert_eq!(m.shape(), (4, 3));
        // Regrown rows are zeroed, not stale.
        assert!(m.row(2).iter().chain(m.row(3)).all(|&v| v == 0.0));
    }

    #[test]
    fn copy_from_and_fill() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut b = Matrix::zeros(2, 2);
        b.copy_from(&a);
        assert_eq!(a, b);
        b.fill(7.0);
        assert!(b.as_slice().iter().all(|&v| v == 7.0));
    }

    #[test]
    #[should_panic(expected = "copy_from shape mismatch")]
    fn copy_from_shape_mismatch_panics() {
        let mut b = Matrix::<f64>::zeros(2, 3);
        b.copy_from(&Matrix::zeros(3, 2));
    }

    #[test]
    fn add_scaled_in_place() {
        let mut a = Matrix::from_rows(&[&[1.0, 1.0]]);
        let g = Matrix::from_rows(&[&[2.0, -4.0]]);
        a.add_scaled(&g, -0.5);
        assert_eq!(a, Matrix::from_rows(&[&[0.0, 3.0]]));
    }

    #[test]
    fn frobenius_norm_of_345() {
        let a = Matrix::from_rows(&[&[3.0], &[4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn row_and_col_access() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.row(1), &[3.0, 4.0]);
        assert_eq!(a.col(0), vec![1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::<f64>::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_wrong_len_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut a = Matrix::zeros(2, 2);
        assert!(a.is_finite());
        a[(1, 1)] = f64::NAN;
        assert!(!a.is_finite());
    }

    #[test]
    fn map_applies_function() {
        let a = Matrix::from_rows(&[&[-1.0, 4.0]]);
        assert_eq!(a.map(f64::abs), Matrix::from_rows(&[&[1.0, 4.0]]));
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
            proptest::collection::vec(-100.0f64..100.0, rows * cols)
                .prop_map(move |data| Matrix::from_vec(rows, cols, data))
        }

        fn close(a: &Matrix, b: &Matrix, tol: f64) -> bool {
            a.shape() == b.shape()
                && a.as_slice().iter().zip(b.as_slice()).all(|(x, y)| (x - y).abs() < tol)
        }

        proptest! {
            /// (AB)C == A(BC) on random small matrices.
            #[test]
            fn matmul_is_associative(
                a in matrix(3, 4),
                b in matrix(4, 2),
                c in matrix(2, 5),
            ) {
                let left = a.matmul(&b).matmul(&c);
                let right = a.matmul(&b.matmul(&c));
                prop_assert!(close(&left, &right, 1e-6));
            }

            /// (AB)^T == B^T A^T.
            #[test]
            fn transpose_reverses_products(a in matrix(3, 4), b in matrix(4, 2)) {
                let lhs = a.matmul(&b).transpose();
                let rhs = b.transpose().matmul(&a.transpose());
                prop_assert!(close(&lhs, &rhs, 1e-9));
            }

            /// A(x + y) == Ax + Ay (matvec distributes).
            #[test]
            fn matvec_is_linear(
                a in matrix(4, 3),
                x in proptest::collection::vec(-50.0f64..50.0, 3),
                y in proptest::collection::vec(-50.0f64..50.0, 3),
            ) {
                let sum: Vec<f64> = x.iter().zip(&y).map(|(p, q)| p + q).collect();
                let lhs = a.matvec(&sum);
                let ax = a.matvec(&x);
                let ay = a.matvec(&y);
                for (l, (p, q)) in lhs.iter().zip(ax.iter().zip(&ay)) {
                    prop_assert!((l - (p + q)).abs() < 1e-8);
                }
            }

            /// A^T·B via the rank-1 row-sweep kernel equals the
            /// transpose-then-multiply reference on random matrices.
            #[test]
            fn matmul_transpose_a_matches_reference(a in matrix(5, 3), b in matrix(5, 4)) {
                let fast = a.matmul_transpose_a(&b);
                let reference = a.transpose().matmul(&b);
                prop_assert!(close(&fast, &reference, 1e-9));
            }

            /// A·B^T via the row-dot kernel equals the reference.
            #[test]
            fn matmul_transpose_b_matches_reference(a in matrix(3, 5), b in matrix(4, 5)) {
                let fast = a.matmul_transpose_b(&b);
                let reference = a.matmul(&b.transpose());
                prop_assert!(close(&fast, &reference, 1e-9));
            }

            /// add/sub round-trips to the original matrix.
            #[test]
            fn add_then_sub_is_identity(a in matrix(3, 3), b in matrix(3, 3)) {
                let back = a.add(&b).sub(&b);
                prop_assert!(close(&back, &a, 1e-9));
            }
        }
    }
}
