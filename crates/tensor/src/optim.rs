//! First-order optimizers over flat parameter slices.
//!
//! Every gradient-trained model in the workspace (online ARIMA, the
//! autoencoders, USAD, N-BEATS) exposes its parameters as one flat `[f64]`
//! buffer; the optimizer consumes an equally shaped gradient buffer. This
//! mirrors the paper's `grads := Σ Opt(∂L/∂θ)` formulation (§IV-B) where the
//! optimizer is an interchangeable component of the fine-tuning step.

/// A stateful first-order optimizer.
///
/// `step` applies one update `θ ← θ - f(grad)` in place. Implementations may
/// keep per-parameter state (momentum, Adam moments); the state vector is
/// lazily sized on first use so one optimizer instance can only ever serve
/// one parameter buffer.
pub trait Optimizer {
    /// Applies one in-place update to `params` given `grads`.
    ///
    /// # Panics
    /// Panics if `params.len() != grads.len()`, or if the same optimizer is
    /// reused on a buffer of a different length.
    fn step(&mut self, params: &mut [f64], grads: &[f64]);

    /// Resets all internal state (moments, step counters).
    fn reset(&mut self);
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
    /// Momentum factor in `[0, 1)`; `0.0` disables momentum.
    pub momentum: f64,
    velocity: Vec<f64>,
}

impl Sgd {
    /// Creates plain SGD with the given learning rate.
    pub fn new(lr: f64) -> Self {
        Self { lr, momentum: 0.0, velocity: Vec::new() }
    }

    /// Creates SGD with momentum.
    pub fn with_momentum(lr: f64, momentum: f64) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Self { lr, momentum, velocity: Vec::new() }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        if self.momentum == 0.0 {
            for (p, g) in params.iter_mut().zip(grads) {
                *p -= self.lr * g;
            }
            return;
        }
        if self.velocity.is_empty() {
            self.velocity = vec![0.0; params.len()];
        }
        assert_eq!(self.velocity.len(), params.len(), "optimizer reused on different buffer");
        for ((p, g), v) in params.iter_mut().zip(grads).zip(&mut self.velocity) {
            *v = self.momentum * *v + g;
            *p -= self.lr * *v;
        }
    }

    fn reset(&mut self) {
        self.velocity.clear();
    }
}

/// The Adam optimizer (Kingma & Ba, 2015) with bias-corrected moments.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate (α).
    pub lr: f64,
    /// Exponential decay for the first moment.
    pub beta1: f64,
    /// Exponential decay for the second moment.
    pub beta2: f64,
    /// Numerical-stability constant.
    pub eps: f64,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Creates Adam with the canonical β₁=0.9, β₂=0.999, ε=1e-8.
    pub fn new(lr: f64) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, m: Vec::new(), v: Vec::new(), t: 0 }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        if self.m.is_empty() {
            self.m = vec![0.0; params.len()];
            self.v = vec![0.0; params.len()];
        }
        assert_eq!(self.m.len(), params.len(), "optimizer reused on different buffer");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = self.m[i] / bc1;
            let v_hat = self.v[i] / bc2;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    fn reset(&mut self) {
        self.m.clear();
        self.v.clear();
        self.t = 0;
    }
}

/// The Online Newton Step (Hazan et al. 2007), the second-order online
/// optimizer used by Liu et al.'s online ARIMA.
///
/// Maintains `A_t = εI + Σ g g^T` and its inverse via the Sherman–Morrison
/// identity, updating `θ ← θ − (1/η) A_t⁻¹ g`. Memory and per-step cost are
/// `O(d²)`, which is fine for the small coefficient vectors it is meant for
/// (ARIMA's `γ ∈ R^{w−d−1}`) and intentionally not for neural nets.
#[derive(Debug, Clone)]
pub struct OnlineNewtonStep {
    /// Step-size parameter η (larger = smaller steps).
    pub eta: f64,
    /// Initialization constant: `A₀ = eps · I`.
    pub eps: f64,
    a_inv: crate::matrix::Matrix,
    initialized: bool,
}

impl OnlineNewtonStep {
    /// Creates an ONS optimizer with step parameter `eta` and
    /// initialization `A₀ = eps·I`.
    pub fn new(eta: f64, eps: f64) -> Self {
        assert!(eta > 0.0 && eps > 0.0, "eta and eps must be positive");
        Self { eta, eps, a_inv: crate::matrix::Matrix::zeros(0, 0), initialized: false }
    }
}

impl Optimizer for OnlineNewtonStep {
    fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        let d = params.len();
        if !self.initialized {
            self.a_inv = crate::matrix::Matrix::from_fn(d, d, |i, j| {
                if i == j {
                    1.0 / self.eps
                } else {
                    0.0
                }
            });
            self.initialized = true;
        }
        assert_eq!(self.a_inv.rows(), d, "optimizer reused on different buffer");
        // Sherman–Morrison: A⁻¹ ← A⁻¹ − (A⁻¹ g)(A⁻¹ g)ᵀ / (1 + gᵀ A⁻¹ g).
        let ag = self.a_inv.matvec(grads);
        let denom = 1.0 + grads.iter().zip(&ag).map(|(g, v)| g * v).sum::<f64>();
        if denom.abs() > f64::EPSILON {
            for i in 0..d {
                for j in 0..d {
                    self.a_inv[(i, j)] -= ag[i] * ag[j] / denom;
                }
            }
        }
        // θ ← θ − (1/η) A⁻¹ g (recomputed with the updated inverse, as in
        // the standard ONS formulation).
        let direction = self.a_inv.matvec(grads);
        for (p, dgi) in params.iter_mut().zip(&direction) {
            *p -= dgi / self.eta;
        }
    }

    fn reset(&mut self) {
        self.initialized = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(x) = (x - 3)^2 and returns the final x.
    fn minimize(opt: &mut dyn Optimizer, steps: usize) -> f64 {
        let mut x = [0.0_f64];
        for _ in 0..steps {
            let g = [2.0 * (x[0] - 3.0)];
            opt.step(&mut x, &g);
        }
        x[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        assert!((minimize(&mut opt, 200) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn sgd_momentum_converges_on_quadratic() {
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        assert!((minimize(&mut opt, 400) - 3.0).abs() < 1e-4);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        assert!((minimize(&mut opt, 500) - 3.0).abs() < 1e-3);
    }

    #[test]
    fn sgd_single_step_is_lr_times_grad() {
        let mut opt = Sgd::new(0.5);
        let mut p = [1.0, 2.0];
        opt.step(&mut p, &[2.0, -2.0]);
        assert_eq!(p, [0.0, 3.0]);
    }

    #[test]
    fn adam_first_step_magnitude_is_lr() {
        // With bias correction, the very first Adam step is ≈ lr * sign(g).
        let mut opt = Adam::new(0.01);
        let mut p = [0.0];
        opt.step(&mut p, &[123.0]);
        assert!((p[0] + 0.01).abs() < 1e-6, "got {}", p[0]);
    }

    #[test]
    fn reset_clears_state() {
        let mut opt = Adam::new(0.1);
        let mut p = [0.0];
        opt.step(&mut p, &[1.0]);
        opt.reset();
        // After reset the optimizer accepts a differently sized buffer.
        let mut q = [0.0, 0.0];
        opt.step(&mut q, &[1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "param/grad length mismatch")]
    fn mismatched_grads_panic() {
        let mut opt = Sgd::new(0.1);
        let mut p = [0.0];
        opt.step(&mut p, &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "optimizer reused on different buffer")]
    fn buffer_reuse_is_detected() {
        let mut opt = Adam::new(0.1);
        let mut p = [0.0];
        opt.step(&mut p, &[1.0]);
        let mut q = [0.0, 0.0];
        opt.step(&mut q, &[1.0, 1.0]);
    }

    #[test]
    fn ons_converges_on_quadratic() {
        let mut opt = OnlineNewtonStep::new(0.1, 0.01);
        assert!((minimize(&mut opt, 500) - 3.0).abs() < 1e-3);
    }

    #[test]
    fn ons_steps_are_descent_directions() {
        // On a convex quadratic every ONS update must move against the
        // gradient (A⁻¹ stays positive definite under Sherman–Morrison).
        let mut opt = OnlineNewtonStep::new(0.5, 0.1);
        let mut p = [4.0f64, -2.0];
        for _ in 0..100 {
            let g = [6.0 * (p[0] - 1.0), 2.0 * (p[1] + 1.0)];
            let before = p;
            opt.step(&mut p, &g);
            let delta = [p[0] - before[0], p[1] - before[1]];
            let along_grad = delta[0] * g[0] + delta[1] * g[1];
            assert!(along_grad <= 1e-12, "update must descend: {along_grad}");
        }
    }

    #[test]
    fn ons_step_sizes_decay() {
        // The accumulated A grows with every gradient, so ONS step lengths
        // shrink — the O(1/t) schedule that gives its regret bound.
        let mut opt = OnlineNewtonStep::new(0.5, 0.1);
        let mut x = [10.0f64];
        let mut steps = Vec::new();
        for _ in 0..30 {
            let g = [2.0 * (x[0] - 3.0)];
            let before = x[0];
            opt.step(&mut x, &g);
            steps.push((x[0] - before).abs());
        }
        assert!(steps[5] > steps[29], "early steps larger than late: {:?}", &steps[..6]);
    }

    #[test]
    fn ons_reset_allows_new_buffer() {
        let mut opt = OnlineNewtonStep::new(1.0, 1.0);
        let mut p = [0.0];
        opt.step(&mut p, &[1.0]);
        opt.reset();
        let mut q = [0.0, 0.0];
        opt.step(&mut q, &[1.0, 1.0]);
    }
}
