//! First-order optimizers over flat parameter slices.
//!
//! Every gradient-trained model in the workspace (online ARIMA, the
//! autoencoders, USAD, N-BEATS) exposes its parameters as one flat `[f64]`
//! buffer; the optimizer consumes an equally shaped gradient buffer. This
//! mirrors the paper's `grads := Σ Opt(∂L/∂θ)` formulation (§IV-B) where the
//! optimizer is an interchangeable component of the fine-tuning step.

/// A stateful first-order optimizer.
///
/// `step` applies one update `θ ← θ - f(grad)` in place. Implementations may
/// keep per-parameter state (momentum, Adam moments); the state vector is
/// lazily sized on first use so one optimizer instance can only ever serve
/// one parameter buffer.
pub trait Optimizer {
    /// Applies one in-place update to `params` given `grads`.
    ///
    /// # Panics
    /// Panics if `params.len() != grads.len()`, or if the same optimizer is
    /// reused on a buffer of a different length.
    fn step(&mut self, params: &mut [f64], grads: &[f64]);

    /// Resets all internal state (moments, step counters).
    fn reset(&mut self);

    /// Begins one *segmented* step over a logical parameter buffer of
    /// `total_len` scalars that is physically split across several slices
    /// (e.g. the weight matrix and bias vector of every layer of an MLP).
    ///
    /// Advances step counters once and (lazily, on first use) sizes any
    /// per-parameter state to `total_len`. Follow with one
    /// [`Optimizer::step_segment`] call per slice; together the segments
    /// must tile `0..total_len` for the per-parameter state to stay aligned.
    ///
    /// A full segmented step over slices that tile the buffer in order is
    /// **bitwise identical** to flattening the parameters and calling
    /// [`Optimizer::step`] once — this is what lets the NN training path
    /// update layer parameters in place with zero allocations instead of
    /// round-tripping through `params_flat()`/`set_params_flat()`.
    ///
    /// # Panics
    /// Panics if the optimizer was previously used on a buffer of a
    /// different total length.
    fn begin_step(&mut self, total_len: usize);

    /// Updates one parameter slice living at `offset` within the logical
    /// buffer declared by the preceding [`Optimizer::begin_step`].
    ///
    /// # Panics
    /// Panics if `params.len() != grads.len()` or the segment exceeds the
    /// declared buffer.
    fn step_segment(&mut self, offset: usize, params: &mut [f64], grads: &[f64]);
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
    /// Momentum factor in `[0, 1)`; `0.0` disables momentum.
    pub momentum: f64,
    velocity: Vec<f64>,
}

impl Sgd {
    /// Creates plain SGD with the given learning rate.
    pub fn new(lr: f64) -> Self {
        Self { lr, momentum: 0.0, velocity: Vec::new() }
    }

    /// Creates SGD with momentum.
    pub fn with_momentum(lr: f64, momentum: f64) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Self { lr, momentum, velocity: Vec::new() }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        self.begin_step(params.len());
        self.step_segment(0, params, grads);
    }

    fn reset(&mut self) {
        self.velocity.clear();
    }

    fn begin_step(&mut self, total_len: usize) {
        if self.momentum == 0.0 {
            return;
        }
        if self.velocity.is_empty() {
            self.velocity = vec![0.0; total_len];
        }
        assert_eq!(self.velocity.len(), total_len, "optimizer reused on different buffer");
    }

    fn step_segment(&mut self, offset: usize, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        if self.momentum == 0.0 {
            for (p, g) in params.iter_mut().zip(grads) {
                *p -= self.lr * g;
            }
            return;
        }
        let velocity = &mut self.velocity[offset..offset + params.len()];
        for ((p, g), v) in params.iter_mut().zip(grads).zip(velocity) {
            *v = self.momentum * *v + g;
            *p -= self.lr * *v;
        }
    }
}

/// The Adam optimizer (Kingma & Ba, 2015) with bias-corrected moments.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate (α).
    pub lr: f64,
    /// Exponential decay for the first moment.
    pub beta1: f64,
    /// Exponential decay for the second moment.
    pub beta2: f64,
    /// Numerical-stability constant.
    pub eps: f64,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
    /// Bias corrections `1 − βᵢ^t` of the step opened by `begin_step`.
    bc: (f64, f64),
}

impl Adam {
    /// Creates Adam with the canonical β₁=0.9, β₂=0.999, ε=1e-8.
    pub fn new(lr: f64) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
            bc: (1.0, 1.0),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        self.begin_step(params.len());
        self.step_segment(0, params, grads);
    }

    fn reset(&mut self) {
        self.m.clear();
        self.v.clear();
        self.t = 0;
    }

    fn begin_step(&mut self, total_len: usize) {
        if self.m.is_empty() {
            self.m = vec![0.0; total_len];
            self.v = vec![0.0; total_len];
        }
        assert_eq!(self.m.len(), total_len, "optimizer reused on different buffer");
        self.t += 1;
        self.bc =
            (1.0 - self.beta1.powi(self.t as i32), 1.0 - self.beta2.powi(self.t as i32));
    }

    fn step_segment(&mut self, offset: usize, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        let (bc1, bc2) = self.bc;
        let m = &mut self.m[offset..offset + params.len()];
        let v = &mut self.v[offset..offset + params.len()];
        for i in 0..params.len() {
            let g = grads[i];
            m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g;
            v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = m[i] / bc1;
            let v_hat = v[i] / bc2;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }
}

/// The Online Newton Step (Hazan et al. 2007), the second-order online
/// optimizer used by Liu et al.'s online ARIMA.
///
/// Maintains `A_t = εI + Σ g g^T` and its inverse via the Sherman–Morrison
/// identity, updating `θ ← θ − (1/η) A_t⁻¹ g`. Memory and per-step cost are
/// `O(d²)`, which is fine for the small coefficient vectors it is meant for
/// (ARIMA's `γ ∈ R^{w−d−1}`) and intentionally not for neural nets.
#[derive(Debug, Clone)]
pub struct OnlineNewtonStep {
    /// Step-size parameter η (larger = smaller steps).
    pub eta: f64,
    /// Initialization constant: `A₀ = eps · I`.
    pub eps: f64,
    a_inv: crate::matrix::Matrix,
    initialized: bool,
}

impl OnlineNewtonStep {
    /// Creates an ONS optimizer with step parameter `eta` and
    /// initialization `A₀ = eps·I`.
    pub fn new(eta: f64, eps: f64) -> Self {
        assert!(eta > 0.0 && eps > 0.0, "eta and eps must be positive");
        Self { eta, eps, a_inv: crate::matrix::Matrix::zeros(0, 0), initialized: false }
    }
}

impl Optimizer for OnlineNewtonStep {
    fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        let d = params.len();
        if !self.initialized {
            self.a_inv = crate::matrix::Matrix::from_fn(d, d, |i, j| {
                if i == j {
                    1.0 / self.eps
                } else {
                    0.0
                }
            });
            self.initialized = true;
        }
        assert_eq!(self.a_inv.rows(), d, "optimizer reused on different buffer");
        // Sherman–Morrison: A⁻¹ ← A⁻¹ − (A⁻¹ g)(A⁻¹ g)ᵀ / (1 + gᵀ A⁻¹ g).
        let ag = self.a_inv.matvec(grads);
        let denom = 1.0 + grads.iter().zip(&ag).map(|(g, v)| g * v).sum::<f64>();
        if denom.abs() > f64::EPSILON {
            for i in 0..d {
                for j in 0..d {
                    self.a_inv[(i, j)] -= ag[i] * ag[j] / denom;
                }
            }
        }
        // θ ← θ − (1/η) A⁻¹ g (recomputed with the updated inverse, as in
        // the standard ONS formulation).
        let direction = self.a_inv.matvec(grads);
        for (p, dgi) in params.iter_mut().zip(&direction) {
            *p -= dgi / self.eta;
        }
    }

    fn reset(&mut self) {
        self.initialized = false;
    }

    fn begin_step(&mut self, _total_len: usize) {
        // ONS updates a dense d×d inverse Hessian approximation; there is no
        // meaningful way to update it from disjoint parameter slices. The
        // small coefficient buffers it serves (online ARIMA) always step in
        // one piece, so a segmented step is a single full-buffer segment.
    }

    fn step_segment(&mut self, offset: usize, params: &mut [f64], grads: &[f64]) {
        assert_eq!(offset, 0, "OnlineNewtonStep supports only single-segment steps");
        self.step(params, grads);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(x) = (x - 3)^2 and returns the final x.
    fn minimize(opt: &mut dyn Optimizer, steps: usize) -> f64 {
        let mut x = [0.0_f64];
        for _ in 0..steps {
            let g = [2.0 * (x[0] - 3.0)];
            opt.step(&mut x, &g);
        }
        x[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        assert!((minimize(&mut opt, 200) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn sgd_momentum_converges_on_quadratic() {
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        assert!((minimize(&mut opt, 400) - 3.0).abs() < 1e-4);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        assert!((minimize(&mut opt, 500) - 3.0).abs() < 1e-3);
    }

    #[test]
    fn sgd_single_step_is_lr_times_grad() {
        let mut opt = Sgd::new(0.5);
        let mut p = [1.0, 2.0];
        opt.step(&mut p, &[2.0, -2.0]);
        assert_eq!(p, [0.0, 3.0]);
    }

    #[test]
    fn adam_first_step_magnitude_is_lr() {
        // With bias correction, the very first Adam step is ≈ lr * sign(g).
        let mut opt = Adam::new(0.01);
        let mut p = [0.0];
        opt.step(&mut p, &[123.0]);
        assert!((p[0] + 0.01).abs() < 1e-6, "got {}", p[0]);
    }

    #[test]
    fn reset_clears_state() {
        let mut opt = Adam::new(0.1);
        let mut p = [0.0];
        opt.step(&mut p, &[1.0]);
        opt.reset();
        // After reset the optimizer accepts a differently sized buffer.
        let mut q = [0.0, 0.0];
        opt.step(&mut q, &[1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "param/grad length mismatch")]
    fn mismatched_grads_panic() {
        let mut opt = Sgd::new(0.1);
        let mut p = [0.0];
        opt.step(&mut p, &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "optimizer reused on different buffer")]
    fn buffer_reuse_is_detected() {
        let mut opt = Adam::new(0.1);
        let mut p = [0.0];
        opt.step(&mut p, &[1.0]);
        let mut q = [0.0, 0.0];
        opt.step(&mut q, &[1.0, 1.0]);
    }

    /// Runs `steps` flat updates and `steps` segmented updates (split at
    /// `split`) from identical starting points and asserts the trajectories
    /// are bitwise identical — the contract that lets the NN training path
    /// step layer parameters in place without flattening.
    fn assert_segmented_matches_flat(
        mut flat_opt: impl Optimizer,
        mut seg_opt: impl Optimizer,
        split: usize,
        steps: usize,
    ) {
        let mut flat = [0.7, -1.3, 2.1, 0.4, -0.9];
        let mut seg = flat;
        for k in 0..steps {
            let grads: Vec<f64> =
                flat.iter().enumerate().map(|(i, p)| 2.0 * p + (i + k) as f64 * 0.01).collect();
            flat_opt.step(&mut flat, &grads);
            // Gradients for the segmented twin must come from its own params.
            let seg_grads: Vec<f64> =
                seg.iter().enumerate().map(|(i, p)| 2.0 * p + (i + k) as f64 * 0.01).collect();
            seg_opt.begin_step(seg.len());
            let (pa, pb) = seg.split_at_mut(split);
            let (ga, gb) = seg_grads.split_at(split);
            seg_opt.step_segment(0, pa, ga);
            seg_opt.step_segment(split, pb, gb);
            assert_eq!(
                flat.map(f64::to_bits),
                seg.map(f64::to_bits),
                "diverged at step {k}"
            );
        }
    }

    #[test]
    fn adam_segmented_step_is_bitwise_flat_step() {
        assert_segmented_matches_flat(Adam::new(0.05), Adam::new(0.05), 2, 25);
    }

    #[test]
    fn sgd_momentum_segmented_step_is_bitwise_flat_step() {
        assert_segmented_matches_flat(
            Sgd::with_momentum(0.05, 0.9),
            Sgd::with_momentum(0.05, 0.9),
            3,
            25,
        );
    }

    #[test]
    fn sgd_plain_segmented_step_is_bitwise_flat_step() {
        assert_segmented_matches_flat(Sgd::new(0.1), Sgd::new(0.1), 1, 10);
    }

    #[test]
    #[should_panic(expected = "single-segment")]
    fn ons_rejects_partial_segments() {
        let mut opt = OnlineNewtonStep::new(0.5, 0.1);
        opt.begin_step(2);
        let mut p = [0.0];
        opt.step_segment(1, &mut p, &[1.0]);
    }

    #[test]
    fn ons_converges_on_quadratic() {
        let mut opt = OnlineNewtonStep::new(0.1, 0.01);
        assert!((minimize(&mut opt, 500) - 3.0).abs() < 1e-3);
    }

    #[test]
    fn ons_steps_are_descent_directions() {
        // On a convex quadratic every ONS update must move against the
        // gradient (A⁻¹ stays positive definite under Sherman–Morrison).
        let mut opt = OnlineNewtonStep::new(0.5, 0.1);
        let mut p = [4.0f64, -2.0];
        for _ in 0..100 {
            let g = [6.0 * (p[0] - 1.0), 2.0 * (p[1] + 1.0)];
            let before = p;
            opt.step(&mut p, &g);
            let delta = [p[0] - before[0], p[1] - before[1]];
            let along_grad = delta[0] * g[0] + delta[1] * g[1];
            assert!(along_grad <= 1e-12, "update must descend: {along_grad}");
        }
    }

    #[test]
    fn ons_step_sizes_decay() {
        // The accumulated A grows with every gradient, so ONS step lengths
        // shrink — the O(1/t) schedule that gives its regret bound.
        let mut opt = OnlineNewtonStep::new(0.5, 0.1);
        let mut x = [10.0f64];
        let mut steps = Vec::new();
        for _ in 0..30 {
            let g = [2.0 * (x[0] - 3.0)];
            let before = x[0];
            opt.step(&mut x, &g);
            steps.push((x[0] - before).abs());
        }
        assert!(steps[5] > steps[29], "early steps larger than late: {:?}", &steps[..6]);
    }

    #[test]
    fn ons_reset_allows_new_buffer() {
        let mut opt = OnlineNewtonStep::new(1.0, 1.0);
        let mut p = [0.0];
        opt.step(&mut p, &[1.0]);
        opt.reset();
        let mut q = [0.0, 0.0];
        opt.step(&mut q, &[1.0, 1.0]);
    }
}
