//! Free-standing vector kernels, generic over element precision.
//!
//! These are the primitives behind every nonconformity measure in the
//! framework: the cosine-similarity score (`1 - cos(x, x̂)`, paper §IV-D)
//! reduces to [`dot`] and [`l2_norm`], and the μ/σ-Change drift detector
//! compares mean feature vectors with [`sub`] + norms.
//!
//! Unlike the [`Matrix`](crate::Matrix) GEMM kernels, these reductions stay
//! deliberately *naive* (single sequential accumulator): every f64 cosine
//! nonconformity in the committed evaluation artifacts was produced by this
//! exact operation order, so a laned rewrite here would silently change
//! every anomaly score. The f32 instantiations inherit the same order.

use crate::scalar::Scalar;

/// Dot product of two equal-length slices (sequential accumulation).
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn dot<T: Scalar>(a: &[T], b: &[T]) -> T {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).fold(T::ZERO, |acc, (&x, &y)| acc + x * y)
}

/// Euclidean norm.
#[inline]
pub fn l2_norm<T: Scalar>(a: &[T]) -> T {
    dot(a, a).sqrt()
}

/// Maximum absolute value (supremum norm).
#[inline]
pub fn linf_norm<T: Scalar>(a: &[T]) -> T {
    a.iter().fold(T::ZERO, |m, v| m.maxv(v.abs()))
}

/// Arithmetic mean; `0.0` for an empty slice.
#[inline]
pub fn mean<T: Scalar>(a: &[T]) -> T {
    if a.is_empty() {
        T::ZERO
    } else {
        a.iter().fold(T::ZERO, |acc, &v| acc + v) / T::from_usize(a.len())
    }
}

/// Element-wise difference `a - b` as a new vector.
pub fn sub<T: Scalar>(a: &[T], b: &[T]) -> Vec<T> {
    assert_eq!(a.len(), b.len(), "sub length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x - y).collect()
}

/// In-place scaling `a *= s`.
pub fn scale<T: Scalar>(a: &mut [T], s: T) {
    for v in a {
        *v *= s;
    }
}

/// In-place `y += alpha * x` (the BLAS `axpy` kernel).
pub fn axpy<T: Scalar>(alpha: T, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Cosine similarity between two vectors.
///
/// Returns `0.0` when either vector has (near-)zero norm: a zero vector
/// carries no directional information, and treating it as orthogonal gives
/// the conservative nonconformity `a_t = 1 - 0 = 1` ("maximally strange")
/// rather than a NaN that would poison downstream anomaly scores. Constant
/// all-zero channels do occur in server-metrics corpora, so this branch is
/// exercised in practice.
pub fn cosine_similarity<T: Scalar>(a: &[T], b: &[T]) -> T {
    assert_eq!(a.len(), b.len(), "cosine length mismatch");
    let na = l2_norm(a);
    let nb = l2_norm(b);
    if na <= T::EPSILON || nb <= T::EPSILON {
        return T::ZERO;
    }
    (dot(a, b) / (na * nb)).clampv(-T::ONE, T::ONE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_orthogonal_is_zero() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 5.0]), 0.0);
    }

    #[test]
    fn dot_f32_orthogonal_is_zero() {
        assert_eq!(dot(&[1.0f32, 0.0], &[0.0, 5.0]), 0.0);
    }

    #[test]
    fn l2_norm_pythagoras() {
        assert!((l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn linf_norm_picks_max_abs() {
        assert_eq!(linf_norm(&[-7.0, 2.0, 6.5]), 7.0);
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean::<f64>(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn sub_and_axpy() {
        assert_eq!(sub(&[3.0, 1.0], &[1.0, 1.0]), vec![2.0, 0.0]);
        let mut y = vec![1.0, 2.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, 0.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut a = vec![1.0, -2.0];
        scale(&mut a, -3.0);
        assert_eq!(a, vec![-3.0, 6.0]);
    }

    #[test]
    fn cosine_identical_vectors_is_one() {
        let v = [0.3, -1.2, 2.0];
        assert!((cosine_similarity(&v, &v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_opposite_vectors_is_minus_one() {
        let v = [1.0, 2.0];
        let w = [-2.0, -4.0];
        assert!((cosine_similarity(&v, &w) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_zero_vector_is_zero() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn cosine_f32_matches_f64_within_tolerance() {
        let a = [1.0f64, 3.0, -2.0, 0.25];
        let b = [0.5f64, -1.0, 2.0, 4.0];
        let af: Vec<f32> = a.iter().map(|&v| v as f32).collect();
        let bf: Vec<f32> = b.iter().map(|&v| v as f32).collect();
        let wide = cosine_similarity(&a, &b);
        let narrow = cosine_similarity(&af, &bf) as f64;
        assert!((wide - narrow).abs() < 1e-6);
    }

    #[test]
    fn cosine_is_scale_invariant() {
        let a = [1.0, 3.0, -2.0];
        let b = [0.5, -1.0, 2.0];
        let scaled: Vec<f64> = a.iter().map(|v| v * 17.0).collect();
        assert!((cosine_similarity(&a, &b) - cosine_similarity(&scaled, &b)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dot length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
