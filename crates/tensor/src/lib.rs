//! # sad-tensor
//!
//! Minimal dense linear-algebra substrate for the `streamad` workspace.
//!
//! The streaming anomaly detection framework reproduced here needs exactly
//! four numerical capabilities and nothing more:
//!
//! * a dense row-major [`Matrix`] with the usual algebra ([`matrix`]),
//! * direct solvers — Gaussian elimination with partial pivoting and
//!   least-squares via the normal equations ([`mod@solve`]) — used by the
//!   vector-autoregressive model,
//! * free-standing vector kernels (dot products, norms, cosine similarity)
//!   used by every nonconformity measure ([`vector`]),
//! * first-order optimizers (SGD with momentum, Adam) operating on flat
//!   parameter slices ([`optim`]), shared by all gradient-trained models.
//!
//! Everything is `f64`; streaming anomaly detection workloads are tiny by
//! BLAS standards (windows of a few hundred elements) and the benchmarks in
//! `sad-bench` confirm these kernels are never the bottleneck.

pub mod matrix;
pub mod optim;
pub mod solve;
pub mod vector;

pub use matrix::Matrix;
pub use optim::{Adam, OnlineNewtonStep, Optimizer, Sgd};
pub use solve::{invert, least_squares, solve, SolveError};
pub use vector::{axpy, cosine_similarity, dot, l2_norm, linf_norm, mean, scale, sub};
