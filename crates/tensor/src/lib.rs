//! # sad-tensor
//!
//! Minimal dense linear-algebra substrate for the `streamad` workspace.
//!
//! The streaming anomaly detection framework reproduced here needs exactly
//! four numerical capabilities and nothing more:
//!
//! * a dense row-major [`Matrix<T>`] with the usual algebra ([`matrix`]),
//!   generic over element precision via the sealed [`Scalar`] trait,
//! * direct solvers — Gaussian elimination with partial pivoting and
//!   least-squares via the normal equations ([`mod@solve`]) — used by the
//!   vector-autoregressive model,
//! * free-standing vector kernels (dot products, norms, cosine similarity)
//!   used by every nonconformity measure ([`vector`]),
//! * first-order optimizers (SGD with momentum, Adam) operating on flat
//!   parameter slices ([`optim`]), shared by all gradient-trained models.
//!
//! ## Precision
//!
//! Training, fine-tuning, the drift detectors, and the offline Table III
//! grid all run `f64` with **pinned kernel operation orders** — the basis of
//! every bitwise parity proof in the workspace. `Matrix` written without a
//! parameter still means `Matrix<f64>`, and the f64 kernels are
//! bit-for-bit the kernels of previous releases (asserted against frozen
//! references in `tests/precision_parity.rs`). `Matrix<f32>` exists for
//! *inference-only* consumers — the fleet serving path converts trained
//! weights down once per training event and streams twice the elements per
//! cache line through the same tiled kernels ([`scalar`] documents the
//! per-precision lane layout and the optional `simd` AVX2 variants).
//!
//! Streaming anomaly detection workloads are tiny by BLAS standards
//! (windows of a few hundred elements); `sad-bench`'s `tensor_kernels`
//! binary reports the measured GFLOP/s / GB/s per precision.

pub mod matrix;
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
pub mod microkernel;
pub mod optim;
pub mod scalar;
pub mod solve;
pub mod vector;

pub use matrix::Matrix;
pub use optim::{Adam, OnlineNewtonStep, Optimizer, Sgd};
pub use scalar::{
    axpy_tiled, dot_pinned_f32, dot_pinned_f64, rank4_update_tiled, simd_enabled,
    sq_dist_accum_tiled, Scalar,
};
pub use solve::{invert, least_squares, solve, SolveError};
pub use vector::{axpy, cosine_similarity, dot, l2_norm, linf_norm, mean, scale, sub};
