//! Precision parity for the generic tensor substrate.
//!
//! Two families of guarantees, proven against *frozen reference
//! implementations* written in the pre-tiling per-element order:
//!
//! 1. **f64 is bitwise pinned.** Every tiled/blocked kernel — and, under
//!    `--features simd`, every AVX2 variant behind it — must reproduce the
//!    legacy scalar semantics bit for bit: the 4-lane pinned dot
//!    reduction, ascending-`k` `+=` accumulation, and the `a == 0.0`
//!    skip (which processes NaN but skips `-0.0`, exactly as before).
//!    Inputs deliberately include exact zeros, negative zeros and
//!    denormal-ish magnitudes.
//! 2. **f32 tracks f64 within stated tolerance.** The same kernels
//!    instantiated at `f32` agree with the f64 result to f32 relative
//!    accuracy — the contract the inference-plan serving path relies on.
//!
//! Shapes sweep every tile boundary: the 4-wide k-block and 8-wide lane
//! tiles at size−1 / size / size+1, plus degenerate 1×N and N×1.

use proptest::prelude::*;
use sad_tensor::{
    axpy_tiled, dot_pinned_f32, dot_pinned_f64, rank4_update_tiled, sq_dist_accum_tiled, Matrix,
    Scalar,
};

// ---------------------------------------------------------------------------
// Frozen legacy references (pre-tiling semantics, f64 only).
// ---------------------------------------------------------------------------

/// Legacy `matmul`: ikj loops, ascending-`k` `+=` per element, skipping
/// `a[i][k] == 0.0` rows of the inner update.
fn ref_matmul(a: &Matrix<f64>, b: &Matrix<f64>) -> Matrix<f64> {
    let (m, kk) = a.shape();
    let n = b.cols();
    let mut out = Matrix::<f64>::zeros(m, n);
    for i in 0..m {
        for k in 0..kk {
            let av = a.row(i)[k];
            if av == 0.0 {
                continue;
            }
            for j in 0..n {
                out.row_mut(i)[j] += av * b.row(k)[j];
            }
        }
    }
    out
}

/// Legacy `matmul_transpose_a_acc`: `out[k][j] += a[i][k] · rhs[i][j]`,
/// ascending `i`, skipping `a[i][k] == 0.0`.
fn ref_matmul_transpose_a_acc(a: &Matrix<f64>, rhs: &Matrix<f64>, out: &mut Matrix<f64>) {
    let (m, kk) = a.shape();
    let n = rhs.cols();
    for i in 0..m {
        for k in 0..kk {
            let av = a.row(i)[k];
            if av == 0.0 {
                continue;
            }
            for j in 0..n {
                out.row_mut(k)[j] += av * rhs.row(i)[j];
            }
        }
    }
}

/// Legacy `matmul_transpose_b`: one pinned 4-lane dot per output element.
fn ref_matmul_transpose_b(a: &Matrix<f64>, rhs: &Matrix<f64>) -> Matrix<f64> {
    let m = a.rows();
    let n = rhs.rows();
    let mut out = Matrix::<f64>::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            out.row_mut(i)[j] = dot_pinned_f64(a.row(i), rhs.row(j));
        }
    }
    out
}

/// Legacy `matvec`: pinned dot per row.
fn ref_matvec(a: &Matrix<f64>, v: &[f64]) -> Vec<f64> {
    (0..a.rows()).map(|i| dot_pinned_f64(a.row(i), v)).collect()
}

/// Legacy `matvec_t`: `out[j] += v[i] · a[i][j]`, ascending `i`, skipping
/// `v[i] == 0.0`.
fn ref_matvec_t(a: &Matrix<f64>, v: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; a.cols()];
    for (i, &vi) in v.iter().enumerate().take(a.rows()) {
        if vi == 0.0 {
            continue;
        }
        for (o, &x) in out.iter_mut().zip(a.row(i)) {
            *o += vi * x;
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Deterministic fills. The LCG stream plants exact 0.0 / -0.0 every few
// elements so the zero-skip fast paths and all-nonzero block path both get
// exercised at every shape.
// ---------------------------------------------------------------------------

fn lcg(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *state >> 33
}

fn fill_value(state: &mut u64) -> f64 {
    let r = lcg(state);
    match r % 8 {
        0 => 0.0,
        1 => -0.0,
        _ => (r % 2000) as f64 / 211.0 - 4.5,
    }
}

fn matrix(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    Matrix::from_fn(rows, cols, |_, _| fill_value(&mut state))
}

fn vector(len: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0xd1b54a32d192ed03).wrapping_add(3);
    (0..len).map(|_| fill_value(&mut state)).collect()
}

fn assert_bits_eq(got: &Matrix<f64>, want: &Matrix<f64>, ctx: &str) {
    assert_eq!(got.shape(), want.shape(), "{ctx}: shape");
    for (i, (g, w)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "{ctx}: element {i}: {g} vs {w}");
    }
}

fn assert_vec_bits_eq(got: &[f64], want: &[f64], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "{ctx}: element {i}: {g} vs {w}");
    }
}

/// Dimensions straddling every tile boundary: the 4-wide k block, the
/// 8-wide lane tile, and the 2-row × 4-column GEMM panel of the `simd`
/// micro-kernel at −1/exact/+1 (2 and 6 pin the `n % 4 == 2` column
/// remainder; odd values pin the trailing-row path), plus 1 (degenerate
/// row/column shapes arise from the cross product).
const DIMS: &[usize] = &[1, 2, 3, 4, 5, 6, 7, 8, 9, 16, 17];

// ---------------------------------------------------------------------------
// 1. Bitwise f64 parity, exhaustive over tile-boundary shapes.
// ---------------------------------------------------------------------------

#[test]
fn matmul_matches_legacy_bitwise_at_tile_boundaries() {
    for &m in DIMS {
        for &k in DIMS {
            for &n in DIMS {
                let a = matrix(m, k, (m * 1000 + k * 10 + n) as u64);
                let b = matrix(k, n, (n * 777 + k) as u64);
                let ctx = format!("matmul {m}x{k}x{n}");
                assert_bits_eq(&a.matmul(&b), &ref_matmul(&a, &b), &ctx);
                let mut out = Matrix::<f64>::filled(m, n, 3.25);
                a.matmul_into(&b, &mut out);
                assert_bits_eq(&out, &ref_matmul(&a, &b), &format!("{ctx} (into)"));
            }
        }
    }
}

#[test]
fn matmul_transpose_a_matches_legacy_bitwise_at_tile_boundaries() {
    for &m in DIMS {
        for &k in DIMS {
            for &n in DIMS {
                let a = matrix(m, k, (m * 31 + k * 7 + n) as u64);
                let rhs = matrix(m, n, (m + n * 13) as u64);
                let ctx = format!("matmul_transpose_a {m}x{k}x{n}");
                let mut got = matrix(k, n, 99).scale(0.5);
                let mut want = got.clone();
                a.matmul_transpose_a_acc(&rhs, &mut got);
                ref_matmul_transpose_a_acc(&a, &rhs, &mut want);
                assert_bits_eq(&got, &want, &format!("{ctx} (acc)"));
                let mut zero_acc = Matrix::<f64>::zeros(k, n);
                ref_matmul_transpose_a_acc(&a, &rhs, &mut zero_acc);
                assert_bits_eq(&a.matmul_transpose_a(&rhs), &zero_acc, &ctx);
            }
        }
    }
}

#[test]
fn matmul_transpose_b_matches_legacy_bitwise_at_tile_boundaries() {
    for &m in DIMS {
        for &k in DIMS {
            for &n in DIMS {
                let a = matrix(m, k, (m * 5 + k + n * 11) as u64);
                let rhs = matrix(n, k, (k * 3 + n) as u64);
                let ctx = format!("matmul_transpose_b {m}x{k}x{n}");
                let want = ref_matmul_transpose_b(&a, &rhs);
                assert_bits_eq(&a.matmul_transpose_b(&rhs), &want, &ctx);
                let mut out = Matrix::<f64>::filled(m, n, -7.5);
                a.matmul_transpose_b_into(&rhs, &mut out);
                assert_bits_eq(&out, &want, &format!("{ctx} (into)"));
            }
        }
    }
}

#[test]
fn matvec_kernels_match_legacy_bitwise_at_tile_boundaries() {
    for &m in DIMS {
        for &n in DIMS {
            let a = matrix(m, n, (m * 100 + n) as u64);
            let v = vector(n, (m + n) as u64);
            assert_vec_bits_eq(&a.matvec(&v), &ref_matvec(&a, &v), &format!("matvec {m}x{n}"));
            let vt = vector(m, (m * 2 + n) as u64);
            assert_vec_bits_eq(
                &a.matvec_t(&vt),
                &ref_matvec_t(&a, &vt),
                &format!("matvec_t {m}x{n}"),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// 1b. The f32 GEMM is pinned too: whatever dispatch leg runs, every output
//     element must be exactly one 8-lane `dot_pinned_f32` — the contract
//     that makes `InferPlan` snapshots reproducible across builds. (The
//     f64 suite above proves the same for the 4-lane layout.)
// ---------------------------------------------------------------------------

fn matrix_f32(rows: usize, cols: usize, seed: u64) -> Matrix<f32> {
    Matrix::<f32>::from_precision(&matrix(rows, cols, seed))
}

fn assert_bits_eq_f32(got: &Matrix<f32>, want: &Matrix<f32>, ctx: &str) {
    assert_eq!(got.shape(), want.shape(), "{ctx}: shape");
    for (i, (g, w)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "{ctx}: element {i}: {g} vs {w}");
    }
}

/// Frozen f32 `matmul_transpose_b`: one pinned 8-lane dot per element.
fn ref_matmul_transpose_b_f32(a: &Matrix<f32>, rhs: &Matrix<f32>) -> Matrix<f32> {
    let mut out = Matrix::<f32>::zeros(a.rows(), rhs.rows());
    for i in 0..a.rows() {
        for j in 0..rhs.rows() {
            out.row_mut(i)[j] = dot_pinned_f32(a.row(i), rhs.row(j));
        }
    }
    out
}

#[test]
fn f32_matmul_transpose_b_is_pinned_8_lane_at_tile_boundaries() {
    for &m in DIMS {
        for &k in DIMS {
            for &n in DIMS {
                let a = matrix_f32(m, k, (m * 5 + k + n * 11) as u64);
                let rhs = matrix_f32(n, k, (k * 3 + n) as u64);
                let want = ref_matmul_transpose_b_f32(&a, &rhs);
                let mut out = Matrix::<f32>::filled(m, n, -7.5);
                a.matmul_transpose_b_into(&rhs, &mut out);
                assert_bits_eq_f32(&out, &want, &format!("f32 gemm_tb {m}x{k}x{n}"));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// 1c. Dispatching element-wise kernels (`Scalar::axpy` / `rank4_update` /
//     `sq_dist_accum`) are bitwise-equal to the frozen portable tiles on
//     whatever leg this build runs.
// ---------------------------------------------------------------------------

#[test]
fn dispatched_axpy_and_rank4_match_portable_tiles_bitwise() {
    for &n in DIMS {
        for &len in &[1usize, 4, 7, 8, 9, 31, 64, 129] {
            let seed = (n * 1000 + len) as u64;
            let x = vector(len, seed);
            let alpha = fill_value(&mut { seed.wrapping_mul(77).wrapping_add(5) });
            let mut got = vector(len, seed ^ 0x5a5a);
            let mut want = got.clone();
            f64::axpy(alpha, &x, &mut got);
            axpy_tiled(alpha, &x, &mut want);
            assert_vec_bits_eq(&got, &want, &format!("axpy len={len}"));

            let r: Vec<Vec<f64>> = (0..4).map(|s| vector(len, seed + 100 + s as u64)).collect();
            let coeffs = [alpha, -alpha, 0.0, fill_value(&mut { seed ^ 0x33 })];
            let mut got4 = vector(len, seed ^ 0xbeef);
            let mut want4 = got4.clone();
            f64::rank4_update(coeffs, &r[0], &r[1], &r[2], &r[3], &mut got4);
            rank4_update_tiled(coeffs, &r[0], &r[1], &r[2], &r[3], &mut want4);
            assert_vec_bits_eq(&got4, &want4, &format!("rank4 len={len}"));
        }
    }
}

#[test]
fn dispatched_sq_dist_sweep_matches_portable_and_sequential_sums_bitwise() {
    for &dim in DIMS {
        for &m in &[1usize, 2, 5, 8, 9, 16, 33, 100] {
            // Transposed snapshot: feature j of reference c at refs[j][c].
            let refs: Vec<Vec<f64>> = (0..dim).map(|j| vector(m, (dim * 31 + j) as u64)).collect();
            let x = vector(dim, (dim + m * 7) as u64);
            let mut got = vec![0.0; m];
            let mut want = vec![0.0; m];
            for (j, &xj) in x.iter().enumerate() {
                f64::sq_dist_accum(xj, &refs[j], &mut got);
                sq_dist_accum_tiled(xj, &refs[j], &mut want);
            }
            assert_vec_bits_eq(&got, &want, &format!("sq_dist dim={dim} m={m}"));
            // The sweep reproduces the legacy per-point sequential sum.
            for c in 0..m {
                let seq: f64 =
                    x.iter().enumerate().map(|(j, &xj)| (xj - refs[j][c]) * (xj - refs[j][c])).sum();
                assert_eq!(
                    got[c].to_bits(),
                    seq.to_bits(),
                    "sq_dist dim={dim} m={m} ref {c}: sweep {} vs sequential {seq}",
                    got[c],
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// 2. Property tests: random shapes and values (with planted 0.0 / -0.0),
//    f64 bitwise vs reference and f32 within tolerance of f64.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn prop_matmul_is_bitwise_legacy(
        m in 1usize..=12,
        k in 1usize..=12,
        n in 1usize..=12,
        seed in 0u64..100000,
    ) {
        // `matrix` plants exact 0.0 / -0.0 in ~1/4 of entries, so the
        // zero-skip and all-nonzero block paths both arise at random.
        let a = matrix(m, k, seed);
        let b = matrix(k, n, seed ^ 0xabcdef);
        assert_bits_eq(&a.matmul(&b), &ref_matmul(&a, &b), "prop matmul");
        let rhs = matrix(n, k, seed ^ 0x1234);
        assert_bits_eq(
            &a.matmul_transpose_b(&rhs),
            &ref_matmul_transpose_b(&a, &rhs),
            "prop matmul_transpose_b",
        );
        let lhs = matrix(m, n, seed ^ 0x77);
        let mut got = matrix(k, n, seed ^ 0x99);
        let mut want = got.clone();
        a.matmul_transpose_a_acc(&lhs, &mut got);
        ref_matmul_transpose_a_acc(&a, &lhs, &mut want);
        assert_bits_eq(&got, &want, "prop matmul_transpose_a_acc");
    }

    /// Whatever dispatch leg runs, the f32 serving GEMM stays bitwise on
    /// the pinned 8-lane layout at random shapes too.
    #[test]
    fn prop_f32_gemm_is_bitwise_pinned(
        m in 1usize..=12,
        k in 1usize..=12,
        n in 1usize..=12,
        seed in 0u64..100000,
    ) {
        let a = matrix_f32(m, k, seed.wrapping_add(3));
        let rhs = matrix_f32(n, k, seed.wrapping_add(41));
        let mut out = Matrix::<f32>::filled(m, n, 2.5);
        a.matmul_transpose_b_into(&rhs, &mut out);
        assert_bits_eq_f32(&out, &ref_matmul_transpose_b_f32(&a, &rhs), "prop f32 gemm_tb");
    }

    /// The f32 instantiation of the serving GEMM (`matmul_transpose_b`)
    /// agrees with f64 within f32 relative accuracy — the tolerance the
    /// inference plans are allowed to rely on.
    #[test]
    fn prop_f32_gemm_within_tolerance_of_f64(
        m in 1usize..=12,
        k in 1usize..=12,
        n in 1usize..=12,
        seed in 0u64..100000,
    ) {
        let a64 = matrix(m, k, seed.wrapping_add(17));
        let b64 = matrix(n, k, seed.wrapping_add(91));
        let a32 = Matrix::<f32>::from_precision(&a64);
        let b32 = Matrix::<f32>::from_precision(&b64);
        let want = a64.matmul_transpose_b(&b64);
        let got = a32.matmul_transpose_b(&b32);
        // Row dot over ≤12 products of magnitude ≤25: f32 rounding keeps
        // the error well under 1e-3 absolute + relative.
        for i in 0..m {
            for j in 0..n {
                let w = want.row(i)[j];
                let g = got.row(i)[j] as f64;
                prop_assert!(
                    (g - w).abs() <= 1e-3 * w.abs().max(1.0),
                    "({}, {}): f32 {} vs f64 {}", i, j, g, w,
                );
            }
        }
    }

    #[test]
    fn prop_f32_matvec_within_tolerance_of_f64(
        m in 1usize..=16,
        n in 1usize..=16,
        seed in 0u64..100000,
    ) {
        let a64 = matrix(m, n, seed);
        let v64 = vector(n, seed ^ 5);
        let a32 = Matrix::<f32>::from_precision(&a64);
        let v32: Vec<f32> = v64.iter().map(|&v| v as f32).collect();
        for (g, w) in a32.matvec(&v32).iter().zip(a64.matvec(&v64)) {
            prop_assert!(
                (*g as f64 - w).abs() <= 1e-3 * w.abs().max(1.0),
                "matvec f32 {} vs f64 {}", g, w,
            );
        }
    }
}

// ---------------------------------------------------------------------------
// 3. Precision round-trip and f32 tile-boundary smoke.
// ---------------------------------------------------------------------------

/// f32 kernels at every tile-boundary shape produce finite outputs that
/// match a naive f32 reference within rounding (regression net for the
/// lane tails, independent of the f64 bitwise suite).
#[test]
fn f32_matmul_transpose_b_matches_naive_f32_closely() {
    for &m in DIMS {
        for &k in DIMS {
            let a = Matrix::<f32>::from_precision(&matrix(m, k, (m + k * 3) as u64));
            let rhs = Matrix::<f32>::from_precision(&matrix(m, k, (m * 7 + k) as u64));
            let got = a.matmul_transpose_b(&rhs);
            for i in 0..m {
                for j in 0..m {
                    let naive: f64 = a
                        .row(i)
                        .iter()
                        .zip(rhs.row(j))
                        .map(|(&x, &y)| x as f64 * y as f64)
                        .sum();
                    let g = got.row(i)[j] as f64;
                    assert!(
                        (g - naive).abs() <= 1e-4 * naive.abs().max(1.0),
                        "{m}x{k} ({i},{j}): {g} vs naive {naive}",
                    );
                }
            }
        }
    }
}
