//! Property tests for the shard-local-merge model: no observation is lost
//! or double-counted when K shard registries fold into one accumulator.

use proptest::collection;
use proptest::prelude::*;
use sad_obs::{CounterId, GaugeId, Histogram, HistogramId, Registry};

/// Builds one shard's registry with the shared schema, returning the
/// recording handles alongside it.
fn shard_registry() -> (Registry, CounterId, GaugeId, HistogramId) {
    let mut reg = Registry::new();
    let c = reg.register_counter("steps_total", "steps");
    let g = reg.register_gauge("queue_high_water", "depth");
    let h = reg.register_histogram("scores", "a_t", Histogram::linear(0.0, 1.0, 16));
    (reg, c, g, h)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Recorded-count == observed-count across a merge of shard-local
    /// registries: the merged histogram's total count and bucket-sum both
    /// equal the number of observations recorded across all shards, the
    /// merged counter is the sum of per-shard counters, and the merged
    /// gauge is the per-shard maximum (high-water semantics).
    #[test]
    fn merge_preserves_every_observation(
        shards in collection::vec(collection::vec(0.0f64..1.5f64, 0..200), 1..6)
    ) {
        let (mut merged, ..) = shard_registry();
        let mut total_obs = 0u64;
        let mut max_gauge = 0.0f64;
        let mut sum = 0.0f64;
        for values in &shards {
            let (mut reg, c, g, h) = shard_registry();
            for &v in values {
                reg.inc(c, 1);
                reg.gauge_max(g, v * 10.0);
                reg.record(h, v);
                total_obs += 1;
                sum += v;
                if v * 10.0 > max_gauge {
                    max_gauge = v * 10.0;
                }
            }
            merged.merge_from(&reg);
        }
        let h = merged.histogram_by_name("scores").unwrap();
        prop_assert_eq!(h.count(), total_obs);
        prop_assert_eq!(h.counts().iter().sum::<u64>(), total_obs);
        prop_assert_eq!(merged.counter_by_name("steps_total"), Some(total_obs));
        let g = merged.gauge_by_name("queue_high_water").unwrap();
        prop_assert!((g - max_gauge).abs() < 1e-12);
        prop_assert!((h.sum() - sum).abs() <= 1e-9 * (1.0 + sum.abs()));
    }

    /// Merging shard-by-shard equals merging in one different order — the
    /// fold is order-insensitive for counters and histogram counts.
    #[test]
    fn merge_is_order_insensitive(
        a in collection::vec(0.0f64..1.0f64, 0..100),
        b in collection::vec(0.0f64..1.0f64, 0..100),
    ) {
        let fill = |values: &[f64]| {
            let (mut reg, c, g, h) = shard_registry();
            for &v in values {
                reg.inc(c, 1);
                reg.gauge_max(g, v);
                reg.record(h, v);
            }
            reg
        };
        let (ra, rb) = (fill(&a), fill(&b));
        let mut ab = ra.clone();
        ab.merge_from(&rb);
        let mut ba = rb.clone();
        ba.merge_from(&ra);
        prop_assert_eq!(ab.counter_by_name("steps_total"), ba.counter_by_name("steps_total"));
        prop_assert_eq!(ab.gauge_by_name("queue_high_water"), ba.gauge_by_name("queue_high_water"));
        prop_assert_eq!(
            ab.histogram_by_name("scores").unwrap().counts(),
            ba.histogram_by_name("scores").unwrap().counts()
        );
    }

    /// Histogram quantiles always land inside the observed [min, max] and
    /// are monotone in q, regardless of the sample.
    #[test]
    fn quantiles_stay_in_observed_range_and_are_monotone(
        values in collection::vec(0.0f64..4.0f64, 1..300)
    ) {
        let mut h = Histogram::log2(1e-3, 4.0);
        for &v in &values {
            h.record(v);
        }
        let mut prev = f64::NEG_INFINITY;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let est = h.quantile(q);
            prop_assert!(est >= h.min() && est <= h.max(),
                "quantile({}) = {} outside [{}, {}]", q, est, h.min(), h.max());
            prop_assert!(est >= prev, "quantile not monotone at q={}", q);
            prev = est;
        }
    }
}
