//! Allocation-count guard for steady-state metric recording.
//!
//! The registry's contract is that everything is preallocated at
//! registration time: once the metrics exist, `inc` / `set_gauge` /
//! `gauge_max` / `record` (and histogram quantile reads) are pure indexed
//! arithmetic. This pins that with the same counting-global-allocator
//! idiom as `crates/fleet/tests/zero_alloc.rs`, so instrumenting the
//! fleet's guarded steady-state loops with these calls cannot regress
//! their own zero-alloc proofs.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ARMED: Cell<bool> = const { Cell::new(false) };
    static ALLOCS: Cell<usize> = const { Cell::new(0) };
}

struct CountingAllocator;

impl CountingAllocator {
    fn record() {
        let _ = ARMED.try_with(|armed| {
            if armed.get() {
                let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
            }
        });
    }
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        Self::record();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        Self::record();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        Self::record();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn count_allocs(f: impl FnOnce()) -> usize {
    ALLOCS.with(|c| c.set(0));
    ARMED.with(|a| a.set(true));
    f();
    ARMED.with(|a| a.set(false));
    ALLOCS.with(|c| c.get())
}

use sad_obs::{Histogram, Registry};

#[test]
fn steady_state_recording_is_allocation_free() {
    let mut reg = Registry::new();
    let steps = reg.register_counter("steps_total", "steps");
    let depth = reg.register_gauge("queue_high_water", "depth");
    let latency =
        reg.register_histogram("round_seconds", "latency", Histogram::log2(1e-6, 16.0));
    let scores = reg.register_histogram("nonconformity", "a_t", Histogram::linear(0.0, 1.0, 20));

    // Touch everything once before arming (nothing lazy should exist, but
    // the guard must measure steady state, not first use).
    reg.inc(steps, 1);
    reg.set_gauge(depth, 1.0);
    reg.record(latency, 1e-4);
    reg.record(scores, 0.5);

    let n = count_allocs(|| {
        for i in 0..10_000u64 {
            reg.inc(steps, 1);
            reg.gauge_max(depth, (i % 64) as f64);
            reg.record(latency, 1e-6 * (1 + i % 1000) as f64);
            reg.record(scores, (i % 100) as f64 / 100.0);
        }
    });
    assert_eq!(n, 0, "steady-state recording must not allocate, saw {n}");
    assert_eq!(reg.counter(steps), 10_001);
}

#[test]
fn histogram_reads_are_allocation_free() {
    let mut h = Histogram::log2(1e-6, 16.0);
    for i in 0..1000u64 {
        h.record(1e-6 * (1 + i) as f64);
    }
    let mut acc = 0.0f64;
    let n = count_allocs(|| {
        for _ in 0..1000 {
            acc += h.quantile(0.50) + h.quantile(0.99) + h.mean();
        }
    });
    assert_eq!(n, 0, "quantile/mean reads must not allocate, saw {n}");
    assert!(acc.is_finite());
}

#[test]
fn merge_of_preallocated_registries_is_allocation_free() {
    let schema = || {
        let mut reg = Registry::new();
        let c = reg.register_counter("c", "");
        let g = reg.register_gauge("g", "");
        let h = reg.register_histogram("h", "", Histogram::linear(0.0, 1.0, 8));
        (reg, c, g, h)
    };
    let (mut a, _, _, ha) = schema();
    let (mut b, cb, gb, hb) = schema();
    b.inc(cb, 3);
    b.set_gauge(gb, 2.0);
    b.record(hb, 0.4);
    let n = count_allocs(|| {
        a.merge_from(&b);
    });
    assert_eq!(n, 0, "same-schema merge must not allocate, saw {n}");
    assert_eq!(a.histogram(ha).count(), 1);
}
