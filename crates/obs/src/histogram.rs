//! Fixed-bucket histograms with preallocated storage.
//!
//! A [`Histogram`] is a set of ascending finite upper bounds plus one
//! overflow bucket, a running sum/count, and observed min/max. Everything
//! is allocated at construction; [`Histogram::record`] is a binary search
//! over the bounds plus a handful of scalar updates — zero heap
//! allocations, so it is safe inside the workspace's guarded steady-state
//! loops (fleet rounds, `Detector::step`).
//!
//! Bucket semantics follow the Prometheus exposition format: bucket `i`
//! counts observations `v` with `bounds[i-1] < v <= bounds[i]` (`le`
//! boundaries), and the overflow bucket counts `v > bounds.last()`.

/// A fixed-bucket histogram. See the module docs for bucket semantics.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Ascending finite upper bounds (`le` boundaries).
    bounds: Box<[f64]>,
    /// One count per bound plus the trailing overflow bucket.
    counts: Box<[u64]>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Builds a histogram over explicit ascending finite upper bounds.
    ///
    /// # Panics
    /// Panics on an empty, non-finite, or non-strictly-ascending bound
    /// list.
    pub fn new(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "a histogram needs at least one bucket bound");
        assert!(bounds.iter().all(|b| b.is_finite()), "bucket bounds must be finite");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bucket bounds must be strictly ascending"
        );
        let counts = vec![0u64; bounds.len() + 1].into_boxed_slice();
        Self {
            bounds: bounds.into_boxed_slice(),
            counts,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Log-scale buckets: upper bounds `first, 2·first, 4·first, …` until
    /// `last` is covered — the latency-histogram shape (e.g.
    /// `log2(1e-6, 16.0)` spans 1 µs to 16 s in 25 buckets).
    ///
    /// # Panics
    /// Panics unless `0 < first <= last`.
    pub fn log2(first: f64, last: f64) -> Self {
        assert!(first > 0.0 && first.is_finite(), "log2 buckets need a positive first bound");
        assert!(last >= first && last.is_finite(), "last bound must be >= first");
        let mut bounds = vec![first];
        while *bounds.last().expect("non-empty") < last {
            let next = bounds.last().expect("non-empty") * 2.0;
            bounds.push(next);
        }
        Self::new(bounds)
    }

    /// `n` equal-width buckets spanning `(lo, hi]` — the bounded-domain
    /// shape (e.g. `linear(0.0, 1.0, 20)` for nonconformity scores).
    ///
    /// # Panics
    /// Panics unless `lo < hi` and `n > 0`.
    pub fn linear(lo: f64, hi: f64, n: usize) -> Self {
        assert!(n > 0, "need at least one bucket");
        assert!(lo < hi && lo.is_finite() && hi.is_finite(), "need a finite lo < hi span");
        let width = (hi - lo) / n as f64;
        // The last bound is pinned to `hi` exactly so accumulated rounding
        // cannot leak top-of-range observations into the overflow bucket.
        let bounds = (1..=n)
            .map(|i| if i == n { hi } else { lo + width * i as f64 })
            .collect();
        Self::new(bounds)
    }

    /// Records one observation. Zero-alloc. NaN observations are ignored
    /// (they order nowhere and would poison the running sum).
    #[inline]
    pub fn record(&mut self, value: f64) {
        if value.is_nan() {
            return;
        }
        let idx = self.bounds.partition_point(|&b| b < value);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Index of the bucket `value` falls in (`bounds.len()` = overflow).
    pub fn bucket_for(&self, value: f64) -> usize {
        self.bounds.partition_point(|&b| b < value)
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of all recorded observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 { 0.0 } else { self.sum / self.count as f64 }
    }

    /// Smallest recorded observation (+∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest recorded observation (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The ascending upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts; `counts()[bounds().len()]` is the overflow
    /// bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Quantile estimate `q ∈ [0, 1]`: locates the bucket holding the
    /// rank-`⌈q·count⌉` observation and interpolates linearly inside it,
    /// clamped to the observed `[min, max]` (so `quantile(0.5)` of a
    /// single observation is that observation, not a bucket edge).
    /// Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c >= target {
                let lower = if i == 0 { self.min } else { self.bounds[i - 1] };
                let upper = if i < self.bounds.len() { self.bounds[i] } else { self.max };
                let frac = (target - cum) as f64 / c as f64;
                let v = lower + (upper - lower) * frac;
                return v.clamp(self.min, self.max);
            }
            cum += c;
        }
        self.max
    }

    /// Adds another histogram's buckets into this one.
    ///
    /// # Panics
    /// Panics when the bucket boundaries differ.
    pub fn merge_from(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "histogram merge requires identical bucket boundaries"
        );
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The `le` boundary semantics: a value exactly on a bound lands in
    /// that bound's bucket, the next representable value above it in the
    /// following bucket.
    #[test]
    fn bucket_boundaries_are_inclusive_upper_bounds() {
        let h = Histogram::linear(0.0, 1.0, 4); // bounds 0.25 0.5 0.75 1.0
        assert_eq!(h.bounds(), &[0.25, 0.5, 0.75, 1.0]);
        assert_eq!(h.bucket_for(0.0), 0);
        assert_eq!(h.bucket_for(0.25), 0, "on-bound lands in the le bucket");
        assert_eq!(h.bucket_for(0.25f64.next_up()), 1);
        assert_eq!(h.bucket_for(1.0), 3, "top of range is not overflow");
        assert_eq!(h.bucket_for(1.0f64.next_up()), 4, "past the end is overflow");
        assert_eq!(h.bucket_for(-3.0), 0, "below range lands in the first bucket");
    }

    #[test]
    fn log2_buckets_double_and_cover_the_range() {
        let h = Histogram::log2(1e-6, 16.0);
        let bounds = h.bounds();
        assert_eq!(bounds[0], 1e-6);
        assert!(*bounds.last().unwrap() >= 16.0);
        for w in bounds.windows(2) {
            assert_eq!(w[1], w[0] * 2.0);
        }
        assert_eq!(h.bucket_for(1e-6), 0);
        assert_eq!(h.bucket_for(1.5e-6), 1);
        assert_eq!(h.bucket_for(1e9), bounds.len(), "way past the end is overflow");
    }

    #[test]
    fn record_tracks_count_sum_min_max() {
        let mut h = Histogram::linear(0.0, 10.0, 10);
        for v in [1.0, 2.0, 9.5, 12.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 24.5);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 12.0);
        assert_eq!(h.counts()[10], 1, "12.0 overflows");
        assert_eq!(h.mean(), 24.5 / 4.0);
    }

    #[test]
    fn nan_observations_are_ignored() {
        let mut h = Histogram::linear(0.0, 1.0, 2);
        h.record(f64::NAN);
        assert_eq!(h.count(), 0);
        h.record(0.5);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 0.5);
    }

    #[test]
    fn quantiles_interpolate_and_clamp_to_observed_range() {
        let mut h = Histogram::linear(0.0, 100.0, 100);
        for i in 1..=100 {
            h.record(i as f64);
        }
        let p50 = h.quantile(0.50);
        assert!((p50 - 50.0).abs() <= 1.0, "p50 within one bucket: {p50}");
        let p99 = h.quantile(0.99);
        assert!((p99 - 99.0).abs() <= 1.0, "p99 within one bucket: {p99}");
        assert_eq!(h.quantile(0.0), 1.0, "q=0 clamps to the observed min");
        assert_eq!(h.quantile(1.0), 100.0, "q=1 is the observed max");

        let mut single = Histogram::log2(1e-6, 1.0);
        single.record(3e-4);
        assert_eq!(single.quantile(0.5), 3e-4, "single observation is every quantile");
        assert_eq!(Histogram::linear(0.0, 1.0, 2).quantile(0.5), 0.0, "empty → 0");
    }

    #[test]
    fn merge_adds_bucketwise_and_keeps_extrema() {
        let mut a = Histogram::linear(0.0, 1.0, 4);
        let mut b = Histogram::linear(0.0, 1.0, 4);
        a.record(0.1);
        a.record(0.6);
        b.record(0.9);
        b.record(2.0);
        a.merge_from(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.min(), 0.1);
        assert_eq!(a.max(), 2.0);
        assert_eq!(a.counts().iter().sum::<u64>(), 4);
    }

    #[test]
    #[should_panic(expected = "identical bucket boundaries")]
    fn merge_with_different_bounds_panics() {
        let mut a = Histogram::linear(0.0, 1.0, 4);
        let b = Histogram::linear(0.0, 1.0, 5);
        a.merge_from(&b);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_bounds_panic() {
        let _ = Histogram::new(vec![1.0, 0.5]);
    }
}
