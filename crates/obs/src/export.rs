//! Export sinks for a [`Registry`](crate::Registry): Prometheus-style text
//! exposition and a JSON snapshot.
//!
//! Both renderers are plain `std` string building (the vendored serde
//! stand-in has no data format, matching `sad_bench::timing`'s hand-rolled
//! JSON). Exporting allocates freely — it runs outside the guarded hot
//! paths — and stays pluggable: anything that can ship a `String` (a file,
//! stderr, the future TCP transport) is a sink.

use crate::{Histogram, Registry};

/// Splits a full metric name into `(base, labels)` — `"m{k=\"v\"}"` →
/// `("m", "{k=\"v\"}")` — so `# HELP`/`# TYPE` lines carry the bare name.
fn split_labels(name: &str) -> (&str, &str) {
    match name.find('{') {
        Some(i) => (&name[..i], &name[i..]),
        None => (name, ""),
    }
}

/// Formats an `f64` for the exposition format (finite shortest-roundtrip,
/// `+Inf`/`-Inf`/`NaN` spelled the Prometheus way).
fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v == f64::INFINITY {
        "+Inf".into()
    } else if v == f64::NEG_INFINITY {
        "-Inf".into()
    } else {
        format!("{v}")
    }
}

/// Formats an `f64` as a JSON value (non-finite readings become `null` —
/// JSON has no Inf/NaN literals).
fn json_f64(v: f64) -> String {
    if v.is_finite() { format!("{v}") } else { "null".into() }
}

/// Inserts label(s) in front of an existing label set:
/// `("m{a=\"1\"}", "le=\"5\"")` → `m{le="5",a="1"}`.
fn name_with(base: &str, labels: &str, extra: &str) -> String {
    if labels.is_empty() {
        format!("{base}{{{extra}}}")
    } else {
        format!("{base}{{{extra},{}", &labels[1..])
    }
}

fn render_histogram_prom(out: &mut String, name: &str, h: &Histogram) {
    let (base, labels) = split_labels(name);
    let mut cum = 0u64;
    for (i, &count) in h.counts().iter().enumerate() {
        cum += count;
        let le = if i < h.bounds().len() {
            prom_f64(h.bounds()[i])
        } else {
            "+Inf".into()
        };
        out.push_str(&format!(
            "{} {cum}\n",
            name_with(&format!("{base}_bucket"), labels, &format!("le=\"{le}\""))
        ));
    }
    out.push_str(&format!("{}_sum{labels} {}\n", base, prom_f64(h.sum())));
    out.push_str(&format!("{}_count{labels} {}\n", base, h.count()));
}

impl Registry {
    /// Renders the registry in the Prometheus text exposition format
    /// (`# HELP`/`# TYPE` preambles, cumulative `_bucket{le=…}` series,
    /// `_sum`/`_count` per histogram). Labelled variants sharing a base
    /// name get one preamble — the first variant's.
    pub fn render_prometheus(&self, out: &mut String) {
        let mut seen: Vec<String> = Vec::new();
        let mut preamble = |out: &mut String, base: &str, help: &str, kind: &str| {
            if seen.iter().any(|s| s == base) {
                return;
            }
            seen.push(base.to_string());
            if !help.is_empty() {
                out.push_str(&format!("# HELP {base} {help}\n"));
            }
            out.push_str(&format!("# TYPE {base} {kind}\n"));
        };
        for (name, help, value) in self.counters() {
            let (base, _) = split_labels(name);
            preamble(out, base, help, "counter");
            out.push_str(&format!("{name} {value}\n"));
        }
        for (name, help, value) in self.gauges() {
            let (base, _) = split_labels(name);
            preamble(out, base, help, "gauge");
            out.push_str(&format!("{name} {}\n", prom_f64(value)));
        }
        for (name, help, hist) in self.histograms() {
            let (base, _) = split_labels(name);
            preamble(out, base, help, "histogram");
            render_histogram_prom(out, name, hist);
        }
    }

    /// Renders the registry as a pretty-printed JSON snapshot: counters
    /// and gauges as name→value maps, histograms with count/sum/min/max,
    /// derived p50/p99, and the raw `[le, count]` bucket pairs (the
    /// overflow bucket carries `"le": null`).
    pub fn render_json(&self, out: &mut String) {
        out.push_str("{\n  \"counters\": {");
        let mut first = true;
        for (name, _, value) in self.counters() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    {}: {value}", json_string(name)));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        first = true;
        for (name, _, value) in self.gauges() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    {}: {}", json_string(name), json_f64(value)));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        first = true;
        for (name, _, h) in self.histograms() {
            if !first {
                out.push(',');
            }
            first = false;
            let (min, max) = if h.count() == 0 { (0.0, 0.0) } else { (h.min(), h.max()) };
            out.push_str(&format!(
                "\n    {}: {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"p50\": {}, \"p99\": {}, \"buckets\": [",
                json_string(name),
                h.count(),
                json_f64(h.sum()),
                json_f64(min),
                json_f64(max),
                json_f64(h.quantile(0.50)),
                json_f64(h.quantile(0.99)),
            ));
            for (i, &count) in h.counts().iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let le = if i < h.bounds().len() {
                    json_f64(h.bounds()[i])
                } else {
                    "null".into()
                };
                out.push_str(&format!("[{le}, {count}]"));
            }
            out.push_str("]}");
        }
        out.push_str("\n  }\n}\n");
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::with_label;

    fn sample() -> Registry {
        let mut reg = Registry::new();
        let c = reg.register_counter("steps_total", "Detector steps served.");
        let cl = reg.register_counter(&with_label("drift_events_total", "task2", "KS"), "Drift.");
        let g = reg.register_gauge("queue_high_water", "Deepest queue.");
        let h = reg.register_histogram(
            "round_seconds",
            "Round latency.",
            Histogram::linear(0.0, 1.0, 2),
        );
        reg.inc(c, 7);
        reg.inc(cl, 2);
        reg.set_gauge(g, 3.0);
        reg.record(h, 0.25);
        reg.record(h, 0.75);
        reg.record(h, 5.0);
        reg
    }

    #[test]
    fn prometheus_exposition_has_types_buckets_and_labels() {
        let mut out = String::new();
        sample().render_prometheus(&mut out);
        assert!(out.contains("# TYPE steps_total counter\nsteps_total 7\n"), "{out}");
        assert!(
            out.contains("# TYPE drift_events_total counter\ndrift_events_total{task2=\"KS\"} 2\n"),
            "TYPE line uses the bare name, sample line keeps labels: {out}"
        );
        assert!(out.contains("# TYPE queue_high_water gauge\nqueue_high_water 3\n"), "{out}");
        assert!(out.contains("# TYPE round_seconds histogram"), "{out}");
        assert!(out.contains("round_seconds_bucket{le=\"0.5\"} 1\n"), "{out}");
        assert!(out.contains("round_seconds_bucket{le=\"1\"} 2\n"), "cumulative: {out}");
        assert!(out.contains("round_seconds_bucket{le=\"+Inf\"} 3\n"), "{out}");
        assert!(out.contains("round_seconds_sum 6\n"), "{out}");
        assert!(out.contains("round_seconds_count 3\n"), "{out}");
        assert!(out.contains("# HELP steps_total Detector steps served.\n"), "{out}");
    }

    #[test]
    fn json_snapshot_is_well_formed_and_complete() {
        let mut out = String::new();
        sample().render_json(&mut out);
        assert!(out.contains("\"steps_total\": 7"), "{out}");
        assert!(out.contains("\"drift_events_total{task2=\\\"KS\\\"}\": 2"), "{out}");
        assert!(out.contains("\"queue_high_water\": 3"), "{out}");
        assert!(out.contains("\"count\": 3"), "{out}");
        assert!(out.contains("[null, 1]"), "overflow bucket has le null: {out}");
        // Brace/bracket balance is a cheap well-formedness smoke check.
        let balance = |open: char, close: char| {
            out.chars().filter(|&c| c == open).count()
                == out.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}') && balance('[', ']'), "{out}");
    }

    #[test]
    fn empty_registry_renders_empty_sections() {
        let mut prom = String::new();
        let mut json = String::new();
        let reg = Registry::new();
        reg.render_prometheus(&mut prom);
        reg.render_json(&mut json);
        assert!(prom.is_empty());
        assert!(json.contains("\"counters\": {"));
    }
}
