//! # sad-obs
//!
//! Hand-rolled, dependency-free observability substrate for the streamad
//! workspace: a shard-local metric [`Registry`] holding counters, gauges
//! and fixed-bucket [`Histogram`]s, plus two export sinks (Prometheus-style
//! text exposition and a JSON snapshot — see [`export`]).
//!
//! ## Design rules
//!
//! * **Preallocate at registration, never in the hot path.** Registering a
//!   metric allocates (name, help, bucket arrays); *recording* into one —
//!   [`Registry::inc`], [`Registry::set_gauge`], [`Registry::gauge_max`],
//!   [`Registry::record`] — is pure indexed arithmetic and performs **zero
//!   heap allocations**. The counting-allocator guard in
//!   `tests/zero_alloc.rs` pins this, in the same style as the fleet's
//!   steady-state guard.
//! * **Shard-local, merge on export.** Each worker shard owns its own
//!   registry (no atomics, no locks — the shards already own disjoint
//!   state). An exporter clones one shard's registry and folds the rest in
//!   with [`Registry::merge_from`]: counters add, gauges take the maximum
//!   (every gauge in this workspace is a high-water mark), histograms add
//!   bucket-wise. The merge invariant — total recorded count equals total
//!   observed count — is proptest-pinned in `tests/registry_props.rs`.
//! * **Observation must not perturb results.** Nothing in this crate feeds
//!   back into detection: the load-bearing grid/parity invariants of the
//!   workspace hold with instrumentation compiled in and enabled.
//!
//! Handles ([`CounterId`], [`GaugeId`], [`HistogramId`]) are plain indices
//! into the owning registry; they are `Copy` and intended to be stored next
//! to the registry in a shard's metrics struct.

mod histogram;

pub mod export;

pub use histogram::Histogram;

/// Handle to a registered counter (monotonically increasing `u64`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge (instantaneous `f64`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// Name + help text of a registered metric.
#[derive(Debug, Clone, PartialEq)]
struct Meta {
    name: String,
    help: String,
}

/// A shard-local metric registry. See the crate docs for the allocation
/// and merge model.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: Vec<(Meta, u64)>,
    gauges: Vec<(Meta, f64)>,
    histograms: Vec<(Meta, Histogram)>,
}

/// Formats `base{key="value"}` with the label value escaped for the
/// Prometheus exposition format (`\`, `"` and newlines). Metric names in
/// this workspace bake their labels in at registration time — recording
/// never touches strings.
pub fn with_label(base: &str, key: &str, value: &str) -> String {
    let mut escaped = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => escaped.push_str("\\\\"),
            '"' => escaped.push_str("\\\""),
            '\n' => escaped.push_str("\\n"),
            other => escaped.push(other),
        }
    }
    format!("{base}{{{key}=\"{escaped}\"}}")
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn assert_fresh(&self, name: &str) {
        let taken = self.counters.iter().map(|(m, _)| m.name.as_str())
            .chain(self.gauges.iter().map(|(m, _)| m.name.as_str()))
            .chain(self.histograms.iter().map(|(m, _)| m.name.as_str()))
            .any(|n| n == name);
        assert!(!taken, "metric {name:?} registered twice");
    }

    /// Registers a counter (allocates; do this at setup time).
    ///
    /// # Panics
    /// Panics if `name` is already registered.
    pub fn register_counter(&mut self, name: &str, help: &str) -> CounterId {
        self.assert_fresh(name);
        self.counters.push((Meta { name: name.into(), help: help.into() }, 0));
        CounterId(self.counters.len() - 1)
    }

    /// Registers a gauge (allocates; do this at setup time).
    ///
    /// # Panics
    /// Panics if `name` is already registered.
    pub fn register_gauge(&mut self, name: &str, help: &str) -> GaugeId {
        self.assert_fresh(name);
        self.gauges.push((Meta { name: name.into(), help: help.into() }, 0.0));
        GaugeId(self.gauges.len() - 1)
    }

    /// Registers a histogram over `histogram`'s buckets (allocates; do
    /// this at setup time).
    ///
    /// # Panics
    /// Panics if `name` is already registered.
    pub fn register_histogram(&mut self, name: &str, help: &str, histogram: Histogram) -> HistogramId {
        self.assert_fresh(name);
        self.histograms.push((Meta { name: name.into(), help: help.into() }, histogram));
        HistogramId(self.histograms.len() - 1)
    }

    /// Increments a counter. Zero-alloc.
    #[inline]
    pub fn inc(&mut self, id: CounterId, by: u64) {
        self.counters[id.0].1 += by;
    }

    /// Sets a gauge. Zero-alloc.
    #[inline]
    pub fn set_gauge(&mut self, id: GaugeId, value: f64) {
        self.gauges[id.0].1 = value;
    }

    /// Raises a gauge to `value` if it is higher than the current reading
    /// (high-water-mark semantics, matching the max-merge). Zero-alloc.
    #[inline]
    pub fn gauge_max(&mut self, id: GaugeId, value: f64) {
        let g = &mut self.gauges[id.0].1;
        if value > *g {
            *g = value;
        }
    }

    /// Records one observation into a histogram. Zero-alloc.
    #[inline]
    pub fn record(&mut self, id: HistogramId, value: f64) {
        self.histograms[id.0].1.record(value);
    }

    /// Current counter value.
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters[id.0].1
    }

    /// Current gauge reading.
    pub fn gauge(&self, id: GaugeId) -> f64 {
        self.gauges[id.0].1
    }

    /// The histogram behind `id`.
    pub fn histogram(&self, id: HistogramId) -> &Histogram {
        &self.histograms[id.0].1
    }

    /// Looks up a counter value by full metric name (exporters / tests).
    pub fn counter_by_name(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(m, _)| m.name == name).map(|(_, v)| *v)
    }

    /// Looks up a gauge reading by full metric name.
    pub fn gauge_by_name(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(m, _)| m.name == name).map(|(_, v)| *v)
    }

    /// Looks up a histogram by full metric name.
    pub fn histogram_by_name(&self, name: &str) -> Option<&Histogram> {
        self.histograms.iter().find(|(m, _)| m.name == name).map(|(_, h)| h)
    }

    /// Number of registered metrics (all kinds).
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// Whether no metric is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Folds another (shard-local) registry into this one by metric name:
    /// counters add, gauges take the maximum (high-water semantics),
    /// histograms merge bucket-wise. Every metric of `other` must already
    /// be registered here — clone one shard's registry as the accumulator
    /// and fold the siblings in.
    ///
    /// # Panics
    /// Panics when `other` holds a metric this registry does not, or when
    /// a histogram pair disagrees on bucket boundaries.
    pub fn merge_from(&mut self, other: &Registry) {
        for (meta, value) in &other.counters {
            let (_, v) = self
                .counters
                .iter_mut()
                .find(|(m, _)| m.name == meta.name)
                .unwrap_or_else(|| panic!("merge: counter {:?} not registered here", meta.name));
            *v += value;
        }
        for (meta, value) in &other.gauges {
            let (_, v) = self
                .gauges
                .iter_mut()
                .find(|(m, _)| m.name == meta.name)
                .unwrap_or_else(|| panic!("merge: gauge {:?} not registered here", meta.name));
            if *value > *v {
                *v = *value;
            }
        }
        for (meta, hist) in &other.histograms {
            let (_, h) = self
                .histograms
                .iter_mut()
                .find(|(m, _)| m.name == meta.name)
                .unwrap_or_else(|| panic!("merge: histogram {:?} not registered here", meta.name));
            h.merge_from(hist);
        }
    }

    /// Like [`Self::merge_from`], but metrics of `other` that are missing
    /// here are registered first — composition of registries with
    /// *different* schemas (e.g. a serving layer appending the detector
    /// population's lifecycle aggregate to its own shard metrics).
    /// Allocates when registering — export path only.
    pub fn absorb(&mut self, other: &Registry) {
        for (meta, value) in &other.counters {
            match self.counters.iter_mut().find(|(m, _)| m.name == meta.name) {
                Some((_, v)) => *v += value,
                None => self.counters.push((meta.clone(), *value)),
            }
        }
        for (meta, value) in &other.gauges {
            match self.gauges.iter_mut().find(|(m, _)| m.name == meta.name) {
                Some((_, v)) => {
                    if *value > *v {
                        *v = *value;
                    }
                }
                None => self.gauges.push((meta.clone(), *value)),
            }
        }
        for (meta, hist) in &other.histograms {
            match self.histograms.iter_mut().find(|(m, _)| m.name == meta.name) {
                Some((_, h)) => h.merge_from(hist),
                None => self.histograms.push((meta.clone(), hist.clone())),
            }
        }
    }

    /// Iterates `(name, help, value)` over counters, registration order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, &str, u64)> {
        self.counters.iter().map(|(m, v)| (m.name.as_str(), m.help.as_str(), *v))
    }

    /// Iterates `(name, help, value)` over gauges, registration order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, &str, f64)> {
        self.gauges.iter().map(|(m, v)| (m.name.as_str(), m.help.as_str(), *v))
    }

    /// Iterates `(name, help, histogram)` over histograms, registration
    /// order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &str, &Histogram)> {
        self.histograms.iter().map(|(m, h)| (m.name.as_str(), m.help.as_str(), h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_and_histograms_round_trip() {
        let mut reg = Registry::new();
        let c = reg.register_counter("steps_total", "steps");
        let g = reg.register_gauge("queue_high_water", "depth");
        let h = reg.register_histogram("latency", "s", Histogram::log2(1e-6, 1.0));
        reg.inc(c, 3);
        reg.inc(c, 2);
        reg.set_gauge(g, 4.0);
        reg.gauge_max(g, 2.0); // lower — ignored
        reg.gauge_max(g, 9.0);
        reg.record(h, 1e-4);
        assert_eq!(reg.counter(c), 5);
        assert_eq!(reg.gauge(g), 9.0);
        assert_eq!(reg.histogram(h).count(), 1);
        assert_eq!(reg.counter_by_name("steps_total"), Some(5));
        assert_eq!(reg.gauge_by_name("queue_high_water"), Some(9.0));
        assert!(reg.histogram_by_name("latency").is_some());
        assert_eq!(reg.counter_by_name("nope"), None);
        assert_eq!(reg.len(), 3);
    }

    #[test]
    fn merge_adds_counters_maxes_gauges_and_merges_histograms() {
        let schema = |_: ()| {
            let mut reg = Registry::new();
            let c = reg.register_counter("c", "");
            let g = reg.register_gauge("g", "");
            let h = reg.register_histogram("h", "", Histogram::linear(0.0, 1.0, 4));
            (reg, c, g, h)
        };
        let (mut a, c, g, h) = schema(());
        let (mut b, ..) = schema(());
        a.inc(c, 2);
        a.set_gauge(g, 1.0);
        a.record(h, 0.1);
        b.inc(c, 5);
        b.set_gauge(g, 7.0);
        b.record(h, 0.9);
        a.merge_from(&b);
        assert_eq!(a.counter(c), 7);
        assert_eq!(a.gauge(g), 7.0);
        assert_eq!(a.histogram(h).count(), 2);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_name_panics_across_kinds() {
        let mut reg = Registry::new();
        reg.register_counter("m", "");
        reg.register_gauge("m", "");
    }

    #[test]
    fn absorb_registers_missing_metrics_and_merges_shared_ones() {
        let mut a = Registry::new();
        let ca = a.register_counter("shared", "");
        a.inc(ca, 2);
        let mut b = Registry::new();
        let cb = b.register_counter("shared", "");
        let gb = b.register_gauge("only_in_b", "");
        let hb = b.register_histogram("hist_b", "", Histogram::linear(0.0, 1.0, 2));
        b.inc(cb, 5);
        b.set_gauge(gb, 3.0);
        b.record(hb, 0.5);
        a.absorb(&b);
        assert_eq!(a.counter_by_name("shared"), Some(7));
        assert_eq!(a.gauge_by_name("only_in_b"), Some(3.0));
        assert_eq!(a.histogram_by_name("hist_b").unwrap().count(), 1);
    }

    #[test]
    #[should_panic(expected = "not registered here")]
    fn merge_with_unknown_metric_panics() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        b.register_counter("only_in_b", "");
        a.merge_from(&b);
    }

    #[test]
    fn with_label_escapes_quotes_and_backslashes() {
        assert_eq!(with_label("m", "k", "v"), "m{k=\"v\"}");
        assert_eq!(with_label("m", "k", "a\"b\\c"), "m{k=\"a\\\"b\\\\c\"}");
        assert_eq!(with_label("m", "k", "a\nb"), "m{k=\"a\\nb\"}");
    }
}
