//! The two-layer reconstruction autoencoder (paper §IV-C).
//!
//! `x̂_t = r⁻¹(σ(r(x_t)·W₁ + b₁)·W₂ + b₂)` — one sigmoid hidden layer, one
//! linear output layer, trained on MSE. It serves as the paper's baseline
//! for reconstruction-based approaches.

use crate::scaler::Standardizer;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sad_core::{FeatureVector, ModelOutput, StreamModel};
use sad_nn::{Activation, Mlp, MlpGrads, MlpWorkspace};
use sad_tensor::Adam;

/// Two-layer autoencoder over the flattened feature vector.
///
/// Training runs through the batched, workspace-backed `sad-nn` path: the
/// fine-tune loop packs `batch_size` windows into a row-major matrix and
/// performs zero heap allocations in steady state. The default
/// `batch_size = 1` reproduces the original per-sample SGD trajectory bit
/// for bit (one Adam step per window).
#[derive(Clone)]
pub struct TwoLayerAe {
    net: Option<Mlp>,
    scaler: Option<Standardizer>,
    opt: Adam,
    /// Reusable batched-training buffers (created with the net).
    ws: Option<MlpWorkspace>,
    grads: Option<MlpGrads>,
    hidden: usize,
    batch_size: usize,
    seed: u64,
}

impl TwoLayerAe {
    /// Creates an AE with `hidden` units and Adam learning rate `lr`.
    pub fn new(hidden: usize, lr: f64, seed: u64) -> Self {
        assert!(hidden > 0, "hidden width must be positive");
        Self {
            net: None,
            scaler: None,
            opt: Adam::new(lr),
            ws: None,
            grads: None,
            hidden,
            batch_size: 1,
            seed,
        }
    }

    /// A reasonable default: hidden = dim/4 clamped to [4, 64], lr 1e-3.
    pub fn for_dim(dim: usize, seed: u64) -> Self {
        Self::new((dim / 4).clamp(4, 64), 1e-3, seed)
    }

    /// Sets the training minibatch size (default 1 = per-sample updates,
    /// matching the original trajectory; larger batches take one
    /// mean-gradient Adam step per chunk).
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        self.batch_size = batch_size;
        self.ws = None; // resized lazily on next training call
        self
    }

    fn ensure_net(&mut self, dim: usize) {
        if self.net.is_none() {
            let mut rng = StdRng::seed_from_u64(self.seed);
            self.net = Some(Mlp::new(
                &[dim, self.hidden, dim],
                &[Activation::Sigmoid, Activation::Identity],
                &mut rng,
            ));
        }
        if self.ws.is_none() {
            let net = self.net.as_ref().expect("just initialized");
            self.ws = Some(net.workspace(self.batch_size));
            self.grads = Some(net.zero_grads());
        }
    }

    fn scaled(&self, x: &FeatureVector) -> Vec<f64> {
        match &self.scaler {
            Some(s) => s.transform(x.as_slice()),
            None => x.as_slice().to_vec(),
        }
    }

    /// Inference state for the fleet's cross-stream batched stepping:
    /// `(network, fitted scaler)`. `None` until the network exists (i.e.
    /// before the first predict/fit call).
    pub(crate) fn inference_parts(&self) -> Option<(&Mlp, Option<&Standardizer>)> {
        self.net.as_ref().map(|net| (net, self.scaler.as_ref()))
    }

    /// One training epoch over `train`, batched. Zero heap allocations in
    /// steady state (workspace and gradient buffers are reused).
    fn epoch(&mut self, train: &[FeatureVector]) {
        if train.is_empty() {
            return;
        }
        self.ensure_net(train[0].dim());
        let net = self.net.as_mut().expect("just initialized");
        let ws = self.ws.as_mut().expect("just initialized");
        let grads = self.grads.as_mut().expect("just initialized");
        for chunk in train.chunks(self.batch_size) {
            ws.set_batch(chunk.len());
            for (b, x) in chunk.iter().enumerate() {
                match &self.scaler {
                    Some(s) => s.transform_into(x.as_slice(), ws.input_row_mut(b)),
                    None => ws.input_row_mut(b).copy_from_slice(x.as_slice()),
                }
            }
            net.train_batch_mse_identity(ws, grads, &mut self.opt);
        }
    }
}

impl StreamModel for TwoLayerAe {
    fn name(&self) -> &'static str {
        "2-layer AE"
    }

    fn predict(&mut self, x: &FeatureVector) -> ModelOutput {
        self.ensure_net(x.dim());
        let z = self.scaled(x);
        let net = self.net.as_ref().expect("just initialized");
        let recon_z = net.infer(&z);
        let recon = match &self.scaler {
            Some(s) => s.inverse(&recon_z),
            None => recon_z,
        };
        ModelOutput::Reconstruction(recon)
    }

    fn fit_initial(&mut self, train: &[FeatureVector], epochs: usize) {
        if train.is_empty() {
            return;
        }
        self.scaler = Some(Standardizer::fit(train));
        for _ in 0..epochs {
            self.epoch(train);
        }
    }

    fn fine_tune(&mut self, train: &[FeatureVector]) {
        self.epoch(train);
    }

    fn clone_box(&self) -> Box<dyn StreamModel> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sad_core::nonconformity;

    /// A small family of windows from two sinusoids.
    fn sine_windows(count: usize, w: usize) -> Vec<FeatureVector> {
        (0..count)
            .map(|s| {
                let data: Vec<f64> = (0..w)
                    .flat_map(|i| {
                        let t = (s + i) as f64 * 0.3;
                        vec![t.sin(), (t * 0.5).cos() * 2.0]
                    })
                    .collect();
                FeatureVector::new(data, w, 2)
            })
            .collect()
    }

    #[test]
    fn training_reduces_reconstruction_nonconformity() {
        let train = sine_windows(40, 8);
        let mut ae = TwoLayerAe::new(8, 5e-3, 7);
        let mut before = ae.clone();
        before.fit_initial(&train, 0); // scaler only, no training epochs
        ae.fit_initial(&train, 120);
        let probe = &train[20];
        let a_before = nonconformity(probe, &before.predict(probe));
        let a_after = nonconformity(probe, &ae.predict(probe));
        assert!(
            a_after < a_before * 0.5,
            "training must cut the nonconformity: {a_before} -> {a_after}"
        );
        assert!(a_after < 0.1, "trained AE reconstructs the regime: {a_after}");
    }

    #[test]
    fn anomalous_window_scores_higher_than_normal() {
        let train = sine_windows(40, 8);
        let mut ae = TwoLayerAe::new(8, 5e-3, 7);
        ae.fit_initial(&train, 150);
        let normal = &train[10];
        let a_norm = nonconformity(normal, &ae.predict(normal));
        // An out-of-regime window: constant spike.
        let weird = FeatureVector::new(vec![8.0; 16], 8, 2);
        let a_weird = nonconformity(&weird, &ae.predict(&weird));
        assert!(
            a_weird > a_norm * 2.0,
            "anomaly {a_weird} must exceed normal {a_norm}"
        );
    }

    #[test]
    fn fine_tune_adapts_to_new_regime() {
        let train = sine_windows(40, 8);
        let mut ae = TwoLayerAe::new(8, 5e-3, 3);
        ae.fit_initial(&train, 100);
        // New regime: shifted/scaled sinusoids.
        let shifted: Vec<FeatureVector> = sine_windows(40, 8)
            .into_iter()
            .map(|x| {
                let data: Vec<f64> = x.as_slice().iter().map(|v| v * 3.0 + 1.0).collect();
                FeatureVector::new(data, 8, 2)
            })
            .collect();
        let probe = shifted[15].clone();
        let before = nonconformity(&probe, &ae.predict(&probe));
        for _ in 0..60 {
            ae.fine_tune(&shifted);
        }
        let after = nonconformity(&probe, &ae.predict(&probe));
        assert!(after < before, "fine-tuning must adapt: {before} -> {after}");
    }

    #[test]
    fn predict_before_fit_is_usable() {
        let mut ae = TwoLayerAe::new(4, 1e-3, 1);
        let x = FeatureVector::new(vec![1.0, 2.0, 3.0, 4.0], 2, 2);
        match ae.predict(&x) {
            ModelOutput::Reconstruction(r) => {
                assert_eq!(r.len(), 4);
                assert!(r.iter().all(|v| v.is_finite()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_training_set_is_a_noop() {
        let mut ae = TwoLayerAe::new(4, 1e-3, 1);
        ae.fit_initial(&[], 5);
        ae.fine_tune(&[]);
    }
}
