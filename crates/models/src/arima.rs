//! Online ARIMA (Liu et al. 2016, as adapted in paper §IV-C).
//!
//! The ARIMA(q, d, q′) model is approximated by an ARIMA(q+m, d, 0) model
//! without noise terms, trained by online gradient descent:
//!
//! ```text
//! s̃_t(γ) = Σ_{i=1..L} γ_i ∇ᵈ s_{t−i}  +  Σ_{i=0..d−1} ∇ⁱ s_{t−1}
//! ```
//!
//! with the differencing operator applied via binomial coefficients,
//! `∇ᵈ s_t = Σ_{i=0..d} (−1)ⁱ C(d,i) s_{t−i}`. The coefficient vector `γ`
//! is the only model parameter.
//!
//! The paper's window constraint is `w = q + m + d`. Computing
//! `∇ᵈ s_{t−L}` requires `s_{t−L−d}`, so with only `w` in-window values the
//! usable lag count is `L = w − d − 1` (one fewer than the paper's ideal,
//! which implicitly assumes `s_{t−w}` is still accessible).
//!
//! **Multivariate handling** (§IV-C): the model "will simply learn the
//! behavior of all channels at once, as if they were part of the same
//! univariate stream" — one shared `γ` applied to every channel
//! independently.

use sad_core::{FeatureVector, ModelOutput, StreamModel};
use sad_tensor::{OnlineNewtonStep, Optimizer};

/// Coefficient update rule for [`OnlineArima`].
#[derive(Debug, Clone)]
enum ArimaUpdate {
    /// Plain online gradient descent with a fixed learning rate (the
    /// simplification evaluated in the paper's experiments).
    Sgd {
        /// Learning rate.
        lr: f64,
    },
    /// The Online Newton Step — the optimizer Liu et al.'s ARIMA-ONS
    /// variant actually uses.
    Ons(OnlineNewtonStep),
}

/// Online ARIMA with shared coefficients across channels.
#[derive(Debug, Clone)]
pub struct OnlineArima {
    /// Differencing order `d`.
    d: usize,
    /// Coefficient update rule.
    update: ArimaUpdate,
    /// Coefficients `γ ∈ R^L`, lazily sized to `w − d − 1` on first use.
    gamma: Vec<f64>,
    /// Binomial coefficients `(−1)ⁱ C(d,i)` for the differencing operator.
    diff_coeffs: Vec<f64>,
    /// Scratch: one channel's window, filled from the strided
    /// `FeatureVector::channel_iter` (replaces a per-channel `channel()`
    /// allocation on every predict / fine-tune step).
    chan: Vec<f64>,
    /// Scratch: lag regressor vector `z`.
    z: Vec<f64>,
    /// Scratch: ONS gradient vector.
    grad: Vec<f64>,
}

impl OnlineArima {
    /// Gradient-norm clip keeping single outliers from destroying `γ`.
    const GRAD_CLIP: f64 = 1e3;

    /// Creates an online ARIMA model with differencing order `d` and
    /// OGD learning rate `lr`.
    pub fn new(d: usize, lr: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        let diff_coeffs = (0..=d)
            .map(|i| if i % 2 == 0 { binomial(d, i) } else { -binomial(d, i) })
            .collect();
        Self {
            d,
            update: ArimaUpdate::Sgd { lr },
            gamma: Vec::new(),
            diff_coeffs,
            chan: Vec::new(),
            z: Vec::new(),
            grad: Vec::new(),
        }
    }

    /// Creates the ARIMA-ONS variant (Liu et al. 2016, Algorithm 1):
    /// coefficients updated by the Online Newton Step.
    pub fn with_ons(d: usize, eta: f64, eps: f64) -> Self {
        let diff_coeffs = (0..=d)
            .map(|i| if i % 2 == 0 { binomial(d, i) } else { -binomial(d, i) })
            .collect();
        Self {
            d,
            update: ArimaUpdate::Ons(OnlineNewtonStep::new(eta, eps)),
            gamma: Vec::new(),
            diff_coeffs,
            chan: Vec::new(),
            z: Vec::new(),
            grad: Vec::new(),
        }
    }

    /// Current coefficient vector `γ` (empty before the first fit).
    pub fn gamma(&self) -> &[f64] {
        &self.gamma
    }

    /// Differencing order.
    pub fn d(&self) -> usize {
        self.d
    }

    fn lag_count(&self, w: usize) -> usize {
        assert!(
            w > self.d + 1,
            "window length {w} too short for differencing order {}",
            self.d
        );
        w - self.d - 1
    }

    fn ensure_gamma(&mut self, w: usize) {
        let len = self.lag_count(w);
        if self.gamma.len() != len {
            // Zero init: the prediction starts as the pure integration term
            // Σ ∇ⁱ s_{t−1}, which for d=1 is the persistence forecast.
            self.gamma = vec![0.0; len];
            if let ArimaUpdate::Ons(opt) = &mut self.update {
                opt.reset(); // A⁻¹ must be re-sized with γ
            }
        }
    }

    /// `∇ᵈ` applied at index `t` of `series` (needs `t ≥ d`).
    fn diff(&self, series: &[f64], t: usize) -> f64 {
        debug_assert!(t >= self.d);
        self.diff_coeffs.iter().enumerate().map(|(i, &c)| c * series[t - i]).sum()
    }

    /// Prediction of `series[t]` from `series[..t]`, writing the lag
    /// regressor vector `z` (needed for the gradient) into the supplied
    /// scratch buffer. Arithmetic order is identical to the historical
    /// allocating path, so trained trajectories are bitwise unchanged.
    ///
    /// `series` holds one channel's window values; `t = series.len() − 1`.
    fn predict_into(&self, series: &[f64], z: &mut Vec<f64>) -> f64 {
        let t = series.len() - 1;
        let lags = self.gamma.len();
        // Regressors z_i = ∇ᵈ s_{t−i}, i = 1..=L.
        z.clear();
        z.extend((1..=lags).map(|i| self.diff(series, t - i)));
        let ar_term: f64 = self.gamma.iter().zip(z.iter()).map(|(g, zi)| g * zi).sum();
        // Integration term Σ_{i=0..d−1} ∇ⁱ s_{t−1}.
        let integration: f64 = (0..self.d).map(|i| diff_at(series, t - 1, i)).sum();
        ar_term + integration
    }

    /// Allocating convenience wrapper around [`Self::predict_into`] — kept
    /// for unit tests and external inspection of `z`.
    #[allow(dead_code)]
    fn predict_channel(&self, series: &[f64]) -> (f64, Vec<f64>) {
        let mut z = Vec::new();
        let pred = self.predict_into(series, &mut z);
        (pred, z)
    }

    /// One update step on one channel window: squared loss on the final
    /// value, gradient `2(s̃ − s) z` (norm-clipped), applied by the
    /// configured rule (OGD or ONS). Runs entirely on the reusable `z` /
    /// `grad` scratch buffers.
    fn train_channel(&mut self, series: &[f64]) {
        let mut z = std::mem::take(&mut self.z);
        let pred = self.predict_into(series, &mut z);
        let err = pred - series[series.len() - 1];
        if err.is_finite() {
            let mut scale = 2.0 * err;
            let gnorm = scale.abs() * z.iter().map(|v| v * v).sum::<f64>().sqrt();
            if gnorm > Self::GRAD_CLIP {
                scale *= Self::GRAD_CLIP / gnorm;
            }
            match &mut self.update {
                ArimaUpdate::Sgd { lr } => {
                    for (g, zi) in self.gamma.iter_mut().zip(&z) {
                        *g -= *lr * scale * zi;
                    }
                }
                ArimaUpdate::Ons(opt) => {
                    let mut grad = std::mem::take(&mut self.grad);
                    grad.clear();
                    grad.extend(z.iter().map(|zi| scale * zi));
                    opt.step(&mut self.gamma, &grad);
                    self.grad = grad;
                }
            }
        }
        self.z = z;
    }
}

impl StreamModel for OnlineArima {
    fn name(&self) -> &'static str {
        "Online ARIMA"
    }

    fn predict(&mut self, x: &FeatureVector) -> ModelOutput {
        self.ensure_gamma(x.w());
        let mut chan = std::mem::take(&mut self.chan);
        let mut z = std::mem::take(&mut self.z);
        let forecast: Vec<f64> = (0..x.n())
            .map(|j| {
                chan.clear();
                chan.extend(x.channel_iter(j));
                self.predict_into(&chan, &mut z)
            })
            .collect();
        self.chan = chan;
        self.z = z;
        ModelOutput::Forecast(forecast)
    }

    fn fit_initial(&mut self, train: &[FeatureVector], epochs: usize) {
        if train.is_empty() {
            return;
        }
        self.ensure_gamma(train[0].w());
        for _ in 0..epochs {
            self.fine_tune(train);
        }
    }

    fn fine_tune(&mut self, train: &[FeatureVector]) {
        if train.is_empty() {
            return;
        }
        self.ensure_gamma(train[0].w());
        let mut chan = std::mem::take(&mut self.chan);
        for x in train {
            for j in 0..x.n() {
                chan.clear();
                chan.extend(x.channel_iter(j));
                self.train_channel(&chan);
            }
        }
        self.chan = chan;
    }

    fn clone_box(&self) -> Box<dyn StreamModel> {
        Box::new(self.clone())
    }
}

/// `∇ᵒʳᵈᵉʳ series[t]` computed directly from binomial coefficients.
fn diff_at(series: &[f64], t: usize, order: usize) -> f64 {
    debug_assert!(t >= order);
    (0..=order)
        .map(|k| {
            let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
            sign * binomial(order, k) * series[t - k]
        })
        .sum()
}

fn binomial(n: usize, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut result = 1.0;
    for i in 0..k {
        result = result * (n - i) as f64 / (i + 1) as f64;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window_from(series: &[f64]) -> FeatureVector {
        FeatureVector::new(series.to_vec(), series.len(), 1)
    }

    #[test]
    fn binomial_reference_values() {
        assert_eq!(binomial(0, 0), 1.0);
        assert_eq!(binomial(4, 2), 6.0);
        assert_eq!(binomial(5, 0), 1.0);
        assert_eq!(binomial(5, 5), 1.0);
        assert_eq!(binomial(3, 7), 0.0);
    }

    #[test]
    fn differencing_matches_manual() {
        let m = OnlineArima::new(1, 0.01);
        // ∇ s_t = s_t − s_{t−1}
        assert_eq!(m.diff(&[1.0, 4.0, 9.0], 2), 5.0);
        let m2 = OnlineArima::new(2, 0.01);
        // ∇² s_t = s_t − 2 s_{t−1} + s_{t−2}
        assert_eq!(m2.diff(&[1.0, 4.0, 9.0], 2), 2.0);
    }

    #[test]
    fn zero_gamma_d1_gives_persistence_forecast() {
        // With γ = 0 and d = 1 the prediction is ∇⁰ s_{t−1} = s_{t−1}.
        let mut m = OnlineArima::new(1, 0.01);
        let x = window_from(&[1.0, 2.0, 3.0, 4.0, 7.0]);
        match m.predict(&x) {
            ModelOutput::Forecast(f) => assert_eq!(f, vec![4.0]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn learns_linear_trend() {
        // s_t = 2t: after differencing once, ∇s is constant 2; an AR model
        // on ∇s with γ summing to 1 is exact. Training must beat persistence.
        let mut m = OnlineArima::new(1, 0.01);
        let series: Vec<f64> = (0..10).map(|t| 2.0 * t as f64).collect();
        let windows: Vec<FeatureVector> = series
            .windows(6)
            .map(window_from)
            .collect();
        m.fit_initial(&windows, 200);
        let x = window_from(&[20.0, 22.0, 24.0, 26.0, 28.0, 30.0]);
        let (pred, _) = m.predict_channel(&x.channel(0));
        // Persistence would predict 28; the trained model must be closer to 30.
        assert!((pred - 30.0).abs() < 1.0, "prediction {pred}");
    }

    #[test]
    fn learns_ar1_process() {
        // s_t = 0.8 s_{t−1} (+ deterministic pseudo noise), d = 0.
        let mut m = OnlineArima::new(0, 0.02);
        let mut series = vec![1.0];
        for t in 1..300 {
            let noise = ((t * 37 % 11) as f64 - 5.0) * 0.002;
            series.push(0.8 * series[t - 1] + noise + 0.2);
        }
        let windows: Vec<FeatureVector> = series.windows(8).map(window_from).collect();
        m.fit_initial(&windows, 30);
        // Steady state is 1.0; prediction from a steady window should be ≈ 1.
        let x = window_from(&[1.0; 8]);
        let (pred, _) = m.predict_channel(&x.channel(0));
        assert!((pred - 1.0).abs() < 0.15, "prediction {pred}");
    }

    #[test]
    fn multivariate_uses_shared_coefficients() {
        let mut m = OnlineArima::new(1, 0.01);
        // Two channels, both linear: shared γ must fit both.
        let n = 2;
        let w = 6;
        let windows: Vec<FeatureVector> = (0..20)
            .map(|start| {
                let data: Vec<f64> = (0..w)
                    .flat_map(|i| {
                        let t = (start + i) as f64;
                        vec![t, 10.0 + 2.0 * t]
                    })
                    .collect();
                FeatureVector::new(data, w, n)
            })
            .collect();
        m.fit_initial(&windows, 100);
        match m.predict(&windows[19]) {
            ModelOutput::Forecast(f) => {
                assert_eq!(f.len(), 2);
                let t_last = (19 + w - 1) as f64;
                assert!((f[0] - t_last).abs() < 1.0, "channel 0: {}", f[0]);
                assert!((f[1] - (10.0 + 2.0 * t_last)).abs() < 2.0, "channel 1: {}", f[1]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ons_variant_learns_linear_trend() {
        let mut m = OnlineArima::with_ons(1, 0.5, 0.1);
        let series: Vec<f64> = (0..12).map(|t| 2.0 * t as f64).collect();
        let windows: Vec<FeatureVector> = series.windows(6).map(window_from).collect();
        m.fit_initial(&windows, 100);
        let x = window_from(&[20.0, 22.0, 24.0, 26.0, 28.0, 30.0]);
        let (pred, _) = m.predict_channel(&x.channel(0));
        assert!((pred - 30.0).abs() < 1.5, "ONS prediction {pred}");
        assert!(m.gamma().iter().all(|g| g.is_finite()));
    }

    #[test]
    fn ons_variant_resets_on_window_resize() {
        let mut m = OnlineArima::with_ons(1, 0.5, 0.1);
        let w6: Vec<FeatureVector> =
            (0..10).map(|t| window_from(&[t as f64, 1.0, 2.0, 3.0, 4.0, 5.0])).collect();
        m.fit_initial(&w6, 3);
        // Switching to windows of a different length must not panic (the
        // ONS buffer is re-sized with γ).
        let w8: Vec<FeatureVector> =
            (0..10).map(|t| window_from(&[t as f64, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0])).collect();
        m.fine_tune(&w8);
        assert_eq!(m.gamma().len(), 6);
    }

    #[test]
    fn gradient_clipping_prevents_divergence() {
        let mut m = OnlineArima::new(1, 0.5); // aggressive lr
        let series: Vec<f64> = (0..12).map(|t| (t as f64) * 1e6).collect(); // huge scale
        let windows: Vec<FeatureVector> = series.windows(6).map(window_from).collect();
        m.fit_initial(&windows, 50);
        assert!(m.gamma().iter().all(|g| g.is_finite()), "γ stayed finite: {:?}", m.gamma());
    }

    #[test]
    fn empty_training_set_is_a_noop() {
        let mut m = OnlineArima::new(1, 0.01);
        m.fit_initial(&[], 10);
        m.fine_tune(&[]);
        assert!(m.gamma().is_empty());
    }

    #[test]
    #[should_panic(expected = "too short for differencing")]
    fn window_shorter_than_d_panics() {
        let mut m = OnlineArima::new(3, 0.01);
        let x = window_from(&[1.0, 2.0, 3.0]);
        let _ = m.predict(&x);
    }
}
