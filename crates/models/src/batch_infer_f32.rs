//! f32 cross-stream batched inference — the serving fast path.
//!
//! Mirror of [`crate::batch_infer::InferBatch`] built on `sad_nn`'s
//! [`InferPlan`]: every network a cohort's `predict` touches is snapshotted
//! as f32 weights, the fitted scaler as an f32 affine map
//! ([`ScalerF32`]), and the whole `begin`/`pack`/`forward`/`emit_into`
//! round runs in f32. At serving batch sizes the GEMMs are memory-bound,
//! so halving the bytes per weight roughly doubles effective bandwidth.
//!
//! Two deliberate differences from the f64 batch:
//!
//! * **Snapshots, not references.** The f64 `InferBatch` reads the leader's
//!   live parameters at every call, so one workspace serves a whole
//!   architecture *group*. An `InferBatchF32` owns converted copies, so the
//!   fleet keeps one per *cohort* and re-syncs it with [`refresh`] on the
//!   same dirty-on-training-event hook that rebuilds cohort membership.
//!   Consequently `pack`/`forward`/`emit_into` need no leader argument.
//! * **Tolerance, not parity.** Outputs agree with the f64 path to f32
//!   relative accuracy (asserted in the tests below); they feed the
//!   nonconformity scorer but never any training state, so the workspace's
//!   bitwise-parity proofs are untouched.
//!
//! [`refresh`]: InferBatchF32::refresh

use crate::ae::TwoLayerAe;
use crate::batch_infer::{forecast_buf, reconstruction_buf};
use crate::nbeats::NBeats;
use crate::scaler::ScalerF32;
use crate::usad::Usad;
use sad_core::{FeatureVector, ModelOutput, StreamModel};
use sad_nn::{InferPlan, InferPlanWorkspace, Mlp};
use sad_tensor::Matrix;

/// One snapshotted network plus its batch workspace.
#[derive(Debug, Clone)]
struct PlanWs {
    plan: InferPlan,
    ws: InferPlanWorkspace,
}

impl PlanWs {
    fn new(mlp: &Mlp, capacity: usize) -> Self {
        let plan = mlp.infer_plan();
        let ws = plan.workspace(capacity);
        Self { plan, ws }
    }

    fn forward(&mut self) {
        self.plan.forward_batch(&mut self.ws);
    }
}

/// Per-block plans for the N-BEATS residual stack.
#[derive(Debug, Clone)]
struct NBeatsBlockPlans {
    trunk: PlanWs,
    backcast: PlanWs,
    forecast: PlanWs,
}

enum BatchInnerF32 {
    Ae {
        net: PlanWs,
        scaler: Option<ScalerF32>,
    },
    Usad {
        encoder: PlanWs,
        dec1: PlanWs,
        scaler: Option<ScalerF32>,
    },
    NBeats {
        blocks: Vec<NBeatsBlockPlans>,
        /// `B×n` running forecast sum `Σ_l ŷ_l`.
        forecast: Matrix<f32>,
        /// `w·N` scratch for the scaled full window before the
        /// history/target split.
        scratch: Vec<f32>,
        scaler: Option<ScalerF32>,
    },
}

/// Reusable f32 batched-inference snapshot for one cohort.
///
/// Per-step loop: `begin(rows)` → `pack(row, x)` per stream → `forward()`
/// → `emit_into(row, out)` per stream. All buffers are sized once for
/// `capacity` rows and the snapshot re-syncs in place, so steady-state
/// rounds (including post-training [`refresh`]es) perform zero heap
/// allocations.
///
/// [`refresh`]: InferBatchF32::refresh
pub struct InferBatchF32 {
    inner: BatchInnerF32,
    capacity: usize,
    rows: usize,
}

impl InferBatchF32 {
    /// Snapshots `leader`'s inference state, or `None` when the model is
    /// not batchable (same eligibility as [`crate::batch_arch_key`]).
    pub fn new(leader: &dyn StreamModel, capacity: usize) -> Option<Self> {
        assert!(capacity > 0, "batch capacity must be positive");
        let any = leader.as_any()?;
        let inner = if let Some(ae) = any.downcast_ref::<TwoLayerAe>() {
            let (net, scaler) = ae.inference_parts()?;
            BatchInnerF32::Ae {
                net: PlanWs::new(net, capacity),
                scaler: scaler.map(ScalerF32::from_standardizer),
            }
        } else if let Some(usad) = any.downcast_ref::<Usad>() {
            let (encoder, dec1, scaler) = usad.inference_parts()?;
            BatchInnerF32::Usad {
                encoder: PlanWs::new(encoder, capacity),
                dec1: PlanWs::new(dec1, capacity),
                scaler: scaler.map(ScalerF32::from_minmax),
            }
        } else if let Some(nb) = any.downcast_ref::<NBeats>() {
            let (blocks, scaler) = nb.inference_parts()?;
            let input = blocks[0].trunk.in_dim();
            let output = blocks[0].forecast_head.out_dim();
            BatchInnerF32::NBeats {
                blocks: blocks
                    .iter()
                    .map(|b| NBeatsBlockPlans {
                        trunk: PlanWs::new(&b.trunk, capacity),
                        backcast: PlanWs::new(&b.backcast_head, capacity),
                        forecast: PlanWs::new(&b.forecast_head, capacity),
                    })
                    .collect(),
                forecast: Matrix::zeros(capacity, output),
                scratch: vec![0.0; input + output],
                scaler: scaler.map(ScalerF32::from_standardizer),
            }
        } else {
            return None;
        };
        Some(Self { inner, capacity, rows: 0 })
    }

    /// Maximum rows per forward pass.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Re-converts every snapshotted parameter from `leader` in place —
    /// the training-event hook. Allocation-free as long as the leader's
    /// architecture (and scaler presence) is unchanged, which is the
    /// cohort invariant; otherwise panics.
    ///
    /// # Panics
    /// Panics if `leader` is a different model kind/shape than the
    /// snapshot, or its scaler appeared/disappeared.
    pub fn refresh(&mut self, leader: &dyn StreamModel) {
        let any = leader.as_any().expect("batchable leader");
        match &mut self.inner {
            BatchInnerF32::Ae { net, scaler } => {
                let (mlp, s) = any
                    .downcast_ref::<TwoLayerAe>()
                    .expect("AE snapshot refreshed from AE leader")
                    .inference_parts()
                    .expect("fitted leader");
                net.plan.refresh(mlp);
                refresh_scaler(scaler, s, ScalerF32::refresh_standardizer);
            }
            BatchInnerF32::Usad { encoder, dec1, scaler } => {
                let (e, d1, s) = any
                    .downcast_ref::<Usad>()
                    .expect("USAD snapshot refreshed from USAD leader")
                    .inference_parts()
                    .expect("fitted leader");
                encoder.plan.refresh(e);
                dec1.plan.refresh(d1);
                refresh_scaler(scaler, s, ScalerF32::refresh_minmax);
            }
            BatchInnerF32::NBeats { blocks, scaler, .. } => {
                let (nets, s) = any
                    .downcast_ref::<NBeats>()
                    .expect("N-BEATS snapshot refreshed from N-BEATS leader")
                    .inference_parts()
                    .expect("fitted leader");
                assert_eq!(blocks.len(), nets.len(), "N-BEATS block count mismatch");
                for (plans, net) in blocks.iter_mut().zip(nets) {
                    plans.trunk.plan.refresh(&net.trunk);
                    plans.backcast.plan.refresh(&net.backcast_head);
                    plans.forecast.plan.refresh(&net.forecast_head);
                }
                refresh_scaler(scaler, s, ScalerF32::refresh_standardizer);
            }
        }
    }

    /// Starts a round of `rows ≤ capacity` streams.
    pub fn begin(&mut self, rows: usize) {
        assert!(rows > 0 && rows <= self.capacity, "rows {rows} out of 1..={}", self.capacity);
        self.rows = rows;
        match &mut self.inner {
            BatchInnerF32::Ae { net, .. } => net.ws.set_batch(rows),
            BatchInnerF32::Usad { encoder, dec1, .. } => {
                encoder.ws.set_batch(rows);
                dec1.ws.set_batch(rows);
            }
            BatchInnerF32::NBeats { blocks, forecast, .. } => {
                for b in blocks.iter_mut() {
                    b.trunk.ws.set_batch(rows);
                    b.backcast.ws.set_batch(rows);
                    b.forecast.ws.set_batch(rows);
                }
                forecast.resize_rows(rows);
            }
        }
    }

    /// Loads stream `row`'s feature window through the snapshotted input
    /// scaling.
    pub fn pack(&mut self, row: usize, x: &FeatureVector) {
        assert!(row < self.rows, "row {row} out of batch of {}", self.rows);
        match &mut self.inner {
            BatchInnerF32::Ae { net, scaler } => {
                pack_row(scaler.as_ref(), x.as_slice(), net.ws.input_row_mut(row));
            }
            BatchInnerF32::Usad { encoder, scaler, .. } => {
                pack_row(scaler.as_ref(), x.as_slice(), encoder.ws.input_row_mut(row));
            }
            BatchInnerF32::NBeats { blocks, scratch, scaler, .. } => {
                assert!(x.w() >= 2, "N-BEATS needs at least two steps of history");
                pack_row(scaler.as_ref(), x.as_slice(), scratch);
                let split = scratch.len() - x.n();
                blocks[0].trunk.ws.input_row_mut(row).copy_from_slice(&scratch[..split]);
            }
        }
    }

    /// Runs the snapshotted forward pass(es) for the whole batch.
    pub fn forward(&mut self) {
        match &mut self.inner {
            BatchInnerF32::Ae { net, .. } => net.forward(),
            BatchInnerF32::Usad { encoder, dec1, .. } => {
                encoder.forward();
                dec1.ws.input_mut().copy_from(encoder.ws.output());
                dec1.forward();
            }
            BatchInnerF32::NBeats { blocks, forecast, .. } => {
                let rows = self.rows;
                let n_blocks = blocks.len();
                for l in 0..n_blocks {
                    {
                        let bb = &mut blocks[l];
                        bb.trunk.forward();
                        bb.backcast.ws.input_mut().copy_from(bb.trunk.ws.output());
                        bb.backcast.forward();
                        bb.forecast.ws.input_mut().copy_from(bb.trunk.ws.output());
                        bb.forecast.forward();
                        if l == 0 {
                            forecast.copy_from(bb.forecast.ws.output());
                        } else {
                            for b in 0..rows {
                                for (acc, &fv) in forecast
                                    .row_mut(b)
                                    .iter_mut()
                                    .zip(bb.forecast.ws.output().row(b))
                                {
                                    *acc += fv;
                                }
                            }
                        }
                    }
                    // x_{l+1} = x_l − x̂_l into the next block's trunk input.
                    if l + 1 < n_blocks {
                        let (cur, rest) = blocks.split_at_mut(l + 1);
                        let bb = &cur[l];
                        let next = &mut rest[0];
                        for b in 0..rows {
                            for ((o, &r), &bv) in next
                                .trunk
                                .ws
                                .input_row_mut(b)
                                .iter_mut()
                                .zip(bb.trunk.ws.input().row(b))
                                .zip(bb.backcast.ws.output().row(b))
                            {
                                *o = r - bv;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Writes stream `row`'s model output into `out`, widening back to f64
    /// raw units through the snapshotted inverse scaling. Reuses `out`'s
    /// buffer when the variant and length match, as the f64 path does.
    pub fn emit_into(&self, row: usize, out: &mut ModelOutput) {
        assert!(row < self.rows, "row {row} out of batch of {}", self.rows);
        match &self.inner {
            BatchInnerF32::Ae { net, scaler } => {
                let z = net.ws.output_row(row);
                emit_row(scaler.as_ref(), z, reconstruction_buf(out, z.len()));
            }
            BatchInnerF32::Usad { dec1, scaler, .. } => {
                let z = dec1.ws.output_row(row);
                emit_row(scaler.as_ref(), z, reconstruction_buf(out, z.len()));
            }
            BatchInnerF32::NBeats { forecast, scaler, .. } => {
                let z = forecast.row(row);
                let buf = forecast_buf(out, z.len());
                match scaler {
                    Some(s) => s.inverse_tail_into(z, buf),
                    None => widen(z, buf),
                }
            }
        }
    }
}

fn pack_row(scaler: Option<&ScalerF32>, x: &[f64], out: &mut [f32]) {
    match scaler {
        Some(s) => s.transform_into(x, out),
        None => {
            for (o, &v) in out.iter_mut().zip(x) {
                *o = v as f32;
            }
        }
    }
}

fn emit_row(scaler: Option<&ScalerF32>, z: &[f32], out: &mut [f64]) {
    match scaler {
        Some(s) => s.inverse_into(z, out),
        None => widen(z, out),
    }
}

fn widen(z: &[f32], out: &mut [f64]) {
    for (o, &v) in out.iter_mut().zip(z) {
        *o = v as f64;
    }
}

fn refresh_scaler<S>(snap: &mut Option<ScalerF32>, live: Option<&S>, f: impl Fn(&mut ScalerF32, &S)) {
    match (snap, live) {
        (None, None) => {}
        (Some(snap), Some(live)) => f(snap, live),
        _ => panic!("scaler presence changed across refresh"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine_windows(count: usize, w: usize, phase: f64) -> Vec<FeatureVector> {
        (0..count)
            .map(|s| {
                let data: Vec<f64> = (0..w)
                    .flat_map(|i| {
                        let t = (s + i) as f64 * 0.3 + phase;
                        vec![t.sin(), (t * 0.5).cos() * 2.0]
                    })
                    .collect();
                FeatureVector::new(data, w, 2)
            })
            .collect()
    }

    const REL_TOL: f64 = 1e-4;

    fn assert_outputs_close(got: &ModelOutput, want: &ModelOutput, ctx: &str) {
        match (got, want) {
            (ModelOutput::Reconstruction(x), ModelOutput::Reconstruction(y))
            | (ModelOutput::Forecast(x), ModelOutput::Forecast(y)) => {
                assert_eq!(x.len(), y.len(), "{ctx}: length");
                for (i, (p, q)) in x.iter().zip(y).enumerate() {
                    let err = (p - q).abs();
                    let bound = REL_TOL * q.abs().max(1.0);
                    assert!(err <= bound, "{ctx}[{i}]: f32 {p} vs f64 {q} (err {err:.3e})");
                }
            }
            other => panic!("{ctx}: variant mismatch {other:?}"),
        }
    }

    /// Drives `probes` through the f32 batch and checks every row against
    /// the model's own f64 `predict` within f32 tolerance.
    fn check_f32_batch_close_to_predict(model: &mut dyn StreamModel, probes: &[FeatureVector]) {
        let mut batch = InferBatchF32::new(model, probes.len()).expect("batchable model");
        assert_eq!(batch.capacity(), probes.len());
        for take in [probes.len(), 1] {
            batch.begin(take);
            for (row, x) in probes[..take].iter().enumerate() {
                batch.pack(row, x);
            }
            batch.forward();
            for (row, x) in probes[..take].iter().enumerate() {
                let mut got = ModelOutput::Score(0.0);
                batch.emit_into(row, &mut got);
                let want = model.predict(x);
                assert_outputs_close(&got, &want, &format!("take {take}, row {row}"));
            }
        }
    }

    #[test]
    fn ae_f32_batch_close_to_predict() {
        let train = sine_windows(40, 8, 0.0);
        let mut ae = TwoLayerAe::new(8, 5e-3, 7);
        ae.fit_initial(&train, 20);
        check_f32_batch_close_to_predict(&mut ae, &train[10..16]);
    }

    #[test]
    fn usad_f32_batch_close_to_predict() {
        let train = sine_windows(30, 6, 0.0);
        let mut usad = Usad::new(3, 2e-3, 5);
        usad.fit_initial(&train, 15);
        check_f32_batch_close_to_predict(&mut usad, &train[5..10]);
    }

    #[test]
    fn nbeats_f32_batch_close_to_predict() {
        let train = sine_windows(40, 8, 0.0);
        let mut nb = NBeats::new(2, 16, 6, 2e-3, 11);
        nb.fit_initial(&train, 15);
        check_f32_batch_close_to_predict(&mut nb, &train[20..25]);
        let mut nbi = NBeats::interpretable(12, 3, 2, 2e-3, 7);
        nbi.fit_initial(&train, 10);
        check_f32_batch_close_to_predict(&mut nbi, &train[12..17]);
    }

    #[test]
    fn unscaled_ae_f32_batch_close_to_predict() {
        let mut ae = TwoLayerAe::new(4, 1e-3, 1);
        let x = FeatureVector::new(vec![1.0, 2.0, 3.0, 4.0], 2, 2);
        let _ = ae.predict(&x); // materializes the net, no scaler
        check_f32_batch_close_to_predict(&mut ae, std::slice::from_ref(&x));
    }

    #[test]
    fn refresh_tracks_fine_tuning() {
        let train = sine_windows(40, 8, 0.0);
        let mut ae = TwoLayerAe::new(8, 5e-3, 7);
        ae.fit_initial(&train, 10);
        let mut batch = InferBatchF32::new(&ae, 4).unwrap();

        ae.fine_tune(&train);
        ae.fine_tune(&train[5..]);

        batch.refresh(&ae);
        let x = &train[3];
        batch.begin(1);
        batch.pack(0, x);
        batch.forward();
        let mut got = ModelOutput::Score(0.0);
        batch.emit_into(0, &mut got);
        let want = ae.predict(x);
        assert_outputs_close(&got, &want, "refreshed probe");
    }

    #[test]
    fn non_batchable_models_return_none() {
        let ae = TwoLayerAe::new(8, 5e-3, 1); // no net yet
        assert!(InferBatchF32::new(&ae, 4).is_none());
        let knn = crate::KnnDistanceModel::new(3);
        assert!(InferBatchF32::new(&knn, 4).is_none());
    }
}
