//! k-nearest-neighbour distance model — the SAFARI special case.
//!
//! Definition III.2 notes that when the reference parameters `θ` consist of
//! feature vectors only, the original SAFARI definition is recovered. This
//! model demonstrates that special case inside the extended framework: it
//! has **no trainable parameters** at all — its "prediction" is the
//! distance from `x_t` to its k-th nearest neighbour in the current
//! training set, squashed into `[0, 1]`.
//!
//! It doubles as the similarity-based baseline family the related work
//! surveys (§II), and exercises the framework path where `fine_tune` is a
//! no-op (the training set *is* the model). Listed as an extension in
//! DESIGN.md; not part of the paper's Table I grid.

use sad_core::{FeatureVector, ModelOutput, StreamModel};
use sad_tensor::{Matrix, Scalar};

/// Distance-to-kth-neighbour scoring over the live training set.
#[derive(Debug, Clone)]
pub struct KnnDistanceModel {
    k: usize,
    /// Reference distance scale, calibrated on the warm-up training set so
    /// a "typical" neighbour distance maps to a score of 0.5.
    scale: f64,
    reference: Vec<FeatureVector>,
    /// The reference set packed transposed (`dim × m`, feature `j` of
    /// reference `c` at `(j, c)`) so the per-query sweep walks contiguous
    /// rows with `Scalar::sq_dist_accum`. Rebuilt only on training events
    /// (`fit_initial` / `fine_tune`), never per query.
    snapshot: Matrix<f64>,
    /// Per-query squared-distance scratch — reused across calls so the
    /// steady-state predict path stays allocation-free.
    dists: Vec<f64>,
}

impl KnnDistanceModel {
    /// Creates a kNN model with neighbourhood size `k`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self {
            k,
            scale: 1.0,
            reference: Vec::new(),
            snapshot: Matrix::zeros(0, 0),
            dists: Vec::new(),
        }
    }

    /// Neighbourhood size.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Euclidean distance between flattened feature vectors.
    fn distance(a: &FeatureVector, b: &FeatureVector) -> f64 {
        a.as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }

    /// Distance from `x` to its `k`-th nearest neighbour in `set`.
    ///
    /// Uses `select_nth_unstable_by` — an `O(m)` quickselect instead of
    /// the previous full `O(m log m)` sort; only the `k`-th order
    /// statistic is needed, and selection returns the identical value
    /// (`total_cmp` equality is bit equality).
    ///
    /// This is the **frozen legacy reference** for the snapshot sweep:
    /// `snapshot_kth_distance` must stay bitwise-equal to it (asserted in
    /// `tests/knn_snapshot_parity.rs`). Public for those parity tests and
    /// the `knn_sweep` bench; the hot paths route through the snapshot.
    pub fn kth_distance_of(k: usize, x: &FeatureVector, set: &[FeatureVector]) -> Option<f64> {
        if set.is_empty() {
            return None;
        }
        let mut dists: Vec<f64> = set.iter().map(|r| Self::distance(x, r)).collect();
        let idx = (k - 1).min(dists.len() - 1);
        let (_, kth, _) = dists.select_nth_unstable_by(idx, f64::total_cmp);
        Some(*kth)
    }

    /// Repacks the reference set into the transposed snapshot.
    fn rebuild_snapshot(&mut self) {
        let m = self.reference.len();
        let dim = self.reference.first().map_or(0, |r| r.as_slice().len());
        self.snapshot = Matrix::from_fn(dim, m, |j, c| self.reference[c].as_slice()[j]);
    }

    /// Distance from `x` to its `k`-th nearest neighbour, computed as one
    /// SIMD-friendly sweep over the packed snapshot.
    ///
    /// Per feature `j`, `Scalar::sq_dist_accum` adds `(x_j − ref_j)²` into
    /// every reference's running total at once; ascending-`j` accumulation
    /// from `0.0` reproduces the legacy per-point sequential sum bit for
    /// bit, so the quickselect over the resulting multiset returns the
    /// identical k-th value (ties and `-0.0` included — `total_cmp` is a
    /// total order on bits).
    pub fn snapshot_kth_distance(&mut self, k: usize, x: &FeatureVector) -> Option<f64> {
        let m = self.snapshot.cols();
        if m == 0 {
            return None;
        }
        self.dists.clear();
        self.dists.resize(m, 0.0);
        for (j, &xj) in x.as_slice().iter().take(self.snapshot.rows()).enumerate() {
            f64::sq_dist_accum(xj, self.snapshot.row(j), &mut self.dists);
        }
        for d in &mut self.dists {
            *d = d.sqrt();
        }
        let idx = (k - 1).min(m - 1);
        let (_, kth, _) = self.dists.select_nth_unstable_by(idx, f64::total_cmp);
        Some(*kth)
    }
}

impl StreamModel for KnnDistanceModel {
    fn name(&self) -> &'static str {
        "kNN distance"
    }

    fn predict(&mut self, x: &FeatureVector) -> ModelOutput {
        let k = self.k;
        match self.snapshot_kth_distance(k, x) {
            // d/(d+scale) maps [0, ∞) monotonically onto [0, 1) with the
            // calibrated typical distance landing at 0.5.
            Some(d) => ModelOutput::Score(d / (d + self.scale.max(f64::MIN_POSITIVE))),
            None => ModelOutput::Score(0.5),
        }
    }

    fn fit_initial(&mut self, train: &[FeatureVector], _epochs: usize) {
        self.reference = train.to_vec();
        self.rebuild_snapshot();
        // Calibrate: median of within-set kth-neighbour distances. Skip
        // self-distance by asking for the (k+1)-th within the set — the
        // old code cloned the entire model (reference set included) per
        // training point just to carry that k+1. Routed through the
        // snapshot sweep (bitwise-equal to the per-point path), turning
        // the O(m²·dim) calibration stride-friendly.
        let k1 = self.k + 1;
        let mut typical: Vec<f64> =
            train.iter().filter_map(|x| self.snapshot_kth_distance(k1, x)).collect();
        if !typical.is_empty() {
            let mid = typical.len() / 2;
            let (_, median, _) = typical.select_nth_unstable_by(mid, f64::total_cmp);
            let median = *median;
            if median > 0.0 {
                self.scale = median;
            }
        }
    }

    fn fine_tune(&mut self, train: &[FeatureVector]) {
        // θ_model is empty: "fine-tuning" just refreshes the reference set
        // (the training set IS the model — the SAFARI special case). The
        // packed snapshot is rebuilt here, on the training event, never on
        // the per-query path.
        self.reference = train.to_vec();
        self.rebuild_snapshot();
    }

    fn clone_box(&self) -> Box<dyn StreamModel> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fv(a: f64, b: f64) -> FeatureVector {
        FeatureVector::new(vec![a, b], 2, 1)
    }

    fn cluster() -> Vec<FeatureVector> {
        (0..30).map(|i| fv((i % 6) as f64 * 0.1, (i % 5) as f64 * 0.1)).collect()
    }

    #[test]
    fn unfit_model_is_indistinct() {
        let mut m = KnnDistanceModel::new(3);
        assert_eq!(m.predict(&fv(0.0, 0.0)), ModelOutput::Score(0.5));
    }

    #[test]
    fn outlier_scores_higher_than_inlier() {
        let mut m = KnnDistanceModel::new(3);
        m.fit_initial(&cluster(), 1);
        let inlier = match m.predict(&fv(0.2, 0.2)) {
            ModelOutput::Score(s) => s,
            _ => unreachable!(),
        };
        let outlier = match m.predict(&fv(10.0, 10.0)) {
            ModelOutput::Score(s) => s,
            _ => unreachable!(),
        };
        assert!(outlier > 0.9, "far point saturates: {outlier}");
        assert!(outlier > inlier + 0.3, "separation: {outlier} vs {inlier}");
    }

    #[test]
    fn scores_live_in_unit_interval() {
        let mut m = KnnDistanceModel::new(2);
        m.fit_initial(&cluster(), 1);
        for i in 0..50 {
            let x = fv(i as f64 - 25.0, (i * 3) as f64 % 7.0);
            match m.predict(&x) {
                ModelOutput::Score(s) => assert!((0.0..=1.0).contains(&s)),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn fine_tune_swaps_reference_set() {
        let mut m = KnnDistanceModel::new(1);
        m.fit_initial(&cluster(), 1);
        let before = match m.predict(&fv(5.0, 5.0)) {
            ModelOutput::Score(s) => s,
            _ => unreachable!(),
        };
        // Move the reference set to the probe's neighbourhood.
        let shifted: Vec<FeatureVector> = (0..30).map(|i| fv(5.0 + (i % 4) as f64 * 0.05, 5.0)).collect();
        m.fine_tune(&shifted);
        let after = match m.predict(&fv(5.0, 5.0)) {
            ModelOutput::Score(s) => s,
            _ => unreachable!(),
        };
        assert!(after < before, "refreshed reference set adapts: {before} -> {after}");
    }

    #[test]
    fn calibration_puts_typical_points_midscale() {
        let mut m = KnnDistanceModel::new(3);
        m.fit_initial(&cluster(), 1);
        let scores: Vec<f64> = cluster()
            .iter()
            .map(|x| match m.predict(x) {
                ModelOutput::Score(s) => s,
                _ => unreachable!(),
            })
            .collect();
        let mean = scores.iter().sum::<f64>() / scores.len() as f64;
        assert!((0.1..0.8).contains(&mean), "in-distribution mean score {mean}");
    }

    #[test]
    fn works_inside_a_detector() {
        use sad_core::{Detector, DetectorConfig, MovingAverage, MuSigmaChange, SlidingWindowSet};
        let config = DetectorConfig {
            window: 6,
            channels: 2,
            warmup: 60,
            initial_epochs: 1,
            fine_tune_epochs: 1,
        };
        let mut det = Detector::new(
            config,
            Box::new(KnnDistanceModel::new(3)),
            Box::new(SlidingWindowSet::new(20)),
            Box::new(MuSigmaChange::new()),
            Box::new(MovingAverage::new(5)),
        );
        let mut peak: f64 = 0.0;
        for t in 0..250usize {
            let base = (t as f64 * 0.2).sin();
            let s = if (200..210).contains(&t) { vec![9.0, -9.0] } else { vec![base, base * 0.5] };
            if let Some(out) = det.step(&s) {
                if (200..216).contains(&t) {
                    peak = peak.max(out.anomaly_score);
                }
            }
        }
        assert!(peak > 0.6, "planted anomaly visible to kNN detector: {peak}");
    }
}
