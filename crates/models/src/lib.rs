//! # sad-models
//!
//! The five machine-learning models evaluated in the paper (§IV-C), each
//! implementing `sad_core::StreamModel`, plus the vector-autoregressive
//! model the paper describes as the correlation-aware extension of online
//! ARIMA (described in §IV-C but not part of the Table I evaluation grid).
//!
//! | Model | Output | Module |
//! |---|---|---|
//! | Online ARIMA (Liu et al. 2016) | forecast of `s_t` | [`arima`] |
//! | VAR (least squares) | forecast of `s_t` | [`var`] |
//! | PCB-iForest (Heigl et al. 2021) | direct iForest score | [`pcb`] |
//! | 2-layer autoencoder | reconstruction of `x_t` | [`ae`] |
//! | USAD (Audibert et al. 2020) | reconstruction of `x_t` | [`usad`] |
//! | kNN distance (SAFARI special case, extension) | direct score | [`knn`] |
//! | N-BEATS (Oreshkin et al. 2020) | forecast of `s_t` | [`nbeats`] |
//!
//! [`builder`] turns a `sad_core::AlgorithmSpec` (one of the 26 Table I
//! combinations) into a runnable `sad_core::Detector`.
//!
//! The neural models standardize inputs with per-dimension statistics fit
//! on the warm-up training set ([`scaler`]) — reference implementations of
//! AE/USAD/N-BEATS do the same in their data loaders; predictions are
//! mapped back to raw units before the cosine nonconformity is computed.

pub mod ae;
pub mod arima;
pub mod batch_infer;
pub mod batch_infer_f32;
pub mod builder;
pub mod knn;
pub mod nbeats;
pub mod pcb;
pub mod scaler;
pub mod usad;
pub mod var;

pub use ae::TwoLayerAe;
pub use arima::OnlineArima;
pub use batch_infer::{batch_arch_key, infer_state_equal, ArchKey, ArchKind, InferBatch};
pub use batch_infer_f32::InferBatchF32;
pub use builder::{
    build_detector, build_model, build_scorer, build_scorer_bank, build_shared_warmup,
    build_task1, build_task2, BuildParams,
};
pub use knn::KnnDistanceModel;
pub use nbeats::{BasisKind, NBeats};
pub use pcb::PcbIForestModel;
pub use scaler::{MinMaxScaler, ScalerF32, Standardizer};
pub use usad::Usad;
pub use var::VarModel;
