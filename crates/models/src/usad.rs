//! USAD — UnSupervised Anomaly Detection adversarial autoencoder
//! (Audibert et al. 2020; paper §IV-C).
//!
//! One encoder `E` is shared by two decoders `D₁, D₂`, giving two
//! autoencoders `AE_i = D_i ∘ E`. Training alternates two objectives whose
//! adversarial weighting grows with the epoch counter `n`:
//!
//! ```text
//! L_AE1 = (1/n)·R₁ + ((n−1)/n)·R_both        (AE₁ fools AE₂)
//! L_AE2 = (1/n)·R₂ − ((n−1)/n)·R_both        (AE₂ spots AE₁'s fakes)
//! R_i    = ‖x − AE_i(x)‖²,   R_both = ‖x − AE₂(AE₁(x))‖²
//!
//! Gradients use the element-mean form of the reconstruction errors (as in
//! the reference implementation's `torch.mean((batch − w)²)`), which keeps
//! the adversarial phase stable independent of the window dimensionality.
//! ```
//!
//! With more epochs the pure reconstruction terms fade in favour of the
//! adversarial terms. The gradients flow through the *shared* encoder on
//! every path (including the re-encoding inside `AE₂(AE₁(x))`), which is
//! exactly what `sad_nn::Mlp::backward`'s input-gradient chaining provides.
//!
//! In the framework the model reports `AE₁(x)` as its reconstruction; the
//! cosine nonconformity then compares it against `x_t` (§IV-D).

use crate::scaler::MinMaxScaler;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sad_core::{FeatureVector, ModelOutput, StreamModel};
use sad_nn::{Activation, Mlp, MlpGrads, MlpWorkspace};
use sad_tensor::{Adam, Matrix};

/// Reusable batched-training buffers for the five forward instances of the
/// adversarial step (`E(x)`, `D₁(z)`, `E(r₁)`, `D₂(z₂)`, `D₂(z)`) plus the
/// gradient accumulators. Sized once; the steady-state fine-tune loop does
/// not allocate.
#[derive(Clone)]
struct UsadBuffers {
    /// `E(x)` — its input rows hold the scaled minibatch `z_in`.
    ws_e: MlpWorkspace,
    /// `D₁(z)` → `r₁`.
    ws_d1: MlpWorkspace,
    /// `E(r₁)` → `z₂` (the re-encoding; a second workspace on the shared
    /// encoder, because both forward instances' activations are needed by
    /// the chained backward pass).
    ws_e2: MlpWorkspace,
    /// `D₂(z₂)` → `R_both`.
    ws_d2b: MlpWorkspace,
    /// `D₂(z)` → `r₂` (phase 2 only).
    ws_d2r: MlpWorkspace,
    g_e: MlpGrads,
    g_d1: MlpGrads,
    g_d2: MlpGrads,
    /// D₁ is frozen in phase 2: its gradients are computed (the chain needs
    /// `∂L/∂z` through it) but discarded.
    g_d1_discard: MlpGrads,
    /// D₂ is frozen in phase 1.
    g_d2_discard: MlpGrads,
}

/// The USAD adversarial autoencoder.
#[derive(Clone)]
pub struct Usad {
    encoder: Option<Mlp>,
    dec1: Option<Mlp>,
    dec2: Option<Mlp>,
    scaler: Option<MinMaxScaler>,
    bufs: Option<UsadBuffers>,
    opt_e1: Adam,
    opt_d1: Adam,
    opt_e2: Adam,
    opt_d2: Adam,
    latent: usize,
    lr: f64,
    batch_size: usize,
    seed: u64,
    /// Training epoch counter `n` (1-based, as in the loss definition).
    epoch: usize,
}

impl Usad {
    /// Creates a USAD model with latent width `latent` and Adam rate `lr`.
    pub fn new(latent: usize, lr: f64, seed: u64) -> Self {
        assert!(latent > 0, "latent width must be positive");
        Self {
            encoder: None,
            dec1: None,
            dec2: None,
            scaler: None,
            bufs: None,
            opt_e1: Adam::new(lr),
            opt_d1: Adam::new(lr),
            opt_e2: Adam::new(lr),
            opt_d2: Adam::new(lr),
            latent,
            lr,
            batch_size: 1,
            seed,
            epoch: 0,
        }
    }

    /// A reasonable default: latent = dim/8 clamped to [2, 16], lr 1e-3.
    pub fn for_dim(dim: usize, seed: u64) -> Self {
        Self::new((dim / 8).clamp(2, 16), 1e-3, seed)
    }

    /// Sets the training minibatch size (default 1 = per-sample updates,
    /// matching the original trajectory; larger batches take one
    /// mean-gradient adversarial step per chunk, USAD's own minibatch
    /// formulation).
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        self.batch_size = batch_size;
        self.bufs = None; // resized lazily on next training call
        self
    }

    /// Current epoch counter `n`.
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    fn ensure_nets(&mut self, dim: usize) {
        if self.encoder.is_some() {
            self.ensure_bufs();
            return;
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Hidden widths scale with the input but are capped: beyond ~64
        // units the reconstruction quality of these corpora saturates while
        // the per-step cost keeps growing quadratically.
        let h1 = (dim / 2).min(64).max(self.latent * 2).max(2);
        let h2 = (dim / 4).min(32).max(self.latent).max(2);
        // Paper: E = FC₃∘FC₂∘FC₁ and mirrored 3-layer decoders, each layer
        // FC_i(x) = σ(xW + b). Hidden layers use zero-centered tanh (trains
        // far better than the logistic sigmoid, which saturates and starves
        // the stacked layers of gradient); the decoders end in the paper's
        // sigmoid so outputs are bounded to [0, 1] — together with min-max
        // input scaling this bounds R_both and keeps the phase-2
        // maximization from diverging (as in the reference implementation).
        let enc_acts = [Activation::Tanh, Activation::Tanh, Activation::Identity];
        let dec_acts = [Activation::Tanh, Activation::Tanh, Activation::Sigmoid];
        self.encoder = Some(Mlp::new(&[dim, h1, h2, self.latent], &enc_acts, &mut rng));
        self.dec1 = Some(Mlp::new(&[self.latent, h2, h1, dim], &dec_acts, &mut rng));
        self.dec2 = Some(Mlp::new(&[self.latent, h2, h1, dim], &dec_acts, &mut rng));
        let _ = self.lr;
        self.ensure_bufs();
    }

    fn ensure_bufs(&mut self) {
        if self.bufs.is_some() {
            return;
        }
        let bs = self.batch_size;
        let encoder = self.encoder.as_ref().expect("nets initialized");
        let dec1 = self.dec1.as_ref().expect("nets initialized");
        let dec2 = self.dec2.as_ref().expect("nets initialized");
        self.bufs = Some(UsadBuffers {
            ws_e: encoder.workspace(bs),
            ws_d1: dec1.workspace(bs),
            ws_e2: encoder.workspace(bs),
            ws_d2b: dec2.workspace(bs),
            ws_d2r: dec2.workspace(bs),
            g_e: encoder.zero_grads(),
            g_d1: dec1.zero_grads(),
            g_d2: dec2.zero_grads(),
            g_d1_discard: dec1.zero_grads(),
            g_d2_discard: dec2.zero_grads(),
        });
    }

    fn scaled(&self, x: &FeatureVector) -> Vec<f64> {
        match &self.scaler {
            Some(s) => s.transform(x.as_slice()),
            None => x.as_slice().to_vec(),
        }
    }

    /// Loads one minibatch of scaled inputs into the training buffers.
    fn load_chunk(&mut self, chunk: &[FeatureVector]) {
        let bufs = self.bufs.as_mut().expect("buffers initialized");
        let b = chunk.len();
        bufs.ws_e.set_batch(b);
        bufs.ws_d1.set_batch(b);
        bufs.ws_e2.set_batch(b);
        bufs.ws_d2b.set_batch(b);
        bufs.ws_d2r.set_batch(b);
        for (i, x) in chunk.iter().enumerate() {
            match &self.scaler {
                Some(s) => s.transform_into(x.as_slice(), bufs.ws_e.input_row_mut(i)),
                None => bufs.ws_e.input_row_mut(i).copy_from_slice(x.as_slice()),
            }
        }
    }

    /// One adversarial training step on the minibatch currently loaded in
    /// the buffers (see [`Self::load_chunk`]). Batched through the
    /// workspace path; zero heap allocations. At batch size 1 this is
    /// bitwise identical to the original per-sample adversarial step; for
    /// larger batches the summed gradients are scaled by `1/B` before each
    /// Adam step (minibatch mean, as in the USAD reference).
    fn train_chunk(&mut self) {
        let n = self.epoch.max(1) as f64;
        let w_rec = 1.0 / n;
        let w_adv = (n - 1.0) / n;
        let encoder = self.encoder.as_mut().expect("nets initialized");
        let dec1 = self.dec1.as_mut().expect("nets initialized");
        let dec2 = self.dec2.as_mut().expect("nets initialized");
        let UsadBuffers {
            ws_e,
            ws_d1,
            ws_e2,
            ws_d2b,
            ws_d2r,
            g_e,
            g_d1,
            g_d2,
            g_d1_discard,
            g_d2_discard,
        } = self.bufs.as_mut().expect("buffers initialized");
        let bsz = ws_e.batch();

        // ---- Phase 1: update {E, D1} on L_AE1 = w_rec·R1 + w_adv·R_both.
        {
            encoder.forward_batch(ws_e); // z
            ws_d1.input_mut().copy_from(ws_e.output());
            dec1.forward_batch(ws_d1); // r1
            ws_e2.input_mut().copy_from(ws_d1.output());
            encoder.forward_batch(ws_e2); // z2
            ws_d2b.input_mut().copy_from(ws_e2.output());
            dec2.forward_batch(ws_d2b); // rboth

            g_e.zero();
            g_d1.zero();
            g_d2_discard.zero(); // D2 frozen this phase

            // ∂L/∂rboth, back through D2 (param grads discarded) and the
            // re-encoding into ∂L/∂r1.
            mse_grad_rows_scaled(ws_d2b, ws_e.input(), w_adv);
            dec2.backward_batch(ws_d2b, g_d2_discard, true); // → g_z2
            ws_e2.grad_out_mut().copy_from(ws_d2b.grad_in());
            encoder.backward_batch(ws_e2, g_e, true); // → g_r1_adv

            // Direct reconstruction term ∂(w_rec·R1)/∂r1, plus the
            // adversarial term that flowed back through the re-encoding.
            {
                let (_, r1, go) = ws_d1.io_split();
                let z_in = ws_e.input();
                let adv = ws_e2.grad_in();
                let d = r1.cols();
                let scale = 2.0 / d.max(1) as f64;
                for b in 0..bsz {
                    for (((g, &p), &t), &a) in go
                        .row_mut(b)
                        .iter_mut()
                        .zip(r1.row(b))
                        .zip(z_in.row(b))
                        .zip(adv.row(b))
                    {
                        *g = scale * (p - t);
                        *g = *g * w_rec + a;
                    }
                }
            }
            dec1.backward_batch(ws_d1, g_d1, true); // → g_z
            ws_e.grad_out_mut().copy_from(ws_d1.grad_in());
            encoder.backward_batch(ws_e, g_e, false);

            if bsz > 1 {
                g_e.scale(1.0 / bsz as f64);
                g_d1.scale(1.0 / bsz as f64);
            }
            encoder.apply_grads(g_e, &mut self.opt_e1);
            dec1.apply_grads(g_d1, &mut self.opt_d1);
        }

        // ---- Phase 2: update {E, D2} on L_AE2 = w_rec·R2 − w_adv·R_both.
        {
            encoder.forward_batch(ws_e); // z (inputs still loaded)
            ws_d1.input_mut().copy_from(ws_e.output());
            dec1.forward_batch(ws_d1); // r1
            ws_e2.input_mut().copy_from(ws_d1.output());
            encoder.forward_batch(ws_e2); // z2
            ws_d2b.input_mut().copy_from(ws_e2.output());
            dec2.forward_batch(ws_d2b); // rboth
            ws_d2r.input_mut().copy_from(ws_e.output());
            dec2.forward_batch(ws_d2r); // r2

            g_e.zero();
            g_d2.zero();
            g_d1_discard.zero(); // D1 frozen this phase

            // + w_rec·R2 path: x → E → z → D2 → r2.
            mse_grad_rows_scaled(ws_d2r, ws_e.input(), w_rec);
            dec2.backward_batch(ws_d2r, g_d2, true); // → g_z_a

            // − w_adv·R_both path: …D1(E(x)) → E → z2 → D2 → rboth.
            mse_grad_rows_scaled(ws_d2b, ws_e.input(), -w_adv);
            dec2.backward_batch(ws_d2b, g_d2, true); // → g_z2
            ws_e2.grad_out_mut().copy_from(ws_d2b.grad_in());
            encoder.backward_batch(ws_e2, g_e, true); // → g_r1
            ws_d1.grad_out_mut().copy_from(ws_e2.grad_in());
            dec1.backward_batch(ws_d1, g_d1_discard, true); // → g_z_b

            // g_z = g_z_a + g_z_b, through the first encoding.
            {
                let go = ws_e.grad_out_mut();
                for b in 0..bsz {
                    for ((g, &a), &c) in
                        go.row_mut(b).iter_mut().zip(ws_d2r.grad_in().row(b)).zip(ws_d1.grad_in().row(b))
                    {
                        *g = a + c;
                    }
                }
            }
            encoder.backward_batch(ws_e, g_e, false);

            if bsz > 1 {
                g_e.scale(1.0 / bsz as f64);
                g_d2.scale(1.0 / bsz as f64);
            }
            encoder.apply_grads(g_e, &mut self.opt_e2);
            dec2.apply_grads(g_d2, &mut self.opt_d2);
        }
    }

    /// Inference state for the fleet's cross-stream batched stepping:
    /// `(encoder, decoder 1, fitted scaler)` — `predict` only touches
    /// `AE₁ = D₁ ∘ E`, so `dec2` does not participate. `None` until the
    /// networks exist.
    pub(crate) fn inference_parts(&self) -> Option<(&Mlp, &Mlp, Option<&MinMaxScaler>)> {
        match (&self.encoder, &self.dec1) {
            (Some(e), Some(d1)) => Some((e, d1, self.scaler.as_ref())),
            _ => None,
        }
    }

    /// Reconstruction `AE₁(x)` in standardized space.
    fn reconstruct_scaled(&self, z_in: &[f64]) -> Vec<f64> {
        let encoder = self.encoder.as_ref().expect("nets initialized");
        let dec1 = self.dec1.as_ref().expect("nets initialized");
        dec1.infer(&encoder.infer(z_in))
    }

    /// The USAD inference score `α·R₁ + β·R_both` (Audibert et al. Eq. 9),
    /// exposed for analyses beyond the framework's cosine nonconformity.
    pub fn usad_score(&mut self, x: &FeatureVector, alpha: f64, beta: f64) -> f64 {
        self.ensure_nets(x.dim());
        let z_in = self.scaled(x);
        let encoder = self.encoder.as_ref().expect("nets initialized");
        let dec1 = self.dec1.as_ref().expect("nets initialized");
        let dec2 = self.dec2.as_ref().expect("nets initialized");
        let r1 = dec1.infer(&encoder.infer(&z_in));
        let rboth = dec2.infer(&encoder.infer(&r1));
        let d = z_in.len() as f64;
        let r1_err: f64 = z_in.iter().zip(&r1).map(|(a, b)| (a - b) * (a - b)).sum::<f64>() / d;
        let rb_err: f64 = z_in.iter().zip(&rboth).map(|(a, b)| (a - b) * (a - b)).sum::<f64>() / d;
        alpha * r1_err + beta * rb_err
    }
}

/// Writes `factor · ∂mean((out − target)²)/∂out` into the workspace's output
/// gradient, row by row.
///
/// The two-operation form (`scale·(p − t)` then `*= factor`) replicates the
/// original per-sample code path (`mse_grad` followed by a separate scaling
/// pass) exactly, keeping batch size 1 bitwise identical to the per-sample
/// trajectory.
fn mse_grad_rows_scaled(ws: &mut MlpWorkspace, target: &Matrix, factor: f64) {
    let (_, out, go) = ws.io_split();
    let d = out.cols();
    let scale = 2.0 / d.max(1) as f64;
    for b in 0..out.rows() {
        for ((g, &p), &t) in go.row_mut(b).iter_mut().zip(out.row(b)).zip(target.row(b)) {
            *g = scale * (p - t);
            *g *= factor;
        }
    }
}

impl StreamModel for Usad {
    fn name(&self) -> &'static str {
        "USAD"
    }

    fn predict(&mut self, x: &FeatureVector) -> ModelOutput {
        self.ensure_nets(x.dim());
        let z_in = self.scaled(x);
        let recon_z = self.reconstruct_scaled(&z_in);
        let recon = match &self.scaler {
            Some(s) => s.inverse(&recon_z),
            None => recon_z,
        };
        ModelOutput::Reconstruction(recon)
    }

    fn fit_initial(&mut self, train: &[FeatureVector], epochs: usize) {
        if train.is_empty() {
            return;
        }
        self.scaler = Some(MinMaxScaler::fit(train));
        self.ensure_nets(train[0].dim());
        for _ in 0..epochs {
            self.fine_tune(train);
        }
    }

    fn fine_tune(&mut self, train: &[FeatureVector]) {
        if train.is_empty() {
            return;
        }
        self.ensure_nets(train[0].dim());
        self.epoch += 1;
        for chunk in train.chunks(self.batch_size) {
            self.load_chunk(chunk);
            self.train_chunk();
        }
    }

    fn clone_box(&self) -> Box<dyn StreamModel> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sad_core::nonconformity;

    fn sine_windows(count: usize, w: usize) -> Vec<FeatureVector> {
        (0..count)
            .map(|s| {
                let data: Vec<f64> = (0..w)
                    .flat_map(|i| {
                        let t = (s + i) as f64 * 0.4;
                        vec![t.sin(), (t * 0.7).cos()]
                    })
                    .collect();
                FeatureVector::new(data, w, 2)
            })
            .collect()
    }

    #[test]
    fn epoch_counter_advances_with_fine_tuning() {
        let mut usad = Usad::new(2, 1e-3, 1);
        let train = sine_windows(10, 6);
        assert_eq!(usad.epoch(), 0);
        usad.fit_initial(&train, 3);
        assert_eq!(usad.epoch(), 3);
        usad.fine_tune(&train);
        assert_eq!(usad.epoch(), 4);
    }

    #[test]
    fn training_reduces_reconstruction_error() {
        let train = sine_windows(30, 6);
        let mut usad = Usad::new(3, 2e-3, 5);
        let mut untrained = usad.clone();
        untrained.fit_initial(&train, 0);
        // Enough epochs to reach a tight reconstruction from any reasonable
        // Xavier init (the exact trajectory depends on the seeded RNG stream).
        usad.fit_initial(&train, 200);
        let probe = &train[15];
        let before = nonconformity(probe, &untrained.predict(probe));
        let after = nonconformity(probe, &usad.predict(probe));
        assert!(after < before, "USAD training must help: {before} -> {after}");
        assert!(after < 0.2, "trained reconstruction is close: {after}");
    }

    #[test]
    fn anomaly_scores_above_normal() {
        let train = sine_windows(30, 6);
        let mut usad = Usad::new(3, 2e-3, 5);
        usad.fit_initial(&train, 80);
        let normal = &train[10];
        let a_norm = nonconformity(normal, &usad.predict(normal));
        // A *direction* anomaly: alternating-sign spikes. (A constant level
        // shift saturates the bounded decoder at the training maximum, which
        // points the same way as the shifted input — invisible to cosine.)
        let data: Vec<f64> = (0..12).map(|i| if i % 2 == 0 { 4.0 } else { -4.0 }).collect();
        let weird = FeatureVector::new(data, 6, 2);
        let a_weird = nonconformity(&weird, &usad.predict(&weird));
        assert!(a_weird > a_norm, "anomaly {a_weird} vs normal {a_norm}");
    }

    #[test]
    fn usad_score_separates_anomalies() {
        let train = sine_windows(30, 6);
        let mut usad = Usad::new(3, 2e-3, 9);
        usad.fit_initial(&train, 80);
        let s_norm = usad.usad_score(&train[12], 0.5, 0.5);
        let weird = FeatureVector::new(vec![6.0; 12], 6, 2);
        let s_weird = usad.usad_score(&weird, 0.5, 0.5);
        assert!(s_weird > s_norm * 2.0, "USAD score: anomaly {s_weird} vs normal {s_norm}");
    }

    #[test]
    fn adversarial_weighting_shifts_with_epochs() {
        // Indirect check: training stays numerically stable across many
        // epochs as the adversarial term takes over, and parameters remain
        // finite (divergence here would indicate a sign error in phase 2).
        let train = sine_windows(20, 6);
        let mut usad = Usad::new(2, 5e-3, 2);
        usad.fit_initial(&train, 120);
        let probe = &train[5];
        let a = nonconformity(probe, &usad.predict(probe));
        // The adversarial term degrades pure reconstruction quality but the
        // bounded decoders must keep it finite and non-degenerate.
        assert!(a.is_finite() && a < 0.95, "stable late-epoch training, a = {a}");
        let s = usad.usad_score(probe, 0.5, 0.5);
        assert!(s.is_finite() && s < 10.0, "bounded USAD score, s = {s}");
    }

    #[test]
    fn predict_before_fit_is_usable() {
        let mut usad = Usad::new(2, 1e-3, 0);
        let x = FeatureVector::new(vec![0.5; 8], 4, 2);
        match usad.predict(&x) {
            ModelOutput::Reconstruction(r) => {
                assert_eq!(r.len(), 8);
                assert!(r.iter().all(|v| v.is_finite()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
