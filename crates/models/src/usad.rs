//! USAD — UnSupervised Anomaly Detection adversarial autoencoder
//! (Audibert et al. 2020; paper §IV-C).
//!
//! One encoder `E` is shared by two decoders `D₁, D₂`, giving two
//! autoencoders `AE_i = D_i ∘ E`. Training alternates two objectives whose
//! adversarial weighting grows with the epoch counter `n`:
//!
//! ```text
//! L_AE1 = (1/n)·R₁ + ((n−1)/n)·R_both        (AE₁ fools AE₂)
//! L_AE2 = (1/n)·R₂ − ((n−1)/n)·R_both        (AE₂ spots AE₁'s fakes)
//! R_i    = ‖x − AE_i(x)‖²,   R_both = ‖x − AE₂(AE₁(x))‖²
//!
//! Gradients use the element-mean form of the reconstruction errors (as in
//! the reference implementation's `torch.mean((batch − w)²)`), which keeps
//! the adversarial phase stable independent of the window dimensionality.
//! ```
//!
//! With more epochs the pure reconstruction terms fade in favour of the
//! adversarial terms. The gradients flow through the *shared* encoder on
//! every path (including the re-encoding inside `AE₂(AE₁(x))`), which is
//! exactly what `sad_nn::Mlp::backward`'s input-gradient chaining provides.
//!
//! In the framework the model reports `AE₁(x)` as its reconstruction; the
//! cosine nonconformity then compares it against `x_t` (§IV-D).

use crate::scaler::MinMaxScaler;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sad_core::{FeatureVector, ModelOutput, StreamModel};
use sad_nn::{mse_grad, Activation, Mlp};
use sad_tensor::Adam;

/// The USAD adversarial autoencoder.
#[derive(Clone)]
pub struct Usad {
    encoder: Option<Mlp>,
    dec1: Option<Mlp>,
    dec2: Option<Mlp>,
    scaler: Option<MinMaxScaler>,
    opt_e1: Adam,
    opt_d1: Adam,
    opt_e2: Adam,
    opt_d2: Adam,
    latent: usize,
    lr: f64,
    seed: u64,
    /// Training epoch counter `n` (1-based, as in the loss definition).
    epoch: usize,
}

impl Usad {
    /// Creates a USAD model with latent width `latent` and Adam rate `lr`.
    pub fn new(latent: usize, lr: f64, seed: u64) -> Self {
        assert!(latent > 0, "latent width must be positive");
        Self {
            encoder: None,
            dec1: None,
            dec2: None,
            scaler: None,
            opt_e1: Adam::new(lr),
            opt_d1: Adam::new(lr),
            opt_e2: Adam::new(lr),
            opt_d2: Adam::new(lr),
            latent,
            lr,
            seed,
            epoch: 0,
        }
    }

    /// A reasonable default: latent = dim/8 clamped to [2, 16], lr 1e-3.
    pub fn for_dim(dim: usize, seed: u64) -> Self {
        Self::new((dim / 8).clamp(2, 16), 1e-3, seed)
    }

    /// Current epoch counter `n`.
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    fn ensure_nets(&mut self, dim: usize) {
        if self.encoder.is_some() {
            return;
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Hidden widths scale with the input but are capped: beyond ~64
        // units the reconstruction quality of these corpora saturates while
        // the per-step cost keeps growing quadratically.
        let h1 = (dim / 2).min(64).max(self.latent * 2).max(2);
        let h2 = (dim / 4).min(32).max(self.latent).max(2);
        // Paper: E = FC₃∘FC₂∘FC₁ and mirrored 3-layer decoders, each layer
        // FC_i(x) = σ(xW + b). Hidden layers use zero-centered tanh (trains
        // far better than the logistic sigmoid, which saturates and starves
        // the stacked layers of gradient); the decoders end in the paper's
        // sigmoid so outputs are bounded to [0, 1] — together with min-max
        // input scaling this bounds R_both and keeps the phase-2
        // maximization from diverging (as in the reference implementation).
        let enc_acts = [Activation::Tanh, Activation::Tanh, Activation::Identity];
        let dec_acts = [Activation::Tanh, Activation::Tanh, Activation::Sigmoid];
        self.encoder = Some(Mlp::new(&[dim, h1, h2, self.latent], &enc_acts, &mut rng));
        self.dec1 = Some(Mlp::new(&[self.latent, h2, h1, dim], &dec_acts, &mut rng));
        self.dec2 = Some(Mlp::new(&[self.latent, h2, h1, dim], &dec_acts, &mut rng));
        let _ = self.lr;
    }

    fn scaled(&self, x: &FeatureVector) -> Vec<f64> {
        match &self.scaler {
            Some(s) => s.transform(x.as_slice()),
            None => x.as_slice().to_vec(),
        }
    }

    /// One adversarial training step on one (standardized) input.
    fn train_step(&mut self, z_in: &[f64]) {
        let n = self.epoch.max(1) as f64;
        let w_rec = 1.0 / n;
        let w_adv = (n - 1.0) / n;
        let encoder = self.encoder.as_mut().expect("nets initialized");
        let dec1 = self.dec1.as_mut().expect("nets initialized");
        let dec2 = self.dec2.as_mut().expect("nets initialized");

        // ---- Phase 1: update {E, D1} on L_AE1 = w_rec·R1 + w_adv·R_both.
        {
            let (z, e_cache) = encoder.forward(z_in);
            let (r1, d1_cache) = dec1.forward(&z);
            let (z2, e2_cache) = encoder.forward(&r1);
            let (rboth, d2_cache) = dec2.forward(&z2);

            let mut g_e = encoder.zero_grads();
            let mut g_d1 = dec1.zero_grads();
            let mut g_d2_discard = dec2.zero_grads(); // D2 frozen this phase

            // ∂L/∂rboth, back through D2 (param grads discarded) and the
            // re-encoding into ∂L/∂r1.
            let mut g_rboth = mse_grad(&rboth, z_in);
            for g in &mut g_rboth {
                *g *= w_adv;
            }
            let g_z2 = dec2.backward(&d2_cache, &g_rboth, &mut g_d2_discard);
            let g_r1_adv = encoder.backward(&e2_cache, &g_z2, &mut g_e);

            // Direct reconstruction term ∂(w_rec·R1)/∂r1.
            let mut g_r1 = mse_grad(&r1, z_in);
            for (g, adv) in g_r1.iter_mut().zip(&g_r1_adv) {
                *g = *g * w_rec + adv;
            }
            let g_z = dec1.backward(&d1_cache, &g_r1, &mut g_d1);
            let _ = encoder.backward(&e_cache, &g_z, &mut g_e);

            encoder.apply_grads(&g_e, &mut self.opt_e1);
            dec1.apply_grads(&g_d1, &mut self.opt_d1);
        }

        // ---- Phase 2: update {E, D2} on L_AE2 = w_rec·R2 − w_adv·R_both.
        {
            let (z, e_cache) = encoder.forward(z_in);
            let (r1, d1_cache) = dec1.forward(&z);
            let (z2, e2_cache) = encoder.forward(&r1);
            let (rboth, d2b_cache) = dec2.forward(&z2);
            let (r2, d2_cache) = dec2.forward(&z);

            let mut g_e = encoder.zero_grads();
            let mut g_d2 = dec2.zero_grads();
            let mut g_d1_discard = dec1.zero_grads(); // D1 frozen this phase

            // + w_rec·R2 path: x → E → z → D2 → r2.
            let mut g_r2 = mse_grad(&r2, z_in);
            for g in &mut g_r2 {
                *g *= w_rec;
            }
            let g_z_a = dec2.backward(&d2_cache, &g_r2, &mut g_d2);

            // − w_adv·R_both path: …D1(E(x)) → E → z2 → D2 → rboth.
            let mut g_rboth = mse_grad(&rboth, z_in);
            for g in &mut g_rboth {
                *g *= -w_adv;
            }
            let g_z2 = dec2.backward(&d2b_cache, &g_rboth, &mut g_d2);
            let g_r1 = encoder.backward(&e2_cache, &g_z2, &mut g_e);
            let g_z_b = dec1.backward(&d1_cache, &g_r1, &mut g_d1_discard);

            let g_z: Vec<f64> = g_z_a.iter().zip(&g_z_b).map(|(a, b)| a + b).collect();
            let _ = encoder.backward(&e_cache, &g_z, &mut g_e);

            encoder.apply_grads(&g_e, &mut self.opt_e2);
            dec2.apply_grads(&g_d2, &mut self.opt_d2);
        }
    }

    /// Reconstruction `AE₁(x)` in standardized space.
    fn reconstruct_scaled(&self, z_in: &[f64]) -> Vec<f64> {
        let encoder = self.encoder.as_ref().expect("nets initialized");
        let dec1 = self.dec1.as_ref().expect("nets initialized");
        dec1.infer(&encoder.infer(z_in))
    }

    /// The USAD inference score `α·R₁ + β·R_both` (Audibert et al. Eq. 9),
    /// exposed for analyses beyond the framework's cosine nonconformity.
    pub fn usad_score(&mut self, x: &FeatureVector, alpha: f64, beta: f64) -> f64 {
        self.ensure_nets(x.dim());
        let z_in = self.scaled(x);
        let encoder = self.encoder.as_ref().expect("nets initialized");
        let dec1 = self.dec1.as_ref().expect("nets initialized");
        let dec2 = self.dec2.as_ref().expect("nets initialized");
        let r1 = dec1.infer(&encoder.infer(&z_in));
        let rboth = dec2.infer(&encoder.infer(&r1));
        let d = z_in.len() as f64;
        let r1_err: f64 = z_in.iter().zip(&r1).map(|(a, b)| (a - b) * (a - b)).sum::<f64>() / d;
        let rb_err: f64 = z_in.iter().zip(&rboth).map(|(a, b)| (a - b) * (a - b)).sum::<f64>() / d;
        alpha * r1_err + beta * rb_err
    }
}

impl StreamModel for Usad {
    fn name(&self) -> &'static str {
        "USAD"
    }

    fn predict(&mut self, x: &FeatureVector) -> ModelOutput {
        self.ensure_nets(x.dim());
        let z_in = self.scaled(x);
        let recon_z = self.reconstruct_scaled(&z_in);
        let recon = match &self.scaler {
            Some(s) => s.inverse(&recon_z),
            None => recon_z,
        };
        ModelOutput::Reconstruction(recon)
    }

    fn fit_initial(&mut self, train: &[FeatureVector], epochs: usize) {
        if train.is_empty() {
            return;
        }
        self.scaler = Some(MinMaxScaler::fit(train));
        self.ensure_nets(train[0].dim());
        for _ in 0..epochs {
            self.fine_tune(train);
        }
    }

    fn fine_tune(&mut self, train: &[FeatureVector]) {
        if train.is_empty() {
            return;
        }
        self.ensure_nets(train[0].dim());
        self.epoch += 1;
        let inputs: Vec<Vec<f64>> = train.iter().map(|x| self.scaled(x)).collect();
        for z in &inputs {
            self.train_step(z);
        }
    }

    fn clone_box(&self) -> Box<dyn StreamModel> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sad_core::nonconformity;

    fn sine_windows(count: usize, w: usize) -> Vec<FeatureVector> {
        (0..count)
            .map(|s| {
                let data: Vec<f64> = (0..w)
                    .flat_map(|i| {
                        let t = (s + i) as f64 * 0.4;
                        vec![t.sin(), (t * 0.7).cos()]
                    })
                    .collect();
                FeatureVector::new(data, w, 2)
            })
            .collect()
    }

    #[test]
    fn epoch_counter_advances_with_fine_tuning() {
        let mut usad = Usad::new(2, 1e-3, 1);
        let train = sine_windows(10, 6);
        assert_eq!(usad.epoch(), 0);
        usad.fit_initial(&train, 3);
        assert_eq!(usad.epoch(), 3);
        usad.fine_tune(&train);
        assert_eq!(usad.epoch(), 4);
    }

    #[test]
    fn training_reduces_reconstruction_error() {
        let train = sine_windows(30, 6);
        let mut usad = Usad::new(3, 2e-3, 5);
        let mut untrained = usad.clone();
        untrained.fit_initial(&train, 0);
        // Enough epochs to reach a tight reconstruction from any reasonable
        // Xavier init (the exact trajectory depends on the seeded RNG stream).
        usad.fit_initial(&train, 200);
        let probe = &train[15];
        let before = nonconformity(probe, &untrained.predict(probe));
        let after = nonconformity(probe, &usad.predict(probe));
        assert!(after < before, "USAD training must help: {before} -> {after}");
        assert!(after < 0.2, "trained reconstruction is close: {after}");
    }

    #[test]
    fn anomaly_scores_above_normal() {
        let train = sine_windows(30, 6);
        let mut usad = Usad::new(3, 2e-3, 5);
        usad.fit_initial(&train, 80);
        let normal = &train[10];
        let a_norm = nonconformity(normal, &usad.predict(normal));
        // A *direction* anomaly: alternating-sign spikes. (A constant level
        // shift saturates the bounded decoder at the training maximum, which
        // points the same way as the shifted input — invisible to cosine.)
        let data: Vec<f64> = (0..12).map(|i| if i % 2 == 0 { 4.0 } else { -4.0 }).collect();
        let weird = FeatureVector::new(data, 6, 2);
        let a_weird = nonconformity(&weird, &usad.predict(&weird));
        assert!(a_weird > a_norm, "anomaly {a_weird} vs normal {a_norm}");
    }

    #[test]
    fn usad_score_separates_anomalies() {
        let train = sine_windows(30, 6);
        let mut usad = Usad::new(3, 2e-3, 9);
        usad.fit_initial(&train, 80);
        let s_norm = usad.usad_score(&train[12], 0.5, 0.5);
        let weird = FeatureVector::new(vec![6.0; 12], 6, 2);
        let s_weird = usad.usad_score(&weird, 0.5, 0.5);
        assert!(s_weird > s_norm * 2.0, "USAD score: anomaly {s_weird} vs normal {s_norm}");
    }

    #[test]
    fn adversarial_weighting_shifts_with_epochs() {
        // Indirect check: training stays numerically stable across many
        // epochs as the adversarial term takes over, and parameters remain
        // finite (divergence here would indicate a sign error in phase 2).
        let train = sine_windows(20, 6);
        let mut usad = Usad::new(2, 5e-3, 2);
        usad.fit_initial(&train, 120);
        let probe = &train[5];
        let a = nonconformity(probe, &usad.predict(probe));
        // The adversarial term degrades pure reconstruction quality but the
        // bounded decoders must keep it finite and non-degenerate.
        assert!(a.is_finite() && a < 0.95, "stable late-epoch training, a = {a}");
        let s = usad.usad_score(probe, 0.5, 0.5);
        assert!(s.is_finite() && s < 10.0, "bounded USAD score, s = {s}");
    }

    #[test]
    fn predict_before_fit_is_usable() {
        let mut usad = Usad::new(2, 1e-3, 0);
        let x = FeatureVector::new(vec![0.5; 8], 4, 2);
        match usad.predict(&x) {
            ModelOutput::Reconstruction(r) => {
                assert_eq!(r.len(), 8);
                assert!(r.iter().all(|v| v.is_finite()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
