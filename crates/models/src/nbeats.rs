//! N-BEATS — neural basis expansion analysis (Oreshkin et al. 2020; paper
//! §IV-C).
//!
//! A stack of blocks with *double residual* connections. Block `l` receives
//! the residual input `x_l`, runs a fully-connected trunk
//! `h_l = FC_l(x_l)`, projects onto backcast/forecast expansion
//! coefficients `θᵇ_l, θᶠ_l`, and expands them over basis vectors:
//!
//! ```text
//! x̂_l = Σ θᵇ_{l,i} vᵇ_i        (backcast)
//! ŷ_l = Σ θᶠ_{l,i} vᶠ_i        (forecast)
//! x_{l+1} = x_l − x̂_l           (residual input to the next block)
//! ŷ = Σ_l ŷ_l                   (final forecast)
//! ```
//!
//! The **generic** basis (used here, as in the original paper's main
//! configuration) makes `vᵇ, vᶠ` learnable — i.e. each head is a linear
//! layer `hidden → θ-dim → output`. In the paper's streaming scenario the
//! model forecasts `s_t` from the previous stream vectors
//! `s_{t−w+1}, …, s_{t−1}` contained in `x_t`.
//!
//! The hand-derived backward pass propagates the forecast loss through the
//! residual chain: the gradient reaching residual `x_{l+1}` flows both into
//! block `l`'s backcast head (negated) and onward to `x_l`.

use crate::scaler::Standardizer;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sad_core::{FeatureVector, ModelOutput, StreamModel};
use sad_nn::{sse_grad, Activation, Mlp, MlpCache};
use sad_tensor::{Adam, Optimizer};

/// Basis family of one block.
///
/// The generic basis is fully learnable (the original paper's main
/// configuration). The trend and seasonal bases are the paper's
/// *interpretable* configuration: the expansion vectors `v_i` are fixed —
/// low-order polynomials or Fourier harmonics over the window timeline — so
/// the coefficients `θ` directly expose how much trend/seasonality each
/// block attributes to the signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BasisKind {
    /// Fully learnable basis (default).
    Generic,
    /// Fixed polynomial basis `v_j(τ) = τ^j` (θ-dim = polynomial degree).
    Trend,
    /// Fixed Fourier basis `cos/sin(2π h τ)` (θ-dim = 2 × harmonics).
    Seasonal,
}

/// One N-BEATS block: trunk + backcast head + forecast head.
#[derive(Clone)]
struct Block {
    trunk: Mlp,
    backcast_head: Mlp,
    forecast_head: Mlp,
    basis: BasisKind,
}

struct BlockCache {
    trunk: MlpCache,
    backcast: MlpCache,
    forecast: MlpCache,
}

impl Block {
    fn with_basis(
        input: usize,
        hidden: usize,
        theta: usize,
        output: usize,
        basis: BasisKind,
        rng: &mut StdRng,
    ) -> Self {
        let relu = Activation::Relu;
        let id = Activation::Identity;
        let mut block = Self {
            trunk: Mlp::new(&[input, hidden, hidden], &[relu, relu], rng),
            // Two linear maps hidden → θ → out implement LINEARᵇ/ᶠ followed
            // by the basis expansion Σ θ_i v_i (learnable for Generic,
            // frozen to polynomial/Fourier vectors otherwise).
            backcast_head: Mlp::new(&[hidden, theta, input], &[id, id], rng),
            forecast_head: Mlp::new(&[hidden, theta, output], &[id, id], rng),
            basis,
        };
        if basis != BasisKind::Generic {
            let steps = input / output; // backcast timeline length
            let n = output;
            block.install_basis(steps, n, theta);
        }
        block
    }

    /// Overwrites the expansion layer (θ → out) of both heads with the
    /// fixed basis matrix and zero bias.
    fn install_basis(&mut self, steps: usize, n: usize, theta: usize) {
        let value = |tau: f64, j: usize| -> f64 {
            match self.basis {
                BasisKind::Generic => unreachable!("generic basis is learnable"),
                BasisKind::Trend => tau.powi(j as i32),
                BasisKind::Seasonal => {
                    let h = (j / 2 + 1) as f64;
                    let phase = 2.0 * std::f64::consts::PI * h * tau;
                    if j.is_multiple_of(2) {
                        phase.cos()
                    } else {
                        phase.sin()
                    }
                }
            }
        };
        let denom = (steps.saturating_sub(1)).max(1) as f64;
        // Backcast basis over τ_i = i / (steps − 1), per channel.
        let mut params = self.backcast_head.params_flat();
        let l1 = self.backcast_head.layers()[0].num_params();
        for i in 0..steps {
            let tau = i as f64 / denom;
            for c in 0..n {
                for j in 0..theta {
                    params[l1 + (i * n + c) * theta + j] = value(tau, j);
                }
            }
        }
        for b in params.len() - n * steps..params.len() {
            params[b] = 0.0;
        }
        self.backcast_head.set_params_flat(&params);
        // Forecast basis one step past the window: τ = 1 + 1/(steps − 1).
        let tau_f = 1.0 + 1.0 / denom;
        let mut params = self.forecast_head.params_flat();
        let l1 = self.forecast_head.layers()[0].num_params();
        for c in 0..n {
            for j in 0..theta {
                params[l1 + c * theta + j] = value(tau_f, j);
            }
        }
        for b in params.len() - n..params.len() {
            params[b] = 0.0;
        }
        self.forecast_head.set_params_flat(&params);
    }

    /// Flat-gradient index ranges of the frozen expansion layers (relative
    /// to the block's trunk|backcast|forecast parameter layout).
    fn frozen_ranges(&self) -> Vec<std::ops::Range<usize>> {
        if self.basis == BasisKind::Generic {
            return Vec::new();
        }
        let t_len = self.trunk.num_params();
        let b_len = self.backcast_head.num_params();
        let b_l1 = self.backcast_head.layers()[0].num_params();
        let f_l1 = self.forecast_head.layers()[0].num_params();
        let f_len = self.forecast_head.num_params();
        vec![t_len + b_l1..t_len + b_len, t_len + b_len + f_l1..t_len + b_len + f_len]
    }

    /// Forward: returns `(backcast, forecast, cache)`.
    fn forward(&self, x: &[f64]) -> (Vec<f64>, Vec<f64>, BlockCache) {
        let (h, trunk) = self.trunk.forward(x);
        let (b, backcast) = self.backcast_head.forward(&h);
        let (f, forecast) = self.forecast_head.forward(&h);
        (b, f, BlockCache { trunk, backcast, forecast })
    }

    fn infer(&self, x: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let h = self.trunk.infer(x);
        (self.backcast_head.infer(&h), self.forecast_head.infer(&h))
    }
}

/// The N-BEATS forecaster.
#[derive(Clone)]
pub struct NBeats {
    blocks: Option<Vec<Block>>,
    opts: Vec<Adam>,
    scaler: Option<Standardizer>,
    /// One basis per block; `(kind, theta)` pairs.
    plan: Vec<(BasisKind, usize)>,
    hidden: usize,
    lr: f64,
    seed: u64,
}

impl NBeats {
    /// Creates an N-BEATS model with `n_blocks` generic-basis blocks.
    pub fn new(n_blocks: usize, hidden: usize, theta: usize, lr: f64, seed: u64) -> Self {
        assert!(n_blocks > 0 && hidden > 0 && theta > 0, "block dimensions must be positive");
        Self {
            blocks: None,
            opts: Vec::new(),
            scaler: None,
            plan: vec![(BasisKind::Generic, theta); n_blocks],
            hidden,
            lr,
            seed,
        }
    }

    /// Creates the paper-described *interpretable* configuration: one trend
    /// block with a polynomial basis of the given `degree` and one seasonal
    /// block with `harmonics` Fourier harmonics. The basis vectors are
    /// frozen; only the trunks and the θ projections train, so
    /// [`Self::decompose`] exposes a direct trend/seasonality attribution.
    pub fn interpretable(hidden: usize, degree: usize, harmonics: usize, lr: f64, seed: u64) -> Self {
        assert!(degree > 0 && harmonics > 0 && hidden > 0, "basis dimensions must be positive");
        Self {
            blocks: None,
            opts: Vec::new(),
            scaler: None,
            plan: vec![(BasisKind::Trend, degree), (BasisKind::Seasonal, 2 * harmonics)],
            hidden,
            lr,
            seed,
        }
    }

    /// The block basis plan (kind, θ-dimension per block).
    pub fn plan(&self) -> &[(BasisKind, usize)] {
        &self.plan
    }

    /// A reasonable default configuration for a `w×N` representation.
    pub fn for_dims(w: usize, n: usize, seed: u64) -> Self {
        let input = (w - 1) * n;
        Self::new(2, (input / 2).clamp(8, 64), 8, 1e-3, seed)
    }

    fn ensure_blocks(&mut self, input: usize, output: usize) {
        if self.blocks.is_some() {
            return;
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let blocks: Vec<Block> = self
            .plan
            .iter()
            .map(|&(kind, theta)| Block::with_basis(input, self.hidden, theta, output, kind, &mut rng))
            .collect();
        // One optimizer per block (each drives that block's flattened
        // trunk+heads parameter buffer).
        self.opts = (0..self.plan.len()).map(|_| Adam::new(self.lr)).collect();
        self.blocks = Some(blocks);
    }

    /// Splits a feature vector into (history = first w−1 steps, target = s_t)
    /// in standardized space.
    fn split_scaled(&self, x: &FeatureVector) -> (Vec<f64>, Vec<f64>) {
        let scaled = match &self.scaler {
            Some(s) => s.transform(x.as_slice()),
            None => x.as_slice().to_vec(),
        };
        let n = x.n();
        let hist = scaled[..scaled.len() - n].to_vec();
        let target = scaled[scaled.len() - n..].to_vec();
        (hist, target)
    }

    /// Forward over the residual stack in standardized space.
    fn forecast_scaled(&self, hist: &[f64]) -> Vec<f64> {
        let blocks = self.blocks.as_ref().expect("blocks initialized");
        let mut residual = hist.to_vec();
        let mut forecast: Option<Vec<f64>> = None;
        for block in blocks {
            let (b, f, _) = block.forward(&residual);
            for (r, bv) in residual.iter_mut().zip(&b) {
                *r -= bv;
            }
            match &mut forecast {
                Some(acc) => {
                    for (a, fv) in acc.iter_mut().zip(&f) {
                        *a += fv;
                    }
                }
                None => forecast = Some(f),
            }
        }
        forecast.expect("at least one block")
    }

    /// One SSE training step on a single (history, target) pair.
    fn train_step(&mut self, hist: &[f64], target: &[f64]) {
        let blocks = self.blocks.as_mut().expect("blocks initialized");
        // Forward, caching per block.
        let mut residuals = Vec::with_capacity(blocks.len() + 1);
        residuals.push(hist.to_vec());
        let mut caches = Vec::with_capacity(blocks.len());
        let mut forecast = vec![0.0; target.len()];
        for block in blocks.iter() {
            let input = residuals.last().expect("seeded").clone();
            let (b, f, cache) = block.forward(&input);
            let next: Vec<f64> = input.iter().zip(&b).map(|(r, bv)| r - bv).collect();
            residuals.push(next);
            caches.push(cache);
            for (acc, fv) in forecast.iter_mut().zip(&f) {
                *acc += fv;
            }
        }

        // Backward through the residual chain.
        let g_forecast = sse_grad(&forecast, target); // same for every block
        let mut g_residual = vec![0.0; hist.len()]; // ∂L/∂x_{L} (unused tail)
        let mut all_grads = Vec::with_capacity(blocks.len());
        for (block, cache) in blocks.iter().zip(&caches).rev() {
            let mut g_trunk_out = vec![0.0; block.trunk.out_dim()];
            let mut grads = (
                block.trunk.zero_grads(),
                block.backcast_head.zero_grads(),
                block.forecast_head.zero_grads(),
            );
            // Forecast head: every block's forecast feeds the sum directly.
            let g_h_f = block.forecast_head.backward(&cache.forecast, &g_forecast, &mut grads.2);
            // Backcast head: x_{l+1} = x_l − x̂_l ⇒ ∂L/∂x̂_l = −∂L/∂x_{l+1}.
            let g_backcast: Vec<f64> = g_residual.iter().map(|g| -g).collect();
            let g_h_b = block.backcast_head.backward(&cache.backcast, &g_backcast, &mut grads.1);
            for (a, b) in g_trunk_out.iter_mut().zip(g_h_f.iter().zip(&g_h_b)) {
                *a = b.0 + b.1;
            }
            // Trunk: ∂L/∂x_l gets the trunk path plus the residual pass-through.
            let g_x_trunk = block.trunk.backward(&cache.trunk, &g_trunk_out, &mut grads.0);
            for (g, t) in g_residual.iter_mut().zip(&g_x_trunk) {
                *g += t;
            }
            all_grads.push(grads);
        }
        all_grads.reverse();

        // Apply per-block updates (flatten trunk+heads into one buffer).
        for ((block, grads), opt) in blocks.iter_mut().zip(&all_grads).zip(&mut self.opts) {
            let mut params = block.trunk.params_flat();
            params.extend(block.backcast_head.params_flat());
            params.extend(block.forecast_head.params_flat());
            let mut flat = grads.0.flatten();
            flat.extend(grads.1.flatten());
            flat.extend(grads.2.flatten());
            // Interpretable bases are fixed: kill their gradients so the
            // optimizer (whose moments are also fed zeros here) never moves
            // the expansion vectors.
            for range in block.frozen_ranges() {
                flat[range].fill(0.0);
            }
            opt.step(&mut params, &flat);
            let (t_len, b_len) = (block.trunk.num_params(), block.backcast_head.num_params());
            block.trunk.set_params_flat(&params[..t_len]);
            block.backcast_head.set_params_flat(&params[t_len..t_len + b_len]);
            block.forecast_head.set_params_flat(&params[t_len + b_len..]);
        }
    }

    /// Per-block backcast/forecast decomposition for a feature vector — the
    /// interpretability view the basis expansion exists for.
    pub fn decompose(&mut self, x: &FeatureVector) -> Vec<(Vec<f64>, Vec<f64>)> {
        self.ensure_blocks((x.w() - 1) * x.n(), x.n());
        let (hist, _) = self.split_scaled(x);
        let blocks = self.blocks.as_ref().expect("blocks initialized");
        let mut residual = hist;
        let mut out = Vec::with_capacity(blocks.len());
        for block in blocks {
            let (b, f) = block.infer(&residual);
            for (r, bv) in residual.iter_mut().zip(&b) {
                *r -= bv;
            }
            out.push((b, f));
        }
        out
    }
}

impl StreamModel for NBeats {
    fn name(&self) -> &'static str {
        "N-BEATS"
    }

    fn predict(&mut self, x: &FeatureVector) -> ModelOutput {
        assert!(x.w() >= 2, "N-BEATS needs at least two steps of history");
        self.ensure_blocks((x.w() - 1) * x.n(), x.n());
        let (hist, _) = self.split_scaled(x);
        let forecast_z = self.forecast_scaled(&hist);
        let forecast = match &self.scaler {
            Some(s) => s.inverse_tail(&forecast_z),
            None => forecast_z,
        };
        ModelOutput::Forecast(forecast)
    }

    fn fit_initial(&mut self, train: &[FeatureVector], epochs: usize) {
        if train.is_empty() {
            return;
        }
        self.scaler = Some(Standardizer::fit(train));
        self.ensure_blocks((train[0].w() - 1) * train[0].n(), train[0].n());
        for _ in 0..epochs {
            self.fine_tune(train);
        }
    }

    fn fine_tune(&mut self, train: &[FeatureVector]) {
        if train.is_empty() {
            return;
        }
        self.ensure_blocks((train[0].w() - 1) * train[0].n(), train[0].n());
        let pairs: Vec<(Vec<f64>, Vec<f64>)> = train.iter().map(|x| self.split_scaled(x)).collect();
        for (hist, target) in &pairs {
            self.train_step(hist, target);
        }
    }

    fn clone_box(&self) -> Box<dyn StreamModel> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sad_core::nonconformity;

    fn sine_windows(count: usize, w: usize) -> Vec<FeatureVector> {
        (0..count)
            .map(|s| {
                let data: Vec<f64> = (0..w)
                    .flat_map(|i| {
                        let t = (s + i) as f64 * 0.35;
                        vec![t.sin() * 2.0, (t * 0.8 + 1.0).cos()]
                    })
                    .collect();
                FeatureVector::new(data, w, 2)
            })
            .collect()
    }

    #[test]
    fn forecast_has_channel_dimensionality() {
        let mut nb = NBeats::new(2, 8, 4, 1e-3, 3);
        let x = FeatureVector::new(vec![0.1; 12], 6, 2);
        match nb.predict(&x) {
            ModelOutput::Forecast(f) => {
                assert_eq!(f.len(), 2);
                assert!(f.iter().all(|v| v.is_finite()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn training_reduces_forecast_error() {
        let train = sine_windows(40, 8);
        let mut nb = NBeats::new(2, 16, 6, 2e-3, 11);
        let mut untrained = nb.clone();
        untrained.fit_initial(&train, 0);
        // Enough epochs to halve the error from any reasonable Xavier init
        // (the exact trajectory depends on the seeded RNG stream).
        nb.fit_initial(&train, 120);
        let probe = &train[20];
        let err = |m: &mut NBeats| -> f64 {
            match m.predict(probe) {
                ModelOutput::Forecast(f) => f
                    .iter()
                    .zip(probe.last_step())
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>(),
                _ => unreachable!(),
            }
        };
        let before = err(&mut untrained);
        let after = err(&mut nb);
        assert!(after < before * 0.5, "training must help: {before} -> {after}");
    }

    #[test]
    fn trained_model_scores_anomaly_higher() {
        let train = sine_windows(40, 8);
        let mut nb = NBeats::new(2, 16, 6, 2e-3, 11);
        nb.fit_initial(&train, 80);
        let normal = &train[25];
        let a_norm = nonconformity(normal, &nb.predict(normal));
        // Same history, broken last step (orthogonal direction).
        let mut data = normal.as_slice().to_vec();
        let dim = data.len();
        data[dim - 2] = -5.0;
        data[dim - 1] = 5.0;
        let broken = FeatureVector::new(data, 8, 2);
        let a_broken = nonconformity(&broken, &nb.predict(&broken));
        assert!(a_broken > a_norm, "broken step {a_broken} vs normal {a_norm}");
    }

    #[test]
    fn residual_decomposition_sums_to_forecast() {
        let train = sine_windows(20, 8);
        let mut nb = NBeats::new(3, 8, 4, 1e-3, 5);
        nb.fit_initial(&train, 10);
        let x = &train[10];
        let parts = nb.decompose(x);
        assert_eq!(parts.len(), 3);
        let summed: Vec<f64> = (0..2)
            .map(|j| parts.iter().map(|(_, f)| f[j]).sum::<f64>())
            .collect();
        let (hist, _) = nb.split_scaled(x);
        let direct = nb.forecast_scaled(&hist);
        for (a, b) in summed.iter().zip(&direct) {
            assert!((a - b).abs() < 1e-9, "decomposition mismatch {a} vs {b}");
        }
    }

    /// Finite-difference check of the full residual-stack backward pass.
    #[test]
    fn grad_check_residual_stack() {
        let mut nb = NBeats::new(2, 6, 3, 1e-3, 21);
        nb.ensure_blocks(8, 2);
        let hist: Vec<f64> = (0..8).map(|i| (i as f64 * 0.37).sin()).collect();
        let target = vec![0.3, -0.2];

        // Analytic gradient via a single zero-lr "training step" with spy
        // optimizers is awkward; instead check loss decrease under a tiny
        // step, which fails if any gradient sign is wrong.
        let loss = |nb: &NBeats| -> f64 {
            let f = nb.forecast_scaled(&hist);
            f.iter().zip(&target).map(|(a, b)| (a - b) * (a - b)).sum()
        };
        let before = loss(&nb);
        for _ in 0..25 {
            nb.train_step(&hist, &target);
        }
        let after = loss(&nb);
        assert!(after < before, "gradient steps must descend: {before} -> {after}");
        assert!(after < before * 0.7, "descent should be substantial: {before} -> {after}");
    }

    #[test]
    fn empty_training_set_is_a_noop() {
        let mut nb = NBeats::new(2, 8, 4, 1e-3, 3);
        nb.fit_initial(&[], 5);
        nb.fine_tune(&[]);
    }

    #[test]
    fn interpretable_basis_stays_frozen_under_training() {
        let train = sine_windows(30, 8);
        let mut nb = NBeats::interpretable(12, 3, 2, 2e-3, 7);
        nb.ensure_blocks(14, 2);
        let basis_params = |nb: &NBeats| -> Vec<f64> {
            let block = &nb.blocks.as_ref().unwrap()[0];
            let l1 = block.backcast_head.layers()[0].num_params();
            block.backcast_head.params_flat()[l1..].to_vec()
        };
        let before = basis_params(&nb);
        nb.fit_initial(&train, 30);
        let after = basis_params(&nb);
        assert_eq!(before, after, "polynomial basis vectors must not train");
    }

    #[test]
    fn interpretable_model_still_learns() {
        let train = sine_windows(40, 8);
        let mut nb = NBeats::interpretable(16, 3, 3, 2e-3, 9);
        let mut untrained = nb.clone();
        untrained.fit_initial(&train, 0);
        nb.fit_initial(&train, 80);
        // Average forecast SSE over the whole training regime (single-probe
        // error is too noisy for the constrained basis).
        let err = |m: &mut NBeats| -> f64 {
            train
                .iter()
                .map(|probe| match m.predict(probe) {
                    ModelOutput::Forecast(f) => f
                        .iter()
                        .zip(probe.last_step())
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum::<f64>(),
                    _ => unreachable!(),
                })
                .sum::<f64>()
                / train.len() as f64
        };
        let before = err(&mut untrained);
        let after = err(&mut nb);
        assert!(after < before, "interpretable N-BEATS must learn: {before} -> {after}");
    }

    #[test]
    fn trend_block_basis_is_polynomial() {
        let mut nb = NBeats::interpretable(8, 3, 2, 1e-3, 1);
        nb.ensure_blocks(12, 2); // steps = 6, n = 2
        let block = &nb.blocks.as_ref().unwrap()[0];
        let l1 = block.backcast_head.layers()[0].num_params();
        let params = block.backcast_head.params_flat();
        // Row for time step i=5 (τ=1), channel 0: [1, 1, 1] (τ^0, τ^1, τ^2).
        let theta = 3;
        let row = 5 * 2;
        for j in 0..theta {
            assert!((params[l1 + row * theta + j] - 1.0).abs() < 1e-12);
        }
        // Row for τ=0 (i=0): [1, 0, 0].
        assert_eq!(params[l1], 1.0);
        assert_eq!(params[l1 + 1], 0.0);
        assert_eq!(params[l1 + 2], 0.0);
        // Seasonal block: first column is cos(2πτ); at τ=0 -> 1.
        let sblock = &nb.blocks.as_ref().unwrap()[1];
        let sl1 = sblock.backcast_head.layers()[0].num_params();
        let sparams = sblock.backcast_head.params_flat();
        assert!((sparams[sl1] - 1.0).abs() < 1e-12, "cos(0) = 1");
        assert!(sparams[sl1 + 1].abs() < 1e-12, "sin(0) = 0");
    }

    #[test]
    fn plan_reports_block_configuration() {
        let nb = NBeats::interpretable(8, 4, 3, 1e-3, 0);
        assert_eq!(nb.plan(), &[(BasisKind::Trend, 4), (BasisKind::Seasonal, 6)]);
        let nb2 = NBeats::new(3, 8, 5, 1e-3, 0);
        assert_eq!(nb2.plan().len(), 3);
        assert!(nb2.plan().iter().all(|&(k, t)| k == BasisKind::Generic && t == 5));
    }
}
