//! N-BEATS — neural basis expansion analysis (Oreshkin et al. 2020; paper
//! §IV-C).
//!
//! A stack of blocks with *double residual* connections. Block `l` receives
//! the residual input `x_l`, runs a fully-connected trunk
//! `h_l = FC_l(x_l)`, projects onto backcast/forecast expansion
//! coefficients `θᵇ_l, θᶠ_l`, and expands them over basis vectors:
//!
//! ```text
//! x̂_l = Σ θᵇ_{l,i} vᵇ_i        (backcast)
//! ŷ_l = Σ θᶠ_{l,i} vᶠ_i        (forecast)
//! x_{l+1} = x_l − x̂_l           (residual input to the next block)
//! ŷ = Σ_l ŷ_l                   (final forecast)
//! ```
//!
//! The **generic** basis (used here, as in the original paper's main
//! configuration) makes `vᵇ, vᶠ` learnable — i.e. each head is a linear
//! layer `hidden → θ-dim → output`. In the paper's streaming scenario the
//! model forecasts `s_t` from the previous stream vectors
//! `s_{t−w+1}, …, s_{t−1}` contained in `x_t`.
//!
//! The hand-derived backward pass propagates the forecast loss through the
//! residual chain: the gradient reaching residual `x_{l+1}` flows both into
//! block `l`'s backcast head (negated) and onward to `x_l`.

use crate::scaler::Standardizer;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sad_core::{FeatureVector, ModelOutput, StreamModel};
use sad_nn::{Activation, Mlp, MlpGrads, MlpWorkspace};
use sad_tensor::{Adam, Matrix, Optimizer};

/// Basis family of one block.
///
/// The generic basis is fully learnable (the original paper's main
/// configuration). The trend and seasonal bases are the paper's
/// *interpretable* configuration: the expansion vectors `v_i` are fixed —
/// low-order polynomials or Fourier harmonics over the window timeline — so
/// the coefficients `θ` directly expose how much trend/seasonality each
/// block attributes to the signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BasisKind {
    /// Fully learnable basis (default).
    Generic,
    /// Fixed polynomial basis `v_j(τ) = τ^j` (θ-dim = polynomial degree).
    Trend,
    /// Fixed Fourier basis `cos/sin(2π h τ)` (θ-dim = 2 × harmonics).
    Seasonal,
}

/// One N-BEATS block: trunk + backcast head + forecast head.
/// Crate-visible so the fleet's batched inference path
/// (`crate::batch_infer`) can drive the residual stack through shared
/// workspaces.
#[derive(Clone)]
pub(crate) struct Block {
    pub(crate) trunk: Mlp,
    pub(crate) backcast_head: Mlp,
    pub(crate) forecast_head: Mlp,
    pub(crate) basis: BasisKind,
}

/// Reusable batched-training buffers for one block: a workspace per
/// sub-network (trunk, backcast head, forecast head) and the matching
/// gradient accumulators. Block `l`'s residual input lives in
/// `ws_t.input`, so the forward chain writes `x_{l+1}` directly into the
/// next block's workspace — no intermediate residual vectors.
#[derive(Clone)]
struct BlockBuffers {
    ws_t: MlpWorkspace,
    ws_b: MlpWorkspace,
    ws_f: MlpWorkspace,
    g_t: MlpGrads,
    g_b: MlpGrads,
    g_f: MlpGrads,
}

/// Stack-level training buffers. Sized once for the configured minibatch
/// capacity; the steady-state fine-tune loop does not allocate.
#[derive(Clone)]
struct NBeatsBuffers {
    blocks: Vec<BlockBuffers>,
    /// `B×n` forecast targets (the standardized last stream vectors).
    targets: Matrix,
    /// `B×n` running forecast sum `Σ_l ŷ_l`.
    forecast: Matrix,
    /// `B×n` forecast-loss gradient `∂L/∂ŷ` (shared by every block).
    g_forecast: Matrix,
    /// `B×input` residual gradient `∂L/∂x_{l+1}` accumulator.
    g_residual: Matrix,
    /// Scratch for the standardized full window before the history/target
    /// split (`w·N` wide).
    scratch: Vec<f64>,
}

impl Block {
    fn with_basis(
        input: usize,
        hidden: usize,
        theta: usize,
        output: usize,
        basis: BasisKind,
        rng: &mut StdRng,
    ) -> Self {
        let relu = Activation::Relu;
        let id = Activation::Identity;
        let mut block = Self {
            trunk: Mlp::new(&[input, hidden, hidden], &[relu, relu], rng),
            // Two linear maps hidden → θ → out implement LINEARᵇ/ᶠ followed
            // by the basis expansion Σ θ_i v_i (learnable for Generic,
            // frozen to polynomial/Fourier vectors otherwise).
            backcast_head: Mlp::new(&[hidden, theta, input], &[id, id], rng),
            forecast_head: Mlp::new(&[hidden, theta, output], &[id, id], rng),
            basis,
        };
        if basis != BasisKind::Generic {
            let steps = input / output; // backcast timeline length
            let n = output;
            block.install_basis(steps, n, theta);
        }
        block
    }

    /// Overwrites the expansion layer (θ → out) of both heads with the
    /// fixed basis matrix and zero bias.
    fn install_basis(&mut self, steps: usize, n: usize, theta: usize) {
        let value = |tau: f64, j: usize| -> f64 {
            match self.basis {
                BasisKind::Generic => unreachable!("generic basis is learnable"),
                BasisKind::Trend => tau.powi(j as i32),
                BasisKind::Seasonal => {
                    let h = (j / 2 + 1) as f64;
                    let phase = 2.0 * std::f64::consts::PI * h * tau;
                    if j.is_multiple_of(2) {
                        phase.cos()
                    } else {
                        phase.sin()
                    }
                }
            }
        };
        let denom = (steps.saturating_sub(1)).max(1) as f64;
        // Backcast basis over τ_i = i / (steps − 1), per channel.
        let mut params = self.backcast_head.params_flat();
        let l1 = self.backcast_head.layers()[0].num_params();
        for i in 0..steps {
            let tau = i as f64 / denom;
            for c in 0..n {
                for j in 0..theta {
                    params[l1 + (i * n + c) * theta + j] = value(tau, j);
                }
            }
        }
        for b in params.len() - n * steps..params.len() {
            params[b] = 0.0;
        }
        self.backcast_head.set_params_flat(&params);
        // Forecast basis one step past the window: τ = 1 + 1/(steps − 1).
        let tau_f = 1.0 + 1.0 / denom;
        let mut params = self.forecast_head.params_flat();
        let l1 = self.forecast_head.layers()[0].num_params();
        for c in 0..n {
            for j in 0..theta {
                params[l1 + c * theta + j] = value(tau_f, j);
            }
        }
        for b in params.len() - n..params.len() {
            params[b] = 0.0;
        }
        self.forecast_head.set_params_flat(&params);
    }

    /// Total trainable parameter count across trunk + both heads (one
    /// optimizer step tiles this range in segments).
    fn num_params(&self) -> usize {
        self.trunk.num_params() + self.backcast_head.num_params() + self.forecast_head.num_params()
    }

    fn buffers(&self, max_batch: usize) -> BlockBuffers {
        BlockBuffers {
            ws_t: self.trunk.workspace(max_batch),
            ws_b: self.backcast_head.workspace(max_batch),
            ws_f: self.forecast_head.workspace(max_batch),
            g_t: self.trunk.zero_grads(),
            g_b: self.backcast_head.zero_grads(),
            g_f: self.forecast_head.zero_grads(),
        }
    }

    pub(crate) fn infer(&self, x: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let h = self.trunk.infer(x);
        (self.backcast_head.infer(&h), self.forecast_head.infer(&h))
    }
}

/// The N-BEATS forecaster.
#[derive(Clone)]
pub struct NBeats {
    blocks: Option<Vec<Block>>,
    opts: Vec<Adam>,
    scaler: Option<Standardizer>,
    bufs: Option<NBeatsBuffers>,
    /// One basis per block; `(kind, theta)` pairs.
    plan: Vec<(BasisKind, usize)>,
    hidden: usize,
    lr: f64,
    batch_size: usize,
    seed: u64,
}

impl NBeats {
    /// Creates an N-BEATS model with `n_blocks` generic-basis blocks.
    pub fn new(n_blocks: usize, hidden: usize, theta: usize, lr: f64, seed: u64) -> Self {
        assert!(n_blocks > 0 && hidden > 0 && theta > 0, "block dimensions must be positive");
        Self {
            blocks: None,
            opts: Vec::new(),
            scaler: None,
            bufs: None,
            plan: vec![(BasisKind::Generic, theta); n_blocks],
            hidden,
            lr,
            batch_size: 1,
            seed,
        }
    }

    /// Sets the training minibatch size (default 1 = per-sample updates,
    /// matching the original trajectory; larger batches take one
    /// mean-gradient step per chunk).
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        self.batch_size = batch_size;
        self.bufs = None; // resized lazily on next training call
        self
    }

    /// Creates the paper-described *interpretable* configuration: one trend
    /// block with a polynomial basis of the given `degree` and one seasonal
    /// block with `harmonics` Fourier harmonics. The basis vectors are
    /// frozen; only the trunks and the θ projections train, so
    /// [`Self::decompose`] exposes a direct trend/seasonality attribution.
    pub fn interpretable(hidden: usize, degree: usize, harmonics: usize, lr: f64, seed: u64) -> Self {
        assert!(degree > 0 && harmonics > 0 && hidden > 0, "basis dimensions must be positive");
        Self {
            blocks: None,
            opts: Vec::new(),
            scaler: None,
            bufs: None,
            plan: vec![(BasisKind::Trend, degree), (BasisKind::Seasonal, 2 * harmonics)],
            hidden,
            lr,
            batch_size: 1,
            seed,
        }
    }

    /// The block basis plan (kind, θ-dimension per block).
    pub fn plan(&self) -> &[(BasisKind, usize)] {
        &self.plan
    }

    /// A reasonable default configuration for a `w×N` representation.
    pub fn for_dims(w: usize, n: usize, seed: u64) -> Self {
        let input = (w - 1) * n;
        Self::new(2, (input / 2).clamp(8, 64), 8, 1e-3, seed)
    }

    fn ensure_blocks(&mut self, input: usize, output: usize) {
        if self.blocks.is_some() {
            self.ensure_bufs();
            return;
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let blocks: Vec<Block> = self
            .plan
            .iter()
            .map(|&(kind, theta)| Block::with_basis(input, self.hidden, theta, output, kind, &mut rng))
            .collect();
        // One optimizer per block (each drives that block's segmented
        // trunk|backcast|forecast parameter range).
        self.opts = (0..self.plan.len()).map(|_| Adam::new(self.lr)).collect();
        self.blocks = Some(blocks);
        self.ensure_bufs();
    }

    fn ensure_bufs(&mut self) {
        if self.bufs.is_some() {
            return;
        }
        let bs = self.batch_size;
        let blocks = self.blocks.as_ref().expect("blocks initialized");
        let input = blocks[0].trunk.in_dim();
        let output = blocks[0].forecast_head.out_dim();
        self.bufs = Some(NBeatsBuffers {
            blocks: blocks.iter().map(|b| b.buffers(bs)).collect(),
            targets: Matrix::zeros(bs, output),
            forecast: Matrix::zeros(bs, output),
            g_forecast: Matrix::zeros(bs, output),
            g_residual: Matrix::zeros(bs, input),
            scratch: vec![0.0; input + output],
        });
    }

    /// Splits a feature vector into (history = first w−1 steps, target = s_t)
    /// in standardized space.
    fn split_scaled(&self, x: &FeatureVector) -> (Vec<f64>, Vec<f64>) {
        let scaled = match &self.scaler {
            Some(s) => s.transform(x.as_slice()),
            None => x.as_slice().to_vec(),
        };
        let n = x.n();
        let hist = scaled[..scaled.len() - n].to_vec();
        let target = scaled[scaled.len() - n..].to_vec();
        (hist, target)
    }

    /// Forward over the residual stack in standardized space.
    fn forecast_scaled(&self, hist: &[f64]) -> Vec<f64> {
        let blocks = self.blocks.as_ref().expect("blocks initialized");
        let mut residual = hist.to_vec();
        let mut forecast: Option<Vec<f64>> = None;
        for block in blocks {
            let (b, f) = block.infer(&residual);
            for (r, bv) in residual.iter_mut().zip(&b) {
                *r -= bv;
            }
            match &mut forecast {
                Some(acc) => {
                    for (a, fv) in acc.iter_mut().zip(&f) {
                        *a += fv;
                    }
                }
                None => forecast = Some(f),
            }
        }
        forecast.expect("at least one block")
    }

    /// Loads one minibatch into the training buffers: the standardized
    /// history rows go into block 0's trunk workspace, the standardized
    /// targets into the `targets` matrix. Allocation-free (the full scaled
    /// window passes through the `scratch` buffer).
    fn load_chunk(&mut self, chunk: &[FeatureVector]) {
        let bufs = self.bufs.as_mut().expect("buffers initialized");
        let b = chunk.len();
        for bb in &mut bufs.blocks {
            bb.ws_t.set_batch(b);
            bb.ws_b.set_batch(b);
            bb.ws_f.set_batch(b);
        }
        bufs.targets.resize_rows(b);
        bufs.forecast.resize_rows(b);
        bufs.g_forecast.resize_rows(b);
        bufs.g_residual.resize_rows(b);
        let n = chunk[0].n();
        for (i, x) in chunk.iter().enumerate() {
            match &self.scaler {
                Some(s) => s.transform_into(x.as_slice(), &mut bufs.scratch),
                None => bufs.scratch.copy_from_slice(x.as_slice()),
            }
            let split = bufs.scratch.len() - n;
            bufs.blocks[0].ws_t.input_row_mut(i).copy_from_slice(&bufs.scratch[..split]);
            bufs.targets.row_mut(i).copy_from_slice(&bufs.scratch[split..]);
        }
    }

    /// One SSE training step on the minibatch currently loaded in the
    /// buffers (see [`Self::load_chunk`]). Batched through the workspace
    /// path; zero heap allocations. At batch size 1 this reproduces the
    /// original per-sample step bitwise (same summation order in every
    /// kernel, same segmented optimizer trajectory); larger batches scale
    /// the summed gradients by `1/B` (minibatch mean) before stepping.
    fn train_chunk(&mut self) {
        let blocks = self.blocks.as_mut().expect("blocks initialized");
        let NBeatsBuffers { blocks: bbs, targets, forecast, g_forecast, g_residual, .. } =
            self.bufs.as_mut().expect("buffers initialized");
        let n_blocks = blocks.len();
        let bsz = targets.rows();

        // ---- Forward down the residual stack, accumulating the forecast.
        forecast.fill(0.0);
        for l in 0..n_blocks {
            {
                let bb = &mut bbs[l];
                blocks[l].trunk.forward_batch(&mut bb.ws_t);
                bb.ws_b.input_mut().copy_from(bb.ws_t.output());
                blocks[l].backcast_head.forward_batch(&mut bb.ws_b);
                bb.ws_f.input_mut().copy_from(bb.ws_t.output());
                blocks[l].forecast_head.forward_batch(&mut bb.ws_f);
                for b in 0..bsz {
                    for (acc, &fv) in forecast.row_mut(b).iter_mut().zip(bb.ws_f.output().row(b)) {
                        *acc += fv;
                    }
                }
            }
            // x_{l+1} = x_l − x̂_l, written straight into the next block's
            // trunk input.
            if l + 1 < n_blocks {
                let (cur, rest) = bbs.split_at_mut(l + 1);
                let bb = &cur[l];
                let next = &mut rest[0];
                for b in 0..bsz {
                    for ((o, &r), &bv) in next
                        .ws_t
                        .input_row_mut(b)
                        .iter_mut()
                        .zip(bb.ws_t.input().row(b))
                        .zip(bb.ws_b.output().row(b))
                    {
                        *o = r - bv;
                    }
                }
            }
        }

        // ---- Backward through the residual chain.
        // ∂SSE/∂ŷ = 2(ŷ − y), identical for every block (ŷ is the sum).
        for b in 0..bsz {
            for ((g, &p), &t) in
                g_forecast.row_mut(b).iter_mut().zip(forecast.row(b)).zip(targets.row(b))
            {
                *g = 2.0 * (p - t);
            }
        }
        g_residual.fill(0.0); // ∂L/∂x_L (unused tail)
        for l in (0..n_blocks).rev() {
            let bb = &mut bbs[l];
            let block = &blocks[l];
            bb.g_t.zero();
            bb.g_b.zero();
            bb.g_f.zero();
            // Forecast head: every block's forecast feeds the sum directly.
            bb.ws_f.grad_out_mut().copy_from(g_forecast);
            block.forecast_head.backward_batch(&mut bb.ws_f, &mut bb.g_f, true);
            // Backcast head: x_{l+1} = x_l − x̂_l ⇒ ∂L/∂x̂_l = −∂L/∂x_{l+1}.
            for b in 0..bsz {
                for (g, &r) in bb.ws_b.grad_out_mut().row_mut(b).iter_mut().zip(g_residual.row(b))
                {
                    *g = -r;
                }
            }
            block.backcast_head.backward_batch(&mut bb.ws_b, &mut bb.g_b, true);
            // Trunk output gradient: forecast path + backcast path.
            {
                let go = bb.ws_t.grad_out_mut();
                for b in 0..bsz {
                    for ((g, &f), &bv) in go
                        .row_mut(b)
                        .iter_mut()
                        .zip(bb.ws_f.grad_in().row(b))
                        .zip(bb.ws_b.grad_in().row(b))
                    {
                        *g = f + bv;
                    }
                }
            }
            // Trunk: ∂L/∂x_l gets the trunk path plus the residual pass-through.
            block.trunk.backward_batch(&mut bb.ws_t, &mut bb.g_t, true);
            for b in 0..bsz {
                for (g, &t) in g_residual.row_mut(b).iter_mut().zip(bb.ws_t.grad_in().row(b)) {
                    *g += t;
                }
            }
        }

        // ---- Apply per-block updates: one segmented optimizer step over
        // the trunk|backcast|forecast parameter range (bitwise identical to
        // the former flatten → step → unflatten round-trip, minus the
        // copies).
        for ((block, bb), opt) in blocks.iter_mut().zip(bbs.iter_mut()).zip(&mut self.opts) {
            // Interpretable bases are fixed: kill their gradients so the
            // optimizer (whose moments are also fed zeros here) never moves
            // the expansion vectors. The expansion layer is layer index 1
            // of each two-layer head.
            if block.basis != BasisKind::Generic {
                for g in [&mut bb.g_b, &mut bb.g_f] {
                    let frozen = &mut g.layers_mut()[1];
                    frozen.weights.fill(0.0);
                    frozen.bias.fill(0.0);
                }
            }
            if bsz > 1 {
                let s = 1.0 / bsz as f64;
                bb.g_t.scale(s);
                bb.g_b.scale(s);
                bb.g_f.scale(s);
            }
            opt.begin_step(block.num_params());
            let off = block.trunk.apply_grads_segmented(&bb.g_t, opt, 0);
            let off = block.backcast_head.apply_grads_segmented(&bb.g_b, opt, off);
            block.forecast_head.apply_grads_segmented(&bb.g_f, opt, off);
        }
    }

    /// Inference state for the fleet's cross-stream batched stepping:
    /// `(residual stack, fitted scaler)`. `None` until the blocks exist.
    pub(crate) fn inference_parts(&self) -> Option<(&[Block], Option<&Standardizer>)> {
        self.blocks.as_deref().map(|blocks| (blocks, self.scaler.as_ref()))
    }

    /// Per-block backcast/forecast decomposition for a feature vector — the
    /// interpretability view the basis expansion exists for.
    pub fn decompose(&mut self, x: &FeatureVector) -> Vec<(Vec<f64>, Vec<f64>)> {
        self.ensure_blocks((x.w() - 1) * x.n(), x.n());
        let (hist, _) = self.split_scaled(x);
        let blocks = self.blocks.as_ref().expect("blocks initialized");
        let mut residual = hist;
        let mut out = Vec::with_capacity(blocks.len());
        for block in blocks {
            let (b, f) = block.infer(&residual);
            for (r, bv) in residual.iter_mut().zip(&b) {
                *r -= bv;
            }
            out.push((b, f));
        }
        out
    }
}

impl StreamModel for NBeats {
    fn name(&self) -> &'static str {
        "N-BEATS"
    }

    fn predict(&mut self, x: &FeatureVector) -> ModelOutput {
        assert!(x.w() >= 2, "N-BEATS needs at least two steps of history");
        self.ensure_blocks((x.w() - 1) * x.n(), x.n());
        let (hist, _) = self.split_scaled(x);
        let forecast_z = self.forecast_scaled(&hist);
        let forecast = match &self.scaler {
            Some(s) => s.inverse_tail(&forecast_z),
            None => forecast_z,
        };
        ModelOutput::Forecast(forecast)
    }

    fn fit_initial(&mut self, train: &[FeatureVector], epochs: usize) {
        if train.is_empty() {
            return;
        }
        self.scaler = Some(Standardizer::fit(train));
        self.ensure_blocks((train[0].w() - 1) * train[0].n(), train[0].n());
        for _ in 0..epochs {
            self.fine_tune(train);
        }
    }

    fn fine_tune(&mut self, train: &[FeatureVector]) {
        if train.is_empty() {
            return;
        }
        self.ensure_blocks((train[0].w() - 1) * train[0].n(), train[0].n());
        for chunk in train.chunks(self.batch_size) {
            self.load_chunk(chunk);
            self.train_chunk();
        }
    }

    fn clone_box(&self) -> Box<dyn StreamModel> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sad_core::nonconformity;

    fn sine_windows(count: usize, w: usize) -> Vec<FeatureVector> {
        (0..count)
            .map(|s| {
                let data: Vec<f64> = (0..w)
                    .flat_map(|i| {
                        let t = (s + i) as f64 * 0.35;
                        vec![t.sin() * 2.0, (t * 0.8 + 1.0).cos()]
                    })
                    .collect();
                FeatureVector::new(data, w, 2)
            })
            .collect()
    }

    #[test]
    fn forecast_has_channel_dimensionality() {
        let mut nb = NBeats::new(2, 8, 4, 1e-3, 3);
        let x = FeatureVector::new(vec![0.1; 12], 6, 2);
        match nb.predict(&x) {
            ModelOutput::Forecast(f) => {
                assert_eq!(f.len(), 2);
                assert!(f.iter().all(|v| v.is_finite()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn training_reduces_forecast_error() {
        let train = sine_windows(40, 8);
        let mut nb = NBeats::new(2, 16, 6, 2e-3, 11);
        let mut untrained = nb.clone();
        untrained.fit_initial(&train, 0);
        // Enough epochs to halve the error from any reasonable Xavier init
        // (the exact trajectory depends on the seeded RNG stream).
        nb.fit_initial(&train, 120);
        let probe = &train[20];
        let err = |m: &mut NBeats| -> f64 {
            match m.predict(probe) {
                ModelOutput::Forecast(f) => f
                    .iter()
                    .zip(probe.last_step())
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>(),
                _ => unreachable!(),
            }
        };
        let before = err(&mut untrained);
        let after = err(&mut nb);
        assert!(after < before * 0.5, "training must help: {before} -> {after}");
    }

    #[test]
    fn trained_model_scores_anomaly_higher() {
        let train = sine_windows(40, 8);
        let mut nb = NBeats::new(2, 16, 6, 2e-3, 11);
        nb.fit_initial(&train, 80);
        let normal = &train[25];
        let a_norm = nonconformity(normal, &nb.predict(normal));
        // Same history, broken last step (orthogonal direction).
        let mut data = normal.as_slice().to_vec();
        let dim = data.len();
        data[dim - 2] = -5.0;
        data[dim - 1] = 5.0;
        let broken = FeatureVector::new(data, 8, 2);
        let a_broken = nonconformity(&broken, &nb.predict(&broken));
        assert!(a_broken > a_norm, "broken step {a_broken} vs normal {a_norm}");
    }

    #[test]
    fn residual_decomposition_sums_to_forecast() {
        let train = sine_windows(20, 8);
        let mut nb = NBeats::new(3, 8, 4, 1e-3, 5);
        nb.fit_initial(&train, 10);
        let x = &train[10];
        let parts = nb.decompose(x);
        assert_eq!(parts.len(), 3);
        let summed: Vec<f64> = (0..2)
            .map(|j| parts.iter().map(|(_, f)| f[j]).sum::<f64>())
            .collect();
        let (hist, _) = nb.split_scaled(x);
        let direct = nb.forecast_scaled(&hist);
        for (a, b) in summed.iter().zip(&direct) {
            assert!((a - b).abs() < 1e-9, "decomposition mismatch {a} vs {b}");
        }
    }

    /// Descent check of the full residual-stack backward pass.
    #[test]
    fn grad_check_residual_stack() {
        let mut nb = NBeats::new(2, 6, 3, 1e-3, 21);
        nb.ensure_blocks(8, 2);
        let hist: Vec<f64> = (0..8).map(|i| (i as f64 * 0.37).sin()).collect();
        let target = vec![0.3, -0.2];
        // No scaler fitted → split_scaled is the identity split, so one
        // window = hist ++ target (w = 5 steps of n = 2 channels).
        let mut data = hist.clone();
        data.extend_from_slice(&target);
        let window = FeatureVector::new(data, 5, 2);

        // Analytic gradient via a single zero-lr "training step" with spy
        // optimizers is awkward; instead check loss decrease under a tiny
        // step, which fails if any gradient sign is wrong.
        let loss = |nb: &NBeats| -> f64 {
            let f = nb.forecast_scaled(&hist);
            f.iter().zip(&target).map(|(a, b)| (a - b) * (a - b)).sum()
        };
        let before = loss(&nb);
        for _ in 0..25 {
            nb.fine_tune(std::slice::from_ref(&window));
        }
        let after = loss(&nb);
        assert!(after < before, "gradient steps must descend: {before} -> {after}");
        assert!(after < before * 0.7, "descent should be substantial: {before} -> {after}");
    }

    /// Larger minibatches must still descend on the same objective.
    #[test]
    fn batched_training_still_learns() {
        let train = sine_windows(40, 8);
        let mut nb = NBeats::new(2, 16, 6, 2e-3, 11).with_batch_size(8);
        let mut untrained = nb.clone();
        untrained.fit_initial(&train, 0);
        nb.fit_initial(&train, 150);
        let probe = &train[20];
        let err = |m: &mut NBeats| -> f64 {
            match m.predict(probe) {
                ModelOutput::Forecast(f) => f
                    .iter()
                    .zip(probe.last_step())
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>(),
                _ => unreachable!(),
            }
        };
        let before = err(&mut untrained);
        let after = err(&mut nb);
        assert!(after < before * 0.5, "batched training must help: {before} -> {after}");
    }

    #[test]
    fn empty_training_set_is_a_noop() {
        let mut nb = NBeats::new(2, 8, 4, 1e-3, 3);
        nb.fit_initial(&[], 5);
        nb.fine_tune(&[]);
    }

    #[test]
    fn interpretable_basis_stays_frozen_under_training() {
        let train = sine_windows(30, 8);
        let mut nb = NBeats::interpretable(12, 3, 2, 2e-3, 7);
        nb.ensure_blocks(14, 2);
        let basis_params = |nb: &NBeats| -> Vec<f64> {
            let block = &nb.blocks.as_ref().unwrap()[0];
            let l1 = block.backcast_head.layers()[0].num_params();
            block.backcast_head.params_flat()[l1..].to_vec()
        };
        let before = basis_params(&nb);
        nb.fit_initial(&train, 30);
        let after = basis_params(&nb);
        assert_eq!(before, after, "polynomial basis vectors must not train");
    }

    #[test]
    fn interpretable_model_still_learns() {
        let train = sine_windows(40, 8);
        let mut nb = NBeats::interpretable(16, 3, 3, 2e-3, 9);
        let mut untrained = nb.clone();
        untrained.fit_initial(&train, 0);
        nb.fit_initial(&train, 80);
        // Average forecast SSE over the whole training regime (single-probe
        // error is too noisy for the constrained basis).
        let err = |m: &mut NBeats| -> f64 {
            train
                .iter()
                .map(|probe| match m.predict(probe) {
                    ModelOutput::Forecast(f) => f
                        .iter()
                        .zip(probe.last_step())
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum::<f64>(),
                    _ => unreachable!(),
                })
                .sum::<f64>()
                / train.len() as f64
        };
        let before = err(&mut untrained);
        let after = err(&mut nb);
        assert!(after < before, "interpretable N-BEATS must learn: {before} -> {after}");
    }

    #[test]
    fn trend_block_basis_is_polynomial() {
        let mut nb = NBeats::interpretable(8, 3, 2, 1e-3, 1);
        nb.ensure_blocks(12, 2); // steps = 6, n = 2
        let block = &nb.blocks.as_ref().unwrap()[0];
        let l1 = block.backcast_head.layers()[0].num_params();
        let params = block.backcast_head.params_flat();
        // Row for time step i=5 (τ=1), channel 0: [1, 1, 1] (τ^0, τ^1, τ^2).
        let theta = 3;
        let row = 5 * 2;
        for j in 0..theta {
            assert!((params[l1 + row * theta + j] - 1.0).abs() < 1e-12);
        }
        // Row for τ=0 (i=0): [1, 0, 0].
        assert_eq!(params[l1], 1.0);
        assert_eq!(params[l1 + 1], 0.0);
        assert_eq!(params[l1 + 2], 0.0);
        // Seasonal block: first column is cos(2πτ); at τ=0 -> 1.
        let sblock = &nb.blocks.as_ref().unwrap()[1];
        let sl1 = sblock.backcast_head.layers()[0].num_params();
        let sparams = sblock.backcast_head.params_flat();
        assert!((sparams[sl1] - 1.0).abs() < 1e-12, "cos(0) = 1");
        assert!(sparams[sl1 + 1].abs() < 1e-12, "sin(0) = 0");
    }

    #[test]
    fn plan_reports_block_configuration() {
        let nb = NBeats::interpretable(8, 4, 3, 1e-3, 0);
        assert_eq!(nb.plan(), &[(BasisKind::Trend, 4), (BasisKind::Seasonal, 6)]);
        let nb2 = NBeats::new(3, 8, 5, 1e-3, 0);
        assert_eq!(nb2.plan().len(), 3);
        assert!(nb2.plan().iter().all(|&(k, t)| k == BasisKind::Generic && t == 5));
    }
}
