//! Turns a Table I [`AlgorithmSpec`] into a runnable [`Detector`].
//!
//! This is the glue between the framework enumeration in `sad-core` and the
//! model implementations in this crate. All hyperparameters are derived
//! from the detector configuration (`w`, `N`) with the defaults used for
//! the experiment harness; [`BuildParams`] exposes the knobs the paper
//! varies.

use crate::{NBeats, OnlineArima, PcbIForestModel, TwoLayerAe, Usad};
use sad_core::{
    AlgorithmSpec, AnomalyLikelihood, AnomalyScorer, Detector, DetectorConfig, DriftDetector,
    KswinDetector, ModelKind, MovingAverage, MuSigmaChange, RawScore, ScoreKind, ScorerBank,
    SharedWarmup, StreamModel, Task1, Task2, TrainingSetStrategy,
};
use sad_core::{AnomalyAwareReservoir, SlidingWindowSet, UniformReservoir};

/// Everything needed to instantiate one of the 26 algorithms.
#[derive(Debug, Clone)]
pub struct BuildParams {
    /// Detector configuration (`w`, `N`, warm-up, epochs).
    pub config: DetectorConfig,
    /// Training-set capacity `m`.
    pub train_capacity: usize,
    /// Anomaly scoring function.
    pub score: ScoreKind,
    /// Long scoring window `k`.
    pub score_k: usize,
    /// Short scoring window `k'` (anomaly likelihood only, `k' ≪ k`).
    pub score_k_short: usize,
    /// KSWIN significance level α.
    pub kswin_alpha: f64,
    /// KSWIN test stride (1 = test every step, as in the paper; larger
    /// strides trade detection latency for throughput in long sweeps).
    pub kswin_stride: usize,
    /// Training minibatch size for the neural models (AE/USAD/N-BEATS).
    /// 1 (the default) reproduces the per-sample update trajectory of the
    /// reference implementation bitwise; larger values take one
    /// mean-gradient step per chunk through the batched GEMM path.
    pub nn_batch_size: usize,
    /// Master seed for all stochastic components.
    pub seed: u64,
}

impl BuildParams {
    /// Defaults mirroring the paper's experimental setup, scaled by the
    /// provided detector configuration.
    pub fn new(config: DetectorConfig) -> Self {
        Self {
            train_capacity: 50,
            score: ScoreKind::AnomalyLikelihood,
            score_k: 40,
            score_k_short: 5,
            kswin_alpha: KswinDetector::DEFAULT_ALPHA,
            kswin_stride: 1,
            nn_batch_size: 1,
            seed: 42,
            config,
        }
    }

    /// Sets the anomaly scorer.
    pub fn with_score(mut self, score: ScoreKind) -> Self {
        self.score = score;
        self
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the training-set capacity `m`.
    pub fn with_capacity(mut self, m: usize) -> Self {
        self.train_capacity = m;
        self
    }

    /// Sets the KSWIN stride.
    pub fn with_kswin_stride(mut self, stride: usize) -> Self {
        self.kswin_stride = stride;
        self
    }

    /// Sets the neural-model training minibatch size (see
    /// [`Self::nn_batch_size`]).
    pub fn with_nn_batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        self.nn_batch_size = batch_size;
        self
    }
}

/// Builds the model component for a [`ModelKind`].
pub fn build_model(kind: ModelKind, params: &BuildParams) -> Box<dyn StreamModel> {
    let dim = params.config.window * params.config.channels;
    let seed = params.seed;
    match kind {
        ModelKind::OnlineArima => Box::new(OnlineArima::new(1, 1e-3)),
        ModelKind::TwoLayerAe => {
            Box::new(TwoLayerAe::for_dim(dim, seed).with_batch_size(params.nn_batch_size))
        }
        ModelKind::Usad => Box::new(Usad::for_dim(dim, seed).with_batch_size(params.nn_batch_size)),
        ModelKind::NBeats => Box::new(
            NBeats::for_dims(params.config.window, params.config.channels, seed)
                .with_batch_size(params.nn_batch_size),
        ),
        ModelKind::PcbIForest => {
            // Subsample bounded by the training-set size (one point per
            // training feature vector).
            let psi = params.train_capacity.clamp(8, 256);
            Box::new(PcbIForestModel::new(100, psi, 0.5, seed))
        }
    }
}

/// Builds the Task-1 strategy component.
pub fn build_task1(task1: Task1, params: &BuildParams) -> Box<dyn TrainingSetStrategy> {
    let m = params.train_capacity;
    match task1 {
        Task1::SlidingWindow => Box::new(SlidingWindowSet::new(m)),
        Task1::UniformReservoir => Box::new(UniformReservoir::new(m, params.seed ^ 0x5eed)),
        Task1::AnomalyAwareReservoir => {
            Box::new(AnomalyAwareReservoir::new(m, params.seed ^ 0xa4e5))
        }
    }
}

/// Builds the Task-2 drift-detector component.
pub fn build_task2(task2: Task2, params: &BuildParams) -> Box<dyn DriftDetector> {
    match task2 {
        Task2::MuSigma => Box::new(MuSigmaChange::new()),
        Task2::Kswin => {
            Box::new(KswinDetector::with_stride(params.kswin_alpha, params.kswin_stride))
        }
    }
}

/// Builds the anomaly scorer component.
pub fn build_scorer(score: ScoreKind, params: &BuildParams) -> Box<dyn AnomalyScorer> {
    match score {
        ScoreKind::Raw => Box::new(RawScore),
        ScoreKind::Average => Box::new(MovingAverage::new(params.score_k)),
        ScoreKind::AnomalyLikelihood => {
            Box::new(AnomalyLikelihood::new(params.score_k, params.score_k_short))
        }
    }
}

/// Builds a [`ScorerBank`] holding one fresh scorer per [`ScoreKind`], in
/// the given order — the fan-out counterpart of [`build_scorer`]. Each
/// bank scorer is constructed exactly as a standalone detector's scorer
/// would be, so teeing one nonconformity stream through the bank
/// reproduces per-scorer runs bitwise (when the detector trajectory is
/// scorer-independent; see [`Detector::scorer_feedback_free`]).
pub fn build_scorer_bank(kinds: &[ScoreKind], params: &BuildParams) -> ScorerBank {
    ScorerBank::new(kinds.iter().map(|&kind| build_scorer(kind, params)).collect())
}

/// Assembles the full detector for one of the paper's 26 algorithms.
pub fn build_detector(spec: AlgorithmSpec, params: &BuildParams) -> Detector {
    Detector::new(
        params.config.clone(),
        build_model(spec.model, params),
        build_task1(spec.task1, params),
        build_task2(spec.task2, params),
        build_scorer(params.score, params),
    )
}

/// Assembles a [`SharedWarmup`] driver for one `(model, Task1)` pair over
/// several Task-2 drift variants — the root of the shared-prefix
/// evaluation tree.
///
/// Every component is built exactly as [`build_detector`] would build it
/// for the corresponding `(model, task1, task2)` spec: the component seeds
/// are independent of each other and of the variant list, so a fork from
/// the returned driver is bitwise identical to the standalone detector.
/// The fitted model is assembled into per-variant [`Detector`]s via
/// [`SharedWarmup::fork`].
pub fn build_shared_warmup(
    model: ModelKind,
    task1: Task1,
    task2s: &[Task2],
    params: &BuildParams,
) -> SharedWarmup {
    SharedWarmup::new(
        params.config.clone(),
        build_model(model, params),
        build_task1(task1, params),
        task2s.iter().map(|&task2| build_task2(task2, params)).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sad_core::paper_algorithms;

    fn tiny_params() -> BuildParams {
        let config = DetectorConfig {
            window: 6,
            channels: 2,
            warmup: 40,
            initial_epochs: 2,
            fine_tune_epochs: 1,
        };
        BuildParams::new(config).with_capacity(10)
    }

    fn smooth_series(len: usize) -> Vec<Vec<f64>> {
        (0..len).map(|t| vec![(t as f64 * 0.1).sin(), (t as f64 * 0.07).cos()]).collect()
    }

    #[test]
    fn all_26_algorithms_build_and_run() {
        let series = smooth_series(80);
        for spec in paper_algorithms() {
            let mut det = build_detector(spec, &tiny_params());
            let outputs = det.run(&series);
            assert_eq!(outputs.len(), 40, "{}", spec.label());
            for out in &outputs {
                assert!(
                    (0.0..=1.0).contains(&out.anomaly_score),
                    "{}: score {} out of range",
                    spec.label(),
                    out.anomaly_score
                );
                assert!(out.nonconformity.is_finite(), "{}", spec.label());
            }
        }
    }

    #[test]
    fn builder_respects_score_kind() {
        let params = tiny_params().with_score(ScoreKind::Average);
        let spec = paper_algorithms()[0];
        let det = build_detector(spec, &params);
        assert_eq!(det.component_names().3, "Avg");
    }

    #[test]
    fn component_names_match_spec() {
        let spec = paper_algorithms()
            .into_iter()
            .find(|s| s.model == ModelKind::Usad && s.task1 == Task1::AnomalyAwareReservoir)
            .unwrap();
        let det = build_detector(spec, &tiny_params());
        let (model, task1, task2, _) = det.component_names();
        assert_eq!(model, "USAD");
        assert_eq!(task1, "ARES");
        assert_eq!(task2, spec.task2.label());
    }

    #[test]
    fn scorer_bank_mirrors_build_scorer() {
        let params = tiny_params();
        let kinds = [ScoreKind::Raw, ScoreKind::Average, ScoreKind::AnomalyLikelihood];
        let mut bank = build_scorer_bank(&kinds, &params);
        assert_eq!(bank.names(), vec!["Raw", "Avg", "AL"]);
        let mut out = Vec::new();
        let mut standalone: Vec<_> =
            kinds.iter().map(|&kind| build_scorer(kind, &params)).collect();
        for i in 0..60 {
            let a = ((i * 13) % 100) as f64 / 100.0;
            bank.update_into(a, &mut out);
            for (k, scorer) in standalone.iter_mut().enumerate() {
                assert_eq!(out[k].to_bits(), scorer.update(a).to_bits(), "scorer {k}");
            }
        }
    }

    /// A shared warm-up over both drift variants of an AE pair forks into
    /// detectors bitwise identical to standalone `build_detector` runs.
    #[test]
    fn shared_warmup_forks_match_built_detectors_bitwise() {
        let params = tiny_params();
        let series = smooth_series(110);
        let warm = params.config.warmup;
        let pair: Vec<_> = paper_algorithms()
            .into_iter()
            .filter(|s| s.model == ModelKind::TwoLayerAe && s.task1 == Task1::SlidingWindow)
            .collect();
        assert_eq!(pair.len(), 2, "AE/SW must have exactly the two drift variants");

        let task2s: Vec<Task2> = pair.iter().map(|s| s.task2).collect();
        let mut shared =
            build_shared_warmup(ModelKind::TwoLayerAe, Task1::SlidingWindow, &task2s, &params);
        for s in &series[..warm] {
            shared.step(s);
        }
        for (v, &spec) in pair.iter().enumerate() {
            let mut fork = shared.fork(v, build_scorer(params.score, &params));
            let mut standalone = build_detector(spec, &params);
            for s in &series[..warm] {
                assert!(standalone.step(s).is_none());
            }
            for (i, s) in series[warm..].iter().enumerate() {
                let a = fork.step(s).unwrap();
                let b = standalone.step(s).unwrap();
                assert_eq!(
                    a.anomaly_score.to_bits(),
                    b.anomaly_score.to_bits(),
                    "{}: step {i}",
                    spec.label()
                );
                assert_eq!(a.drift, b.drift, "{}: step {i}", spec.label());
            }
        }
    }

    #[test]
    fn seeded_builds_are_deterministic() {
        let spec = paper_algorithms()[7]; // a 2-layer AE variant
        let series = smooth_series(70);
        let run = |seed: u64| -> Vec<f64> {
            let mut det = build_detector(spec, &tiny_params().with_seed(seed));
            det.run(&series).into_iter().map(|o| o.anomaly_score).collect()
        };
        assert_eq!(run(7), run(7), "same seed, same scores");
    }
}
