//! Cross-stream batched inference for the NN-backed models (fleet serving).
//!
//! The fleet's headline optimisation packs the per-step feature windows of
//! many streams into one row-major matrix and pushes them through a single
//! `Mlp::forward_batch` per sub-network, amortizing inference the way
//! `MlpWorkspace` already amortizes training. This module provides the
//! model-side machinery:
//!
//! * [`ArchKey`] / [`batch_arch_key`] — which streams are *eligible* to
//!   share a batch (same model family, identical layer dimensions);
//! * [`infer_state_equal`] — which eligible streams may *actually* share
//!   one forward pass (bitwise-identical inference parameters: only then
//!   is running every row through one member's network exactly the
//!   per-stream computation);
//! * [`InferBatch`] — the reusable batched workspaces plus the
//!   `begin`/`pack`/`forward`/`emit_into` loop that reproduces each
//!   model's `predict` bitwise, row by row.
//!
//! Bitwise parity rests on three already-proven facts: `forward_batch`
//! computes each output row independently and identically to `Mlp::infer`
//! (`sad-nn` batch parity tests), the scalers' `*_into` variants match
//! their allocating twins bitwise (scaler tests), and matrix-row copies
//! are exact. The tests below close the loop per model against `predict`.

use crate::ae::TwoLayerAe;
use crate::nbeats::NBeats;
use crate::usad::Usad;
use sad_core::{FeatureVector, ModelOutput, StreamModel};
use sad_nn::{Mlp, MlpWorkspace};
use sad_tensor::Matrix;

/// Model family of an [`ArchKey`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArchKind {
    /// `TwoLayerAe` reconstruction.
    Ae,
    /// `Usad` — only the inference half `AE₁ = D₁ ∘ E`.
    Usad,
    /// `NBeats` residual forecast stack.
    NBeats,
}

/// Batching eligibility key: streams share a batch group iff their models
/// have the same kind and identical layer dimensions (the issue's rule:
/// same arch ⇒ same batch). Parameter values are deliberately *not* part
/// of the key — they are compared separately by [`infer_state_equal`] to
/// form weight-identical cohorts within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchKey {
    kind: ArchKind,
    /// Flattened layer dimensions of every network `predict` touches
    /// (sentinel-separated per network so distinct topologies cannot
    /// collide).
    dims: Vec<usize>,
}

impl ArchKey {
    /// Model family.
    pub fn kind(&self) -> ArchKind {
        self.kind
    }
}

/// Appends `in_dim, out₁, out₂, …, SENTINEL` for one network.
fn push_mlp_dims(dims: &mut Vec<usize>, mlp: &Mlp) {
    dims.push(mlp.in_dim());
    for layer in mlp.layers() {
        dims.push(layer.weights.shape().0);
    }
    dims.push(usize::MAX);
}

/// The batching eligibility key of a model, or `None` when the model is
/// not an NN-backed type or its networks have not materialized yet (e.g.
/// before the warm-up fit). Non-eligible streams stay on the scalar
/// per-stream path.
pub fn batch_arch_key(model: &dyn StreamModel) -> Option<ArchKey> {
    let any = model.as_any()?;
    if let Some(ae) = any.downcast_ref::<TwoLayerAe>() {
        let (net, _) = ae.inference_parts()?;
        let mut dims = Vec::new();
        push_mlp_dims(&mut dims, net);
        return Some(ArchKey { kind: ArchKind::Ae, dims });
    }
    if let Some(usad) = any.downcast_ref::<Usad>() {
        let (encoder, dec1, _) = usad.inference_parts()?;
        let mut dims = Vec::new();
        push_mlp_dims(&mut dims, encoder);
        push_mlp_dims(&mut dims, dec1);
        return Some(ArchKey { kind: ArchKind::Usad, dims });
    }
    if let Some(nb) = any.downcast_ref::<NBeats>() {
        let (blocks, _) = nb.inference_parts()?;
        let mut dims = Vec::new();
        for block in blocks {
            push_mlp_dims(&mut dims, &block.trunk);
            push_mlp_dims(&mut dims, &block.backcast_head);
            push_mlp_dims(&mut dims, &block.forecast_head);
        }
        return Some(ArchKey { kind: ArchKind::NBeats, dims });
    }
    None
}

fn scaler_equal<S>(a: Option<&S>, b: Option<&S>, eq: impl Fn(&S, &S) -> bool) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(a), Some(b)) => eq(a, b),
        _ => false,
    }
}

/// Whether two models' *inference* computations are bitwise identical —
/// the cohort test: only streams passing this may share one forward pass.
/// Exact (`f64::to_bits`) comparison of every parameter `predict` reads,
/// plus the fitted scaler statistics. Models of different kinds or shapes
/// are never equal; training-only state (optimizers, `dec2`, gradient
/// buffers) is irrelevant to `predict` and ignored.
pub fn infer_state_equal(a: &dyn StreamModel, b: &dyn StreamModel) -> bool {
    let (Some(a), Some(b)) = (a.as_any(), b.as_any()) else { return false };
    if let (Some(x), Some(y)) = (a.downcast_ref::<TwoLayerAe>(), b.downcast_ref::<TwoLayerAe>()) {
        return match (x.inference_parts(), y.inference_parts()) {
            (Some((nx, sx)), Some((ny, sy))) => {
                nx.params_equal(ny) && scaler_equal(sx, sy, |p, q| p.state_equal(q))
            }
            _ => false,
        };
    }
    if let (Some(x), Some(y)) = (a.downcast_ref::<Usad>(), b.downcast_ref::<Usad>()) {
        return match (x.inference_parts(), y.inference_parts()) {
            (Some((ex, dx, sx)), Some((ey, dy, sy))) => {
                ex.params_equal(ey)
                    && dx.params_equal(dy)
                    && scaler_equal(sx, sy, |p, q| p.state_equal(q))
            }
            _ => false,
        };
    }
    if let (Some(x), Some(y)) = (a.downcast_ref::<NBeats>(), b.downcast_ref::<NBeats>()) {
        return match (x.inference_parts(), y.inference_parts()) {
            (Some((bx, sx)), Some((by, sy))) => {
                bx.len() == by.len()
                    && bx.iter().zip(by).all(|(p, q)| {
                        p.trunk.params_equal(&q.trunk)
                            && p.backcast_head.params_equal(&q.backcast_head)
                            && p.forecast_head.params_equal(&q.forecast_head)
                    })
                    && scaler_equal(sx, sy, |p, q| p.state_equal(q))
            }
            _ => false,
        };
    }
    false
}

/// Per-block inference workspaces for the N-BEATS residual stack.
struct NBeatsBlockWs {
    ws_t: MlpWorkspace,
    ws_b: MlpWorkspace,
    ws_f: MlpWorkspace,
}

enum BatchInner {
    Ae {
        ws: MlpWorkspace,
    },
    Usad {
        ws_e: MlpWorkspace,
        ws_d1: MlpWorkspace,
    },
    NBeats {
        blocks: Vec<NBeatsBlockWs>,
        /// `B×n` running forecast sum `Σ_l ŷ_l`.
        forecast: Matrix,
        /// `w·N` scratch for the standardized full window before the
        /// history/target split.
        scratch: Vec<f64>,
    },
}

/// Reusable batched-inference buffers for one cohort of streams sharing
/// bitwise-identical inference state.
///
/// The per-step loop is `begin(rows)` → `pack(leader, row, x)` per stream
/// → `forward(leader)` → `emit_into(leader, row, out)` per stream, where
/// `leader` is any cohort member's model (they are interchangeable by the
/// cohort invariant). All buffers are sized once for `capacity` rows;
/// steady-state rounds perform zero heap allocations.
pub struct InferBatch {
    inner: BatchInner,
    capacity: usize,
    rows: usize,
}

impl InferBatch {
    /// Builds batch buffers for `leader`'s architecture, or `None` when
    /// the model is not batchable (see [`batch_arch_key`]).
    pub fn new(leader: &dyn StreamModel, capacity: usize) -> Option<Self> {
        assert!(capacity > 0, "batch capacity must be positive");
        let any = leader.as_any()?;
        let inner = if let Some(ae) = any.downcast_ref::<TwoLayerAe>() {
            let (net, _) = ae.inference_parts()?;
            BatchInner::Ae { ws: net.inference_workspace(capacity) }
        } else if let Some(usad) = any.downcast_ref::<Usad>() {
            let (encoder, dec1, _) = usad.inference_parts()?;
            BatchInner::Usad {
                ws_e: encoder.inference_workspace(capacity),
                ws_d1: dec1.inference_workspace(capacity),
            }
        } else if let Some(nb) = any.downcast_ref::<NBeats>() {
            let (blocks, _) = nb.inference_parts()?;
            let input = blocks[0].trunk.in_dim();
            let output = blocks[0].forecast_head.out_dim();
            BatchInner::NBeats {
                blocks: blocks
                    .iter()
                    .map(|b| NBeatsBlockWs {
                        ws_t: b.trunk.inference_workspace(capacity),
                        ws_b: b.backcast_head.inference_workspace(capacity),
                        ws_f: b.forecast_head.inference_workspace(capacity),
                    })
                    .collect(),
                forecast: Matrix::zeros(capacity, output),
                scratch: vec![0.0; input + output],
            }
        } else {
            return None;
        };
        Some(Self { inner, capacity, rows: 0 })
    }

    /// Maximum rows per forward pass.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Starts a round of `rows ≤ capacity` streams.
    pub fn begin(&mut self, rows: usize) {
        assert!(rows > 0 && rows <= self.capacity, "rows {rows} out of 1..={}", self.capacity);
        self.rows = rows;
        match &mut self.inner {
            BatchInner::Ae { ws } => ws.set_batch(rows),
            BatchInner::Usad { ws_e, ws_d1 } => {
                ws_e.set_batch(rows);
                ws_d1.set_batch(rows);
            }
            BatchInner::NBeats { blocks, forecast, .. } => {
                for b in blocks.iter_mut() {
                    b.ws_t.set_batch(rows);
                    b.ws_b.set_batch(rows);
                    b.ws_f.set_batch(rows);
                }
                forecast.resize_rows(rows);
            }
        }
    }

    /// Loads stream `row`'s feature window, applying the leader's input
    /// scaling exactly as that model's `predict` would.
    pub fn pack(&mut self, leader: &dyn StreamModel, row: usize, x: &FeatureVector) {
        assert!(row < self.rows, "row {row} out of batch of {}", self.rows);
        let any = leader.as_any().expect("batchable leader");
        match &mut self.inner {
            BatchInner::Ae { ws } => {
                let (_, scaler) =
                    any.downcast_ref::<TwoLayerAe>().expect("AE leader").inference_parts().unwrap();
                match scaler {
                    Some(s) => s.transform_into(x.as_slice(), ws.input_row_mut(row)),
                    None => ws.input_row_mut(row).copy_from_slice(x.as_slice()),
                }
            }
            BatchInner::Usad { ws_e, .. } => {
                let (_, _, scaler) =
                    any.downcast_ref::<Usad>().expect("USAD leader").inference_parts().unwrap();
                match scaler {
                    Some(s) => s.transform_into(x.as_slice(), ws_e.input_row_mut(row)),
                    None => ws_e.input_row_mut(row).copy_from_slice(x.as_slice()),
                }
            }
            BatchInner::NBeats { blocks, scratch, .. } => {
                assert!(x.w() >= 2, "N-BEATS needs at least two steps of history");
                let (_, scaler) =
                    any.downcast_ref::<NBeats>().expect("N-BEATS leader").inference_parts().unwrap();
                match scaler {
                    Some(s) => s.transform_into(x.as_slice(), scratch),
                    None => scratch.copy_from_slice(x.as_slice()),
                }
                let split = scratch.len() - x.n();
                blocks[0].ws_t.input_row_mut(row).copy_from_slice(&scratch[..split]);
            }
        }
    }

    /// Runs the shared forward pass(es) for the whole batch.
    pub fn forward(&mut self, leader: &dyn StreamModel) {
        let any = leader.as_any().expect("batchable leader");
        match &mut self.inner {
            BatchInner::Ae { ws } => {
                let (net, _) =
                    any.downcast_ref::<TwoLayerAe>().expect("AE leader").inference_parts().unwrap();
                net.forward_batch(ws);
            }
            BatchInner::Usad { ws_e, ws_d1 } => {
                let (encoder, dec1, _) =
                    any.downcast_ref::<Usad>().expect("USAD leader").inference_parts().unwrap();
                encoder.forward_batch(ws_e);
                ws_d1.input_mut().copy_from(ws_e.output());
                dec1.forward_batch(ws_d1);
            }
            BatchInner::NBeats { blocks, forecast, .. } => {
                let (nets, _) = any
                    .downcast_ref::<NBeats>()
                    .expect("N-BEATS leader")
                    .inference_parts()
                    .unwrap();
                let rows = self.rows;
                let n_blocks = nets.len();
                for l in 0..n_blocks {
                    {
                        let bb = &mut blocks[l];
                        nets[l].trunk.forward_batch(&mut bb.ws_t);
                        bb.ws_b.input_mut().copy_from(bb.ws_t.output());
                        nets[l].backcast_head.forward_batch(&mut bb.ws_b);
                        bb.ws_f.input_mut().copy_from(bb.ws_t.output());
                        nets[l].forecast_head.forward_batch(&mut bb.ws_f);
                        // ŷ = Σ_l ŷ_l: copy the first block's forecast, add
                        // the rest (copy-then-accumulate matches the scalar
                        // path's `None => Some(f)` initialization bitwise —
                        // `0.0 + f` is not the identity for `f = −0.0`).
                        if l == 0 {
                            forecast.copy_from(bb.ws_f.output());
                        } else {
                            for b in 0..rows {
                                for (acc, &fv) in
                                    forecast.row_mut(b).iter_mut().zip(bb.ws_f.output().row(b))
                                {
                                    *acc += fv;
                                }
                            }
                        }
                    }
                    // x_{l+1} = x_l − x̂_l, written straight into the next
                    // block's trunk input.
                    if l + 1 < n_blocks {
                        let (cur, rest) = blocks.split_at_mut(l + 1);
                        let bb = &cur[l];
                        let next = &mut rest[0];
                        for b in 0..rows {
                            for ((o, &r), &bv) in next
                                .ws_t
                                .input_row_mut(b)
                                .iter_mut()
                                .zip(bb.ws_t.input().row(b))
                                .zip(bb.ws_b.output().row(b))
                            {
                                *o = r - bv;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Writes stream `row`'s model output into `out`, reusing its existing
    /// buffer when the variant and length already match (the fleet keeps
    /// one `ModelOutput` per stream, so steady-state rounds do not
    /// allocate).
    pub fn emit_into(&self, leader: &dyn StreamModel, row: usize, out: &mut ModelOutput) {
        assert!(row < self.rows, "row {row} out of batch of {}", self.rows);
        let any = leader.as_any().expect("batchable leader");
        match &self.inner {
            BatchInner::Ae { ws } => {
                let (_, scaler) =
                    any.downcast_ref::<TwoLayerAe>().expect("AE leader").inference_parts().unwrap();
                let z = ws.output().row(row);
                let buf = reconstruction_buf(out, z.len());
                match scaler {
                    Some(s) => s.inverse_into(z, buf),
                    None => buf.copy_from_slice(z),
                }
            }
            BatchInner::Usad { ws_d1, .. } => {
                let (_, _, scaler) =
                    any.downcast_ref::<Usad>().expect("USAD leader").inference_parts().unwrap();
                let z = ws_d1.output().row(row);
                let buf = reconstruction_buf(out, z.len());
                match scaler {
                    Some(s) => s.inverse_into(z, buf),
                    None => buf.copy_from_slice(z),
                }
            }
            BatchInner::NBeats { forecast, .. } => {
                let (_, scaler) = any
                    .downcast_ref::<NBeats>()
                    .expect("N-BEATS leader")
                    .inference_parts()
                    .unwrap();
                let z = forecast.row(row);
                let buf = forecast_buf(out, z.len());
                match scaler {
                    Some(s) => s.inverse_tail_into(z, buf),
                    None => buf.copy_from_slice(z),
                }
            }
        }
    }
}

pub(crate) fn reconstruction_buf(out: &mut ModelOutput, len: usize) -> &mut [f64] {
    if !matches!(out, ModelOutput::Reconstruction(v) if v.len() == len) {
        *out = ModelOutput::Reconstruction(vec![0.0; len]);
    }
    match out {
        ModelOutput::Reconstruction(v) => v,
        _ => unreachable!(),
    }
}

pub(crate) fn forecast_buf(out: &mut ModelOutput, len: usize) -> &mut [f64] {
    if !matches!(out, ModelOutput::Forecast(v) if v.len() == len) {
        *out = ModelOutput::Forecast(vec![0.0; len]);
    }
    match out {
        ModelOutput::Forecast(v) => v,
        _ => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine_windows(count: usize, w: usize, phase: f64) -> Vec<FeatureVector> {
        (0..count)
            .map(|s| {
                let data: Vec<f64> = (0..w)
                    .flat_map(|i| {
                        let t = (s + i) as f64 * 0.3 + phase;
                        vec![t.sin(), (t * 0.5).cos() * 2.0]
                    })
                    .collect();
                FeatureVector::new(data, w, 2)
            })
            .collect()
    }

    fn assert_outputs_bitwise(a: &ModelOutput, b: &ModelOutput, ctx: &str) {
        match (a, b) {
            (ModelOutput::Reconstruction(x), ModelOutput::Reconstruction(y))
            | (ModelOutput::Forecast(x), ModelOutput::Forecast(y)) => {
                assert_eq!(x.len(), y.len(), "{ctx}: length");
                for (i, (p, q)) in x.iter().zip(y).enumerate() {
                    assert_eq!(p.to_bits(), q.to_bits(), "{ctx}: element {i}");
                }
            }
            other => panic!("{ctx}: variant mismatch {other:?}"),
        }
    }

    /// Drives a batch of `probes` through `InferBatch` and checks every
    /// row against the model's own `predict`, bitwise.
    fn check_batch_matches_predict(model: &mut dyn StreamModel, probes: &[FeatureVector]) {
        let mut batch = InferBatch::new(model, probes.len()).expect("batchable model");
        // Also exercise partial batches: all rows, then a batch of one.
        for take in [probes.len(), 1] {
            batch.begin(take);
            for (row, x) in probes[..take].iter().enumerate() {
                batch.pack(model, row, x);
            }
            batch.forward(model);
            for (row, x) in probes[..take].iter().enumerate() {
                let mut got = ModelOutput::Score(0.0);
                batch.emit_into(model, row, &mut got);
                let want = model.predict(x);
                assert_outputs_bitwise(&got, &want, &format!("take {take}, row {row}"));
            }
        }
    }

    #[test]
    fn ae_batch_matches_predict_bitwise() {
        let train = sine_windows(40, 8, 0.0);
        let mut ae = TwoLayerAe::new(8, 5e-3, 7);
        ae.fit_initial(&train, 20);
        check_batch_matches_predict(&mut ae, &train[10..16]);
    }

    #[test]
    fn usad_batch_matches_predict_bitwise() {
        let train = sine_windows(30, 6, 0.0);
        let mut usad = Usad::new(3, 2e-3, 5);
        usad.fit_initial(&train, 15);
        check_batch_matches_predict(&mut usad, &train[5..10]);
    }

    #[test]
    fn nbeats_batch_matches_predict_bitwise() {
        let train = sine_windows(40, 8, 0.0);
        let mut nb = NBeats::new(2, 16, 6, 2e-3, 11);
        nb.fit_initial(&train, 15);
        check_batch_matches_predict(&mut nb, &train[20..25]);
        // The interpretable (fixed-basis) configuration too.
        let mut nbi = NBeats::interpretable(12, 3, 2, 2e-3, 7);
        nbi.fit_initial(&train, 10);
        check_batch_matches_predict(&mut nbi, &train[12..17]);
    }

    /// Unscaled models (predict before any fit creates the nets lazily,
    /// no scaler) must also match.
    #[test]
    fn unscaled_ae_batch_matches_predict_bitwise() {
        let mut ae = TwoLayerAe::new(4, 1e-3, 1);
        let x = FeatureVector::new(vec![1.0, 2.0, 3.0, 4.0], 2, 2);
        let _ = ae.predict(&x); // materializes the net, no scaler
        check_batch_matches_predict(&mut ae, std::slice::from_ref(&x));
    }

    #[test]
    fn arch_key_groups_same_shape_only() {
        let train = sine_windows(30, 8, 0.0);
        let mut a = TwoLayerAe::new(8, 5e-3, 1);
        let mut b = TwoLayerAe::new(8, 1e-2, 99); // same shape, different params
        let mut c = TwoLayerAe::new(12, 5e-3, 1); // different hidden width
        a.fit_initial(&train, 2);
        b.fit_initial(&train, 2);
        c.fit_initial(&train, 2);
        let ka = batch_arch_key(&a).unwrap();
        assert_eq!(ka.kind(), ArchKind::Ae);
        assert_eq!(ka, batch_arch_key(&b).unwrap());
        assert_ne!(ka, batch_arch_key(&c).unwrap());

        let mut u = Usad::new(3, 2e-3, 5);
        u.fit_initial(&train, 1);
        assert_ne!(ka, batch_arch_key(&u).unwrap());
    }

    #[test]
    fn unfitted_or_non_nn_models_are_not_batchable() {
        let ae = TwoLayerAe::new(8, 5e-3, 1); // no net yet
        assert!(batch_arch_key(&ae).is_none());
        assert!(InferBatch::new(&ae, 4).is_none());
        let knn = crate::KnnDistanceModel::new(3);
        assert!(batch_arch_key(&knn).is_none());
        assert!(InferBatch::new(&knn, 4).is_none());
    }

    #[test]
    fn infer_state_equal_tracks_training_divergence() {
        let train = sine_windows(30, 8, 0.0);
        let mut a = TwoLayerAe::new(8, 5e-3, 7);
        a.fit_initial(&train, 5);
        let b = a.clone();
        assert!(infer_state_equal(&a, &b), "clones share inference state");
        let mut c = b.clone();
        c.fine_tune(&train);
        assert!(!infer_state_equal(&a, &c), "fine-tuning breaks the cohort");
        // Same shape, different seed → different parameters.
        let mut d = TwoLayerAe::new(8, 5e-3, 8);
        d.fit_initial(&train, 5);
        assert!(!infer_state_equal(&a, &d));
        // Cross-kind comparison is never equal.
        let mut u = Usad::new(3, 2e-3, 5);
        u.fit_initial(&train, 1);
        assert!(!infer_state_equal(&a, &u));
    }

    #[test]
    fn usad_dec2_divergence_keeps_cohort() {
        // dec2 never participates in predict: two USADs equal on
        // (encoder, dec1, scaler) stay in one cohort regardless of dec2.
        let train = sine_windows(30, 6, 0.0);
        let mut a = Usad::new(3, 2e-3, 5);
        a.fit_initial(&train, 10);
        let b = a.clone();
        assert!(infer_state_equal(&a, &b));
    }
}
