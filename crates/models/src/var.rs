//! Vector autoregression (paper §IV-C).
//!
//! `s_t = ν + Σ_{i=1..p} A_i s_{t−i} + ε_t` with coefficient matrices
//! `A_i ∈ R^{N×N}` and intercept `ν ∈ R^N`, estimated by least squares on
//! consecutive rows of the training windows. The paper notes this restricts
//! Task 1 to the sliding window, because least squares needs an excerpt of
//! *consecutive* time-series data — which only SW preserves.
//!
//! VAR is described by the paper as the correlation-aware extension of
//! online ARIMA but is not part of the Table I evaluation grid; it is
//! implemented here for completeness and used in the ablation benches.

use sad_core::{FeatureVector, ModelOutput, StreamModel};
use sad_tensor::{least_squares, Matrix};

/// A VAR(p) forecaster fit by ridge-stabilized least squares.
#[derive(Debug, Clone)]
pub struct VarModel {
    p: usize,
    ridge: f64,
    /// Stacked coefficients `[ν | A₁ | … | A_p]^T` exactly as returned by
    /// least squares — a `(1 + pN) × N` matrix; `None` until the first
    /// fit. Stored untransposed: prediction uses [`Matrix::matvec_t`], so
    /// the refit path never materializes a transpose.
    coeffs: Option<Matrix>,
}

impl VarModel {
    /// Creates a VAR(p) model. `ridge` stabilizes the normal equations
    /// against constant channels (1e-6 is a good default).
    pub fn new(p: usize, ridge: f64) -> Self {
        assert!(p > 0, "lag order must be positive");
        assert!(ridge >= 0.0, "ridge must be non-negative");
        Self { p, ridge, coeffs: None }
    }

    /// Lag order `p`.
    pub fn order(&self) -> usize {
        self.p
    }

    /// `true` once the model has been fit.
    pub fn is_fit(&self) -> bool {
        self.coeffs.is_some()
    }

    /// Builds the regression design from consecutive rows of each window:
    /// each row `t ∈ [p, w)` of a window yields the regressor
    /// `[1, s_{t−1}, …, s_{t−p}]` and target `s_t`.
    fn design(&self, train: &[FeatureVector]) -> Option<(Matrix, Matrix)> {
        let first = train.first()?;
        let (w, n) = (first.w(), first.n());
        if w <= self.p {
            return None;
        }
        let rows_per_window = w - self.p;
        let total = rows_per_window * train.len();
        let k = 1 + self.p * n;
        let mut a = Matrix::zeros(total, k);
        let mut b = Matrix::zeros(total, n);
        let mut row = 0;
        for x in train {
            for t in self.p..w {
                let arow = a.row_mut(row);
                arow[0] = 1.0;
                for lag in 1..=self.p {
                    arow[1 + (lag - 1) * n..1 + lag * n].copy_from_slice(x.step(t - lag));
                }
                b.row_mut(row).copy_from_slice(x.step(t));
                row += 1;
            }
        }
        Some((a, b))
    }

    fn refit(&mut self, train: &[FeatureVector]) {
        let Some((a, b)) = self.design(train) else {
            return;
        };
        // least_squares returns K × N; keep that layout and predict with
        // `matvec_t` — the old path transposed to N × K on every refit.
        match least_squares(&a, &b, self.ridge.max(1e-10)) {
            Ok(x) => self.coeffs = Some(x),
            Err(_) => { /* singular even with ridge: keep previous fit */ }
        }
    }
}

impl StreamModel for VarModel {
    fn name(&self) -> &'static str {
        "VAR"
    }

    fn predict(&mut self, x: &FeatureVector) -> ModelOutput {
        let n = x.n();
        let Some(coeffs) = &self.coeffs else {
            // Unfit model: persistence forecast.
            return ModelOutput::Forecast(x.step(x.w().saturating_sub(2)).to_vec());
        };
        assert!(x.w() > self.p, "window shorter than lag order");
        // Regressor from the p rows preceding s_t.
        let t = x.w() - 1;
        let mut reg = Vec::with_capacity(1 + self.p * n);
        reg.push(1.0);
        for lag in 1..=self.p {
            reg.extend_from_slice(x.step(t - lag));
        }
        // coeffs is K × N (K = 1 + pN); `coeffs^T · reg` without transposing.
        ModelOutput::Forecast(coeffs.matvec_t(&reg))
    }

    fn fit_initial(&mut self, train: &[FeatureVector], _epochs: usize) {
        // Least squares is a closed-form fit; epochs are meaningless.
        self.refit(train);
    }

    fn fine_tune(&mut self, train: &[FeatureVector]) {
        self.refit(train);
    }

    fn clone_box(&self) -> Box<dyn StreamModel> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Generates windows from the deterministic VAR(1) process
    /// `s_t = ν + A s_{t−1}` so least squares can recover it exactly.
    fn var1_windows(count: usize, w: usize) -> (Vec<FeatureVector>, Vec<Vec<f64>>) {
        let a = [[0.5, 0.2], [-0.1, 0.7]];
        let nu = [0.3, -0.1];
        let mut series = vec![vec![1.0, 0.5]];
        for t in 1..(count + w) {
            let prev = &series[t - 1];
            series.push(vec![
                nu[0] + a[0][0] * prev[0] + a[0][1] * prev[1],
                nu[1] + a[1][0] * prev[0] + a[1][1] * prev[1],
            ]);
        }
        let windows = (0..count)
            .map(|s| {
                let data: Vec<f64> = series[s..s + w].iter().flatten().copied().collect();
                FeatureVector::new(data, w, 2)
            })
            .collect();
        (windows, series)
    }

    #[test]
    fn recovers_var1_process_exactly() {
        let (windows, series) = var1_windows(30, 8);
        let mut model = VarModel::new(1, 0.0);
        model.fit_initial(&windows, 1);
        assert!(model.is_fit());
        // Forecast the last step of a held-out window.
        let probe = &windows[25];
        match model.predict(probe) {
            ModelOutput::Forecast(f) => {
                let truth = probe.last_step();
                assert!((f[0] - truth[0]).abs() < 1e-6, "{} vs {}", f[0], truth[0]);
                assert!((f[1] - truth[1]).abs() < 1e-6);
            }
            other => panic!("unexpected {other:?}"),
        }
        let _ = series;
    }

    #[test]
    fn var2_handles_longer_lags() {
        let (windows, _) = var1_windows(40, 10);
        let mut model = VarModel::new(2, 1e-8);
        model.fit_initial(&windows, 1);
        // A VAR(2) fit of a VAR(1) process is still exact (A₂ = 0).
        let probe = &windows[30];
        match model.predict(probe) {
            ModelOutput::Forecast(f) => {
                let truth = probe.last_step();
                assert!((f[0] - truth[0]).abs() < 1e-5);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unfit_model_gives_persistence_forecast() {
        let mut model = VarModel::new(1, 1e-6);
        let x = FeatureVector::new(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3, 2);
        match model.predict(&x) {
            ModelOutput::Forecast(f) => assert_eq!(f, vec![3.0, 4.0]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn constant_channel_needs_ridge() {
        // One channel constant -> singular design without ridge.
        let windows: Vec<FeatureVector> = (0..10)
            .map(|s| {
                let data: Vec<f64> = (0..6)
                    .flat_map(|i| vec![((s + i) as f64 * 0.7).sin(), 5.0])
                    .collect();
                FeatureVector::new(data, 6, 2)
            })
            .collect();
        let mut model = VarModel::new(1, 1e-6);
        model.fit_initial(&windows, 1);
        assert!(model.is_fit(), "ridge makes the singular design solvable");
        match model.predict(&windows[5]) {
            ModelOutput::Forecast(f) => {
                assert!((f[1] - 5.0).abs() < 0.05, "constant channel forecast {}", f[1]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn too_short_window_keeps_previous_fit() {
        let (windows, _) = var1_windows(10, 8);
        let mut model = VarModel::new(1, 1e-6);
        model.fit_initial(&windows, 1);
        assert!(model.is_fit());
        // Windows of length <= p cannot produce a design; fit is retained.
        let tiny = vec![FeatureVector::new(vec![1.0, 2.0], 1, 2)];
        model.fine_tune(&tiny);
        assert!(model.is_fit());
    }
}
