//! Per-dimension standardization for the neural models.
//!
//! Sensor channels in the benchmark corpora differ in scale by orders of
//! magnitude (accelerometer milli-g vs CPU percent vs byte counters).
//! Gradient-trained networks need roughly unit-scale inputs, so the neural
//! models fit `z = (x − μ)/σ` statistics on the warm-up training set and
//! map reconstructions/forecasts back to raw units before the cosine
//! nonconformity compares them with the stream. (The reference
//! implementations of AE/USAD/N-BEATS normalize in their data pipelines;
//! here it lives inside the model so the framework stays scale-agnostic.)

use sad_core::FeatureVector;

/// Per-dimension affine scaler `z_j = (x_j − μ_j) / σ_j`.
#[derive(Debug, Clone)]
pub struct Standardizer {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl Standardizer {
    /// σ floor: constant dimensions pass through unscaled instead of
    /// dividing by zero.
    const STD_FLOOR: f64 = 1e-8;

    /// An identity scaler of dimension `dim` (useful before any data has
    /// been seen).
    pub fn identity(dim: usize) -> Self {
        Self { mean: vec![0.0; dim], std: vec![1.0; dim] }
    }

    /// Fits per-dimension mean and standard deviation over the flattened
    /// feature vectors of `train`.
    ///
    /// # Panics
    /// Panics if `train` is empty or dimensions are inconsistent.
    pub fn fit(train: &[FeatureVector]) -> Self {
        assert!(!train.is_empty(), "cannot fit a standardizer on no data");
        let dim = train[0].dim();
        let n = train.len() as f64;
        let mut mean = vec![0.0; dim];
        for x in train {
            assert_eq!(x.dim(), dim, "inconsistent feature dimensions");
            for (m, &v) in mean.iter_mut().zip(x.as_slice()) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; dim];
        for x in train {
            for ((s, &v), &m) in var.iter_mut().zip(x.as_slice()).zip(&mean) {
                *s += (v - m) * (v - m);
            }
        }
        let std = var.into_iter().map(|s| (s / n).sqrt().max(Self::STD_FLOOR)).collect();
        Self { mean, std }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Standardizes a raw vector.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.mean.len(), "standardizer dimension mismatch");
        x.iter().zip(&self.mean).zip(&self.std).map(|((&v, &m), &s)| (v - m) / s).collect()
    }

    /// Allocation-free [`Self::transform`]: writes the standardized vector
    /// into `out` (the batched training path fills workspace rows with
    /// this).
    pub fn transform_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.mean.len(), "standardizer dimension mismatch");
        assert_eq!(out.len(), x.len(), "standardizer output length mismatch");
        for (o, ((&v, &m), &s)) in out.iter_mut().zip(x.iter().zip(&self.mean).zip(&self.std)) {
            *o = (v - m) / s;
        }
    }

    /// Maps a standardized vector back to raw units.
    pub fn inverse(&self, z: &[f64]) -> Vec<f64> {
        assert_eq!(z.len(), self.mean.len(), "standardizer dimension mismatch");
        z.iter().zip(&self.mean).zip(&self.std).map(|((&v, &m), &s)| v * s + m).collect()
    }

    /// Allocation-free [`Self::inverse`]: writes the raw-unit vector into
    /// `out` (the fleet's batched inference path scatters workspace rows
    /// with this).
    pub fn inverse_into(&self, z: &[f64], out: &mut [f64]) {
        assert_eq!(z.len(), self.mean.len(), "standardizer dimension mismatch");
        assert_eq!(out.len(), z.len(), "standardizer output length mismatch");
        for (o, ((&v, &m), &s)) in out.iter_mut().zip(z.iter().zip(&self.mean).zip(&self.std)) {
            *o = v * s + m;
        }
    }

    /// Standardizes only a suffix slice (used by forecasting models whose
    /// target is the last stream vector: the scaler is fit on `w·N` dims
    /// and the last `N` entries correspond to `s_t`).
    pub fn transform_tail(&self, tail: &[f64]) -> Vec<f64> {
        let offset = self.mean.len() - tail.len();
        tail.iter()
            .zip(&self.mean[offset..])
            .zip(&self.std[offset..])
            .map(|((&v, &m), &s)| (v - m) / s)
            .collect()
    }

    /// Inverse of [`Self::transform_tail`].
    pub fn inverse_tail(&self, tail: &[f64]) -> Vec<f64> {
        let offset = self.mean.len() - tail.len();
        tail.iter()
            .zip(&self.mean[offset..])
            .zip(&self.std[offset..])
            .map(|((&v, &m), &s)| v * s + m)
            .collect()
    }

    /// Allocation-free [`Self::inverse_tail`].
    pub fn inverse_tail_into(&self, tail: &[f64], out: &mut [f64]) {
        assert_eq!(out.len(), tail.len(), "standardizer output length mismatch");
        let offset = self.mean.len() - tail.len();
        for (o, ((&v, &m), &s)) in
            out.iter_mut().zip(tail.iter().zip(&self.mean[offset..]).zip(&self.std[offset..]))
        {
            *o = v * s + m;
        }
    }

    /// Bitwise equality of the fitted statistics — the scaler half of the
    /// fleet's "identical inference state" cohort test.
    pub fn state_equal(&self, other: &Standardizer) -> bool {
        self.mean.len() == other.mean.len()
            && self.mean.iter().zip(&other.mean).all(|(a, b)| a.to_bits() == b.to_bits())
            && self.std.iter().zip(&other.std).all(|(a, b)| a.to_bits() == b.to_bits())
    }
}

/// Per-dimension min-max scaler mapping the training range onto `[0, 1]`.
///
/// USAD bounds its decoder outputs with a final sigmoid and normalizes data
/// to `[0, 1]` (Audibert et al. §5.1) — this boundedness is what keeps the
/// adversarial maximization of `R_both` from diverging. Out-of-range stream
/// values simply map outside `[0, 1]` and become unreconstructable, which
/// is the desired anomaly signal.
#[derive(Debug, Clone)]
pub struct MinMaxScaler {
    min: Vec<f64>,
    range: Vec<f64>,
}

impl MinMaxScaler {
    /// Range floor for constant dimensions.
    const RANGE_FLOOR: f64 = 1e-8;

    /// Fits per-dimension min/max over the flattened feature vectors.
    ///
    /// # Panics
    /// Panics if `train` is empty or dimensions are inconsistent.
    pub fn fit(train: &[FeatureVector]) -> Self {
        assert!(!train.is_empty(), "cannot fit a scaler on no data");
        let dim = train[0].dim();
        let mut min = vec![f64::INFINITY; dim];
        let mut max = vec![f64::NEG_INFINITY; dim];
        for x in train {
            assert_eq!(x.dim(), dim, "inconsistent feature dimensions");
            for ((lo, hi), &v) in min.iter_mut().zip(&mut max).zip(x.as_slice()) {
                *lo = lo.min(v);
                *hi = hi.max(v);
            }
        }
        let range = min.iter().zip(&max).map(|(l, h)| (h - l).max(Self::RANGE_FLOOR)).collect();
        Self { min, range }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.min.len()
    }

    /// Maps a raw vector into (approximately) `[0, 1]`.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.min.len(), "scaler dimension mismatch");
        x.iter().zip(&self.min).zip(&self.range).map(|((&v, &m), &r)| (v - m) / r).collect()
    }

    /// Allocation-free [`Self::transform`]: writes the scaled vector into
    /// `out`.
    pub fn transform_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.min.len(), "scaler dimension mismatch");
        assert_eq!(out.len(), x.len(), "scaler output length mismatch");
        for (o, ((&v, &m), &r)) in out.iter_mut().zip(x.iter().zip(&self.min).zip(&self.range)) {
            *o = (v - m) / r;
        }
    }

    /// Maps a `[0, 1]` vector back to raw units.
    pub fn inverse(&self, z: &[f64]) -> Vec<f64> {
        assert_eq!(z.len(), self.min.len(), "scaler dimension mismatch");
        z.iter().zip(&self.min).zip(&self.range).map(|((&v, &m), &r)| v * r + m).collect()
    }

    /// Allocation-free [`Self::inverse`].
    pub fn inverse_into(&self, z: &[f64], out: &mut [f64]) {
        assert_eq!(z.len(), self.min.len(), "scaler dimension mismatch");
        assert_eq!(out.len(), z.len(), "scaler output length mismatch");
        for (o, ((&v, &m), &r)) in out.iter_mut().zip(z.iter().zip(&self.min).zip(&self.range)) {
            *o = v * r + m;
        }
    }

    /// Bitwise equality of the fitted statistics (see
    /// [`Standardizer::state_equal`]).
    pub fn state_equal(&self, other: &MinMaxScaler) -> bool {
        self.min.len() == other.min.len()
            && self.min.iter().zip(&other.min).all(|(a, b)| a.to_bits() == b.to_bits())
            && self.range.iter().zip(&other.range).all(|(a, b)| a.to_bits() == b.to_bits())
    }
}

/// f32 snapshot of a fitted scaler's affine map, for the inference-only
/// f32 serving path.
///
/// Both scalers are the same shape of map — `z = (x − sub) / div` with
/// `(sub, div) = (μ, σ)` for [`Standardizer`] and `(min, range)` for
/// [`MinMaxScaler`] — so one snapshot type covers both. Like
/// `sad_nn::InferPlan` it holds *converted copies*: the authoritative f64
/// statistics stay in the owning scaler, and the snapshot is re-synced
/// (allocation-free) on the same training-event hook that refreshes the
/// network plans. Arithmetic here is entirely f32 on the forward side and
/// widens back to f64 on the inverse side, matching the f64 path to f32
/// relative accuracy.
#[derive(Debug, Clone)]
pub struct ScalerF32 {
    sub: Vec<f32>,
    div: Vec<f32>,
}

impl ScalerF32 {
    /// Snapshots a fitted [`Standardizer`].
    pub fn from_standardizer(s: &Standardizer) -> Self {
        Self {
            sub: s.mean.iter().map(|&v| v as f32).collect(),
            div: s.std.iter().map(|&v| v as f32).collect(),
        }
    }

    /// Snapshots a fitted [`MinMaxScaler`].
    pub fn from_minmax(s: &MinMaxScaler) -> Self {
        Self {
            sub: s.min.iter().map(|&v| v as f32).collect(),
            div: s.range.iter().map(|&v| v as f32).collect(),
        }
    }

    /// Re-converts from a [`Standardizer`] in place — no heap allocation.
    ///
    /// # Panics
    /// Panics on a dimensionality change (cohort refreshes never resize).
    pub fn refresh_standardizer(&mut self, s: &Standardizer) {
        self.refresh_from(&s.mean, &s.std);
    }

    /// Re-converts from a [`MinMaxScaler`] in place — no heap allocation.
    ///
    /// # Panics
    /// Panics on a dimensionality change (cohort refreshes never resize).
    pub fn refresh_minmax(&mut self, s: &MinMaxScaler) {
        self.refresh_from(&s.min, &s.range);
    }

    fn refresh_from(&mut self, sub: &[f64], div: &[f64]) {
        assert_eq!(self.sub.len(), sub.len(), "scaler snapshot dimension mismatch");
        for (o, &v) in self.sub.iter_mut().zip(sub) {
            *o = v as f32;
        }
        for (o, &v) in self.div.iter_mut().zip(div) {
            *o = v as f32;
        }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.sub.len()
    }

    /// `z = (x − sub) / div`, narrowing into an f32 workspace row.
    pub fn transform_into(&self, x: &[f64], out: &mut [f32]) {
        assert_eq!(x.len(), self.sub.len(), "scaler snapshot dimension mismatch");
        assert_eq!(out.len(), x.len(), "scaler snapshot output length mismatch");
        for (o, ((&v, &m), &d)) in out.iter_mut().zip(x.iter().zip(&self.sub).zip(&self.div)) {
            *o = (v as f32 - m) / d;
        }
    }

    /// `x = z · div + sub`, widening back to raw f64 units.
    pub fn inverse_into(&self, z: &[f32], out: &mut [f64]) {
        assert_eq!(z.len(), self.sub.len(), "scaler snapshot dimension mismatch");
        assert_eq!(out.len(), z.len(), "scaler snapshot output length mismatch");
        for (o, ((&v, &m), &d)) in out.iter_mut().zip(z.iter().zip(&self.sub).zip(&self.div)) {
            *o = (v * d + m) as f64;
        }
    }

    /// Suffix variant of [`Self::inverse_into`] (see
    /// [`Standardizer::inverse_tail_into`]).
    pub fn inverse_tail_into(&self, tail: &[f32], out: &mut [f64]) {
        assert_eq!(out.len(), tail.len(), "scaler snapshot output length mismatch");
        let offset = self.sub.len() - tail.len();
        for (o, ((&v, &m), &d)) in
            out.iter_mut().zip(tail.iter().zip(&self.sub[offset..]).zip(&self.div[offset..]))
        {
            *o = (v * d + m) as f64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fv(values: &[f64]) -> FeatureVector {
        FeatureVector::new(values.to_vec(), values.len(), 1)
    }

    #[test]
    fn minmax_maps_training_range_to_unit() {
        let train = vec![fv(&[0.0, -10.0]), fv(&[4.0, 30.0])];
        let s = MinMaxScaler::fit(&train);
        assert_eq!(s.transform(&[0.0, -10.0]), vec![0.0, 0.0]);
        assert_eq!(s.transform(&[4.0, 30.0]), vec![1.0, 1.0]);
        assert_eq!(s.transform(&[2.0, 10.0]), vec![0.5, 0.5]);
    }

    #[test]
    fn minmax_round_trip() {
        let train = vec![fv(&[1.0, 2.0]), fv(&[3.0, 8.0]), fv(&[2.0, 5.0])];
        let s = MinMaxScaler::fit(&train);
        let x = [2.7, 6.1];
        let back = s.inverse(&s.transform(&x));
        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn minmax_out_of_range_values_exceed_unit() {
        let train = vec![fv(&[0.0]), fv(&[1.0])];
        let s = MinMaxScaler::fit(&train);
        assert!(s.transform(&[5.0])[0] > 1.0);
        assert!(s.transform(&[-5.0])[0] < 0.0);
    }

    #[test]
    fn minmax_constant_dim_is_floored() {
        let train = vec![fv(&[7.0]), fv(&[7.0])];
        let s = MinMaxScaler::fit(&train);
        assert!(s.transform(&[7.0])[0].is_finite());
    }

    #[test]
    fn fit_computes_mean_and_std() {
        let train = vec![fv(&[0.0, 10.0]), fv(&[2.0, 30.0])];
        let s = Standardizer::fit(&train);
        let z = s.transform(&[1.0, 20.0]);
        assert!(z[0].abs() < 1e-12 && z[1].abs() < 1e-12, "center maps to zero: {z:?}");
        let z2 = s.transform(&[2.0, 30.0]);
        assert!((z2[0] - 1.0).abs() < 1e-12);
        assert!((z2[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn round_trip_is_identity() {
        let train = vec![fv(&[1.0, 2.0, 3.0]), fv(&[4.0, 0.0, -3.0]), fv(&[2.0, 2.0, 9.0])];
        let s = Standardizer::fit(&train);
        let x = [3.3, -1.2, 7.0];
        let back = s.inverse(&s.transform(&x));
        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_dimension_is_floored_not_nan() {
        let train = vec![fv(&[5.0, 1.0]), fv(&[5.0, 2.0])];
        let s = Standardizer::fit(&train);
        let z = s.transform(&[5.0, 1.5]);
        assert!(z.iter().all(|v| v.is_finite()));
        assert_eq!(z[0], 0.0);
    }

    #[test]
    fn tail_transforms_use_suffix_stats() {
        let train = vec![fv(&[0.0, 100.0]), fv(&[2.0, 300.0])];
        let s = Standardizer::fit(&train);
        let z = s.transform_tail(&[200.0]);
        assert!(z[0].abs() < 1e-12);
        let raw = s.inverse_tail(&[1.0]);
        assert!((raw[0] - 300.0).abs() < 1e-9);
    }

    #[test]
    fn identity_scaler_is_noop() {
        let s = Standardizer::identity(3);
        let x = [1.0, -2.0, 3.0];
        assert_eq!(s.transform(&x), x.to_vec());
        assert_eq!(s.inverse(&x), x.to_vec());
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn empty_fit_panics() {
        let _ = Standardizer::fit(&[]);
    }

    #[test]
    fn transform_into_matches_transform_bitwise() {
        let train = vec![fv(&[1.0, -4.0, 0.5]), fv(&[3.0, 2.0, 9.5]), fv(&[0.0, 1.0, 4.0])];
        let x = [2.2, -0.7, 6.1];
        let mut out = [0.0; 3];
        let s = Standardizer::fit(&train);
        s.transform_into(&x, &mut out);
        assert_eq!(out.map(f64::to_bits).to_vec(),
            s.transform(&x).iter().map(|v| v.to_bits()).collect::<Vec<_>>());
        let mm = MinMaxScaler::fit(&train);
        mm.transform_into(&x, &mut out);
        assert_eq!(out.map(f64::to_bits).to_vec(),
            mm.transform(&x).iter().map(|v| v.to_bits()).collect::<Vec<_>>());
    }

    #[test]
    fn inverse_into_matches_inverse_bitwise() {
        let train = vec![fv(&[1.0, -4.0, 0.5]), fv(&[3.0, 2.0, 9.5]), fv(&[0.0, 1.0, 4.0])];
        let z = [0.33, -1.8, 2.4];
        let mut out = [0.0; 3];
        let s = Standardizer::fit(&train);
        s.inverse_into(&z, &mut out);
        assert_eq!(out.map(f64::to_bits).to_vec(),
            s.inverse(&z).iter().map(|v| v.to_bits()).collect::<Vec<_>>());
        let mm = MinMaxScaler::fit(&train);
        mm.inverse_into(&z, &mut out);
        assert_eq!(out.map(f64::to_bits).to_vec(),
            mm.inverse(&z).iter().map(|v| v.to_bits()).collect::<Vec<_>>());
    }

    #[test]
    fn inverse_tail_into_matches_inverse_tail_bitwise() {
        let train = vec![fv(&[0.0, 100.0, 7.0]), fv(&[2.0, 300.0, -1.0])];
        let s = Standardizer::fit(&train);
        let tail = [0.7, -0.4];
        let mut out = [0.0; 2];
        s.inverse_tail_into(&tail, &mut out);
        assert_eq!(out.map(f64::to_bits).to_vec(),
            s.inverse_tail(&tail).iter().map(|v| v.to_bits()).collect::<Vec<_>>());
    }

    #[test]
    fn f32_snapshot_tracks_both_scalers_within_tolerance() {
        let train = vec![fv(&[1.0, -4.0, 0.5]), fv(&[3.0, 2.0, 9.5]), fv(&[0.0, 1.0, 4.0])];
        let x = [2.2, -0.7, 6.1];
        let mut z32 = [0.0f32; 3];
        let mut back = [0.0f64; 3];

        let s = Standardizer::fit(&train);
        let snap = ScalerF32::from_standardizer(&s);
        assert_eq!(snap.dim(), 3);
        snap.transform_into(&x, &mut z32);
        for (got, want) in z32.iter().zip(s.transform(&x)) {
            assert!((*got as f64 - want).abs() <= 1e-5 * want.abs().max(1.0));
        }
        snap.inverse_into(&z32, &mut back);
        for (got, want) in back.iter().zip(&x) {
            assert!((got - want).abs() <= 1e-4 * want.abs().max(1.0), "{got} vs {want}");
        }

        let mm = MinMaxScaler::fit(&train);
        let snap = ScalerF32::from_minmax(&mm);
        snap.transform_into(&x, &mut z32);
        for (got, want) in z32.iter().zip(mm.transform(&x)) {
            assert!((*got as f64 - want).abs() <= 1e-5 * want.abs().max(1.0));
        }
        snap.inverse_into(&z32, &mut back);
        for (got, want) in back.iter().zip(&x) {
            assert!((got - want).abs() <= 1e-4 * want.abs().max(1.0), "{got} vs {want}");
        }
    }

    #[test]
    fn f32_snapshot_refresh_picks_up_new_statistics() {
        let s1 = Standardizer::fit(&[fv(&[0.0, 10.0]), fv(&[2.0, 30.0])]);
        let s2 = Standardizer::fit(&[fv(&[5.0, -1.0]), fv(&[9.0, 7.0])]);
        let mut snap = ScalerF32::from_standardizer(&s1);
        snap.refresh_standardizer(&s2);
        let fresh = ScalerF32::from_standardizer(&s2);
        let x = [6.5, 3.0];
        let (mut a, mut b) = ([0.0f32; 2], [0.0f32; 2]);
        snap.transform_into(&x, &mut a);
        fresh.transform_into(&x, &mut b);
        assert_eq!(a, b, "refresh must equal a from-scratch snapshot");
    }

    #[test]
    fn f32_snapshot_tail_inverse_uses_suffix_stats() {
        let s = Standardizer::fit(&[fv(&[0.0, 100.0]), fv(&[2.0, 300.0])]);
        let snap = ScalerF32::from_standardizer(&s);
        let mut out = [0.0f64; 1];
        snap.inverse_tail_into(&[1.0f32], &mut out);
        assert!((out[0] - 300.0).abs() < 1e-3, "{}", out[0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn f32_snapshot_refresh_rejects_resize() {
        let s1 = Standardizer::fit(&[fv(&[0.0, 1.0]), fv(&[2.0, 3.0])]);
        let s2 = Standardizer::fit(&[fv(&[0.0]), fv(&[2.0])]);
        let mut snap = ScalerF32::from_standardizer(&s1);
        snap.refresh_standardizer(&s2);
    }

    #[test]
    fn state_equal_detects_clones_and_divergence() {
        let train = vec![fv(&[1.0, 2.0]), fv(&[4.0, -1.0]), fv(&[2.5, 0.5])];
        let s = Standardizer::fit(&train);
        assert!(s.state_equal(&s.clone()));
        let other = Standardizer::fit(&train[..2]);
        assert!(!s.state_equal(&other));
        let mm = MinMaxScaler::fit(&train);
        assert!(mm.state_equal(&mm.clone()));
        let mm2 = MinMaxScaler::fit(&[fv(&[0.0, 0.0]), fv(&[9.0, 1.0])]);
        assert!(!mm.state_equal(&mm2));
    }
}
