//! PCB-iForest as a framework [`StreamModel`] (paper §IV-C).
//!
//! The forest operates on *stream vectors* `s_t ∈ R^N` — the paper's
//! branching criterion is `(s_t − p)·n ≤ 0` — so the model extracts the
//! most recent stream vector from each feature vector. The training set
//! contributes one point per feature vector (its last row), and every
//! prediction both scores `s_t` and updates the per-tree performance
//! counters. Fine-tuning (triggered by KSWIN, per Heigl et al.) prunes the
//! non-positive-counter trees and regrows them on the current training set.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sad_core::{FeatureVector, ModelOutput, StreamModel};
use sad_forest::PcbIForest;

/// PCB-iForest wrapped for the streaming pipeline.
#[derive(Clone)]
pub struct PcbIForestModel {
    forest: Option<PcbIForest>,
    n_trees: usize,
    sample_size: usize,
    threshold: f64,
    rng: StdRng,
}

impl PcbIForestModel {
    /// Creates the model with `n_trees` trees, per-tree subsample
    /// `sample_size`, and ensemble decision threshold `threshold`.
    pub fn new(n_trees: usize, sample_size: usize, threshold: f64, seed: u64) -> Self {
        assert!(n_trees > 0, "need at least one tree");
        Self {
            forest: None,
            n_trees,
            sample_size,
            threshold,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Defaults matching the PCB-iForest paper: 100 trees, ψ=256, θ=0.5.
    pub fn default_config(seed: u64) -> Self {
        Self::new(100, 256, PcbIForest::DEFAULT_THRESHOLD, seed)
    }

    /// One training point per feature vector: its most recent stream vector.
    fn points(train: &[FeatureVector]) -> Vec<Vec<f64>> {
        train.iter().map(|x| x.last_step().to_vec()).collect()
    }

    /// Number of trees currently in the ensemble.
    pub fn tree_count(&self) -> usize {
        self.forest.as_ref().map_or(0, |f| f.len())
    }
}

impl StreamModel for PcbIForestModel {
    fn name(&self) -> &'static str {
        "PCB-iForest"
    }

    fn predict(&mut self, x: &FeatureVector) -> ModelOutput {
        match &mut self.forest {
            Some(forest) => ModelOutput::Score(forest.score_and_update(x.last_step())),
            // Unfit forest: report the textbook "indistinct" score 0.5
            // rather than claiming confidence either way.
            None => ModelOutput::Score(0.5),
        }
    }

    fn fit_initial(&mut self, train: &[FeatureVector], _epochs: usize) {
        let points = Self::points(train);
        if points.is_empty() {
            return;
        }
        self.forest = Some(PcbIForest::fit(
            &points,
            self.n_trees,
            self.sample_size,
            self.threshold,
            &mut self.rng,
        ));
    }

    fn fine_tune(&mut self, train: &[FeatureVector]) {
        let points = Self::points(train);
        match &mut self.forest {
            Some(forest) => {
                forest.rebuild_on_drift(&points, &mut self.rng);
            }
            None => self.fit_initial(train, 1),
        }
    }

    fn clone_box(&self) -> Box<dyn StreamModel> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn windows_around(center: f64, count: usize) -> Vec<FeatureVector> {
        (0..count)
            .map(|i| {
                let jitter = ((i * 13) % 7) as f64 * 0.05;
                let data = vec![
                    center + jitter,
                    center - jitter,
                    center + jitter * 0.5,
                    center + 0.1 + jitter,
                ];
                FeatureVector::new(data, 2, 2)
            })
            .collect()
    }

    #[test]
    fn unfit_model_reports_indistinct_score() {
        let mut m = PcbIForestModel::new(10, 32, 0.5, 1);
        let x = FeatureVector::new(vec![1.0; 4], 2, 2);
        assert_eq!(m.predict(&x), ModelOutput::Score(0.5));
    }

    #[test]
    fn outlier_scores_above_inlier_after_fit() {
        let train = windows_around(0.0, 100);
        let mut m = PcbIForestModel::new(50, 64, 0.5, 3);
        m.fit_initial(&train, 1);
        let score = |m: &mut PcbIForestModel, v: f64| -> f64 {
            match m.predict(&FeatureVector::new(vec![0.0, 0.0, v, v], 2, 2)) {
                ModelOutput::Score(s) => s,
                _ => unreachable!(),
            }
        };
        let inlier = score(&mut m, 0.05);
        let outlier = score(&mut m, 9.0);
        assert!(outlier > inlier, "outlier {outlier} vs inlier {inlier}");
    }

    #[test]
    fn fine_tune_rebuilds_and_preserves_tree_count() {
        let train = windows_around(0.0, 80);
        let mut m = PcbIForestModel::new(30, 64, 0.5, 5);
        m.fit_initial(&train, 1);
        assert_eq!(m.tree_count(), 30);
        // Score drifted data so counters change, then fine-tune on it.
        let drifted = windows_around(4.0, 80);
        for x in &drifted {
            let _ = m.predict(x);
        }
        m.fine_tune(&drifted);
        assert_eq!(m.tree_count(), 30);
    }

    #[test]
    fn fine_tune_without_fit_bootstraps() {
        let mut m = PcbIForestModel::new(10, 32, 0.5, 9);
        m.fine_tune(&windows_around(0.0, 50));
        assert_eq!(m.tree_count(), 10);
    }

    #[test]
    fn scores_stay_in_unit_interval() {
        let train = windows_around(0.0, 60);
        let mut m = PcbIForestModel::new(20, 32, 0.5, 11);
        m.fit_initial(&train, 1);
        for v in [-100.0, -1.0, 0.0, 0.5, 3.0, 1e6] {
            match m.predict(&FeatureVector::new(vec![v; 4], 2, 2)) {
                ModelOutput::Score(s) => assert!((0.0..=1.0).contains(&s), "score {s} for {v}"),
                _ => unreachable!(),
            }
        }
    }
}
