//! Allocation-count guard for the neural models' fine-tune loops.
//!
//! The nn-level guard (`sad-nn/tests/zero_alloc.rs`) pins the substrate;
//! this one pins the full model layer: after warm-up, `fine_tune` on the
//! 2-layer AE, USAD and N-BEATS must not touch the heap — the scaler
//! writes into workspace rows (`transform_into`), the adversarial /
//! residual chains run entirely through preallocated workspaces, and the
//! optimizers step parameters in place.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ARMED: Cell<bool> = const { Cell::new(false) };
    static ALLOCS: Cell<usize> = const { Cell::new(0) };
}

struct CountingAllocator;

impl CountingAllocator {
    fn record() {
        let _ = ARMED.try_with(|armed| {
            if armed.get() {
                let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
            }
        });
    }
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        Self::record();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        Self::record();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        Self::record();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn count_allocs(f: impl FnOnce()) -> usize {
    ALLOCS.with(|c| c.set(0));
    ARMED.with(|a| a.set(true));
    f();
    ARMED.with(|a| a.set(false));
    ALLOCS.with(|c| c.get())
}

use sad_core::{FeatureVector, StreamModel};
use sad_models::{KnnDistanceModel, NBeats, TwoLayerAe, Usad};

fn sine_windows(count: usize, w: usize) -> Vec<FeatureVector> {
    (0..count)
        .map(|s| {
            let data: Vec<f64> = (0..w)
                .flat_map(|i| {
                    let t = (s + i) as f64 * 0.3;
                    vec![t.sin(), (t * 0.5).cos() * 2.0]
                })
                .collect();
            FeatureVector::new(data, w, 2)
        })
        .collect()
}

fn assert_fine_tune_is_allocation_free(mut model: Box<dyn StreamModel>, batch_label: &str) {
    let train = sine_windows(24, 8);
    // Warm-up sizes nets, scalers, workspaces and optimizer moments.
    model.fit_initial(&train, 2);
    let n = count_allocs(|| {
        for _ in 0..5 {
            model.fine_tune(&train);
        }
    });
    assert_eq!(
        n, 0,
        "{}: steady-state fine_tune must not allocate, saw {n} allocations",
        batch_label
    );
}

#[test]
fn ae_fine_tune_is_allocation_free() {
    assert_fine_tune_is_allocation_free(Box::new(TwoLayerAe::for_dim(16, 7)), "AE b=1");
    assert_fine_tune_is_allocation_free(
        Box::new(TwoLayerAe::for_dim(16, 7).with_batch_size(8)),
        "AE b=8",
    );
}

#[test]
fn usad_fine_tune_is_allocation_free() {
    assert_fine_tune_is_allocation_free(Box::new(Usad::for_dim(16, 7)), "USAD b=1");
    assert_fine_tune_is_allocation_free(
        Box::new(Usad::for_dim(16, 7).with_batch_size(8)),
        "USAD b=8",
    );
}

/// The kNN predict path must not allocate in steady state: the packed
/// snapshot is rebuilt only on training events and the squared-distance
/// scratch is sized on the first query, so subsequent queries run the
/// sweep + quickselect entirely in place.
#[test]
fn knn_predict_is_allocation_free_after_first_query() {
    let train = sine_windows(40, 8);
    let mut model = KnnDistanceModel::new(3);
    model.fit_initial(&train, 1); // also sizes the distance scratch
    let probes = sine_windows(10, 8);
    let n = count_allocs(|| {
        for x in &probes {
            let _ = model.predict(x);
        }
    });
    assert_eq!(n, 0, "steady-state kNN predict must not allocate, saw {n} allocations");
}

#[test]
fn nbeats_fine_tune_is_allocation_free() {
    assert_fine_tune_is_allocation_free(Box::new(NBeats::for_dims(8, 2, 7)), "N-BEATS b=1");
    assert_fine_tune_is_allocation_free(
        Box::new(NBeats::for_dims(8, 2, 7).with_batch_size(8)),
        "N-BEATS b=8",
    );
}
