//! Bitwise parity for the kNN snapshot distance sweep.
//!
//! `KnnDistanceModel::snapshot_kth_distance` computes every query-to-
//! reference distance in one pass over the packed transposed snapshot
//! (`Scalar::sq_dist_accum` per feature row) and quickselects the k-th
//! order statistic. The frozen reference is the legacy per-point path
//! `kth_distance_of`: sequential squared-difference sum per reference,
//! then the same `total_cmp` quickselect. The sweep accumulates in the
//! identical ascending-feature order from `0.0`, so the distance multiset
//! — and therefore the selected k-th value — must match **bit for bit**,
//! including `-0.0` members and exact ties.

use proptest::prelude::*;
use sad_core::{FeatureVector, ModelOutput, StreamModel};
use sad_models::KnnDistanceModel;

fn lcg(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *state >> 33
}

/// Plants exact 0.0 / -0.0 every ~8 values so squared differences of
/// exactly zero (and hence tied / signed-zero distances) arise.
fn fill_value(state: &mut u64) -> f64 {
    let r = lcg(state);
    match r % 8 {
        0 => 0.0,
        1 => -0.0,
        _ => (r % 2000) as f64 / 211.0 - 4.5,
    }
}

fn feature_vector(dim: usize, seed: u64) -> FeatureVector {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    FeatureVector::new((0..dim).map(|_| fill_value(&mut state)).collect(), dim, 1)
}

fn reference_set(m: usize, dim: usize, seed: u64) -> Vec<FeatureVector> {
    (0..m).map(|c| feature_vector(dim, seed.wrapping_add(c as u64 * 131))).collect()
}

fn fitted(k: usize, refs: &[FeatureVector]) -> KnnDistanceModel {
    let mut model = KnnDistanceModel::new(k);
    model.fine_tune(refs); // installs the reference set + snapshot, no calibration
    model
}

#[test]
fn snapshot_sweep_matches_legacy_bitwise_across_shapes() {
    for &m in &[1usize, 2, 3, 4, 5, 7, 8, 9, 16, 17, 33, 100] {
        for &dim in &[1usize, 2, 3, 8, 12, 45] {
            for &k in &[1usize, 3, 5, 200] {
                let refs = reference_set(m, dim, (m * 1000 + dim * 10 + k) as u64);
                let mut model = fitted(k.min(m).max(1), &refs);
                for q in 0..4u64 {
                    let x = feature_vector(dim, q.wrapping_mul(977).wrapping_add(m as u64));
                    let want = KnnDistanceModel::kth_distance_of(k, &x, &refs).unwrap();
                    let got = model.snapshot_kth_distance(k, &x).unwrap();
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "m={m} dim={dim} k={k} q={q}: sweep {got} vs legacy {want}",
                    );
                }
            }
        }
    }
}

/// Duplicated references produce exactly tied distances; a query equal to
/// a reference produces an exact 0.0 distance. The selected k-th order
/// statistic must still agree bit for bit (quickselect over identical
/// multisets under the `total_cmp` total order).
#[test]
fn snapshot_sweep_handles_exact_ties_and_zero_distances() {
    let base = feature_vector(6, 42);
    let mut refs = reference_set(10, 6, 7);
    refs.push(base.clone());
    refs.push(base.clone()); // duplicate → tied zero distances for `base`
    refs.push(refs[0].clone()); // another exact tie pair
    for k in 1..=refs.len() {
        let mut model = fitted(k.min(refs.len()), &refs);
        for x in [&base, &refs[0], &feature_vector(6, 99)] {
            let want = KnnDistanceModel::kth_distance_of(k, x, &refs).unwrap();
            let got = model.snapshot_kth_distance(k, x).unwrap();
            assert_eq!(got.to_bits(), want.to_bits(), "k={k}: {got} vs {want}");
        }
    }
}

#[test]
fn empty_reference_set_yields_none_and_neutral_score() {
    let mut model = KnnDistanceModel::new(3);
    let x = feature_vector(4, 1);
    assert_eq!(model.snapshot_kth_distance(3, &x), None);
    assert_eq!(model.predict(&x), ModelOutput::Score(0.5));
}

/// End-to-end: a freshly calibrated model must score queries identically
/// to a from-scratch recomputation through the legacy per-point path
/// (calibration itself routes through the sweep, so scale is shared).
#[test]
fn predict_scores_match_legacy_path_bitwise() {
    let refs = reference_set(40, 8, 12345);
    let mut model = KnnDistanceModel::new(4);
    model.fit_initial(&refs, 1);
    for q in 0..20u64 {
        let x = feature_vector(8, q * 31 + 5);
        let legacy_d = KnnDistanceModel::kth_distance_of(4, &x, &refs).unwrap();
        let sweep_d = model.snapshot_kth_distance(4, &x).unwrap();
        assert_eq!(sweep_d.to_bits(), legacy_d.to_bits(), "q={q}");
        match model.predict(&x) {
            ModelOutput::Score(s) => assert!(s.is_finite() && (0.0..=1.0).contains(&s)),
            other => panic!("unexpected output {other:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn prop_snapshot_sweep_is_bitwise_legacy(
        m in 1usize..=40,
        dim in 1usize..=16,
        k in 1usize..=8,
        seed in 0u64..100000,
    ) {
        let refs = reference_set(m, dim, seed);
        let mut model = fitted(k, &refs);
        let x = feature_vector(dim, seed ^ 0xdead);
        let want = KnnDistanceModel::kth_distance_of(k, &x, &refs).unwrap();
        let got = model.snapshot_kth_distance(k, &x).unwrap();
        prop_assert_eq!(got.to_bits(), want.to_bits(), "sweep {} vs legacy {}", got, want);
    }
}
