//! Range-based precision and recall (Hundman et al. 2018, as adopted in
//! paper §V-A).
//!
//! * **TP** — a true anomaly sequence containing at least one positively
//!   predicted time step;
//! * **FN** — a true anomaly sequence containing none;
//! * **FP** — a *predicted* sequence (maximal run of positive predictions)
//!   with no overlap to any true anomaly sequence.
//!
//! A single long run of false predictions therefore counts as exactly one
//! FP — the root of the Table III disparity between high interval precision
//! and deeply negative point-wise NAB scores.

use crate::intervals::{intervals_from_labels, Interval};

/// Range-based confusion counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RangeCounts {
    /// True anomaly sequences detected.
    pub tp: usize,
    /// Predicted sequences with no overlap with any true sequence.
    pub fp: usize,
    /// True anomaly sequences missed entirely.
    pub fn_: usize,
}

impl RangeCounts {
    /// `tp / (tp + fp)`; `0.0` when nothing was predicted.
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// `tp / (tp + fn)`; `0.0` when there are no true sequences.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Computes range counts from point predictions and true anomaly intervals.
pub fn range_counts(predictions: &[bool], truth: &[Interval]) -> RangeCounts {
    let predicted_intervals = intervals_from_labels(predictions);
    let mut counts = RangeCounts::default();
    for t in truth {
        let hit = (t.start..t.end.min(predictions.len())).any(|i| predictions[i]);
        if hit {
            counts.tp += 1;
        } else {
            counts.fn_ += 1;
        }
    }
    for p in &predicted_intervals {
        if !truth.iter().any(|t| t.overlaps(p)) {
            counts.fp += 1;
        }
    }
    counts
}

/// Convenience: `(precision, recall)` from point predictions and truth.
pub fn range_precision_recall(predictions: &[bool], truth: &[Interval]) -> (f64, f64) {
    let c = range_counts(predictions, truth);
    (c.precision(), c.recall())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_point_detects_whole_sequence() {
        let truth = vec![Interval::new(2, 6)];
        let mut pred = vec![false; 10];
        pred[4] = true;
        let c = range_counts(&pred, &truth);
        assert_eq!((c.tp, c.fp, c.fn_), (1, 0, 0));
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
    }

    #[test]
    fn missed_sequence_is_fn() {
        let truth = vec![Interval::new(2, 6), Interval::new(8, 9)];
        let mut pred = vec![false; 12];
        pred[3] = true;
        let c = range_counts(&pred, &truth);
        assert_eq!((c.tp, c.fp, c.fn_), (1, 0, 1));
        assert_eq!(c.recall(), 0.5);
    }

    #[test]
    fn long_false_run_is_one_fp() {
        // The Table III phenomenon: a 100-step false-positive run counts
        // once for the range metric.
        let truth = vec![Interval::new(500, 510)];
        let mut pred = vec![false; 600];
        for p in pred.iter_mut().take(400).skip(300) {
            *p = true; // 100-step false run
        }
        pred[505] = true;
        let c = range_counts(&pred, &truth);
        assert_eq!((c.tp, c.fp, c.fn_), (1, 1, 0));
        assert_eq!(c.precision(), 0.5);
    }

    #[test]
    fn partial_overlap_is_not_fp() {
        // A predicted run straddling a boundary overlaps the truth → TP and
        // no FP.
        let truth = vec![Interval::new(5, 10)];
        let mut pred = vec![false; 15];
        for p in pred.iter_mut().take(7).skip(3) {
            *p = true;
        }
        let c = range_counts(&pred, &truth);
        assert_eq!((c.tp, c.fp, c.fn_), (1, 0, 0));
    }

    #[test]
    fn no_predictions_scores_zero_precision_zero_recall() {
        let truth = vec![Interval::new(1, 3)];
        let c = range_counts(&[false; 5], &truth);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    fn no_truth_all_predictions_are_fp() {
        let mut pred = vec![false; 10];
        pred[2] = true;
        pred[7] = true;
        let c = range_counts(&pred, &[]);
        assert_eq!((c.tp, c.fp, c.fn_), (0, 2, 0));
    }

    #[test]
    fn f1_known_value() {
        let c = RangeCounts { tp: 2, fp: 2, fn_: 0 };
        // p = 0.5, r = 1.0 -> f1 = 2/3.
        assert!((c.f1() - 2.0 / 3.0).abs() < 1e-12);
    }
}
