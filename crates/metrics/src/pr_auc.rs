//! Precision-recall curve and area, built on range-based counts.
//!
//! The paper reports the PR area under the curve (preferred over ROC
//! because true negatives dominate anomaly detection workloads, §V-A).
//! Thresholds sweep the *distinct score quantiles* so each curve point
//! corresponds to a genuinely different decision boundary.

use crate::range_pr::range_counts;

/// One point of the precision-recall curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrPoint {
    /// Score threshold generating this point.
    pub threshold: f64,
    /// Range-based precision.
    pub precision: f64,
    /// Range-based recall.
    pub recall: f64,
}

/// Builds the PR curve by sweeping `n_thresholds` score quantiles.
///
/// # Panics
/// Panics if `scores.len() != labels.len()`.
pub fn pr_curve(scores: &[f64], labels: &[bool], n_thresholds: usize) -> Vec<PrPoint> {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let truth = crate::intervals::intervals_from_labels(labels);
    let thresholds = candidate_thresholds(scores, n_thresholds);
    thresholds
        .into_iter()
        .map(|th| {
            let pred: Vec<bool> = scores.iter().map(|&s| s >= th).collect();
            let c = range_counts(&pred, &truth);
            // Curve convention: an empty prediction set has precision 1
            // (no false positives were asserted), anchoring the high-
            // threshold end of the curve.
            let precision = if c.tp + c.fp == 0 { 1.0 } else { c.precision() };
            PrPoint { threshold: th, precision, recall: c.recall() }
        })
        .collect()
}

/// Area under the range-based PR curve (trapezoidal over recall).
///
/// Points are sorted by recall; the curve is anchored at `(recall = 0,
/// precision = max observed precision)` so a detector that only ever finds
/// a few sequences perfectly still integrates sensibly.
pub fn pr_auc(scores: &[f64], labels: &[bool], n_thresholds: usize) -> f64 {
    let mut pts = pr_curve(scores, labels, n_thresholds);
    if pts.is_empty() {
        return 0.0;
    }
    pts.sort_by(|a, b| a.recall.total_cmp(&b.recall).then(a.precision.total_cmp(&b.precision)));
    let mut auc = 0.0;
    let mut prev_r = 0.0;
    let mut prev_p = pts.iter().map(|p| p.precision).fold(0.0f64, f64::max);
    for p in &pts {
        auc += (p.recall - prev_r) * 0.5 * (p.precision + prev_p);
        prev_r = p.recall;
        prev_p = p.precision;
    }
    auc.clamp(0.0, 1.0)
}

/// Best range-based F1 over the threshold sweep. Returns
/// `(threshold, precision, recall, f1)`.
pub fn best_f1(scores: &[f64], labels: &[bool], n_thresholds: usize) -> (f64, f64, f64, f64) {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let truth = crate::intervals::intervals_from_labels(labels);
    let mut best = (0.0, 0.0, 0.0, -1.0);
    // Descending sweep so F1 ties resolve to the most conservative
    // (highest) threshold.
    let mut thresholds = candidate_thresholds(scores, n_thresholds);
    thresholds.sort_by(|a, b| b.total_cmp(a));
    for th in thresholds {
        let pred: Vec<bool> = scores.iter().map(|&s| s >= th).collect();
        let c = range_counts(&pred, &truth);
        if c.f1() > best.3 {
            best = (th, c.precision(), c.recall(), c.f1());
        }
    }
    if best.3 < 0.0 {
        best.3 = 0.0;
    }
    best
}

/// Distinct quantile thresholds, always including just-above-max (predict
/// nothing). Thresholds at or below the minimum score are excluded: the
/// resulting "predict everything" detector forms one giant run that
/// overlaps any anomaly and scores a degenerate range precision/recall of
/// 1/1 regardless of score quality.
fn candidate_thresholds(scores: &[f64], n: usize) -> Vec<f64> {
    if scores.is_empty() {
        return Vec::new();
    }
    let mut sorted = scores.to_vec();
    sorted.sort_by(f64::total_cmp);
    let min = sorted[0];
    let n = n.max(2);
    let mut out: Vec<f64> = (0..n)
        .map(|i| {
            let q = i as f64 / (n - 1) as f64;
            let pos = q * (sorted.len() - 1) as f64;
            sorted[pos.round() as usize]
        })
        .filter(|&th| th > min)
        .collect();
    out.push(sorted[sorted.len() - 1] + 1.0); // predict nothing
    out.dedup_by(|a, b| a == b);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic scores: high inside the anomaly, low outside.
    fn separable() -> (Vec<f64>, Vec<bool>) {
        let mut scores = vec![0.1; 100];
        let mut labels = vec![false; 100];
        for t in 40..50 {
            scores[t] = 0.9;
            labels[t] = true;
        }
        (scores, labels)
    }

    #[test]
    fn perfectly_separable_has_auc_one() {
        let (scores, labels) = separable();
        let auc = pr_auc(&scores, &labels, 20);
        assert!(auc > 0.95, "auc {auc}");
    }

    #[test]
    fn constant_scores_have_low_auc() {
        let labels: Vec<bool> = (0..100).map(|t| (40..50).contains(&t)).collect();
        let scores = vec![0.5; 100];
        // All-or-nothing predictions: one threshold predicts everything (one
        // giant overlapping run → precision 1, recall 1 in range terms!).
        // This is a known range-metric artifact; the AUC is not inflated
        // beyond the single point.
        let auc = pr_auc(&scores, &labels, 10);
        assert!((0.0..=1.0).contains(&auc));
    }

    #[test]
    fn inverted_scores_have_low_auc() {
        let (mut scores, labels) = separable();
        for s in &mut scores {
            *s = 1.0 - *s;
        }
        let auc = pr_auc(&scores, &labels, 20);
        assert!(auc < 0.6, "auc {auc}");
    }

    #[test]
    fn best_f1_finds_separating_threshold() {
        let (scores, labels) = separable();
        let (th, p, r, f1) = best_f1(&scores, &labels, 20);
        assert!(th > 0.1 && th <= 0.9, "threshold {th}");
        assert_eq!(p, 1.0);
        assert_eq!(r, 1.0);
        assert_eq!(f1, 1.0);
    }

    #[test]
    fn noisy_scores_give_intermediate_auc() {
        // Anomaly steps get score 0.6, normal alternates 0.1/0.7 — noisy FPs.
        let mut scores = Vec::new();
        let mut labels = Vec::new();
        for t in 0..200 {
            let anom = (100..110).contains(&t);
            labels.push(anom);
            scores.push(if anom {
                0.6
            } else if t % 10 == 0 {
                0.7
            } else {
                0.1
            });
        }
        let auc = pr_auc(&scores, &labels, 40);
        assert!(auc > 0.05 && auc < 0.95, "auc {auc}");
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(pr_auc(&[], &[], 10), 0.0);
    }

    #[test]
    fn curve_points_are_valid() {
        let (scores, labels) = separable();
        for p in pr_curve(&scores, &labels, 15) {
            assert!((0.0..=1.0).contains(&p.precision));
            assert!((0.0..=1.0).contains(&p.recall));
        }
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// AUC is always within [0, 1] for arbitrary score/label pairs.
            #[test]
            fn auc_in_unit_interval(
                scores in proptest::collection::vec(0.0f64..1.0, 10..120),
                seed in 0u64..1000,
            ) {
                let labels: Vec<bool> =
                    (0..scores.len()).map(|i| (i as u64 * 31 + seed).is_multiple_of(7)).collect();
                let auc = pr_auc(&scores, &labels, 15);
                prop_assert!((0.0..=1.0).contains(&auc));
            }
        }
    }
}
