//! # sad-metrics
//!
//! Evaluation metrics for time-series anomaly detection (paper §V-A).
//!
//! The paper motivates three metric families and this crate implements all
//! of them, plus the interval bookkeeping they share:
//!
//! * [`intervals`] — converting between point labels and anomaly
//!   *sequences* (intervals), the unit of account for range-based metrics.
//! * [`range_pr`] — range-based precision/recall after Hundman et al.
//!   (2018): any positive prediction inside a true anomaly sequence counts
//!   the whole sequence as detected; a predicted sequence with no overlap
//!   is one false positive. [`mod@pr_auc`] sweeps the score threshold to build
//!   the precision-recall curve and its area.
//! * [`nab`] — the Numenta Anomaly Benchmark scoring function (Lavin &
//!   Ahmad 2015) in the *point-wise* form the paper uses: a scaled sigmoid
//!   rewards early detection inside each anomaly window, and every false
//!   positive time step contributes `−1/|anomalies|` — which is exactly why
//!   Table III pairs very negative NAB scores with high interval precision.
//! * [`vus`] — volume under the surface (Paparrizos et al. 2022): the
//!   threshold-free combination of point-wise ROC/PR analysis with a swept
//!   buffer region around true anomaly sequences.

pub mod intervals;
pub mod nab;
pub mod pr_auc;
pub mod range_pr;
pub mod vus;

pub use intervals::{intervals_from_labels, labels_from_intervals, Interval};
pub use nab::{best_nab, nab_score, NabReport};
pub use pr_auc::{best_f1, pr_auc, pr_curve, PrPoint};
pub use range_pr::{range_counts, range_precision_recall, RangeCounts};
pub use vus::{range_auc_pr, range_auc_roc, vus_pr, vus_roc};
