//! The NAB scoring function (Lavin & Ahmad 2015) in the point-wise form the
//! paper uses (§V-A, Table III caption).
//!
//! * Each true anomaly sequence is a *window*. The **earliest** detection
//!   inside a window earns a scaled-sigmoid reward
//!   `σ'(y) = 2/(1 + e^{5y}) − 1` with `y` the position relative to the
//!   window end (`y = −1` at the window start → reward ≈ 0.99; `y = 0` at
//!   the end → reward 0): earlier detection is better.
//! * A window with no detection is a **miss** and costs `−1`.
//! * **Every false-positive time step** costs the sigmoid tail value for
//!   its distance past the most recent window (→ `−1` far away) — the
//!   paper: "every time step in that interval contributes −1/|anomalies| to
//!   the NAB score".
//!
//! The total is normalized by the number of windows, so a perfect detector
//! scores ≈ 1, an all-miss detector −1, and long false-positive runs push
//! the score to the large negative values seen in Table III (e.g. −547 for
//! N-BEATS on Exathlon).

use crate::intervals::intervals_from_labels;

/// Breakdown of a NAB evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NabReport {
    /// Final normalized score (≈1 perfect, −1 all missed, unbounded below
    /// with false positives).
    pub score: f64,
    /// Sum of detection rewards over detected windows.
    pub detection_reward: f64,
    /// Number of windows missed entirely.
    pub missed: usize,
    /// Number of false-positive time steps.
    pub fp_steps: usize,
}

/// The NAB scaled sigmoid `2/(1+e^{5y}) − 1`.
fn scaled_sigmoid(y: f64) -> f64 {
    2.0 / (1.0 + (5.0 * y).exp()) - 1.0
}

/// Scores thresholded detections against true anomaly windows.
///
/// `predictions[t]` is the binary detector output at step `t`; windows are
/// the maximal runs of `labels`. Returns [`NabReport`]. With no true
/// windows, the score is `0` minus the false-positive penalty (normalized
/// as if one window existed).
pub fn nab_score(predictions: &[bool], labels: &[bool]) -> NabReport {
    assert_eq!(predictions.len(), labels.len(), "predictions/labels length mismatch");
    let windows = intervals_from_labels(labels);
    let n_windows = windows.len().max(1) as f64;

    let mut detection_reward = 0.0;
    let mut missed = 0;
    for w in &windows {
        match (w.start..w.end).find(|&t| predictions[t]) {
            Some(t) => {
                let len = w.len() as f64;
                // Position relative to the window end, −1 (start) … 0 (end).
                let y = (t as f64 - (w.end - 1) as f64) / len.max(1.0);
                detection_reward += scaled_sigmoid(y);
            }
            None => missed += 1,
        }
    }

    // False positives: positive predictions outside every window.
    let mut fp_steps = 0;
    let mut fp_penalty = 0.0;
    for (t, &p) in predictions.iter().enumerate() {
        if !p || windows.iter().any(|w| w.contains(t)) {
            continue;
        }
        fp_steps += 1;
        // Distance past the most recent window, in units of that window's
        // length; detections long after a window (or before any) cost −1.
        let weight = match windows.iter().rev().find(|w| w.end <= t) {
            Some(w) => {
                let y = (t - (w.end - 1)) as f64 / w.len().max(1) as f64;
                scaled_sigmoid(y) // negative for y > 0
            }
            None => -1.0,
        };
        fp_penalty += weight;
    }

    let score = (detection_reward - missed as f64 + fp_penalty) / n_windows;
    NabReport { score, detection_reward, missed, fp_steps }
}

/// NAB score at the best threshold of an `n_thresholds`-point quantile
/// sweep (mirroring how precision/recall are reported at the best-F1
/// threshold — the paper does not specify its thresholding rule, so every
/// metric gets its own best operating point, uniformly for all algorithms).
///
/// Returns `(threshold, report)`.
pub fn best_nab(scores: &[f64], labels: &[bool], n_thresholds: usize) -> (f64, NabReport) {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    if scores.is_empty() {
        return (0.0, nab_score(&[], &[]));
    }
    let mut sorted = scores.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = n_thresholds.max(2);
    let mut thresholds: Vec<f64> = (0..n)
        .map(|i| {
            let pos = i as f64 / (n - 1) as f64 * (sorted.len() - 1) as f64;
            sorted[pos.round() as usize]
        })
        .collect();
    thresholds.push(sorted[sorted.len() - 1] + 1.0);
    thresholds.dedup_by(|a, b| a == b);
    let mut best: Option<(f64, NabReport)> = None;
    for th in thresholds {
        let pred: Vec<bool> = scores.iter().map(|&s| s >= th).collect();
        let report = nab_score(&pred, labels);
        if best.as_ref().is_none_or(|(_, b)| report.score > b.score) {
            best = Some((th, report));
        }
    }
    best.expect("at least one threshold")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intervals::Interval;
    use crate::intervals::labels_from_intervals;

    fn case(windows: &[Interval], detections: &[usize], len: usize) -> NabReport {
        let labels = labels_from_intervals(windows, len);
        let mut pred = vec![false; len];
        for &d in detections {
            pred[d] = true;
        }
        nab_score(&pred, &labels)
    }

    #[test]
    fn sigmoid_reference_points() {
        assert!((scaled_sigmoid(0.0)).abs() < 1e-12);
        assert!(scaled_sigmoid(-1.0) > 0.98);
        assert!(scaled_sigmoid(1.0) < -0.98);
    }

    #[test]
    fn perfect_early_detection_scores_near_one() {
        let r = case(&[Interval::new(50, 60)], &[50], 100);
        assert!(r.score > 0.95, "score {}", r.score);
        assert_eq!(r.missed, 0);
        assert_eq!(r.fp_steps, 0);
    }

    #[test]
    fn late_detection_scores_lower_but_positive() {
        let early = case(&[Interval::new(50, 60)], &[50], 100);
        let late = case(&[Interval::new(50, 60)], &[58], 100);
        assert!(late.score < early.score);
        assert!(late.score >= 0.0, "late but inside window: {}", late.score);
    }

    #[test]
    fn missed_window_costs_one() {
        let r = case(&[Interval::new(50, 60)], &[], 100);
        assert!((r.score + 1.0).abs() < 1e-12);
        assert_eq!(r.missed, 1);
    }

    #[test]
    fn only_first_detection_in_window_counts() {
        let single = case(&[Interval::new(50, 60)], &[52], 100);
        let multi = case(&[Interval::new(50, 60)], &[52, 53, 54, 55], 100);
        assert!((single.score - multi.score).abs() < 1e-12);
    }

    #[test]
    fn far_false_positive_costs_about_one_over_windows() {
        // One window, one far FP step: ≈ (reward − 1)/1.
        let clean = case(&[Interval::new(10, 20)], &[10], 200);
        let with_fp = case(&[Interval::new(10, 20)], &[10, 150], 200);
        let delta = clean.score - with_fp.score;
        assert!((delta - 1.0).abs() < 0.05, "one far FP ≈ −1: delta {delta}");
        assert_eq!(with_fp.fp_steps, 1);
    }

    #[test]
    fn long_false_run_goes_deeply_negative() {
        // The Table III phenomenon: a 500-step false run with 1 window →
        // score ≈ −500.
        let mut detections: Vec<usize> = (100..600).collect();
        detections.push(20);
        let r = case(&[Interval::new(10, 30)], &detections, 1000);
        assert!(r.score < -400.0, "score {}", r.score);
        assert_eq!(r.fp_steps, 500);
    }

    #[test]
    fn fp_just_after_window_costs_less_than_far_fp() {
        let near = case(&[Interval::new(10, 30)], &[15, 32], 300);
        let far = case(&[Interval::new(10, 30)], &[15, 290], 300);
        assert!(near.score > far.score, "{} vs {}", near.score, far.score);
    }

    #[test]
    fn no_windows_no_predictions_is_zero() {
        let r = nab_score(&[false; 50], &[false; 50]);
        assert_eq!(r.score, 0.0);
    }

    #[test]
    fn no_windows_predictions_penalized() {
        let mut pred = vec![false; 50];
        pred[10] = true;
        let labels = vec![false; 50];
        let r = nab_score(&pred, &labels);
        assert!(r.score < 0.0);
    }

    #[test]
    fn best_nab_beats_fixed_bad_threshold() {
        // Scores: anomaly at 0.9, noise floor at 0.4 with occasional 0.5
        // bumps — a 0.45 threshold drowns in FPs, the sweep finds better.
        let mut scores = vec![0.4; 300];
        let mut labels = vec![false; 300];
        for t in 150..160 {
            scores[t] = 0.9;
            labels[t] = true;
        }
        for t in (0..300).step_by(7) {
            if !labels[t] {
                scores[t] = 0.5;
            }
        }
        let naive = {
            let pred: Vec<bool> = scores.iter().map(|&s| s >= 0.45).collect();
            nab_score(&pred, &labels).score
        };
        let (th, report) = best_nab(&scores, &labels, 30);
        assert!(report.score > naive, "sweep {} > naive {naive}", report.score);
        assert!(th > 0.5, "best threshold above the bump floor: {th}");
        assert!(report.score > 0.9, "clean detection is achievable: {}", report.score);
    }

    #[test]
    fn best_nab_with_empty_input() {
        let (th, report) = best_nab(&[], &[], 10);
        assert_eq!(th, 0.0);
        assert_eq!(report.score, 0.0);
    }

    #[test]
    fn best_nab_never_below_predict_nothing() {
        // "Predict nothing" is always in the sweep, so the best NAB is at
        // least −1 (all windows missed, no FPs).
        let scores: Vec<f64> = (0..200).map(|t| ((t * 37) % 100) as f64 / 100.0).collect();
        let labels: Vec<bool> = (0..200).map(|t| (50..60).contains(&t)).collect();
        let (_th, report) = best_nab(&scores, &labels, 20);
        assert!(report.score >= -1.0, "score {}", report.score);
    }

    #[test]
    fn two_windows_normalize() {
        let r = case(&[Interval::new(10, 20), Interval::new(60, 70)], &[10, 60], 100);
        assert!(r.score > 0.95, "both detected early: {}", r.score);
        let r_half = case(&[Interval::new(10, 20), Interval::new(60, 70)], &[10], 100);
        assert!((r_half.score - (r.score * 0.5 - 0.5)).abs() < 0.05, "one hit, one miss");
    }
}
