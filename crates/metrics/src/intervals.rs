//! Anomaly intervals (the paper's "anomaly sequences").
//!
//! Range-based metrics count *sequences* of anomalous time steps, not
//! individual points. An [`Interval`] is half-open: `[start, end)`.

/// A half-open index interval `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// First index inside the interval.
    pub start: usize,
    /// One past the last index inside the interval.
    pub end: usize,
}

impl Interval {
    /// Creates `[start, end)`.
    ///
    /// # Panics
    /// Panics if `end <= start`.
    pub fn new(start: usize, end: usize) -> Self {
        assert!(end > start, "interval must be non-empty: [{start}, {end})");
        Self { start, end }
    }

    /// Number of time steps covered.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `false` by construction (intervals are non-empty).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `true` if `t` lies inside the interval.
    pub fn contains(&self, t: usize) -> bool {
        (self.start..self.end).contains(&t)
    }

    /// `true` if the two intervals share at least one index.
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.start < other.end && other.start < self.end
    }
}

/// Extracts maximal runs of `true` as intervals.
pub fn intervals_from_labels(labels: &[bool]) -> Vec<Interval> {
    let mut out = Vec::new();
    let mut start = None;
    for (t, &l) in labels.iter().enumerate() {
        match (l, start) {
            (true, None) => start = Some(t),
            (false, Some(s)) => {
                out.push(Interval::new(s, t));
                start = None;
            }
            _ => {}
        }
    }
    if let Some(s) = start {
        out.push(Interval::new(s, labels.len()));
    }
    out
}

/// Renders intervals back into a point-label vector of length `len`.
/// Indices beyond `len` are clipped.
pub fn labels_from_intervals(intervals: &[Interval], len: usize) -> Vec<bool> {
    let mut labels = vec![false; len];
    for iv in intervals {
        for label in labels.iter_mut().take(iv.end.min(len)).skip(iv.start.min(len)) {
            *label = true;
        }
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_runs() {
        let labels = [false, true, true, false, true, false, false, true];
        let ivs = intervals_from_labels(&labels);
        assert_eq!(ivs, vec![Interval::new(1, 3), Interval::new(4, 5), Interval::new(7, 8)]);
    }

    #[test]
    fn all_false_gives_no_intervals() {
        assert!(intervals_from_labels(&[false; 10]).is_empty());
        assert!(intervals_from_labels(&[]).is_empty());
    }

    #[test]
    fn all_true_gives_one_interval() {
        assert_eq!(intervals_from_labels(&[true; 5]), vec![Interval::new(0, 5)]);
    }

    #[test]
    fn round_trip() {
        let labels = vec![false, true, true, false, false, true, false];
        let back = labels_from_intervals(&intervals_from_labels(&labels), labels.len());
        assert_eq!(back, labels);
    }

    #[test]
    fn overlap_logic() {
        let a = Interval::new(2, 5);
        assert!(a.overlaps(&Interval::new(4, 8)));
        assert!(a.overlaps(&Interval::new(0, 3)));
        assert!(!a.overlaps(&Interval::new(5, 7)), "half-open: touching is not overlap");
        assert!(a.contains(2) && a.contains(4) && !a.contains(5));
    }

    #[test]
    fn clipping_out_of_range_intervals() {
        let labels = labels_from_intervals(&[Interval::new(3, 100)], 5);
        assert_eq!(labels, vec![false, false, false, true, true]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_interval_panics() {
        let _ = Interval::new(3, 3);
    }
}
