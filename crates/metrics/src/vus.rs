//! Volume under the surface (Paparrizos et al. 2022; paper §V-A).
//!
//! VUS makes the evaluation parameter-free along two axes at once: the
//! score threshold (as in ROC/PR AUC) and a *buffer region* of width `ℓ`
//! around every true anomaly sequence. For one buffer width, the point
//! labels are softened: positions inside a true sequence keep label 1,
//! positions within `ℓ` steps of a boundary get a square-root ramp
//! `(1 − d/ℓ)^{1/2}`, everything else 0. Range-aware rates are computed
//! from these soft labels:
//!
//! ```text
//! TPR_ℓ(θ) = Σ_t soft(t)·pred_θ(t) / Σ_t soft(t)
//! FPR_ℓ(θ) = Σ_t (1 − soft(t))·pred_θ(t) / Σ_t (1 − soft(t))
//! Prec_ℓ(θ) = Σ_t soft(t)·pred_θ(t) / |pred_θ|
//! ```
//!
//! `R-AUC` integrates over thresholds; `VUS` additionally averages the
//! R-AUC over `ℓ ∈ {0, …, L}` (trapezoidal), producing the volume. This
//! follows the paper's description of "combining point-wise scores with the
//! information of overlapping predicted and true anomaly sequences" while
//! keeping the implementation self-contained; the existence-reward variant
//! of the original differs by an additive per-sequence term that does not
//! change orderings on the corpora used here.

use crate::intervals::intervals_from_labels;

/// Soft labels for buffer width `ell` (`ell = 0` reproduces the hard
/// labels).
fn soft_labels(labels: &[bool], ell: usize) -> Vec<f64> {
    let mut soft: Vec<f64> = labels.iter().map(|&l| if l { 1.0 } else { 0.0 }).collect();
    if ell == 0 {
        return soft;
    }
    let intervals = intervals_from_labels(labels);
    for iv in &intervals {
        // Ramp before the start.
        for d in 1..=ell {
            if iv.start < d {
                break;
            }
            let t = iv.start - d;
            let v = (1.0 - d as f64 / ell as f64).max(0.0).sqrt();
            soft[t] = soft[t].max(v);
        }
        // Ramp after the end.
        for d in 1..=ell {
            let t = iv.end - 1 + d;
            if t >= soft.len() {
                break;
            }
            let v = (1.0 - d as f64 / ell as f64).max(0.0).sqrt();
            soft[t] = soft[t].max(v);
        }
    }
    soft
}

/// Threshold sweep shared by the ROC and PR surfaces.
fn sweep(scores: &[f64], soft: &[f64], n_thresholds: usize) -> Vec<(f64, f64, f64)> {
    // Returns (tpr, fpr, precision) per threshold, thresholds descending.
    let total_pos: f64 = soft.iter().sum();
    let total_neg: f64 = soft.iter().map(|s| 1.0 - s).sum();
    let mut sorted = scores.to_vec();
    sorted.sort_by(|a, b| b.total_cmp(a));
    let n = n_thresholds.max(2);
    let mut out = Vec::with_capacity(n + 1);
    let mut thresholds: Vec<f64> = (0..n)
        .map(|i| sorted[(i as f64 / (n - 1) as f64 * (sorted.len() - 1) as f64).round() as usize])
        .collect();
    thresholds.insert(0, sorted[0] + 1.0); // predict nothing
    thresholds.dedup_by(|a, b| a == b);
    for th in thresholds {
        let mut tp = 0.0;
        let mut fp = 0.0;
        let mut pred_count = 0usize;
        for (&s, &l) in scores.iter().zip(soft) {
            if s >= th {
                tp += l;
                fp += 1.0 - l;
                pred_count += 1;
            }
        }
        let tpr = if total_pos > 0.0 { tp / total_pos } else { 0.0 };
        let fpr = if total_neg > 0.0 { fp / total_neg } else { 0.0 };
        let prec = if pred_count > 0 { tp / pred_count as f64 } else { 1.0 };
        out.push((tpr, fpr, prec));
    }
    out
}

/// Range-aware ROC AUC for a single buffer width.
pub fn range_auc_roc(scores: &[f64], labels: &[bool], ell: usize, n_thresholds: usize) -> f64 {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    if scores.is_empty() {
        return 0.0;
    }
    let soft = soft_labels(labels, ell);
    let pts = sweep(scores, &soft, n_thresholds);
    // Integrate TPR over FPR (points ordered by decreasing threshold →
    // increasing FPR).
    let mut auc = 0.0;
    let mut prev = (0.0, 0.0); // (fpr, tpr)
    for &(tpr, fpr, _) in &pts {
        auc += (fpr - prev.0) * 0.5 * (tpr + prev.1);
        prev = (fpr, tpr);
    }
    auc += (1.0 - prev.0) * 0.5 * (1.0 + prev.1); // close the curve at (1,1)
    auc.clamp(0.0, 1.0)
}

/// Range-aware PR AUC for a single buffer width.
pub fn range_auc_pr(scores: &[f64], labels: &[bool], ell: usize, n_thresholds: usize) -> f64 {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    if scores.is_empty() {
        return 0.0;
    }
    let soft = soft_labels(labels, ell);
    let pts = sweep(scores, &soft, n_thresholds);
    let mut auc = 0.0;
    let mut prev = (0.0, 1.0); // (recall, precision) anchor
    for &(tpr, _, prec) in &pts {
        auc += (tpr - prev.0) * 0.5 * (prec + prev.1);
        prev = (tpr, prec);
    }
    auc.clamp(0.0, 1.0)
}

/// VUS-ROC: [`range_auc_roc`] averaged over buffer widths `0..=max_buffer`.
pub fn vus_roc(scores: &[f64], labels: &[bool], max_buffer: usize, n_thresholds: usize) -> f64 {
    vus(scores, labels, max_buffer, n_thresholds, range_auc_roc)
}

/// VUS-PR: [`range_auc_pr`] averaged over buffer widths `0..=max_buffer`.
pub fn vus_pr(scores: &[f64], labels: &[bool], max_buffer: usize, n_thresholds: usize) -> f64 {
    vus(scores, labels, max_buffer, n_thresholds, range_auc_pr)
}

fn vus(
    scores: &[f64],
    labels: &[bool],
    max_buffer: usize,
    n_thresholds: usize,
    auc: fn(&[f64], &[bool], usize, usize) -> f64,
) -> f64 {
    // A zero buffer degenerates to the plain range AUC.
    if max_buffer == 0 {
        return auc(scores, labels, 0, n_thresholds);
    }
    // Sample a handful of buffer widths (trapezoid over ℓ); the surface is
    // smooth in ℓ so a coarse grid converges quickly.
    let steps = 5usize.min(max_buffer);
    let widths: Vec<usize> =
        (0..=steps).map(|i| (i as f64 / steps as f64 * max_buffer as f64).round() as usize).collect();
    let values: Vec<f64> = widths.iter().map(|&ell| auc(scores, labels, ell, n_thresholds)).collect();
    // Trapezoid over ℓ, normalized by the span.
    let mut total = 0.0;
    for i in 1..widths.len() {
        let span = (widths[i] - widths[i - 1]) as f64;
        total += span * 0.5 * (values[i] + values[i - 1]);
    }
    total / max_buffer as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable() -> (Vec<f64>, Vec<bool>) {
        let mut scores = vec![0.1; 200];
        let mut labels = vec![false; 200];
        for t in 80..100 {
            scores[t] = 0.9;
            labels[t] = true;
        }
        (scores, labels)
    }

    #[test]
    fn soft_labels_hard_at_zero_buffer() {
        let labels = [false, true, true, false];
        assert_eq!(soft_labels(&labels, 0), vec![0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn soft_labels_ramp_down_with_distance() {
        let labels = [false, false, false, true, false, false, false];
        let soft = soft_labels(&labels, 3);
        assert_eq!(soft[3], 1.0);
        assert!(soft[2] > soft[1] && soft[1] > soft[0]);
        assert!(soft[4] > soft[5] && soft[5] > soft[6]);
        // Symmetric ramps.
        assert!((soft[2] - soft[4]).abs() < 1e-12);
    }

    #[test]
    fn perfect_scores_give_high_auc() {
        let (scores, labels) = separable();
        assert!(range_auc_roc(&scores, &labels, 0, 20) > 0.95);
        assert!(range_auc_pr(&scores, &labels, 0, 20) > 0.9);
    }

    #[test]
    fn random_scores_roc_near_half() {
        let labels: Vec<bool> = (0..400).map(|t| (100..140).contains(&t)).collect();
        let scores: Vec<f64> = (0..400).map(|t| ((t * 7919) % 1000) as f64 / 1000.0).collect();
        let auc = range_auc_roc(&scores, &labels, 0, 50);
        assert!((auc - 0.5).abs() < 0.15, "pseudo-random ROC ≈ 0.5, got {auc}");
    }

    #[test]
    fn near_miss_rewarded_with_buffer() {
        // Detector fires just *before* the anomaly: hard labels punish it,
        // buffered labels reward it — the whole point of VUS.
        let mut scores = vec![0.1; 200];
        let mut labels = vec![false; 200];
        for l in labels.iter_mut().take(110).skip(100) {
            *l = true;
        }
        for s in scores.iter_mut().take(100).skip(94) {
            *s = 0.9; // early detection, misses the hard window
        }
        let hard = range_auc_pr(&scores, &labels, 0, 30);
        let buffered = range_auc_pr(&scores, &labels, 10, 30);
        assert!(buffered > hard + 0.1, "buffer must help: {hard} -> {buffered}");
    }

    #[test]
    fn vus_lies_between_extreme_buffer_aucs() {
        let (scores, labels) = separable();
        let v = vus_roc(&scores, &labels, 20, 20);
        let lo = range_auc_roc(&scores, &labels, 0, 20)
            .min(range_auc_roc(&scores, &labels, 20, 20));
        let hi = range_auc_roc(&scores, &labels, 0, 20)
            .max(range_auc_roc(&scores, &labels, 20, 20));
        assert!(v >= lo - 0.05 && v <= hi + 0.05, "vus {v} vs [{lo}, {hi}]");
    }

    #[test]
    fn zero_buffer_vus_equals_range_auc() {
        let (scores, labels) = separable();
        let direct = range_auc_pr(&scores, &labels, 0, 20);
        let v = vus_pr(&scores, &labels, 0, 20);
        assert!((v - direct).abs() < 1e-12, "vus {v} vs range auc {direct}");
        assert!(v > 0.9, "perfect detector must not score 0 at zero buffer");
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(range_auc_roc(&[], &[], 5, 10), 0.0);
        assert_eq!(vus_pr(&[], &[], 5, 10), 0.0);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// All VUS outputs live in [0, 1].
            #[test]
            fn vus_in_unit_interval(
                scores in proptest::collection::vec(0.0f64..1.0, 20..150),
                seed in 0u64..500,
            ) {
                let labels: Vec<bool> =
                    (0..scores.len()).map(|i| (i as u64 * 13 + seed).is_multiple_of(11)).collect();
                prop_assert!((0.0..=1.0).contains(&vus_roc(&scores, &labels, 8, 12)));
                prop_assert!((0.0..=1.0).contains(&vus_pr(&scores, &labels, 8, 12)));
            }

            /// Soft labels are within [0,1] and dominate hard labels.
            #[test]
            fn soft_labels_bounded(
                seed in 0u64..500,
                ell in 0usize..10,
            ) {
                let labels: Vec<bool> = (0..80).map(|i| (i as u64 * 17 + seed).is_multiple_of(13)).collect();
                let soft = soft_labels(&labels, ell);
                for (s, &l) in soft.iter().zip(&labels) {
                    prop_assert!((0.0..=1.0).contains(s));
                    if l { prop_assert_eq!(*s, 1.0); }
                }
            }
        }
    }
}
