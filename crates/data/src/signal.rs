//! Base signal generators.
//!
//! Every generator is a small state machine driven by an external seeded
//! RNG, so corpora are bit-reproducible. The generators mirror the channel
//! archetypes found in the three target corpora: oscillatory accelerometer
//! axes (Daphnet), piecewise-constant utilization levels and monotone
//! counters (Exathlon), and autoregressive load plus spiky I/O channels
//! (SMD).

use rand::Rng;

/// Standard normal sample via Box–Muller.
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A sinusoid mixture channel: `Σ amp_i · sin(2π t / period_i + phase_i)`
/// plus Gaussian noise.
#[derive(Debug, Clone)]
pub struct SineMix {
    /// `(amplitude, period, phase)` per component.
    pub components: Vec<(f64, f64, f64)>,
    /// Additive Gaussian noise σ.
    pub noise: f64,
    /// Constant offset.
    pub offset: f64,
}

impl SineMix {
    /// Value at time `t`.
    pub fn at(&self, t: usize, rng: &mut impl Rng) -> f64 {
        let base: f64 = self
            .components
            .iter()
            .map(|&(a, p, ph)| a * ((2.0 * std::f64::consts::PI * t as f64 / p) + ph).sin())
            .sum();
        self.offset + base + self.noise * standard_normal(rng)
    }
}

/// A stationary AR(1) channel `v_t = c·v_{t−1} + ε_t`.
#[derive(Debug, Clone)]
pub struct Ar1 {
    /// Autoregressive coefficient in `(−1, 1)`.
    pub coeff: f64,
    /// Innovation noise σ.
    pub noise: f64,
    /// Mean level the process reverts around.
    pub mean: f64,
    state: f64,
}

impl Ar1 {
    /// Creates the process at its mean.
    pub fn new(coeff: f64, noise: f64, mean: f64) -> Self {
        assert!(coeff.abs() < 1.0, "AR(1) coefficient must be in (−1, 1)");
        Self { coeff, noise, mean, state: 0.0 }
    }

    /// Advances one step and returns the new value.
    pub fn next_value(&mut self, rng: &mut impl Rng) -> f64 {
        self.state = self.coeff * self.state + self.noise * standard_normal(rng);
        self.mean + self.state
    }
}

/// A piecewise-constant "utilization level" channel: holds a level, jumps
/// to a new uniform level with probability `jump_prob` per step.
#[derive(Debug, Clone)]
pub struct LevelProcess {
    /// Per-step probability of jumping to a new level.
    pub jump_prob: f64,
    /// Level range.
    pub lo: f64,
    /// Level range.
    pub hi: f64,
    /// Observation noise σ.
    pub noise: f64,
    level: f64,
}

impl LevelProcess {
    /// Creates the process starting mid-range.
    pub fn new(jump_prob: f64, lo: f64, hi: f64, noise: f64) -> Self {
        assert!(hi > lo, "level range must be non-empty");
        Self { jump_prob, lo, hi, noise, level: (lo + hi) / 2.0 }
    }

    /// Advances one step.
    pub fn next_value(&mut self, rng: &mut impl Rng) -> f64 {
        if rng.random_range(0.0..1.0) < self.jump_prob {
            self.level = rng.random_range(self.lo..self.hi);
        }
        self.level + self.noise * standard_normal(rng)
    }
}

/// A mostly-quiet channel with occasional positive spikes (I/O bursts,
/// request counters).
#[derive(Debug, Clone)]
pub struct SpikyProcess {
    /// Baseline value.
    pub base: f64,
    /// Per-step spike probability.
    pub spike_prob: f64,
    /// Spike magnitude range.
    pub spike_lo: f64,
    /// Spike magnitude range.
    pub spike_hi: f64,
    /// Baseline noise σ.
    pub noise: f64,
}

impl SpikyProcess {
    /// Value at one step.
    pub fn next_value(&mut self, rng: &mut impl Rng) -> f64 {
        let spike = if rng.random_range(0.0..1.0) < self.spike_prob {
            rng.random_range(self.spike_lo..self.spike_hi)
        } else {
            0.0
        };
        self.base + spike + self.noise * standard_normal(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..20000).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>()
            / samples.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn sine_mix_is_periodic_without_noise() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = SineMix { components: vec![(1.0, 50.0, 0.0)], noise: 0.0, offset: 2.0 };
        let a = s.at(10, &mut rng);
        let b = s.at(60, &mut rng);
        assert!((a - b).abs() < 1e-9, "period 50: {a} vs {b}");
        assert!((s.at(0, &mut rng) - 2.0).abs() < 1e-9, "offset at phase 0");
    }

    #[test]
    fn ar1_reverts_to_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut p = Ar1::new(0.9, 0.1, 5.0);
        let values: Vec<f64> = (0..5000).map(|_| p.next_value(&mut rng)).collect();
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn level_process_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut p = LevelProcess::new(0.01, 10.0, 90.0, 0.0);
        for _ in 0..2000 {
            let v = p.next_value(&mut rng);
            assert!((10.0..=90.0).contains(&v), "value {v}");
        }
    }

    #[test]
    fn level_process_actually_jumps() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut p = LevelProcess::new(0.05, 0.0, 100.0, 0.0);
        let values: Vec<f64> = (0..1000).map(|_| p.next_value(&mut rng)).collect();
        let distinct: std::collections::BTreeSet<u64> =
            values.iter().map(|v| v.to_bits()).collect();
        assert!(distinct.len() > 5, "levels changed {} times", distinct.len());
    }

    #[test]
    fn spiky_process_spikes_at_expected_rate() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut p = SpikyProcess { base: 1.0, spike_prob: 0.02, spike_lo: 10.0, spike_hi: 20.0, noise: 0.1 };
        let spikes = (0..10000).filter(|_| p.next_value(&mut rng) > 5.0).count();
        assert!((100..400).contains(&spikes), "spikes {spikes} (expected ≈ 200)");
    }

    #[test]
    fn generators_are_deterministic_given_seed() {
        let run = |seed: u64| -> Vec<f64> {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut p = Ar1::new(0.8, 0.5, 0.0);
            (0..50).map(|_| p.next_value(&mut rng)).collect()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
