//! Synthetic stand-ins for the three benchmark corpora (paper §V).
//!
//! Each generator is seeded and parameterized by [`CorpusParams`] so the
//! experiment harness can run the paper-scale configuration (long series,
//! 5000-step warm-up) or a scaled-down one for tests. The structural
//! properties preserved per corpus are documented in DESIGN.md
//! (substitutions 1–3).

use crate::dataset::{Corpus, LabeledSeries};
use crate::inject::{inject_anomaly, inject_drift, AnomalyKind, DriftKind};
use crate::signal::{Ar1, LevelProcess, SineMix, SpikyProcess};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Size/shape knobs shared by the corpus generators.
#[derive(Debug, Clone, Copy)]
pub struct CorpusParams {
    /// Steps per series.
    pub length: usize,
    /// Number of series in the corpus.
    pub n_series: usize,
    /// Approximate number of anomalies per series.
    pub anomalies_per_series: usize,
    /// Whether to inject concept drift midway through each series.
    pub with_drift: bool,
}

impl CorpusParams {
    /// Paper-scale: long series that accommodate the 5000-step warm-up.
    pub fn paper() -> Self {
        Self { length: 12_000, n_series: 3, anomalies_per_series: 6, with_drift: true }
    }

    /// Scaled-down configuration for tests and quick sweeps.
    pub fn small() -> Self {
        Self { length: 2_000, n_series: 2, anomalies_per_series: 4, with_drift: true }
    }
}

/// Picks `count` disjoint anomaly intervals in the post-warm-up region.
fn anomaly_slots(
    len: usize,
    count: usize,
    min_len: usize,
    max_len: usize,
    rng: &mut StdRng,
) -> Vec<(usize, usize)> {
    // Anomalies live in the last 60% of the series (the first part is the
    // warm-up / training region, which the paper treats as normal).
    let region_start = len * 2 / 5;
    let usable = len - region_start;
    let stride = usable / count.max(1);
    (0..count)
        .filter_map(|i| {
            let lo = region_start + i * stride;
            let alen = rng.random_range(min_len..=max_len.min(stride.saturating_sub(10).max(min_len + 1)));
            let latest = (lo + stride).min(len).checked_sub(alen + 5)?;
            if latest <= lo {
                return None;
            }
            let start = rng.random_range(lo..latest);
            Some((start, alen))
        })
        .collect()
}

/// Daphnet-like corpus: 9 channels (3 accelerometers × 3 axes) of gait
/// oscillations; anomalies are freezing-of-gait episodes (locomotion band
/// replaced by 3–8 step tremor); gradual amplitude drift models gait
/// change.
pub fn daphnet_like(seed: u64, params: CorpusParams) -> Corpus {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 9;
    let series = (0..params.n_series)
        .map(|idx| {
            // Gait frequency ≈ 1–2 Hz; at 64 Hz sampling that is a period of
            // 30–60 steps. Each sensor axis sees the gait at its own
            // amplitude/phase plus a weaker harmonic.
            let channels: Vec<SineMix> = (0..n)
                .map(|c| {
                    let period = rng.random_range(30.0..60.0);
                    SineMix {
                        components: vec![
                            (rng.random_range(0.5..1.5), period, rng.random_range(0.0..std::f64::consts::TAU)),
                            (rng.random_range(0.1..0.4), period / 2.0, rng.random_range(0.0..std::f64::consts::TAU)),
                        ],
                        noise: 0.15,
                        offset: if c % 3 == 2 { 9.8 } else { 0.0 }, // gravity axis
                    }
                })
                .collect();
            let data: Vec<Vec<f64>> = (0..params.length)
                .map(|t| channels.iter().map(|ch| ch.at(t, &mut rng)).collect())
                .collect();
            let mut s = LabeledSeries::new(
                format!("S{:02}R01-like", idx + 3),
                data,
                vec![false; params.length],
            );
            if params.with_drift {
                inject_drift(&mut s, params.length / 2, 400, DriftKind::AmplitudeScale(2.5));
            }
            // Freeze episodes: tremor on the leg sensors (first 6 channels).
            for (start, alen) in
                anomaly_slots(params.length, params.anomalies_per_series, 40, 120, &mut rng)
            {
                inject_anomaly(
                    &mut s,
                    start,
                    alen,
                    AnomalyKind::Tremor { amplitude: 1.2, period: rng.random_range(5.0..9.0) },
                    &[0, 1, 2, 3, 4, 5],
                    &mut rng,
                );
            }
            s
        })
        .collect();
    Corpus { name: "daphnet-like".into(), series }
}

/// Exathlon-like corpus: 19 channels of Spark-cluster-style metrics
/// (utilization levels, AR load, counters); anomalies are *long* stalls and
/// leaks — the property behind Table III's very negative point-wise NAB
/// scores.
pub fn exathlon_like(seed: u64, params: CorpusParams) -> Corpus {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1));
    let n = 19;
    let series = (0..params.n_series)
        .map(|idx| {
            let mut levels: Vec<LevelProcess> =
                (0..8).map(|_| LevelProcess::new(0.002, 10.0, 90.0, 1.0)).collect();
            let mut loads: Vec<Ar1> = (0..7)
                .map(|c| Ar1::new(0.95, 0.5, 20.0 + 10.0 * c as f64))
                .collect();
            let mut counters: Vec<SpikyProcess> = (0..4)
                .map(|_| SpikyProcess {
                    base: 2.0,
                    spike_prob: 0.01,
                    spike_lo: 5.0,
                    spike_hi: 15.0,
                    noise: 0.2,
                })
                .collect();
            let data: Vec<Vec<f64>> = (0..params.length)
                .map(|_| {
                    let mut row = Vec::with_capacity(n);
                    row.extend(levels.iter_mut().map(|p| p.next_value(&mut rng)));
                    row.extend(loads.iter_mut().map(|p| p.next_value(&mut rng)));
                    row.extend(counters.iter_mut().map(|p| p.next_value(&mut rng)));
                    row
                })
                .collect();
            let mut s = LabeledSeries::new(
                format!("app{}-like", idx + 1),
                data,
                vec![false; params.length],
            );
            if params.with_drift {
                inject_drift(&mut s, params.length / 2, 600, DriftKind::MeanShift(8.0));
            }
            // Long anomalies: stalls (flatline) and leaks (level shift),
            // 3–8% of the series each.
            let min_len = params.length / 30;
            let max_len = params.length / 12;
            for (i, (start, alen)) in
                anomaly_slots(params.length, params.anomalies_per_series, min_len, max_len, &mut rng)
                    .into_iter()
                    .enumerate()
            {
                let kind = if i % 2 == 0 { AnomalyKind::Flatline } else { AnomalyKind::LevelShift(4.0) };
                inject_anomaly(&mut s, start, alen, kind, &[0, 1, 8, 9, 15], &mut rng);
            }
            s
        })
        .collect();
    Corpus { name: "exathlon-like".into(), series }
}

/// SMD-like corpus: 38 channels of server-machine metrics; anomalies are
/// *short* spikes and bursts on a few channels — the sparse-short-anomaly
/// regime behind the low recall values of Table III.
pub fn smd_like(seed: u64, params: CorpusParams) -> Corpus {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(2));
    let n = 38;
    let series = (0..params.n_series)
        .map(|idx| {
            // Mixture: 12 periodic (daily-load-like), 14 AR, 8 levels, 4 spiky.
            let periodic: Vec<SineMix> = (0..12)
                .map(|_| SineMix {
                    components: vec![(
                        rng.random_range(1.0..3.0),
                        rng.random_range(200.0..500.0),
                        rng.random_range(0.0..std::f64::consts::TAU),
                    )],
                    noise: 0.2,
                    offset: rng.random_range(10.0..50.0),
                })
                .collect();
            let mut ars: Vec<Ar1> =
                (0..14).map(|_| Ar1::new(0.9, 0.3, rng.random_range(0.0..10.0))).collect();
            let mut levels: Vec<LevelProcess> =
                (0..8).map(|_| LevelProcess::new(0.001, 0.0, 100.0, 0.5)).collect();
            let mut spikies: Vec<SpikyProcess> = (0..4)
                .map(|_| SpikyProcess {
                    base: 0.5,
                    spike_prob: 0.005,
                    spike_lo: 3.0,
                    spike_hi: 8.0,
                    noise: 0.05,
                })
                .collect();
            let data: Vec<Vec<f64>> = (0..params.length)
                .map(|t| {
                    let mut row = Vec::with_capacity(n);
                    row.extend(periodic.iter().map(|p| p.at(t, &mut rng)));
                    row.extend(ars.iter_mut().map(|p| p.next_value(&mut rng)));
                    row.extend(levels.iter_mut().map(|p| p.next_value(&mut rng)));
                    row.extend(spikies.iter_mut().map(|p| p.next_value(&mut rng)));
                    row
                })
                .collect();
            let mut s = LabeledSeries::new(
                format!("machine-1-{}-like", idx + 1),
                data,
                vec![false; params.length],
            );
            if params.with_drift {
                inject_drift(&mut s, params.length * 3 / 5, 300, DriftKind::MeanShift(5.0));
            }
            // Short anomalies on small channel subsets.
            for (i, (start, alen)) in
                anomaly_slots(params.length, params.anomalies_per_series, 10, 40, &mut rng)
                    .into_iter()
                    .enumerate()
            {
                let channels: Vec<usize> =
                    (0..4).map(|k| (i * 7 + k * 11) % n).collect();
                let kind = match i % 3 {
                    0 => AnomalyKind::Spike(6.0),
                    1 => AnomalyKind::NoiseBurst(5.0),
                    _ => AnomalyKind::LevelShift(5.0),
                };
                inject_anomaly(&mut s, start, alen, kind, &channels, &mut rng);
            }
            s
        })
        .collect();
    Corpus { name: "smd-like".into(), series }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn daphnet_shape_and_labels() {
        let c = daphnet_like(7, CorpusParams::small());
        assert_eq!(c.name, "daphnet-like");
        assert_eq!(c.series.len(), 2);
        for s in &c.series {
            assert_eq!(s.channels(), 9);
            assert_eq!(s.len(), 2000);
            assert!(s.is_finite());
            let n_anoms = s.anomaly_intervals().len();
            assert!(n_anoms >= 2, "series has anomalies: {n_anoms}");
            // Anomalies only in the post-warm-up region.
            assert!(s.anomaly_intervals()[0].0 >= 800);
        }
    }

    #[test]
    fn exathlon_has_long_anomalies() {
        let c = exathlon_like(7, CorpusParams::small());
        for s in &c.series {
            assert_eq!(s.channels(), 19);
            let max_len =
                s.anomaly_intervals().iter().map(|(a, b)| b - a).max().unwrap_or(0);
            assert!(max_len >= 60, "long anomalies expected, max {max_len}");
        }
    }

    #[test]
    fn smd_has_short_anomalies_and_38_channels() {
        let c = smd_like(7, CorpusParams::small());
        for s in &c.series {
            assert_eq!(s.channels(), 38);
            for (a, b) in s.anomaly_intervals() {
                assert!(b - a <= 40, "short anomalies expected, got {}", b - a);
            }
        }
    }

    #[test]
    fn corpora_are_reproducible() {
        let a = daphnet_like(11, CorpusParams::small());
        let b = daphnet_like(11, CorpusParams::small());
        assert_eq!(a, b);
        let c = daphnet_like(12, CorpusParams::small());
        assert_ne!(a, c);
    }

    #[test]
    fn gravity_axis_has_offset() {
        let c = daphnet_like(3, CorpusParams::small());
        let s = &c.series[0];
        // Channels 2, 5, 8 carry the 9.8 m/s² gravity offset.
        let mean_ch2: f64 = (0..500).map(|t| s.data[t][2]).sum::<f64>() / 500.0;
        let mean_ch0: f64 = (0..500).map(|t| s.data[t][0]).sum::<f64>() / 500.0;
        assert!(mean_ch2 > 8.0, "gravity axis mean {mean_ch2}");
        assert!(mean_ch0.abs() < 1.0, "horizontal axis mean {mean_ch0}");
    }

    #[test]
    fn drift_changes_second_half_statistics() {
        let mut params = CorpusParams::small();
        params.anomalies_per_series = 0;
        let with = daphnet_like(5, params);
        params.with_drift = false;
        let without = daphnet_like(5, params);
        let amp = |s: &LabeledSeries, lo: usize, hi: usize| -> f64 {
            (lo..hi).map(|t| s.data[t][0].abs()).sum::<f64>() / (hi - lo) as f64
        };
        let a_with = amp(&with.series[0], 1500, 2000);
        let a_without = amp(&without.series[0], 1500, 2000);
        assert!(a_with > a_without * 1.2, "drifted amplitude {a_with} vs {a_without}");
    }
}
