//! # sad-data
//!
//! Benchmark data for the streaming anomaly detection experiments.
//!
//! The paper evaluates on three multivariate corpora — Daphnet (freezing of
//! gait), Exathlon (Spark cluster traces) and SMD (server machine metrics).
//! None of them is redistributable inside this repository, so this crate
//! generates **synthetic stand-ins** that preserve the structural
//! properties the detectors and metrics exercise (see DESIGN.md,
//! substitutions 1–3): multivariate channels with heterogeneous scales,
//! interval-labelled anomalies of corpus-typical shapes and durations, and
//! injected concept drift.
//!
//! * [`dataset`] — [`LabeledSeries`]/[`Corpus`] containers.
//! * [`signal`] — deterministic-seeded base signal generators (sinusoid
//!   mixtures, AR(1), random walks, level processes, spiky counters).
//! * [`inject`] — anomaly injectors (spikes, level shifts, noise bursts,
//!   flatlines, tremor) and gradual concept-drift injectors.
//! * [`corpora`] — the three corpus generators, fully parameterized and
//!   seeded for reproducibility.
//! * [`csv`] — plain-text serialization so experiment outputs and inputs
//!   can be inspected or swapped for the real datasets if available.

pub mod corpora;
pub mod csv;
pub mod dataset;
pub mod inject;
pub mod signal;

pub use corpora::{daphnet_like, exathlon_like, smd_like, CorpusParams};
pub use dataset::{Corpus, LabeledSeries};
pub use inject::{inject_anomaly, inject_drift, AnomalyKind, DriftKind};
