//! Anomaly and concept-drift injection.
//!
//! Anomalies are written into an existing series **and** recorded in its
//! label vector; drift changes the data only (drift is a change of the
//! normal regime, not an anomaly — the distinction the paper's Task-2
//! detectors exist to make).

use crate::dataset::LabeledSeries;
use crate::signal::standard_normal;
use rand::Rng;

/// Shapes of injected anomalies, mirroring the corpus-typical failure
/// modes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AnomalyKind {
    /// Additive spike of the given magnitude (in multiples of the channel's
    /// recent amplitude).
    Spike(f64),
    /// Additive level shift for the whole interval.
    LevelShift(f64),
    /// Gaussian noise burst with the given σ multiplier.
    NoiseBurst(f64),
    /// Channel freezes at its value from the interval start (sensor hang).
    Flatline,
    /// Oscillation replaced by high-frequency tremor (the Daphnet
    /// freezing-of-gait signature: locomotion band vanishes, 3–8 Hz tremor
    /// appears).
    Tremor {
        /// Tremor amplitude.
        amplitude: f64,
        /// Tremor period in steps.
        period: f64,
    },
}

/// Gradual concept-drift shapes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DriftKind {
    /// Mean shifts by the given offset.
    MeanShift(f64),
    /// Signal amplitude around the running mean scales by the factor.
    AmplitudeScale(f64),
}

/// Injects an anomaly into `series.data[start..start+len)` on the given
/// channels and marks the labels.
///
/// # Panics
/// Panics if the interval exceeds the series or a channel is out of range.
pub fn inject_anomaly(
    series: &mut LabeledSeries,
    start: usize,
    len: usize,
    kind: AnomalyKind,
    channels: &[usize],
    rng: &mut impl Rng,
) {
    assert!(len > 0, "anomaly length must be positive");
    assert!(start + len <= series.len(), "anomaly interval exceeds series");
    let n = series.channels();
    assert!(channels.iter().all(|&c| c < n), "channel index out of range");

    // Recent per-channel amplitude estimate for scale-aware injection
    // (empty at start == 0, where the floor below applies).
    let scales: Vec<f64> = channels
        .iter()
        .map(|&c| {
            let lo = start.saturating_sub(100);
            let vals: Vec<f64> = (lo..start).map(|t| series.data[t][c]).collect();
            let mean = vals.iter().sum::<f64>() / vals.len().max(1) as f64;
            let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>()
                / vals.len().max(1) as f64;
            var.sqrt().max(0.1)
        })
        .collect();

    let frozen: Vec<f64> = channels.iter().map(|&c| series.data[start][c]).collect();
    for t in start..start + len {
        series.labels[t] = true;
        for (i, &c) in channels.iter().enumerate() {
            let v = &mut series.data[t][c];
            match kind {
                AnomalyKind::Spike(mag) => {
                    // Spike peaks mid-interval.
                    let rel = (t - start) as f64 / len as f64;
                    let envelope = 1.0 - (2.0 * rel - 1.0).abs();
                    *v += mag * scales[i] * envelope;
                }
                AnomalyKind::LevelShift(mag) => *v += mag * scales[i],
                AnomalyKind::NoiseBurst(mult) => *v += mult * scales[i] * standard_normal(rng),
                AnomalyKind::Flatline => *v = frozen[i],
                AnomalyKind::Tremor { amplitude, period } => {
                    *v = frozen[i]
                        + amplitude
                            * scales[i]
                            * (2.0 * std::f64::consts::PI * (t - start) as f64 / period).sin();
                }
            }
        }
    }
}

/// Applies gradual drift to all channels from `at` onward, ramping linearly
/// over `ramp` steps. Labels are untouched.
pub fn inject_drift(series: &mut LabeledSeries, at: usize, ramp: usize, kind: DriftKind) {
    assert!(at < series.len(), "drift onset exceeds series");
    let n = series.channels();
    // Running means per channel, for amplitude scaling around the mean.
    let window = 200.min(at.max(1));
    let means: Vec<f64> = (0..n)
        .map(|c| {
            let lo = at - window;
            (lo..at).map(|t| series.data[t][c]).sum::<f64>() / window as f64
        })
        .collect();
    for t in at..series.len() {
        let progress = if ramp == 0 { 1.0 } else { ((t - at) as f64 / ramp as f64).min(1.0) };
        for (v, &mean) in series.data[t].iter_mut().zip(&means) {
            match kind {
                DriftKind::MeanShift(offset) => *v += offset * progress,
                DriftKind::AmplitudeScale(factor) => {
                    let eff = 1.0 + (factor - 1.0) * progress;
                    *v = mean + (*v - mean) * eff;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn flat_series(len: usize, n: usize, value: f64) -> LabeledSeries {
        LabeledSeries::new("t", vec![vec![value; n]; len], vec![false; len])
    }

    #[test]
    fn spike_marks_labels_and_peaks_mid_interval() {
        let mut s = flat_series(200, 2, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        inject_anomaly(&mut s, 100, 10, AnomalyKind::Spike(5.0), &[0], &mut rng);
        assert_eq!(s.anomaly_intervals(), vec![(100, 110)]);
        let mid = s.data[105][0];
        let edge = s.data[100][0];
        assert!(mid > edge, "spike envelope peaks mid-interval: {mid} vs {edge}");
        // Channel 1 untouched.
        assert_eq!(s.data[105][1], 1.0);
    }

    #[test]
    fn level_shift_is_constant_over_interval() {
        let mut s = flat_series(100, 1, 2.0);
        let mut rng = StdRng::seed_from_u64(2);
        inject_anomaly(&mut s, 50, 20, AnomalyKind::LevelShift(3.0), &[0], &mut rng);
        let shifted = s.data[55][0];
        assert!(shifted > 2.0);
        assert!((s.data[60][0] - shifted).abs() < 1e-12);
        // Outside the interval the value is unchanged.
        assert_eq!(s.data[49][0], 2.0);
        assert_eq!(s.data[70][0], 2.0);
    }

    #[test]
    fn flatline_freezes_at_start_value() {
        let mut s = flat_series(100, 1, 0.0);
        for (t, row) in s.data.iter_mut().enumerate() {
            row[0] = (t as f64 * 0.3).sin();
        }
        let mut rng = StdRng::seed_from_u64(3);
        inject_anomaly(&mut s, 40, 15, AnomalyKind::Flatline, &[0], &mut rng);
        let frozen = s.data[40][0];
        for t in 40..55 {
            assert_eq!(s.data[t][0], frozen);
        }
    }

    #[test]
    fn tremor_oscillates_fast() {
        let mut s = flat_series(200, 1, 0.5);
        let mut rng = StdRng::seed_from_u64(4);
        inject_anomaly(
            &mut s,
            100,
            40,
            AnomalyKind::Tremor { amplitude: 3.0, period: 8.0 },
            &[0],
            &mut rng,
        );
        // Sign changes of (v - base) indicate oscillation.
        let base = s.data[100][0];
        let crossings = (101..140)
            .filter(|&t| (s.data[t][0] - base).signum() != (s.data[t - 1][0] - base).signum())
            .count();
        assert!(crossings >= 5, "tremor must oscillate, crossings {crossings}");
    }

    #[test]
    fn noise_burst_raises_variance() {
        let mut s = flat_series(300, 1, 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        inject_anomaly(&mut s, 150, 50, AnomalyKind::NoiseBurst(4.0), &[0], &mut rng);
        let var: f64 = (150..200)
            .map(|t| (s.data[t][0] - 1.0) * (s.data[t][0] - 1.0))
            .sum::<f64>()
            / 50.0;
        assert!(var > 0.01, "variance raised: {var}");
    }

    #[test]
    fn drift_mean_shift_ramps_then_holds() {
        let mut s = flat_series(300, 1, 0.0);
        inject_drift(&mut s, 100, 50, DriftKind::MeanShift(10.0));
        assert_eq!(s.data[99][0], 0.0);
        assert!(s.data[125][0] > 4.0 && s.data[125][0] < 6.0, "mid-ramp ≈ 5");
        assert!((s.data[200][0] - 10.0).abs() < 1e-9, "fully shifted");
        // Drift never sets labels.
        assert_eq!(s.anomaly_points(), 0);
    }

    #[test]
    fn drift_amplitude_scale_preserves_mean() {
        let mut s = flat_series(400, 1, 0.0);
        for (t, row) in s.data.iter_mut().enumerate() {
            row[0] = 5.0 + (t as f64 * 0.2).sin();
        }
        inject_drift(&mut s, 200, 0, DriftKind::AmplitudeScale(3.0));
        let mean_after: f64 = (250..400).map(|t| s.data[t][0]).sum::<f64>() / 150.0;
        assert!((mean_after - 5.0).abs() < 0.3, "mean preserved: {mean_after}");
        let amp_after = (250..400).map(|t| (s.data[t][0] - 5.0).abs()).fold(0.0, f64::max);
        assert!(amp_after > 2.0, "amplitude tripled: {amp_after}");
    }

    #[test]
    fn anomaly_at_stream_start_is_handled() {
        let mut s = flat_series(50, 1, 1.0);
        let mut rng = StdRng::seed_from_u64(9);
        inject_anomaly(&mut s, 0, 5, AnomalyKind::Spike(3.0), &[0], &mut rng);
        assert_eq!(s.anomaly_intervals(), vec![(0, 5)]);
        assert!(s.is_finite());
    }

    #[test]
    #[should_panic(expected = "exceeds series")]
    fn out_of_range_anomaly_panics() {
        let mut s = flat_series(10, 1, 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        inject_anomaly(&mut s, 8, 5, AnomalyKind::Spike(1.0), &[0], &mut rng);
    }
}
