//! Labelled multivariate time series containers.

use serde::{Deserialize, Serialize};

/// One multivariate series with point-wise anomaly labels.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct LabeledSeries {
    /// Series identifier (e.g. `"S03R01E0-like"`).
    pub name: String,
    /// `data[t]` is the stream vector `s_t ∈ R^N`.
    pub data: Vec<Vec<f64>>,
    /// `labels[t]` is `true` inside an anomaly.
    pub labels: Vec<bool>,
}

impl LabeledSeries {
    /// Creates a series, validating shape consistency.
    ///
    /// # Panics
    /// Panics if lengths mismatch or channel counts are ragged.
    pub fn new(name: impl Into<String>, data: Vec<Vec<f64>>, labels: Vec<bool>) -> Self {
        assert_eq!(data.len(), labels.len(), "data/labels length mismatch");
        if let Some(first) = data.first() {
            let n = first.len();
            assert!(n > 0, "series must have at least one channel");
            assert!(data.iter().all(|s| s.len() == n), "ragged channel counts");
        }
        Self { name: name.into(), data, labels }
    }

    /// Number of time steps.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the series has no steps.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Channel count `N`.
    pub fn channels(&self) -> usize {
        self.data.first().map_or(0, Vec::len)
    }

    /// Number of anomalous time steps.
    pub fn anomaly_points(&self) -> usize {
        self.labels.iter().filter(|&&l| l).count()
    }

    /// Anomaly intervals as `(start, end)` half-open pairs.
    pub fn anomaly_intervals(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let mut start = None;
        for (t, &l) in self.labels.iter().enumerate() {
            match (l, start) {
                (true, None) => start = Some(t),
                (false, Some(s)) => {
                    out.push((s, t));
                    start = None;
                }
                _ => {}
            }
        }
        if let Some(s) = start {
            out.push((s, self.labels.len()));
        }
        out
    }

    /// `true` if all values are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|s| s.iter().all(|v| v.is_finite()))
    }
}

/// A named collection of labelled series (one benchmark corpus).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct Corpus {
    /// Corpus name (`"daphnet-like"`, …).
    pub name: String,
    /// Member series.
    pub series: Vec<LabeledSeries>,
}

impl Corpus {
    /// Total time steps across all series.
    pub fn total_steps(&self) -> usize {
        self.series.iter().map(LabeledSeries::len).sum()
    }

    /// Total anomaly intervals across all series.
    pub fn total_anomalies(&self) -> usize {
        self.series.iter().map(|s| s.anomaly_intervals().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let s = LabeledSeries::new(
            "test",
            vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]],
            vec![false, true, false],
        );
        assert_eq!(s.len(), 3);
        assert_eq!(s.channels(), 2);
        assert_eq!(s.anomaly_points(), 1);
        assert_eq!(s.anomaly_intervals(), vec![(1, 2)]);
        assert!(s.is_finite());
    }

    #[test]
    fn trailing_anomaly_interval_is_closed() {
        let s = LabeledSeries::new(
            "t",
            vec![vec![0.0]; 4],
            vec![false, true, true, true],
        );
        assert_eq!(s.anomaly_intervals(), vec![(1, 4)]);
    }

    #[test]
    fn corpus_totals() {
        let s1 = LabeledSeries::new("a", vec![vec![0.0]; 5], vec![false, true, false, false, true]);
        let s2 = LabeledSeries::new("b", vec![vec![0.0]; 3], vec![false; 3]);
        let c = Corpus { name: "c".into(), series: vec![s1, s2] };
        assert_eq!(c.total_steps(), 8);
        assert_eq!(c.total_anomalies(), 2);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_labels_panic() {
        let _ = LabeledSeries::new("t", vec![vec![0.0]; 3], vec![false; 2]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_channels_panic() {
        let _ = LabeledSeries::new("t", vec![vec![0.0], vec![0.0, 1.0]], vec![false; 2]);
    }
}
