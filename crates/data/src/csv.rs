//! Plain-text CSV serialization for labelled series.
//!
//! Format: a header `t,ch0,…,chN-1,label`, then one row per step. This is
//! deliberately the simplest possible interchange format so a user with
//! access to the real Daphnet/Exathlon/SMD files can convert them and drop
//! them into the harness in place of the synthetic stand-ins.

use crate::dataset::LabeledSeries;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Renders a series to CSV text.
pub fn to_csv(series: &LabeledSeries) -> String {
    let n = series.channels();
    let mut out = String::new();
    out.push('t');
    for c in 0..n {
        let _ = write!(out, ",ch{c}");
    }
    out.push_str(",label\n");
    for (t, (row, &label)) in series.data.iter().zip(&series.labels).enumerate() {
        let _ = write!(out, "{t}");
        for v in row {
            let _ = write!(out, ",{v}");
        }
        let _ = writeln!(out, ",{}", u8::from(label));
    }
    out
}

/// Parses a series from CSV text (the format produced by [`to_csv`]).
///
/// # Errors
/// Returns a descriptive error string on malformed input.
pub fn from_csv(name: &str, text: &str) -> Result<LabeledSeries, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty CSV")?;
    let columns = header.split(',').count();
    if columns < 3 {
        return Err(format!("header needs t, at least one channel, and label: {header:?}"));
    }
    let n = columns - 2;
    let mut data = Vec::new();
    let mut labels = Vec::new();
    for (lineno, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != columns {
            return Err(format!("line {}: expected {columns} fields, got {}", lineno + 2, fields.len()));
        }
        let row: Result<Vec<f64>, _> = fields[1..=n].iter().map(|f| f.parse::<f64>()).collect();
        let row = row.map_err(|e| format!("line {}: bad value: {e}", lineno + 2))?;
        let label = match fields[columns - 1].trim() {
            "0" => false,
            "1" => true,
            other => return Err(format!("line {}: bad label {other:?}", lineno + 2)),
        };
        data.push(row);
        labels.push(label);
    }
    Ok(LabeledSeries::new(name, data, labels))
}

/// Writes a series to a CSV file.
pub fn save_csv(series: &LabeledSeries, path: impl AsRef<Path>) -> io::Result<()> {
    fs::write(path, to_csv(series))
}

/// Reads a series from a CSV file; the file stem becomes the series name.
pub fn load_csv(path: impl AsRef<Path>) -> io::Result<LabeledSeries> {
    let path = path.as_ref();
    let name = path.file_stem().and_then(|s| s.to_str()).unwrap_or("series").to_string();
    let text = fs::read_to_string(path)?;
    from_csv(&name, &text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LabeledSeries {
        LabeledSeries::new(
            "sample",
            vec![vec![1.0, -2.5], vec![0.25, 3.0], vec![7.0, 0.0]],
            vec![false, true, false],
        )
    }

    #[test]
    fn round_trip_through_text() {
        let s = sample();
        let text = to_csv(&s);
        let back = from_csv("sample", &text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn header_format() {
        let text = to_csv(&sample());
        assert!(text.starts_with("t,ch0,ch1,label\n"));
        assert!(text.contains("\n1,0.25,3,1\n"));
    }

    #[test]
    fn round_trip_through_file() {
        let s = sample();
        let dir = std::env::temp_dir().join("sad_data_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.csv");
        save_csv(&s, &path).unwrap();
        let back = load_csv(&path).unwrap();
        assert_eq!(back, s);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(from_csv("x", "").is_err());
        assert!(from_csv("x", "t,label\n0,0").is_err(), "no channels");
        assert!(from_csv("x", "t,ch0,label\n0,1.0").is_err(), "missing field");
        assert!(from_csv("x", "t,ch0,label\n0,abc,0").is_err(), "bad float");
        assert!(from_csv("x", "t,ch0,label\n0,1.0,2").is_err(), "bad label");
    }

    #[test]
    fn blank_lines_are_skipped() {
        let s = from_csv("x", "t,ch0,label\n0,1.0,0\n\n1,2.0,1\n").unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.labels, vec![false, true]);
    }
}
