//! Allocation-count guard for the steady-state ingest path.
//!
//! Extends the counting-allocator pattern of `sad-fleet/tests/zero_alloc.rs`
//! one layer up: once every stream has been admitted and every reusable
//! buffer (transport body/line buffer, `Frame::values`, ring queues,
//! batch workspaces, output slots) has reached steady-state capacity, a
//! full wire step — `Transport::next` decode, route lookup, `offer`,
//! and the scheduled `drain_round` with its idle sweep — must not
//! allocate at all. Admission and retirement are the only allocating
//! paths, and both are per-entity-lifetime events.
//!
//! Both framings are pinned: the binary decoder reads into a reused body
//! buffer, and the CSV decoder parses floats out of a reused line buffer.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ARMED: Cell<bool> = const { Cell::new(false) };
    static ALLOCS: Cell<usize> = const { Cell::new(0) };
}

struct CountingAllocator;

impl CountingAllocator {
    fn record() {
        let _ = ARMED.try_with(|armed| {
            if armed.get() {
                let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
            }
        });
    }
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        Self::record();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        Self::record();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        Self::record();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn count_allocs(f: impl FnOnce()) -> usize {
    ALLOCS.with(|c| c.set(0));
    ARMED.with(|a| a.set(true));
    f();
    ARMED.with(|a| a.set(false));
    ALLOCS.with(|c| c.get())
}

use std::io::Cursor;
use sad_core::{AlgorithmSpec, DetectorConfig, ModelKind, ScoreKind, Task1, Task2};
use sad_fleet::FleetConfig;
use sad_ingest::{
    CsvTransport, DetectorTemplate, EngineConfig, Frame, FrameWriter, FramedTransport, Framing,
    IngestEngine, Transport,
};
use sad_models::BuildParams;

const CHANNELS: usize = 2;
const STREAMS: usize = 2;
const SETTLE_ROUNDS: usize = 192;
const ARMED_ROUNDS: usize = 256;

/// Stationary stream, periodic with the detector's window length (8):
/// constant training-set statistics, so μ/σ-Change never fires and the
/// armed window is pure steady-state serving (training allocates, and is
/// exactly what this guard must not see).
fn stream_vector(t: usize) -> [f64; CHANNELS] {
    let phase = std::f64::consts::TAU * (t % 8) as f64 / 8.0;
    [phase.sin(), phase.cos() * 0.5]
}

fn engine() -> IngestEngine {
    let spec = AlgorithmSpec {
        model: ModelKind::TwoLayerAe,
        task1: Task1::SlidingWindow,
        task2: Task2::MuSigma,
    };
    let config = DetectorConfig {
        window: 8,
        channels: CHANNELS,
        warmup: 64,
        initial_epochs: 1,
        fine_tune_epochs: 1,
    };
    let params =
        BuildParams::new(config).with_capacity(16).with_score(ScoreKind::Raw).with_seed(11);
    // An armed idle sweep runs every round (nothing qualifies — both
    // streams send every round), proving the sweep itself is alloc-free.
    let cfg = EngineConfig { idle_rounds: Some(10_000), ..EngineConfig::default() };
    IngestEngine::new(DetectorTemplate::new(spec, params), FleetConfig::default(), cfg)
}

/// Interleaved wire bytes for `rounds` rounds starting at step `t0`.
fn wire_bytes(framing: Framing, t0: usize, rounds: usize) -> Vec<u8> {
    let mut writer = FrameWriter::new(Vec::new(), framing);
    for t in t0..t0 + rounds {
        let s = stream_vector(t);
        for i in 0..STREAMS {
            writer.send(i as u64, &s).expect("in-memory write");
        }
    }
    writer.into_inner()
}

/// Pumps exactly `frames` frames from the transport into the engine,
/// reusing the caller's decode buffer.
fn pump(
    transport: &mut dyn Transport,
    frame: &mut Frame,
    engine: &mut IngestEngine,
    outputs: &Cell<usize>,
    frames: usize,
) {
    let mut sink = |_: u64, _: &sad_core::StepOutput| outputs.set(outputs.get() + 1);
    for _ in 0..frames {
        assert!(transport.next(frame).expect("well-formed wire"), "wire ended early");
        engine.ingest(frame, &mut sink);
    }
}

fn steady_state_is_allocation_free(framing: Framing) {
    let mut engine = engine();
    let outputs = Cell::new(0usize);
    let mut frame = Frame::default();

    // One continuous wire: the same transport (and decode buffers) carry
    // both phases, exactly like a long-lived connection.
    let wire = wire_bytes(framing, 0, SETTLE_ROUNDS + ARMED_ROUNDS);
    let mut binary;
    let mut csv;
    let transport: &mut dyn Transport = match framing {
        Framing::Binary => {
            binary = FramedTransport::new(Cursor::new(wire));
            &mut binary
        }
        Framing::Csv => {
            csv = CsvTransport::new(Cursor::new(wire));
            &mut csv
        }
    };

    // Settle: admission, warm-up (64), cohort formation, and every
    // reusable buffer stretched to steady-state capacity.
    pump(transport, &mut frame, &mut engine, &outputs, SETTLE_ROUNDS * STREAMS);
    let settled = engine.stats();
    assert_eq!(settled.fleet.admitted, STREAMS, "both streams admitted during settle");
    assert!(settled.fleet.batched_rows > 0, "cohort must have formed during settle: {settled:?}");

    // Armed: the full wire step — decode, route, offer, drain — on
    // already-live streams.
    let n = count_allocs(|| {
        pump(transport, &mut frame, &mut engine, &outputs, ARMED_ROUNDS * STREAMS);
    });
    assert_eq!(n, 0, "steady-state {framing:?} ingest must not allocate, saw {n}");

    // And the armed window really served every frame through the engine.
    let stats = engine.stats();
    assert_eq!(stats.frames - settled.frames, ARMED_ROUNDS * STREAMS);
    assert_eq!(stats.fleet.steps - settled.fleet.steps, ARMED_ROUNDS * STREAMS);
    assert_eq!(stats.fleet.admitted, STREAMS, "no re-admission while armed");
    assert_eq!(stats.idle_retired, 0, "nothing idles while both streams send");
    assert!(outputs.get() > 0, "post-warm-up outputs flowed through the sink");
}

#[test]
fn steady_state_binary_ingest_is_allocation_free() {
    steady_state_is_allocation_free(Framing::Binary);
}

#[test]
fn steady_state_csv_ingest_is_allocation_free() {
    steady_state_is_allocation_free(Framing::Csv);
}
