//! Serve-mode parity: frames over the wire must produce the exact
//! outputs of the offline fleet driver.
//!
//! The engine's contract is that per-stream traces are invariant to the
//! drain schedule — each detector consumes its own queue in arrival
//! order, and the batched shard path is bitwise-identical to scalar
//! stepping — so anything the wire does to frame pacing (TCP chunking, a
//! bursty client, block-policy stalls) must leave every `StepOutput`
//! bitwise unchanged vs [`DetectorFleet::run`] over the same per-stream
//! data. These tests pin that end to end:
//!
//! * real TCP loopback, binary framing, interleaved arrival;
//! * CSV framing (value-exact shortest-round-trip floats);
//! * a bursty client (whole series sequentially) under the block policy,
//!   where back-pressure provably engages and still loses nothing;
//! * the drop policies, which shed load but keep served streams sane.

use std::io::Cursor;
use std::net::TcpListener;
use sad_core::{
    AlgorithmSpec, Detector, DetectorConfig, ModelKind, ScoreKind, StepOutput, Task1, Task2,
};
use sad_data::LabeledSeries;
use sad_fleet::{DetectorFleet, FleetConfig};
use sad_ingest::{
    replay_interleaved, replay_series, BackpressurePolicy, CsvTransport, DetectorTemplate,
    EngineConfig, EngineSink, FrameWriter, FramedTransport, Framing, IngestEngine,
};
use sad_models::{build_detector, BuildParams};

const CHANNELS: usize = 2;
const WINDOW: usize = 8;
const WARMUP: usize = 40;
const LEN: usize = 160;
const STREAMS: usize = 6;
const SEED: u64 = 11;

fn spec() -> AlgorithmSpec {
    AlgorithmSpec {
        model: ModelKind::TwoLayerAe,
        task1: Task1::SlidingWindow,
        task2: Task2::MuSigma,
    }
}

fn params() -> BuildParams {
    let config = DetectorConfig {
        window: WINDOW,
        channels: CHANNELS,
        warmup: WARMUP,
        initial_epochs: 1,
        fine_tune_epochs: 1,
    };
    BuildParams::new(config).with_capacity(12).with_score(ScoreKind::Raw).with_seed(SEED)
}

/// Distinct per-stream series (phase-shifted sine mixtures) so streams
/// drift and fine-tune on their own schedules — parity must survive
/// cohort splits, not just the steady state.
fn series(i: usize) -> LabeledSeries {
    let data: Vec<Vec<f64>> = (0..LEN)
        .map(|t| {
            let x = t as f64 * 0.11 + i as f64 * 0.7;
            vec![x.sin(), (x * 0.63).cos() + i as f64 * 0.01]
        })
        .collect();
    LabeledSeries::new(format!("s{i}"), data, vec![false; LEN])
}

fn fleet_config() -> FleetConfig {
    FleetConfig { shards: 2, queue_capacity: 4, ..FleetConfig::default() }
}

/// The offline reference: identically-built detectors through
/// [`DetectorFleet::run`].
fn reference_traces(sources: &[LabeledSeries]) -> Vec<Vec<StepOutput>> {
    let detectors: Vec<Detector> =
        sources.iter().map(|_| build_detector(spec(), &params())).collect();
    let mut fleet = DetectorFleet::new(detectors, fleet_config());
    let data: Vec<Vec<Vec<f64>>> = sources.iter().map(|s| s.data.clone()).collect();
    fleet.run(&data)
}

/// Collects served outputs per wire stream id.
#[derive(Default)]
struct Traces {
    by: Vec<Vec<StepOutput>>,
}

impl EngineSink for Traces {
    fn output(&mut self, stream: u64, out: &StepOutput) {
        let s = stream as usize;
        if self.by.len() <= s {
            self.by.resize_with(s + 1, Vec::new);
        }
        self.by[s].push(*out);
    }
}

fn engine(policy: BackpressurePolicy) -> IngestEngine {
    let cfg = EngineConfig { policy, ..EngineConfig::default() };
    IngestEngine::new(DetectorTemplate::new(spec(), params()), fleet_config(), cfg)
}

fn assert_bitwise(wire: &[StepOutput], reference: &[StepOutput], stream: usize) {
    assert_eq!(wire.len(), reference.len(), "stream {stream}: output count");
    for (w, r) in wire.iter().zip(reference) {
        assert_eq!(w.t, r.t, "stream {stream} step index");
        assert_eq!(
            w.nonconformity.to_bits(),
            r.nonconformity.to_bits(),
            "stream {stream} t={}: nonconformity",
            w.t,
        );
        assert_eq!(
            w.anomaly_score.to_bits(),
            r.anomaly_score.to_bits(),
            "stream {stream} t={}: anomaly score",
            w.t,
        );
        assert_eq!(
            (w.drift, w.fine_tuned),
            (r.drift, r.fine_tuned),
            "stream {stream} t={}: flags",
            w.t,
        );
    }
}

#[test]
fn tcp_loopback_framed_serving_matches_offline_run_bitwise() {
    let sources: Vec<LabeledSeries> = (0..STREAMS).map(series).collect();
    let reference = reference_traces(&sources);

    let listener = TcpListener::bind("127.0.0.1:0").expect("loopback bind");
    let addr = listener.local_addr().unwrap();
    let client_sources = sources.clone();
    let client = std::thread::spawn(move || {
        let socket = std::net::TcpStream::connect(addr).expect("loopback connect");
        let mut writer = FrameWriter::new(std::io::BufWriter::new(socket), Framing::Binary);
        let pairs: Vec<(u64, &LabeledSeries)> =
            client_sources.iter().enumerate().map(|(i, s)| (i as u64, s)).collect();
        let frames = replay_interleaved(&mut writer, &pairs).expect("replay over TCP");
        writer.flush().expect("flush");
        frames
    });

    let (socket, _) = listener.accept().expect("accept");
    let mut engine = engine(BackpressurePolicy::Block);
    let mut traces = Traces::default();
    engine.run(&mut FramedTransport::new(socket), &mut traces).expect("clean EOF");
    let frames = client.join().expect("client thread");

    assert_eq!(frames, STREAMS * LEN);
    let stats = engine.stats();
    assert_eq!(stats.frames, STREAMS * LEN);
    assert_eq!(stats.fleet.admitted, STREAMS, "every wire id admitted once");
    assert_eq!(stats.fleet.steps, STREAMS * LEN, "lossless under block policy");
    assert_eq!(stats.fleet.bp_dropped_newest + stats.fleet.bp_dropped_oldest, 0);
    assert_eq!(traces.by.len(), STREAMS);
    for (i, reference) in reference.iter().enumerate() {
        assert_bitwise(&traces.by[i], reference, i);
    }
}

#[test]
fn csv_framing_is_value_exact_and_matches_offline_run_bitwise() {
    let sources: Vec<LabeledSeries> = (0..STREAMS).map(series).collect();
    let reference = reference_traces(&sources);

    let mut writer = FrameWriter::new(Vec::new(), Framing::Csv);
    let pairs: Vec<(u64, &LabeledSeries)> =
        sources.iter().enumerate().map(|(i, s)| (i as u64, s)).collect();
    replay_interleaved(&mut writer, &pairs).expect("replay to memory");
    let wire = writer.into_inner();

    let mut engine = engine(BackpressurePolicy::Block);
    let mut traces = Traces::default();
    engine.run(&mut CsvTransport::new(Cursor::new(wire)), &mut traces).expect("clean EOF");

    assert_eq!(engine.stats().fleet.steps, STREAMS * LEN);
    for (i, reference) in reference.iter().enumerate() {
        assert_bitwise(&traces.by[i], reference, i);
    }
}

/// A client that sends each stream's whole series back to back overruns
/// the 4-deep queues (the engine is the slow consumer mid-burst). Under
/// the block policy the engine drains and retries: back-pressure provably
/// engages, nothing is lost, and every trace stays bitwise equal.
#[test]
fn bursty_client_under_block_policy_is_lossless_and_bitwise() {
    let sources: Vec<LabeledSeries> = (0..STREAMS).map(series).collect();
    let reference = reference_traces(&sources);

    let mut writer = FrameWriter::new(Vec::new(), Framing::Binary);
    for (i, s) in sources.iter().enumerate() {
        replay_series(&mut writer, i as u64, s).expect("replay to memory");
    }
    let wire = writer.into_inner();

    let mut engine = engine(BackpressurePolicy::Block);
    let mut traces = Traces::default();
    engine.run(&mut FramedTransport::new(Cursor::new(wire)), &mut traces).expect("clean EOF");

    let stats = engine.stats();
    assert!(stats.fleet.bp_blocked > 0, "burst must actually hit back-pressure: {stats:?}");
    assert_eq!(stats.fleet.steps, STREAMS * LEN, "block policy loses nothing");
    for (i, reference) in reference.iter().enumerate() {
        assert_bitwise(&traces.by[i], reference, i);
    }
}

/// The same burst under the drop policies: load is shed (and counted)
/// instead of stalling the transport, and what is served stays coherent —
/// the step budget accounts for every accepted frame.
#[test]
fn drop_policies_shed_the_burst_and_count_it() {
    for policy in [BackpressurePolicy::DropNewest, BackpressurePolicy::DropOldest] {
        let sources: Vec<LabeledSeries> = (0..STREAMS).map(series).collect();
        let mut writer = FrameWriter::new(Vec::new(), Framing::Binary);
        for (i, s) in sources.iter().enumerate() {
            replay_series(&mut writer, i as u64, s).expect("replay to memory");
        }
        let wire = writer.into_inner();

        let mut engine = engine(policy);
        let mut traces = Traces::default();
        engine.run(&mut FramedTransport::new(Cursor::new(wire)), &mut traces).expect("clean EOF");

        let stats = engine.stats();
        let dropped = stats.fleet.bp_dropped_newest + stats.fleet.bp_dropped_oldest;
        assert!(dropped > 0, "{policy:?}: burst must shed load: {stats:?}");
        assert_eq!(stats.fleet.bp_blocked, 0, "{policy:?}: drop policies never block");
        assert_eq!(
            stats.fleet.steps + dropped,
            STREAMS * LEN,
            "{policy:?}: every frame either served or counted dropped",
        );
        // Served outputs stay per-stream sequential: t is the detector's
        // own step counter, so each trace must be 0,1,2,… with no gaps.
        for (i, trace) in traces.by.iter().enumerate() {
            for (k, o) in trace.iter().enumerate() {
                assert_eq!(o.t, WARMUP + k, "{policy:?}: stream {i} trace is sequential");
            }
        }
    }
}
