//! Pluggable stream sources ([`Transport`]) and the matching writers.
//!
//! A transport turns *some byte source* into a sequence of [`Frame`]s.
//! Two implementations cover every wire the CLI serves:
//!
//! * [`FramedTransport`] — the length-prefixed binary protocol over any
//!   `Read` (a `TcpStream`, a locked stdin, an in-memory `Cursor` for the
//!   loopback bench/tests).
//! * [`CsvTransport`] — the `stream_id,v0,v1,…` line fallback over any
//!   `Read`.
//!
//! Both decode into caller-owned reusable buffers: after the first few
//! frames have stretched every buffer to its steady-state capacity, a
//! `next` call performs **zero heap allocations**
//! (`tests/zero_alloc.rs` pins this under the counting allocator).
//!
//! The writing side mirrors the reading side: [`FrameWriter`] encodes in
//! either framing over any `Write`, and [`replay_series`] /
//! [`replay_interleaved`] stream a [`LabeledSeries`] through one — the
//! shared replay client used by the parity suite, the CLI smoke test,
//! the `serve_client` example and the `ingest_throughput` bench.

use std::io::{self, BufRead, BufReader, ErrorKind, Read, Write};

use sad_data::LabeledSeries;

use crate::frame::{check_body_len, decode_body, decode_csv_line, encode_csv_line_into, encode_frame_into, Frame};

/// A source of frames. `next` fills the caller's reusable [`Frame`] and
/// reports `Ok(true)`, or `Ok(false)` on clean end-of-stream. Transport
/// and protocol failures surface as `Err` — a length prefix cut short
/// mid-frame is an error, not an EOF.
pub trait Transport {
    /// Decodes the next frame into `frame`.
    fn next(&mut self, frame: &mut Frame) -> io::Result<bool>;

    /// Total payload bytes consumed so far (for throughput accounting).
    fn bytes_read(&self) -> u64 {
        0
    }
}

/// Binary framed protocol over any `Read` (buffered internally).
pub struct FramedTransport<R: Read> {
    r: BufReader<R>,
    /// Reusable body buffer — sized once, reused every frame.
    body: Vec<u8>,
    bytes: u64,
}

impl<R: Read> FramedTransport<R> {
    /// Wraps a byte source in the binary frame decoder.
    pub fn new(r: R) -> Self {
        Self { r: BufReader::new(r), body: Vec::new(), bytes: 0 }
    }

    /// Unwraps the underlying reader.
    pub fn into_inner(self) -> R {
        self.r.into_inner()
    }
}

impl<R: Read> Transport for FramedTransport<R> {
    fn next(&mut self, frame: &mut Frame) -> io::Result<bool> {
        let mut prefix = [0u8; 4];
        // Distinguish clean EOF (no bytes at a frame boundary) from a
        // truncated frame (EOF inside the prefix or body).
        let first = self.r.read(&mut prefix[..1])?;
        if first == 0 {
            return Ok(false);
        }
        self.r.read_exact(&mut prefix[1..]).map_err(truncated)?;
        let len = check_body_len(u32::from_le_bytes(prefix))?;
        self.body.resize(len, 0);
        self.r.read_exact(&mut self.body).map_err(truncated)?;
        decode_body(&self.body, frame);
        self.bytes += (4 + len) as u64;
        Ok(true)
    }

    fn bytes_read(&self) -> u64 {
        self.bytes
    }
}

fn truncated(e: io::Error) -> io::Error {
    if e.kind() == ErrorKind::UnexpectedEof {
        io::Error::new(ErrorKind::UnexpectedEof, "stream ended inside a frame")
    } else {
        e
    }
}

/// CSV line fallback over any `Read` (buffered internally). Blank lines
/// are skipped; malformed lines are errors.
pub struct CsvTransport<R: Read> {
    r: BufReader<R>,
    /// Reusable line buffer.
    line: String,
    bytes: u64,
}

impl<R: Read> CsvTransport<R> {
    /// Wraps a byte source in the CSV line decoder.
    pub fn new(r: R) -> Self {
        Self { r: BufReader::new(r), line: String::new(), bytes: 0 }
    }

    /// Unwraps the underlying reader.
    pub fn into_inner(self) -> R {
        self.r.into_inner()
    }
}

impl<R: Read> Transport for CsvTransport<R> {
    fn next(&mut self, frame: &mut Frame) -> io::Result<bool> {
        loop {
            self.line.clear();
            let n = self.r.read_line(&mut self.line)?;
            if n == 0 {
                return Ok(false);
            }
            self.bytes += n as u64;
            let line = self.line.trim_end_matches(['\n', '\r']);
            if line.is_empty() {
                continue;
            }
            decode_csv_line(line, frame)?;
            return Ok(true);
        }
    }

    fn bytes_read(&self) -> u64 {
        self.bytes
    }
}

/// Which framing a [`FrameWriter`] emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Framing {
    /// Length-prefixed binary frames (bitwise-exact, compact).
    Binary,
    /// `stream_id,v0,v1,…` lines (printable, value-exact).
    Csv,
}

/// Frame encoder over any `Write` — the replay-client building block.
/// The encode buffer is reused across `send` calls.
pub struct FrameWriter<W: Write> {
    w: W,
    framing: Framing,
    buf: Vec<u8>,
    line: String,
    frames: u64,
}

impl<W: Write> FrameWriter<W> {
    /// A writer emitting `framing` onto `w`.
    pub fn new(w: W, framing: Framing) -> Self {
        Self { w, framing, buf: Vec::new(), line: String::new(), frames: 0 }
    }

    /// Encodes and writes one frame.
    pub fn send(&mut self, stream: u64, values: &[f64]) -> io::Result<()> {
        match self.framing {
            Framing::Binary => {
                self.buf.clear();
                encode_frame_into(stream, values, &mut self.buf);
                self.w.write_all(&self.buf)?;
            }
            Framing::Csv => {
                self.line.clear();
                encode_csv_line_into(stream, values, &mut self.line);
                self.w.write_all(self.line.as_bytes())?;
            }
        }
        self.frames += 1;
        Ok(())
    }

    /// Flushes the underlying writer.
    pub fn flush(&mut self) -> io::Result<()> {
        self.w.flush()
    }

    /// Frames written so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Unwraps the underlying writer.
    pub fn into_inner(self) -> W {
        self.w
    }
}

/// Replays one [`LabeledSeries`] as wire stream `stream`, one frame per
/// step, in time order. Returns the frame count.
pub fn replay_series<W: Write>(
    writer: &mut FrameWriter<W>,
    stream: u64,
    series: &LabeledSeries,
) -> io::Result<usize> {
    for s in &series.data {
        writer.send(stream, s)?;
    }
    Ok(series.len())
}

/// Replays several series round-robin (at each step, one frame per
/// stream that still has data) — the arrival order a fleet of concurrent
/// entities produces, and the cadence [`crate::IngestEngine`] turns back
/// into one-step-per-stream fleet rounds. Returns the frame count.
pub fn replay_interleaved<W: Write>(
    writer: &mut FrameWriter<W>,
    streams: &[(u64, &LabeledSeries)],
) -> io::Result<usize> {
    let longest = streams.iter().map(|(_, s)| s.len()).max().unwrap_or(0);
    let mut frames = 0;
    for t in 0..longest {
        for (id, series) in streams {
            if let Some(s) = series.data.get(t) {
                writer.send(*id, s)?;
                frames += 1;
            }
        }
    }
    Ok(frames)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn series(name: &str, len: usize, phase: f64) -> LabeledSeries {
        let data: Vec<Vec<f64>> =
            (0..len).map(|t| vec![(t as f64 * 0.1 + phase).sin(), t as f64]).collect();
        let labels = vec![false; len];
        LabeledSeries::new(name, data, labels)
    }

    #[test]
    fn framed_transport_round_trips_a_replay() {
        let a = series("a", 5, 0.0);
        let b = series("b", 3, 1.0);
        let mut writer = FrameWriter::new(Vec::new(), Framing::Binary);
        let frames = replay_interleaved(&mut writer, &[(10, &a), (20, &b)]).unwrap();
        assert_eq!(frames, 8);
        let buf = writer.into_inner();

        let mut t = FramedTransport::new(Cursor::new(&buf));
        let mut frame = Frame::default();
        let mut seen = Vec::new();
        while t.next(&mut frame).unwrap() {
            seen.push((frame.stream, frame.values.clone()));
        }
        assert_eq!(seen.len(), 8);
        assert_eq!(t.bytes_read(), buf.len() as u64);
        // Round-robin order: a, b, a, b, a, b, a, a.
        let ids: Vec<u64> = seen.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![10, 20, 10, 20, 10, 20, 10, 10]);
        for (i, (_, values)) in seen.iter().enumerate().take(6) {
            let src = if i % 2 == 0 { &a } else { &b };
            let step = i / 2;
            for (got, want) in values.iter().zip(&src.data[step]) {
                assert_eq!(got.to_bits(), want.to_bits(), "bitwise replay");
            }
        }
    }

    #[test]
    fn csv_transport_round_trips_and_skips_blank_lines() {
        let a = series("a", 4, 0.3);
        let mut writer = FrameWriter::new(Vec::new(), Framing::Csv);
        replay_series(&mut writer, 3, &a).unwrap();
        let mut text = String::from_utf8(writer.into_inner()).unwrap();
        text.push('\n'); // trailing blank line must be tolerated
        let mut t = CsvTransport::new(Cursor::new(text.as_bytes()));
        let mut frame = Frame::default();
        let mut n = 0;
        while t.next(&mut frame).unwrap() {
            assert_eq!(frame.stream, 3);
            for (got, want) in frame.values.iter().zip(&a.data[n]) {
                assert_eq!(got.to_bits(), want.to_bits(), "value-exact CSV replay");
            }
            n += 1;
        }
        assert_eq!(n, 4);
    }

    #[test]
    fn truncated_binary_frame_is_an_error_not_eof() {
        let mut buf = Vec::new();
        encode_frame_into(1, &[2.0, 3.0], &mut buf);
        buf.truncate(buf.len() - 3);
        let mut t = FramedTransport::new(Cursor::new(&buf));
        let mut frame = Frame::default();
        let err = t.next(&mut frame).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::UnexpectedEof);
    }

    #[test]
    fn malformed_csv_line_is_an_error() {
        let mut t = CsvTransport::new(Cursor::new(b"1,2.0\nbogus line\n".as_slice()));
        let mut frame = Frame::default();
        assert!(t.next(&mut frame).unwrap());
        assert!(t.next(&mut frame).is_err());
    }
}
