//! Streaming ingestion front-end for the detector fleet.
//!
//! Everything between a socket and [`sad_fleet::DetectorFleet::enqueue`]
//! lives here:
//!
//! * [`frame`] — the length-prefixed binary wire format and its CSV line
//!   fallback. Binary frames round-trip `f64`s bitwise; CSV lines are
//!   value-exact via shortest-round-trip formatting.
//! * [`Transport`] — pluggable frame sources ([`FramedTransport`],
//!   [`CsvTransport`]) decoding into caller-owned reusable buffers, plus
//!   the mirroring [`FrameWriter`] and the [`replay_series`] /
//!   [`replay_interleaved`] replay client.
//! * [`IngestEngine`] — routes frames to fleet streams, admits detectors
//!   on first contact ([`DetectorTemplate`]), maps back-pressure onto the
//!   bounded per-stream queues ([`BackpressurePolicy`]), schedules drain
//!   rounds, and retires idle streams.
//!
//! The steady-state path — decode, route, enqueue, drain — performs zero
//! heap allocations (pinned by `tests/zero_alloc.rs` under a counting
//! allocator), and serve-mode outputs are bitwise-identical to the
//! offline [`sad_fleet::DetectorFleet::run`] over the same per-stream
//! data (pinned by `tests/serve_parity.rs`). The `streamad serve`
//! subcommand and the `ingest_throughput` bench are thin wrappers over
//! these pieces.

mod engine;
mod frame;
mod transport;

pub use engine::{DetectorTemplate, EngineConfig, EngineSink, IngestEngine, IngestStats};
pub use frame::{encode_csv_line_into, encode_frame_into, Frame, MAX_FRAME_CHANNELS};
pub use transport::{
    replay_interleaved, replay_series, CsvTransport, FrameWriter, FramedTransport, Framing,
    Transport,
};

// The fleet types a transport caller needs to configure an engine.
pub use sad_fleet::{BackpressurePolicy, FleetConfig, OfferOutcome};
