//! The ingestion engine: frames in, [`StepOutput`]s out.
//!
//! [`IngestEngine`] sits between a [`Transport`](crate::Transport) and a
//! [`DetectorFleet`]: it routes each decoded frame to the fleet stream
//! serving that wire id, admits a freshly-built detector on first contact
//! with an unknown id ([`DetectorTemplate`]), resolves full queues under
//! the configured [`BackpressurePolicy`], schedules fleet drain rounds,
//! and retires streams that have gone idle. The frame→enqueue→drain hot
//! path is zero-alloc in steady state (`tests/zero_alloc.rs`): routing is
//! a hash lookup, admission/retirement are the only allocating paths and
//! both are per-entity-lifetime events, not per-frame ones.
//!
//! ## Round scheduling
//!
//! The engine drains one fleet round after every `live-stream-count`
//! frames (or [`EngineConfig::round_frames`] when set) and whenever a
//! blocked `offer` needs room. Per-stream traces are invariant to the
//! drain schedule — each detector consumes its own queue in arrival
//! order, and the batched path is bitwise-identical to scalar stepping —
//! so serve-mode outputs match [`DetectorFleet::run`] exactly no matter
//! how the wire interleaves frames (`tests/serve_parity.rs`).
//!
//! ## Dynamic admission
//!
//! A frame with an unknown wire id builds a detector through the
//! template (channel count taken from the frame) and admits it to the
//! least-loaded shard. A live stream that has seen no frame for
//! [`EngineConfig::idle_rounds`] rounds and has drained its backlog is
//! retired — its detector (and memory) is dropped, and the same wire id
//! arriving later is admitted again from scratch with a fresh warm-up.

use std::collections::HashMap;
use std::io;

use sad_core::{AlgorithmSpec, Detector, StepOutput};
use sad_fleet::{BackpressurePolicy, DetectorFleet, FleetConfig, FleetStats, OfferOutcome};
use sad_models::{build_detector, BuildParams};
use sad_obs::{CounterId, Histogram, HistogramId, Registry};

use crate::frame::Frame;
use crate::transport::Transport;

/// Recipe for detectors built on dynamic admission: a Table I algorithm
/// plus build parameters whose channel count is stamped per stream from
/// the first frame's width.
#[derive(Debug, Clone)]
pub struct DetectorTemplate {
    spec: AlgorithmSpec,
    params: BuildParams,
}

impl DetectorTemplate {
    /// A template from an algorithm spec and its build parameters. The
    /// `channels` field of `params.config` is overwritten per admission.
    pub fn new(spec: AlgorithmSpec, params: BuildParams) -> Self {
        Self { spec, params }
    }

    /// Builds one detector for a stream with `channels` channels.
    pub fn build(&self, channels: usize) -> Detector {
        let mut params = self.params.clone();
        params.config.channels = channels;
        build_detector(self.spec, &params)
    }

    /// The algorithm this template instantiates.
    pub fn spec(&self) -> AlgorithmSpec {
        self.spec
    }
}

/// Engine policy knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// What to do when a stream's bounded queue is full. `Block` retries
    /// after draining a round (lossless); the drop policies shed load.
    pub policy: BackpressurePolicy,
    /// Retire a stream after this many consecutive drain rounds with no
    /// arriving frame (once its backlog is empty). `None` = never retire.
    pub idle_rounds: Option<u64>,
    /// Frames between scheduled drain rounds; `0` (the default) adapts to
    /// one frame per live stream — the cadence that keeps whole-fleet
    /// batched rounds full without adding latency.
    pub round_frames: usize,
    /// Cap on concurrently live streams. Frames for unknown ids beyond
    /// the cap are rejected (counted in `sad_ingest_rejected_total`).
    pub max_streams: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            policy: BackpressurePolicy::Block,
            idle_rounds: None,
            round_frames: 0,
            max_streams: 65_536,
        }
    }
}

/// Receives engine outputs. `output` fires once per post-warm-up detector
/// step, keyed by *wire* stream id; `round` fires after every drain round
/// (periodic reporting hook — default no-op).
pub trait EngineSink {
    /// One detector step result for wire stream `stream`.
    fn output(&mut self, stream: u64, out: &StepOutput);

    /// A drain round completed. `rounds` counts them from engine start.
    fn round(&mut self, rounds: u64, engine_stats: &IngestStats) {
        let _ = (rounds, engine_stats);
    }
}

/// Closures are sinks: `|stream, out| …`.
impl<F: FnMut(u64, &StepOutput)> EngineSink for F {
    fn output(&mut self, stream: u64, out: &StepOutput) {
        self(stream, out)
    }
}

/// Cumulative engine counters — a snapshot of the engine registry plus
/// the fleet's own serving counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Frames accepted from transports (admitted to a queue or shed by a
    /// drop policy — everything that decoded and routed).
    pub frames: usize,
    /// Payload bytes consumed from transports.
    pub bytes: u64,
    /// Frames for unknown wire ids rejected by the live-stream cap.
    pub rejected: usize,
    /// Frames whose channel count disagreed with their stream's detector.
    pub channel_mismatches: usize,
    /// Drain rounds executed.
    pub rounds: u64,
    /// Streams retired by the idle timeout.
    pub idle_retired: usize,
    /// The fleet's serving counters (steps, batching, back-pressure,
    /// admission).
    pub fleet: FleetStats,
}

/// Preregistered engine metric handles (`sad_ingest_*` families).
struct EngineMetrics {
    reg: Registry,
    frames: CounterId,
    bytes: CounterId,
    rejected: CounterId,
    channel_mismatches: CounterId,
    rounds: CounterId,
    idle_retired: CounterId,
    round_frames: HistogramId,
}

impl EngineMetrics {
    fn new() -> Self {
        let mut reg = Registry::new();
        let frames =
            reg.register_counter("sad_ingest_frames_total", "Frames decoded and routed.");
        let bytes =
            reg.register_counter("sad_ingest_bytes_total", "Payload bytes consumed from transports.");
        let rejected = reg.register_counter(
            "sad_ingest_rejected_total",
            "Frames for unknown wire ids rejected by the live-stream cap.",
        );
        let channel_mismatches = reg.register_counter(
            "sad_ingest_channel_mismatch_total",
            "Frames whose channel count disagreed with their stream's detector.",
        );
        let rounds = reg.register_counter("sad_ingest_rounds_total", "Fleet drain rounds executed.");
        let idle_retired = reg.register_counter(
            "sad_ingest_idle_retired_total",
            "Streams retired by the idle timeout.",
        );
        let round_frames = reg.register_histogram(
            "sad_ingest_round_frames",
            "Frames ingested between consecutive drain rounds.",
            Histogram::log2(1.0, 65_536.0),
        );
        Self { reg, frames, bytes, rejected, channel_mismatches, rounds, idle_retired, round_frames }
    }
}

/// The ingestion engine. See the module docs for the routing, round
/// scheduling and admission model.
pub struct IngestEngine {
    fleet: DetectorFleet,
    template: DetectorTemplate,
    cfg: EngineConfig,
    /// Wire id → fleet stream id (live streams only).
    route: HashMap<u64, usize>,
    /// Fleet stream id → wire id (grows monotonically with id history).
    wire_of: Vec<u64>,
    /// Fleet stream id → round count when its last frame arrived.
    last_input: Vec<u64>,
    rounds: u64,
    frames_since_drain: usize,
    out: Vec<Option<StepOutput>>,
    retire_scratch: Vec<usize>,
    metrics: EngineMetrics,
}

impl IngestEngine {
    /// An engine over an empty fleet ([`DetectorFleet::open`]); streams
    /// are admitted from the wire on first contact.
    pub fn new(template: DetectorTemplate, fleet: FleetConfig, cfg: EngineConfig) -> Self {
        assert!(cfg.max_streams > 0, "an engine needs room for at least one stream");
        Self {
            fleet: DetectorFleet::open(fleet),
            template,
            cfg,
            route: HashMap::new(),
            wire_of: Vec::new(),
            last_input: Vec::new(),
            rounds: 0,
            frames_since_drain: 0,
            out: Vec::new(),
            retire_scratch: Vec::new(),
            metrics: EngineMetrics::new(),
        }
    }

    /// Ingests one decoded frame: route (admitting on first contact),
    /// offer under the back-pressure policy, and drain when the round
    /// budget is reached. Blocked offers drain immediately and retry.
    pub fn ingest(&mut self, frame: &Frame, sink: &mut impl EngineSink) {
        self.metrics.reg.inc(self.metrics.frames, 1);
        let id = match self.route.get(&frame.stream) {
            Some(&id) => id,
            None => {
                if self.fleet.live() >= self.cfg.max_streams {
                    self.metrics.reg.inc(self.metrics.rejected, 1);
                    return;
                }
                let id = self.fleet.admit(self.template.build(frame.values.len()));
                self.route.insert(frame.stream, id);
                debug_assert_eq!(self.wire_of.len(), id);
                self.wire_of.push(frame.stream);
                self.last_input.push(self.rounds);
                id
            }
        };
        if self.fleet.detector(id).config().channels != frame.values.len() {
            self.metrics.reg.inc(self.metrics.channel_mismatches, 1);
            return;
        }
        loop {
            match self.fleet.offer(id, &frame.values, self.cfg.policy) {
                OfferOutcome::Enqueued
                | OfferOutcome::DroppedNewest
                | OfferOutcome::DroppedOldest => break,
                OfferOutcome::WouldBlock => self.drain(sink),
            }
        }
        self.last_input[id] = self.rounds;
        self.frames_since_drain += 1;
        let target = match self.cfg.round_frames {
            0 => self.fleet.live().max(1),
            n => n,
        };
        if self.frames_since_drain >= target {
            self.drain(sink);
        }
    }

    /// Runs one fleet drain round, delivers its outputs, and sweeps for
    /// idle streams to retire.
    fn drain(&mut self, sink: &mut impl EngineSink) {
        self.metrics.reg.record(self.metrics.round_frames, self.frames_since_drain as f64);
        self.frames_since_drain = 0;
        self.fleet.drain_round(&mut self.out);
        self.rounds += 1;
        self.metrics.reg.inc(self.metrics.rounds, 1);
        for (id, o) in self.out.iter().enumerate() {
            if let Some(o) = o {
                sink.output(self.wire_of[id], o);
            }
        }

        if let Some(idle) = self.cfg.idle_rounds {
            self.retire_scratch.clear();
            for id in 0..self.wire_of.len() {
                if self.fleet.is_live(id)
                    && self.rounds.saturating_sub(self.last_input[id]) >= idle
                    && self.fleet.queued(id) == 0
                {
                    self.retire_scratch.push(id);
                }
            }
            for i in 0..self.retire_scratch.len() {
                let id = self.retire_scratch[i];
                self.fleet.retire(id);
                self.route.remove(&self.wire_of[id]);
                self.metrics.reg.inc(self.metrics.idle_retired, 1);
            }
        }
        sink.round(self.rounds, &self.stats());
    }

    /// Drains until every queue is empty (end-of-stream flush).
    pub fn finish(&mut self, sink: &mut impl EngineSink) {
        loop {
            let consumed: usize =
                (0..self.wire_of.len()).filter(|&id| self.fleet.is_live(id)).map(|id| self.fleet.queued(id)).sum();
            if consumed == 0 && self.frames_since_drain == 0 {
                return;
            }
            self.drain(sink);
            if consumed == 0 {
                return;
            }
        }
    }

    /// Pumps `transport` to end-of-stream: decode → [`Self::ingest`] →
    /// flush. On a transport/protocol error the backlog already queued is
    /// still drained before the error is returned, so no accepted frame
    /// is lost to a dirty disconnect.
    pub fn run<T: Transport>(&mut self, transport: &mut T, sink: &mut impl EngineSink) -> io::Result<()> {
        let mut frame = Frame::default();
        let before = transport.bytes_read();
        let result = loop {
            match transport.next(&mut frame) {
                Ok(true) => self.ingest(&frame, sink),
                Ok(false) => break Ok(()),
                Err(e) => break Err(e),
            }
        };
        self.metrics.reg.inc(self.metrics.bytes, transport.bytes_read() - before);
        self.finish(sink);
        result
    }

    /// Counter snapshot (engine + fleet).
    pub fn stats(&self) -> IngestStats {
        let m = &self.metrics;
        IngestStats {
            frames: m.reg.counter(m.frames) as usize,
            bytes: m.reg.counter(m.bytes),
            rejected: m.reg.counter(m.rejected) as usize,
            channel_mismatches: m.reg.counter(m.channel_mismatches) as usize,
            rounds: m.reg.counter(m.rounds),
            idle_retired: m.reg.counter(m.idle_retired) as usize,
            fleet: self.fleet.stats(),
        }
    }

    /// The fleet this engine feeds.
    pub fn fleet(&self) -> &DetectorFleet {
        &self.fleet
    }

    /// Drain rounds executed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Fleet stream id currently serving wire id `stream`, if live.
    pub fn stream_id(&self, stream: u64) -> Option<usize> {
        self.route.get(&stream).copied()
    }

    /// Exports the full metric registry: the `sad_ingest_*` families plus
    /// everything [`DetectorFleet::export_metrics`] aggregates (shard
    /// serving counters, back-pressure/admission counters, detector
    /// lifecycle). Allocates — export path only.
    pub fn export_metrics(&self) -> Registry {
        let mut reg = self.fleet.export_metrics();
        reg.absorb(&self.metrics.reg);
        reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sad_core::{DetectorConfig, ModelKind, ScoreKind, Task1, Task2};

    fn template(window: usize, warmup: usize) -> DetectorTemplate {
        let spec = AlgorithmSpec {
            model: ModelKind::TwoLayerAe,
            task1: Task1::SlidingWindow,
            task2: Task2::MuSigma,
        };
        let config =
            DetectorConfig { window, channels: 1, warmup, initial_epochs: 1, fine_tune_epochs: 1 };
        DetectorTemplate::new(
            spec,
            BuildParams::new(config).with_capacity(12).with_score(ScoreKind::Raw).with_seed(5),
        )
    }

    fn frame(stream: u64, values: &[f64]) -> Frame {
        Frame { stream, values: values.to_vec() }
    }

    struct Collect {
        outputs: Vec<(u64, StepOutput)>,
    }

    impl EngineSink for Collect {
        fn output(&mut self, stream: u64, out: &StepOutput) {
            self.outputs.push((stream, *out));
        }
    }

    #[test]
    fn first_contact_admits_and_channel_width_comes_from_the_frame() {
        let mut engine = IngestEngine::new(
            template(4, 30),
            FleetConfig::default(),
            EngineConfig::default(),
        );
        let mut sink = Collect { outputs: Vec::new() };
        engine.ingest(&frame(99, &[0.5, 1.0, -0.5]), &mut sink);
        engine.ingest(&frame(7, &[0.5]), &mut sink);
        assert_eq!(engine.fleet().live(), 2);
        let id99 = engine.stream_id(99).unwrap();
        assert_eq!(engine.fleet().detector(id99).config().channels, 3);
        let id7 = engine.stream_id(7).unwrap();
        assert_eq!(engine.fleet().detector(id7).config().channels, 1);
        // A later frame with the wrong width is counted and ignored.
        engine.ingest(&frame(99, &[1.0]), &mut sink);
        assert_eq!(engine.stats().channel_mismatches, 1);
        assert_eq!(engine.stats().frames, 3);
    }

    #[test]
    fn live_stream_cap_rejects_new_ids_but_serves_known_ones() {
        let cfg = EngineConfig { max_streams: 1, ..EngineConfig::default() };
        let mut engine = IngestEngine::new(template(4, 10), FleetConfig::default(), cfg);
        let mut sink = Collect { outputs: Vec::new() };
        engine.ingest(&frame(1, &[0.1]), &mut sink);
        engine.ingest(&frame(2, &[0.2]), &mut sink);
        engine.ingest(&frame(1, &[0.3]), &mut sink);
        let stats = engine.stats();
        assert_eq!(engine.fleet().live(), 1);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.fleet.admitted, 1);
    }

    #[test]
    fn idle_streams_retire_and_return_on_next_contact() {
        let cfg = EngineConfig { idle_rounds: Some(4), ..EngineConfig::default() };
        let mut engine = IngestEngine::new(template(4, 10), FleetConfig::default(), cfg);
        let mut sink = Collect { outputs: Vec::new() };
        // Two streams; stream 2 goes quiet while stream 1 keeps rounds
        // ticking.
        for t in 0..6 {
            engine.ingest(&frame(1, &[t as f64]), &mut sink);
            engine.ingest(&frame(2, &[t as f64]), &mut sink);
        }
        assert_eq!(engine.fleet().live(), 2);
        for t in 6..20 {
            engine.ingest(&frame(1, &[t as f64]), &mut sink);
        }
        assert_eq!(engine.fleet().live(), 1, "idle stream 2 was retired");
        assert!(engine.stream_id(2).is_none());
        assert_eq!(engine.stats().idle_retired, 1);
        // Stream 2 comes back: admitted afresh under a new fleet id.
        engine.ingest(&frame(2, &[0.0]), &mut sink);
        assert_eq!(engine.fleet().live(), 2);
        assert_eq!(engine.stats().fleet.admitted, 3);
    }

    #[test]
    fn finish_flushes_every_queued_frame() {
        // Large round budget: nothing drains during ingest.
        let cfg = EngineConfig { round_frames: 1000, ..EngineConfig::default() };
        let mut engine = IngestEngine::new(template(4, 6), FleetConfig::default(), cfg);
        let mut sink = Collect { outputs: Vec::new() };
        for t in 0..20 {
            engine.ingest(&frame(1, &[(t as f64 * 0.4).sin()]), &mut sink);
        }
        assert_eq!(engine.stats().rounds, 0, "round budget not reached");
        engine.finish(&mut sink);
        assert_eq!(engine.stats().fleet.steps, 20, "finish served the whole backlog");
        // warm-up 6 → 14 post-warm-up outputs, all for wire id 1.
        assert_eq!(sink.outputs.len(), 14);
        assert!(sink.outputs.iter().all(|(id, _)| *id == 1));
    }
}
