//! Wire framing: the length-prefixed binary frame and its CSV line
//! fallback.
//!
//! ## Binary frame format (little-endian throughout)
//!
//! ```text
//! frame := len:u32  body
//! body  := stream_id:u64  value:f64 ...      (len = 8 + 8·channels bytes)
//! ```
//!
//! `len` counts the body only (the 4-byte prefix excluded), must be a
//! multiple of 8, at least 16 (id + one channel), and at most
//! `8 + 8 ·`[`MAX_FRAME_CHANNELS`] — the decoder rejects anything else
//! *before* sizing a buffer, so a corrupt or hostile prefix can never
//! drive an allocation. `f64` values travel as IEEE-754 bit patterns, so
//! a decode(encode(x)) round trip is bitwise exact — the foundation of
//! the serve-mode parity proof.
//!
//! ## CSV line fallback
//!
//! ```text
//! stream_id,v0,v1,…\n
//! ```
//!
//! One sample per line, decimal floats. Lossy for pathological values
//! (encoding uses shortest-round-trip formatting, which *is* value-exact
//! for finite `f64`s) and ~3× the bytes of the binary frame, but writable
//! from anything that can print. Blank lines are skipped.

use std::io::{self, ErrorKind};

/// Hard upper bound on channels per frame. Caps the decoder's buffer at
/// ~32 KiB so a corrupt length prefix cannot drive an allocation.
pub const MAX_FRAME_CHANNELS: usize = 4096;

/// Smallest legal body: stream id + one channel.
const MIN_BODY_BYTES: usize = 16;

/// One decoded sample: which stream it belongs to and its channel values.
/// Reused across [`crate::Transport::next`] calls — steady-state decoding
/// writes into the existing capacity and never allocates.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Frame {
    /// Wire stream identifier (an entity key, not a fleet index).
    pub stream: u64,
    /// Channel values `s_t ∈ R^N`.
    pub values: Vec<f64>,
}

/// Appends one binary frame to `out`.
///
/// # Panics
/// Panics on an empty or over-[`MAX_FRAME_CHANNELS`] value slice.
pub fn encode_frame_into(stream: u64, values: &[f64], out: &mut Vec<u8>) {
    assert!(
        !values.is_empty() && values.len() <= MAX_FRAME_CHANNELS,
        "frame needs 1..={MAX_FRAME_CHANNELS} channels, got {}",
        values.len()
    );
    let len = (8 + 8 * values.len()) as u32;
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&stream.to_le_bytes());
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Appends one CSV line (including the trailing newline) to `out`.
///
/// # Panics
/// Panics on an empty or over-[`MAX_FRAME_CHANNELS`] value slice.
pub fn encode_csv_line_into(stream: u64, values: &[f64], out: &mut String) {
    use std::fmt::Write as _;
    assert!(
        !values.is_empty() && values.len() <= MAX_FRAME_CHANNELS,
        "frame needs 1..={MAX_FRAME_CHANNELS} channels, got {}",
        values.len()
    );
    let _ = write!(out, "{stream}");
    for v in values {
        let _ = write!(out, ",{v}");
    }
    out.push('\n');
}

fn bad_data(msg: String) -> io::Error {
    io::Error::new(ErrorKind::InvalidData, msg)
}

/// Validates a binary length prefix and returns the body length in bytes.
pub(crate) fn check_body_len(len: u32) -> io::Result<usize> {
    let len = len as usize;
    if len < MIN_BODY_BYTES || !len.is_multiple_of(8) {
        return Err(bad_data(format!(
            "frame body of {len} bytes (want a multiple of 8, at least {MIN_BODY_BYTES})"
        )));
    }
    if len > 8 + 8 * MAX_FRAME_CHANNELS {
        return Err(bad_data(format!(
            "frame body of {len} bytes exceeds the {MAX_FRAME_CHANNELS}-channel cap"
        )));
    }
    Ok(len)
}

/// Decodes a validated body (stream id + values) into `frame`.
pub(crate) fn decode_body(body: &[u8], frame: &mut Frame) {
    debug_assert!(body.len() >= MIN_BODY_BYTES && body.len().is_multiple_of(8));
    frame.stream = u64::from_le_bytes(body[..8].try_into().expect("8-byte id"));
    frame.values.clear();
    frame
        .values
        .extend(body[8..].chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().expect("8-byte value"))));
}

/// Parses one CSV line (no trailing newline) into `frame`.
pub(crate) fn decode_csv_line(line: &str, frame: &mut Frame) -> io::Result<()> {
    let mut fields = line.split(',');
    let id = fields.next().unwrap_or("");
    frame.stream = id
        .trim()
        .parse()
        .map_err(|e| bad_data(format!("CSV stream id {id:?}: {e}")))?;
    frame.values.clear();
    for field in fields {
        if frame.values.len() == MAX_FRAME_CHANNELS {
            return Err(bad_data(format!("CSV line exceeds the {MAX_FRAME_CHANNELS}-channel cap")));
        }
        let v: f64 = field
            .trim()
            .parse()
            .map_err(|e| bad_data(format!("CSV value {field:?}: {e}")))?;
        frame.values.push(v);
    }
    if frame.values.is_empty() {
        return Err(bad_data(format!("CSV line {line:?} carries no channel values")));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_round_trip_is_bitwise() {
        let values = [1.5, -0.0, f64::MIN_POSITIVE, 1.0 / 3.0, 2e300];
        let mut buf = Vec::new();
        encode_frame_into(42, &values, &mut buf);
        assert_eq!(buf.len(), 4 + 8 + 8 * values.len());
        let len = check_body_len(u32::from_le_bytes(buf[..4].try_into().unwrap())).unwrap();
        let mut frame = Frame::default();
        decode_body(&buf[4..4 + len], &mut frame);
        assert_eq!(frame.stream, 42);
        for (a, b) in frame.values.iter().zip(&values) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn csv_round_trip_is_value_exact() {
        let values = [1.5, -2.25, 1.0 / 3.0, 1e-17];
        let mut line = String::new();
        encode_csv_line_into(7, &values, &mut line);
        assert!(line.ends_with('\n'));
        let mut frame = Frame::default();
        decode_csv_line(line.trim_end(), &mut frame).unwrap();
        assert_eq!(frame.stream, 7);
        // Shortest-round-trip formatting: exact for finite doubles.
        for (a, b) in frame.values.iter().zip(&values) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn bad_length_prefixes_are_rejected_before_allocation() {
        assert!(check_body_len(0).is_err(), "empty body");
        assert!(check_body_len(8).is_err(), "id only, no channels");
        assert!(check_body_len(17).is_err(), "not a multiple of 8");
        assert!(check_body_len(u32::MAX / 2).is_err(), "hostile length");
        assert_eq!(check_body_len(16).unwrap(), 16);
        assert_eq!(check_body_len((8 + 8 * MAX_FRAME_CHANNELS) as u32).unwrap(), 8 + 8 * MAX_FRAME_CHANNELS);
    }

    #[test]
    fn csv_parse_errors_name_the_field() {
        let mut frame = Frame::default();
        assert!(decode_csv_line("x,1.0", &mut frame).is_err(), "bad id");
        assert!(decode_csv_line("3,1.0,zap", &mut frame).is_err(), "bad value");
        assert!(decode_csv_line("3", &mut frame).is_err(), "no values");
        assert!(decode_csv_line("3, 1.0 , 2.5", &mut frame).is_ok(), "whitespace tolerated");
        assert_eq!(frame.values, vec![1.0, 2.5]);
    }
}
