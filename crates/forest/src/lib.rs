//! # sad-forest
//!
//! Extended Isolation Forest and its streaming variant PCB-iForest.
//!
//! The paper's second model (§IV-C) is **PCB-iForest** (Heigl et al. 2021),
//! an online isolation forest that scores every incoming stream vector,
//! tracks each tree's contribution to the ensemble decision in a
//! *performance counter*, and — once the KSWIN drift detector fires —
//! discards every tree whose counter is non-positive and regrows it from the
//! current sliding window.
//!
//! * [`tree`] — a single extended-isolation tree with *oblique* splits
//!   `(s_t − p)·n ≤ 0` (Hariri et al. 2021), where `n` is a random
//!   hyperplane slope and `p` a random intercept inside the bounding box.
//! * [`forest`] — the ensemble and the classic isolation-forest anomaly
//!   score `a_t = 2^{−E(h(x))/c(n)}` used as the model's nonconformity
//!   measure (§IV-D).
//! * [`pcb`] — performance-counter bookkeeping and partial rebuild.

pub mod forest;
pub mod pcb;
pub mod tree;

pub use forest::ExtendedIsolationForest;
pub use pcb::PcbIForest;
pub use tree::{average_path_length, IsolationTree};
