//! A single extended-isolation tree.
//!
//! Unlike the axis-parallel splits of the original isolation forest, the
//! extended variant (Hariri et al. 2021) draws a random hyperplane: a slope
//! `n` sampled from a standard normal in every dimension and an intercept
//! point `p` drawn uniformly inside the bounding box of the node's data. A
//! point `x` goes left when `(x − p)·n ≤ 0` — the branching rule quoted
//! verbatim in the paper (§IV-C).

use rand::Rng;

/// Euler–Mascheroni constant (used by the harmonic-number approximation).
const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;

/// Average path length `c(n)` of an unsuccessful BST search among `n`
/// points: `2 H(n−1) − 2(n−1)/n`. This normalizes raw isolation depths into
/// the `2^{−E(h)/c(n)}` score.
pub fn average_path_length(n: usize) -> f64 {
    match n {
        0 | 1 => 0.0,
        2 => 1.0,
        _ => {
            let nf = n as f64;
            let harmonic = (nf - 1.0).ln() + EULER_GAMMA;
            2.0 * harmonic - 2.0 * (nf - 1.0) / nf
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Internal {
        /// Hyperplane slope `n` (one coefficient per dimension).
        normal: Vec<f64>,
        /// Intercept point `p` inside the node's bounding box.
        intercept: Vec<f64>,
        left: Box<Node>,
        right: Box<Node>,
    },
    Leaf {
        /// Number of training points that ended in this leaf.
        size: usize,
    },
}

/// One extended-isolation tree over `dim`-dimensional points.
#[derive(Debug, Clone)]
pub struct IsolationTree {
    root: Node,
    dim: usize,
}

impl IsolationTree {
    /// Builds a tree on `data` (each point `dim`-dimensional), splitting
    /// until isolation or `max_depth`.
    ///
    /// # Panics
    /// Panics if `data` is empty or points have inconsistent dimensions.
    pub fn fit(data: &[Vec<f64>], max_depth: usize, rng: &mut impl Rng) -> Self {
        assert!(!data.is_empty(), "cannot fit an isolation tree on no data");
        let dim = data[0].len();
        assert!(dim > 0, "points must have at least one dimension");
        assert!(data.iter().all(|p| p.len() == dim), "inconsistent point dimensions");
        let indices: Vec<usize> = (0..data.len()).collect();
        let root = build(data, &indices, 0, max_depth, rng);
        Self { root, dim }
    }

    /// Point dimensionality this tree was fit on.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Path length of `x`: the depth at which `x` would be isolated, plus
    /// the `c(leaf_size)` correction for unsplit leaves.
    pub fn path_length(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim, "query dimension mismatch");
        let mut node = &self.root;
        let mut depth = 0.0;
        loop {
            match node {
                Node::Leaf { size } => return depth + average_path_length(*size),
                Node::Internal { normal, intercept, left, right } => {
                    let side: f64 =
                        x.iter().zip(intercept).zip(normal).map(|((&xi, &pi), &ni)| (xi - pi) * ni).sum();
                    node = if side <= 0.0 { left } else { right };
                    depth += 1.0;
                }
            }
        }
    }

    /// Number of internal nodes (for memory accounting in benches).
    pub fn internal_nodes(&self) -> usize {
        fn count(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 0,
                Node::Internal { left, right, .. } => 1 + count(left) + count(right),
            }
        }
        count(&self.root)
    }
}

fn build(data: &[Vec<f64>], indices: &[usize], depth: usize, max_depth: usize, rng: &mut impl Rng) -> Node {
    if indices.len() <= 1 || depth >= max_depth {
        return Node::Leaf { size: indices.len() };
    }
    let dim = data[0].len();

    // Bounding box of the node's points.
    let mut lo = vec![f64::INFINITY; dim];
    let mut hi = vec![f64::NEG_INFINITY; dim];
    for &i in indices {
        for (d, &v) in data[i].iter().enumerate() {
            lo[d] = lo[d].min(v);
            hi[d] = hi[d].max(v);
        }
    }
    if lo.iter().zip(&hi).all(|(a, b)| a == b) {
        // All points identical — no hyperplane can separate them.
        return Node::Leaf { size: indices.len() };
    }

    // Draw random hyperplanes until one actually separates the points. A
    // bounded retry count keeps adversarial data from looping forever; after
    // that the branch terminates as a leaf.
    const MAX_SPLIT_ATTEMPTS: usize = 16;
    for _ in 0..MAX_SPLIT_ATTEMPTS {
        // Random slope: standard-normal coefficient per dimension.
        let normal: Vec<f64> = (0..dim).map(|_| standard_normal(rng)).collect();
        // Random intercept uniform in the bounding box.
        let intercept: Vec<f64> = lo
            .iter()
            .zip(&hi)
            .map(|(&l, &h)| if l == h { l } else { rng.random_range(l..h) })
            .collect();

        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices.iter().partition(|&&i| {
            data[i]
                .iter()
                .zip(&intercept)
                .zip(&normal)
                .map(|((&xi, &pi), &ni)| (xi - pi) * ni)
                .sum::<f64>()
                <= 0.0
        });

        if left_idx.is_empty() || right_idx.is_empty() {
            continue;
        }
        return Node::Internal {
            normal,
            intercept,
            left: Box::new(build(data, &left_idx, depth + 1, max_depth, rng)),
            right: Box::new(build(data, &right_idx, depth + 1, max_depth, rng)),
        };
    }
    Node::Leaf { size: indices.len() }
}

/// Standard normal sample via Box–Muller.
fn standard_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cluster(center: f64, n: usize, dim: usize) -> Vec<Vec<f64>> {
        // Deterministic low-discrepancy jitter around the center.
        (0..n)
            .map(|i| (0..dim).map(|d| center + ((i * 7 + d * 3) % 11) as f64 * 0.01).collect())
            .collect()
    }

    #[test]
    fn average_path_length_reference_values() {
        assert_eq!(average_path_length(0), 0.0);
        assert_eq!(average_path_length(1), 0.0);
        assert_eq!(average_path_length(2), 1.0);
        // c(256) ≈ 10.24 (a standard isolation-forest reference value).
        assert!((average_path_length(256) - 10.24).abs() < 0.05);
    }

    #[test]
    fn outlier_has_shorter_path() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut data = cluster(0.0, 128, 3);
        data.push(vec![10.0, 10.0, 10.0]); // far outlier
        let tree = IsolationTree::fit(&data, 16, &mut rng);
        let inlier_path = tree.path_length(&data[0]);
        let outlier_path = tree.path_length(&[10.0, 10.0, 10.0]);
        assert!(
            outlier_path < inlier_path,
            "outlier {outlier_path} should isolate faster than inlier {inlier_path}"
        );
    }

    #[test]
    fn identical_points_become_single_leaf() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = vec![vec![1.0, 2.0]; 50];
        let tree = IsolationTree::fit(&data, 16, &mut rng);
        assert_eq!(tree.internal_nodes(), 0);
        // Path length is c(50).
        assert!((tree.path_length(&[1.0, 2.0]) - average_path_length(50)).abs() < 1e-12);
    }

    #[test]
    fn max_depth_limits_tree() {
        let mut rng = StdRng::seed_from_u64(2);
        let data: Vec<Vec<f64>> = (0..256).map(|i| vec![i as f64]).collect();
        let tree = IsolationTree::fit(&data, 3, &mut rng);
        // With depth cap 3 there are at most 2^3 - 1 internal nodes.
        assert!(tree.internal_nodes() <= 7);
    }

    #[test]
    fn single_point_tree() {
        let mut rng = StdRng::seed_from_u64(3);
        let tree = IsolationTree::fit(&[vec![1.0]], 8, &mut rng);
        assert_eq!(tree.path_length(&[1.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn empty_data_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = IsolationTree::fit(&[], 8, &mut rng);
    }

    #[test]
    #[should_panic(expected = "query dimension mismatch")]
    fn wrong_query_dim_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let tree = IsolationTree::fit(&[vec![1.0, 2.0], vec![3.0, 4.0]], 8, &mut rng);
        let _ = tree.path_length(&[1.0]);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = cluster(0.0, 64, 2);
        let t1 = IsolationTree::fit(&data, 10, &mut StdRng::seed_from_u64(9));
        let t2 = IsolationTree::fit(&data, 10, &mut StdRng::seed_from_u64(9));
        for p in &data {
            assert_eq!(t1.path_length(p), t2.path_length(p));
        }
    }
}
