//! The extended-isolation-forest ensemble.

use crate::tree::{average_path_length, IsolationTree};
use rand::seq::index::sample;
use rand::Rng;

/// An ensemble of [`IsolationTree`]s with the classic anomaly score
/// `a(x) = 2^{−E(h(x))/c(ψ)}` where `ψ` is the per-tree subsample size.
///
/// Scores live in `(0, 1]`: ≈0.5 for average points, →1 for points isolated
/// far earlier than expected, →0 for points deep inside dense regions — so
/// the score doubles directly as the paper's iForest nonconformity measure.
#[derive(Debug, Clone)]
pub struct ExtendedIsolationForest {
    trees: Vec<IsolationTree>,
    sample_size: usize,
    dim: usize,
}

impl ExtendedIsolationForest {
    /// Default per-tree subsample size from the original isolation-forest
    /// paper.
    pub const DEFAULT_SAMPLE_SIZE: usize = 256;

    /// Fits `n_trees` trees, each on a uniform subsample of at most
    /// `sample_size` points, with the conventional depth cap
    /// `ceil(log2(sample_size))`.
    ///
    /// # Panics
    /// Panics if `data` is empty or `n_trees == 0`.
    pub fn fit(data: &[Vec<f64>], n_trees: usize, sample_size: usize, rng: &mut impl Rng) -> Self {
        assert!(!data.is_empty(), "cannot fit a forest on no data");
        assert!(n_trees > 0, "need at least one tree");
        let dim = data[0].len();
        let psi = sample_size.min(data.len()).max(2.min(data.len()));
        let max_depth = (psi as f64).log2().ceil().max(1.0) as usize;
        let trees = (0..n_trees)
            .map(|_| {
                let subsample: Vec<Vec<f64>> = if psi >= data.len() {
                    data.to_vec()
                } else {
                    sample(rng, data.len(), psi).iter().map(|i| data[i].clone()).collect()
                };
                IsolationTree::fit(&subsample, max_depth, rng)
            })
            .collect();
        Self { trees, sample_size: psi, dim }
    }

    /// Rebuilds with default sample size.
    pub fn fit_default(data: &[Vec<f64>], n_trees: usize, rng: &mut impl Rng) -> Self {
        Self::fit(data, n_trees, Self::DEFAULT_SAMPLE_SIZE, rng)
    }

    /// Number of trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// `true` if the forest holds no trees (cannot happen via `fit`).
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Point dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Per-tree subsample size `ψ` used for score normalization.
    pub fn sample_size(&self) -> usize {
        self.sample_size
    }

    /// Ensemble anomaly score `2^{−E(h(x))/c(ψ)}`.
    pub fn score(&self, x: &[f64]) -> f64 {
        let mean_path: f64 =
            self.trees.iter().map(|t| t.path_length(x)).sum::<f64>() / self.trees.len() as f64;
        score_from_path(mean_path, self.sample_size)
    }

    /// Per-tree anomaly scores `2^{−h_i(x)/c(ψ)}` — the signal PCB-iForest
    /// uses to judge each tree's individual contribution.
    pub fn tree_scores(&self, x: &[f64]) -> Vec<f64> {
        self.trees.iter().map(|t| score_from_path(t.path_length(x), self.sample_size)).collect()
    }

    /// Direct access to the trees (PCB rebuild keeps a subset).
    pub fn trees(&self) -> &[IsolationTree] {
        &self.trees
    }

    /// Replaces the tree set (used by the PCB partial rebuild).
    pub(crate) fn set_trees(&mut self, trees: Vec<IsolationTree>) {
        assert!(!trees.is_empty(), "forest must keep at least one tree");
        self.trees = trees;
    }
}

/// Converts a path length into the isolation-forest score given subsample
/// size `psi`.
pub(crate) fn score_from_path(path: f64, psi: usize) -> f64 {
    let c = average_path_length(psi).max(1.0);
    2f64.powf(-path / c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gaussian_blob(rng: &mut StdRng, n: usize, dim: usize, center: f64, spread: f64) -> Vec<Vec<f64>> {
        use rand::Rng;
        (0..n)
            .map(|_| {
                (0..dim)
                    .map(|_| {
                        let u1: f64 = rng.random_range(1e-9..1.0);
                        let u2: f64 = rng.random_range(0.0..1.0);
                        center
                            + spread
                                * (-2.0 * u1.ln()).sqrt()
                                * (2.0 * std::f64::consts::PI * u2).cos()
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn outliers_score_higher_than_inliers() {
        let mut rng = StdRng::seed_from_u64(13);
        let data = gaussian_blob(&mut rng, 400, 4, 0.0, 1.0);
        let forest = ExtendedIsolationForest::fit(&data, 50, 128, &mut rng);
        let inlier_score = forest.score(&[0.0; 4]);
        let outlier_score = forest.score(&[8.0; 4]);
        assert!(
            outlier_score > inlier_score + 0.1,
            "outlier {outlier_score} vs inlier {inlier_score}"
        );
        assert!(outlier_score > 0.6);
    }

    #[test]
    fn scores_are_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let data = gaussian_blob(&mut rng, 100, 2, 0.0, 1.0);
        let forest = ExtendedIsolationForest::fit_default(&data, 25, &mut rng);
        for p in &data {
            let s = forest.score(p);
            assert!((0.0..=1.0).contains(&s), "score {s}");
        }
        for s in forest.tree_scores(&data[0]) {
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn tree_scores_average_close_to_ensemble() {
        // Mean of per-tree scores isn't exactly the ensemble score (geometric
        // vs arithmetic aggregation) but must correlate strongly: for an
        // extreme outlier both approach 1.
        let mut rng = StdRng::seed_from_u64(17);
        let data = gaussian_blob(&mut rng, 300, 3, 0.0, 0.5);
        let forest = ExtendedIsolationForest::fit(&data, 40, 128, &mut rng);
        let x = vec![50.0; 3];
        let ens = forest.score(&x);
        let per: Vec<f64> = forest.tree_scores(&x);
        let mean = per.iter().sum::<f64>() / per.len() as f64;
        assert!(ens > 0.55 && mean > 0.55, "ens {ens} mean {mean}");
    }

    #[test]
    fn small_dataset_is_handled() {
        let mut rng = StdRng::seed_from_u64(4);
        let data = vec![vec![0.0], vec![1.0], vec![2.0]];
        let forest = ExtendedIsolationForest::fit(&data, 10, 256, &mut rng);
        assert_eq!(forest.sample_size(), 3);
        let s = forest.score(&[1.0]);
        assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn deterministic_given_seed() {
        let data: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64 * 0.1, (i % 7) as f64]).collect();
        let f1 = ExtendedIsolationForest::fit(&data, 20, 32, &mut StdRng::seed_from_u64(8));
        let f2 = ExtendedIsolationForest::fit(&data, 20, 32, &mut StdRng::seed_from_u64(8));
        assert_eq!(f1.score(&[3.0, 3.0]), f2.score(&[3.0, 3.0]));
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn empty_data_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = ExtendedIsolationForest::fit_default(&[], 5, &mut rng);
    }
}
