//! PCB-iForest: performance-counter-based streaming isolation forest.
//!
//! Heigl et al. (2021) keep one performance counter `pc_i` per tree. Every
//! scored instance is first classified by the whole ensemble (score vs a
//! fixed threshold); each tree is then judged by whether *its own* score
//! agrees with the ensemble verdict: agreement increments `pc_i`,
//! disagreement decrements it. When the (external) KSWIN drift detector
//! fires, only trees with `pc_i > 0` survive; the discarded trees are
//! regrown on the most recent window and *all* counters reset (paper §IV-C).

use crate::forest::ExtendedIsolationForest;
use rand::Rng;

/// Streaming isolation forest with per-tree performance counters.
#[derive(Debug, Clone)]
pub struct PcbIForest {
    forest: ExtendedIsolationForest,
    counters: Vec<i64>,
    threshold: f64,
    n_trees: usize,
    sample_size: usize,
}

impl PcbIForest {
    /// Default ensemble-decision threshold: 0.5 is the textbook
    /// isolation-forest boundary ("scores close to 1 indicate anomalies,
    /// scores much smaller than 0.5 indicate normal points").
    pub const DEFAULT_THRESHOLD: f64 = 0.5;

    /// Builds the initial forest on `data`.
    pub fn fit(
        data: &[Vec<f64>],
        n_trees: usize,
        sample_size: usize,
        threshold: f64,
        rng: &mut impl Rng,
    ) -> Self {
        let forest = ExtendedIsolationForest::fit(data, n_trees, sample_size, rng);
        let counters = vec![0; n_trees];
        Self { forest, counters, threshold, n_trees, sample_size }
    }

    /// Ensemble anomaly score for `x` *and* performance-counter update.
    ///
    /// This is the streaming hot path: one call per stream step.
    pub fn score_and_update(&mut self, x: &[f64]) -> f64 {
        let tree_scores = self.forest.tree_scores(x);
        let ensemble = self.forest.score(x);
        let verdict = ensemble >= self.threshold;
        for (pc, &s) in self.counters.iter_mut().zip(&tree_scores) {
            let tree_verdict = s >= self.threshold;
            // A tree "contributed positively" iff it votes with the ensemble.
            if tree_verdict == verdict {
                *pc += 1;
            } else {
                *pc -= 1;
            }
        }
        ensemble
    }

    /// Score without touching the counters (pure inference).
    pub fn score(&self, x: &[f64]) -> f64 {
        self.forest.score(x)
    }

    /// Current performance counters, one per tree.
    pub fn counters(&self) -> &[i64] {
        &self.counters
    }

    /// Number of trees in the ensemble (constant across rebuilds).
    pub fn len(&self) -> usize {
        self.n_trees
    }

    /// `true` if the ensemble holds no trees (cannot happen via `fit`).
    pub fn is_empty(&self) -> bool {
        self.n_trees == 0
    }

    /// Test-only hook to force a counter configuration.
    #[cfg(test)]
    pub(crate) fn set_counters(&mut self, values: Vec<i64>) {
        assert_eq!(values.len(), self.counters.len());
        self.counters = values;
    }

    /// Drift reaction: keep trees with `pc_i > 0`, regrow the rest on
    /// `window`, reset all counters. Returns how many trees were discarded.
    pub fn rebuild_on_drift(&mut self, window: &[Vec<f64>], rng: &mut impl Rng) -> usize {
        let mut kept: Vec<_> = self
            .forest
            .trees()
            .iter()
            .zip(&self.counters)
            .filter(|(_, &pc)| pc > 0)
            .map(|(t, _)| t.clone())
            .collect();
        let discarded = self.n_trees - kept.len();
        if discarded > 0 && !window.is_empty() {
            let fresh =
                ExtendedIsolationForest::fit(window, discarded, self.sample_size, rng);
            kept.extend(fresh.trees().iter().cloned());
        }
        if kept.is_empty() {
            // Pathological case: every tree disagreed with the ensemble and
            // the window is empty. Keep the old forest rather than none.
            kept = self.forest.trees().to_vec();
        }
        self.forest.set_trees(kept);
        self.counters = vec![0; self.forest.len()];
        self.n_trees = self.forest.len();
        discarded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blob(rng: &mut StdRng, n: usize, center: f64) -> Vec<Vec<f64>> {
        use rand::Rng;
        (0..n).map(|_| vec![center + rng.random_range(-0.5..0.5), center + rng.random_range(-0.5..0.5)]).collect()
    }

    #[test]
    fn scoring_updates_counters() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = blob(&mut rng, 200, 0.0);
        let mut pcb = PcbIForest::fit(&data, 20, 64, 0.5, &mut rng);
        assert!(pcb.counters().iter().all(|&c| c == 0));
        for p in data.iter().take(50) {
            pcb.score_and_update(p);
        }
        assert!(pcb.counters().iter().any(|&c| c != 0));
        // Counters are bounded by the number of updates.
        assert!(pcb.counters().iter().all(|&c| c.abs() <= 50));
    }

    #[test]
    fn pure_score_leaves_counters_untouched() {
        let mut rng = StdRng::seed_from_u64(2);
        let data = blob(&mut rng, 100, 0.0);
        let pcb = PcbIForest::fit(&data, 10, 64, 0.5, &mut rng);
        let before = pcb.counters().to_vec();
        let _ = pcb.score(&data[0]);
        assert_eq!(pcb.counters(), &before[..]);
    }

    #[test]
    fn rebuild_discards_negative_trees_and_resets() {
        let mut rng = StdRng::seed_from_u64(3);
        let data = blob(&mut rng, 200, 0.0);
        let mut pcb = PcbIForest::fit(&data, 30, 64, 0.5, &mut rng);
        for p in data.iter().take(100) {
            pcb.score_and_update(p);
        }
        let had_negative = pcb.counters().iter().any(|&c| c <= 0);
        let new_data = blob(&mut rng, 200, 5.0); // drifted regime
        let discarded = pcb.rebuild_on_drift(&new_data, &mut rng);
        if had_negative {
            assert!(discarded > 0);
        }
        assert_eq!(pcb.len(), 30, "tree count is restored after rebuild");
        assert!(pcb.counters().iter().all(|&c| c == 0), "counters reset");
    }

    #[test]
    fn rebuild_adapts_to_new_regime() {
        let mut rng = StdRng::seed_from_u64(4);
        let old = blob(&mut rng, 300, 0.0);
        let mut pcb = PcbIForest::fit(&old, 40, 128, 0.5, &mut rng);
        // Force every tree to be judged useless so the rebuild regrows the
        // whole ensemble on the drifted regime (drift-adaptation worst case).
        pcb.set_counters(vec![-1; 40]);
        let new = blob(&mut rng, 300, 6.0);
        let score_before = pcb.score(&[6.0, 6.0]);
        let discarded = pcb.rebuild_on_drift(&new, &mut rng);
        assert_eq!(discarded, 40);
        let score_after = pcb.score(&[6.0, 6.0]);
        assert!(
            score_after < score_before,
            "after rebuild the new regime must look more normal: {score_before} -> {score_after}"
        );
    }

    #[test]
    fn unanimous_agreement_keeps_all_trees() {
        // When every tree votes with the ensemble, all counters are positive
        // and a drift rebuild discards nothing — the PCB rule judges trees
        // only *relative to the ensemble*, not against ground truth.
        let mut rng = StdRng::seed_from_u64(6);
        let data = blob(&mut rng, 200, 0.0);
        let mut pcb = PcbIForest::fit(&data, 10, 64, 0.5, &mut rng);
        pcb.set_counters(vec![5; 10]);
        let discarded = pcb.rebuild_on_drift(&data, &mut rng);
        assert_eq!(discarded, 0);
    }

    #[test]
    fn outlier_still_detected_after_rebuild() {
        let mut rng = StdRng::seed_from_u64(5);
        let data = blob(&mut rng, 300, 0.0);
        let mut pcb = PcbIForest::fit(&data, 40, 128, 0.5, &mut rng);
        for p in &data {
            pcb.score_and_update(p);
        }
        pcb.rebuild_on_drift(&data, &mut rng);
        assert!(pcb.score(&[20.0, 20.0]) > pcb.score(&[0.0, 0.0]));
    }
}
