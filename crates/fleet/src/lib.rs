//! # sad-fleet
//!
//! Multi-stream serving: a sharded [`DetectorFleet`] owning N independent
//! `sad_core::Detector` instances — one per monitored entity (SMD server,
//! user session, …) — partitioned deterministically across worker shards
//! and fed through per-stream input queues.
//!
//! ## Cross-stream batched stepping
//!
//! The headline optimisation: within a shard, streams whose models share
//! the same NN architecture (AE/USAD/N-BEATS with identical layer
//! dimensions — `sad_models::batch_arch_key`) form an *arch group*.
//! Inside a group, streams whose models are **bitwise-identical in every
//! parameter `predict` reads** (`sad_models::infer_state_equal`) form a
//! *cohort*; each cohort's per-step feature windows are packed into one
//! row-major matrix and pushed through a single `Mlp::forward_batch` per
//! sub-network via a shared inference workspace
//! (`sad_models::InferBatch`), amortizing inference the way the training
//! workspace amortizes fine-tuning. `forward_batch` computes every output
//! row independently and identically to `Mlp::infer`, so the batched path
//! is bitwise identical to N scalar `Detector::step` calls — the
//! `fleet_parity` suite proves it in the same style as `tree_parity.rs`.
//!
//! Cohorts are maintained exactly: parameters are only compared on
//! *training events* (a member joins at its warm-up fit; a member is
//! re-cohorted after any fine-tune in its group), never per step. Streams
//! whose models never materialize a batchable network (PCB-iForest,
//! ARIMA, kNN, …) — and every stream when `FleetConfig::batching` is off
//! — run the plain scalar `Detector::step` path.
//!
//! ## Sharding
//!
//! Stream `i` lives on shard `i % shards` (deterministic, so parity holds
//! at any shard count). Shards own disjoint state; with
//! `FleetConfig::parallel` a drain round runs one scoped thread per shard
//! (the PR 1 scoped-thread pattern). Outputs are always scattered back
//! into stream-id order, so results are byte-identical across shard
//! counts and parallelism settings.
//!
//! ## Telemetry
//!
//! Each shard owns a `sad_obs` metric registry (shard-local — no atomics,
//! matching the disjoint-state model): serving counters, a queue-depth
//! high-water gauge, and batch-width / round-latency histograms. Every
//! recording call in the drain loop is zero-alloc (the steady-state
//! allocation guard runs with telemetry on), and nothing observed feeds
//! back into detection. [`DetectorFleet::stats`] is a snapshot of those
//! counters; [`DetectorFleet::export_metrics`] merges the shard
//! registries with the per-detector lifecycle aggregate for the
//! Prometheus/JSON sinks. `FleetConfig::telemetry` gates only the clock
//! reads and the queue sweep (the measured overhead knob).

use sad_core::{Detector, ModelOutput, StepOutput};
use sad_models::{batch_arch_key, infer_state_equal, ArchKey, InferBatch, InferBatchF32};
use sad_obs::{CounterId, GaugeId, Histogram, HistogramId, Registry};

/// What to do with an incoming stream vector when its bounded per-stream
/// queue is full ([`DetectorFleet::offer`]). Every policy is accounted in
/// the shard metric registries (`sad_fleet_bp_*_total`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackpressurePolicy {
    /// Refuse the vector and report [`OfferOutcome::WouldBlock`]: the
    /// caller is expected to drain a round and retry — lossless, the
    /// producer stalls instead. The default.
    #[default]
    Block,
    /// Discard the incoming vector (the queue keeps its older backlog).
    DropNewest,
    /// Evict the oldest queued vector to make room for the incoming one.
    DropOldest,
}

/// Result of [`DetectorFleet::offer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OfferOutcome {
    /// The vector was enqueued.
    Enqueued,
    /// Queue full under [`BackpressurePolicy::Block`]: nothing was
    /// enqueued; drain a round and retry.
    WouldBlock,
    /// Queue full under [`BackpressurePolicy::DropNewest`]: the incoming
    /// vector was discarded.
    DroppedNewest,
    /// Queue full under [`BackpressurePolicy::DropOldest`]: the oldest
    /// queued vector was evicted and the incoming one enqueued.
    DroppedOldest,
}

/// Static configuration of a [`DetectorFleet`].
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of shards (stream `i` → shard `i % shards`).
    pub shards: usize,
    /// Enables cross-stream batched NN stepping (off = every stream runs
    /// the scalar `Detector::step` path).
    pub batching: bool,
    /// Drains shards on one scoped thread each. Off by default: the
    /// batching win is orthogonal to parallelism and benches honestly on
    /// a single core.
    pub parallel: bool,
    /// Per-stream input queue capacity (stream vectors).
    pub queue_capacity: usize,
    /// Serves cohort forward passes through f32 weight snapshots
    /// (`sad_models::InferBatchF32`) instead of the live f64 parameters.
    /// Roughly doubles effective memory bandwidth in the memory-bound
    /// serving GEMMs; outputs agree with the f64 path to f32 relative
    /// accuracy rather than bitwise. Training, fine-tuning and the
    /// detector's score/threshold state stay f64 — snapshots are re-synced
    /// on the same dirty-on-training-event hook that rebuilds cohorts.
    /// Requires `batching`; off by default (the parity-proof default).
    pub f32_infer: bool,
    /// Enables the timed/shape telemetry: per-round latency histograms,
    /// queue-depth high-water marks, and batch-width histograms. The
    /// serving counters behind [`DetectorFleet::stats`] are maintained
    /// regardless (they cost a handful of zero-alloc integer adds); this
    /// flag only gates the clock reads and the per-slot queue sweep, which
    /// is what the `obs_overhead` bench compares. On by default.
    pub telemetry: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            shards: 1,
            batching: true,
            parallel: false,
            queue_capacity: 64,
            f32_infer: false,
            telemetry: true,
        }
    }
}

/// Cumulative serving counters — a snapshot derived from the per-shard
/// metric registries by [`DetectorFleet::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Detector steps completed (warm-up steps included).
    pub steps: usize,
    /// Steps served through the scalar per-stream path.
    pub scalar_steps: usize,
    /// Steps served through a shared batched forward pass.
    pub batched_rows: usize,
    /// Batched forward passes executed (`batched_rows / batches` = mean
    /// rows amortized per pass).
    pub batches: usize,
    /// Subset of `batched_rows` served through an f32 snapshot
    /// (`FleetConfig::f32_infer`).
    pub f32_rows: usize,
    /// Cohort rebuilds triggered by training events.
    pub cohort_rebuilds: usize,
    /// f32 weight-snapshot re-syncs performed by those rebuilds (0 unless
    /// `FleetConfig::f32_infer`).
    pub f32_resyncs: usize,
    /// `offer` calls refused on a full queue under
    /// [`BackpressurePolicy::Block`].
    pub bp_blocked: usize,
    /// Incoming vectors discarded under [`BackpressurePolicy::DropNewest`].
    pub bp_dropped_newest: usize,
    /// Queued vectors evicted under [`BackpressurePolicy::DropOldest`].
    pub bp_dropped_oldest: usize,
    /// Streams admitted dynamically through [`DetectorFleet::admit`].
    pub admitted: usize,
    /// Streams retired through [`DetectorFleet::retire`].
    pub retired: usize,
}

/// A shard's metric registry plus the preregistered handles its hot loop
/// records through. Built once per shard; every recording call in
/// [`Shard::round`] is zero-alloc by the `sad_obs` registry contract (the
/// shard's steady-state allocation guard runs with these live).
struct ShardMetrics {
    reg: Registry,
    steps: CounterId,
    scalar_steps: CounterId,
    batched_rows: CounterId,
    batches: CounterId,
    f32_rows: CounterId,
    cohort_rebuilds: CounterId,
    f32_resyncs: CounterId,
    bp_blocked: CounterId,
    bp_dropped_newest: CounterId,
    bp_dropped_oldest: CounterId,
    admitted: CounterId,
    retired: CounterId,
    queue_high_water: GaugeId,
    batch_rows: HistogramId,
    round_seconds: HistogramId,
}

impl ShardMetrics {
    fn new() -> Self {
        let mut reg = Registry::new();
        let steps =
            reg.register_counter("sad_fleet_steps_total", "Detector steps served (all paths).");
        let scalar_steps = reg.register_counter(
            "sad_fleet_scalar_steps_total",
            "Steps served through the scalar per-stream path.",
        );
        let batched_rows = reg.register_counter(
            "sad_fleet_batched_rows_total",
            "Steps served through a shared batched forward pass.",
        );
        let batches = reg
            .register_counter("sad_fleet_batches_total", "Shared batched forward passes executed.");
        let f32_rows = reg.register_counter(
            "sad_fleet_f32_rows_total",
            "Batched rows served through an f32 weight snapshot.",
        );
        let cohort_rebuilds = reg.register_counter(
            "sad_fleet_cohort_rebuilds_total",
            "Cohort rebuilds triggered by training events.",
        );
        let f32_resyncs = reg.register_counter(
            "sad_fleet_f32_resyncs_total",
            "f32 weight-snapshot re-syncs performed by cohort rebuilds.",
        );
        let bp_blocked = reg.register_counter(
            "sad_fleet_bp_blocked_total",
            "offer() refusals on a full queue under the block policy.",
        );
        let bp_dropped_newest = reg.register_counter(
            "sad_fleet_bp_dropped_newest_total",
            "Incoming vectors discarded under the drop-newest policy.",
        );
        let bp_dropped_oldest = reg.register_counter(
            "sad_fleet_bp_dropped_oldest_total",
            "Queued vectors evicted under the drop-oldest policy.",
        );
        let admitted = reg.register_counter(
            "sad_fleet_admitted_total",
            "Streams admitted dynamically after fleet construction.",
        );
        let retired = reg.register_counter(
            "sad_fleet_retired_total",
            "Streams retired from the fleet.",
        );
        let queue_high_water = reg.register_gauge(
            "sad_fleet_queue_high_water",
            "Deepest per-stream input queue observed at a round start.",
        );
        let batch_rows = reg.register_histogram(
            "sad_fleet_batch_rows",
            "Rows amortized per shared forward pass.",
            Histogram::log2(1.0, 4096.0),
        );
        let round_seconds = reg.register_histogram(
            "sad_fleet_round_seconds",
            "Shard round latency (rounds that served at least one step).",
            Histogram::log2(1e-6, 16.0),
        );
        Self {
            reg,
            steps,
            scalar_steps,
            batched_rows,
            batches,
            f32_rows,
            cohort_rebuilds,
            f32_resyncs,
            bp_blocked,
            bp_dropped_newest,
            bp_dropped_oldest,
            admitted,
            retired,
            queue_high_water,
            batch_rows,
            round_seconds,
        }
    }
}

/// Fixed-capacity ring queue of `n`-channel stream vectors. Steady-state
/// push/pop never allocates.
struct RingQueue {
    buf: Vec<f64>,
    n: usize,
    cap: usize,
    head: usize,
    len: usize,
}

impl RingQueue {
    fn new(n: usize, cap: usize) -> Self {
        assert!(n > 0 && cap > 0, "queue dimensions must be positive");
        Self { buf: vec![0.0; n * cap], n, cap, head: 0, len: 0 }
    }

    /// Enqueues one stream vector; `false` when full (caller backpressure).
    fn push(&mut self, s: &[f64]) -> bool {
        assert_eq!(s.len(), self.n, "stream vector has wrong channel count");
        if self.len == self.cap {
            return false;
        }
        let slot = (self.head + self.len) % self.cap;
        self.buf[slot * self.n..(slot + 1) * self.n].copy_from_slice(s);
        self.len += 1;
        true
    }

    fn front(&self) -> Option<&[f64]> {
        (self.len > 0).then(|| &self.buf[self.head * self.n..(self.head + 1) * self.n])
    }

    fn pop_front(&mut self) {
        debug_assert!(self.len > 0, "pop from empty queue");
        self.head = (self.head + 1) % self.cap;
        self.len -= 1;
    }

    fn len(&self) -> usize {
        self.len
    }
}

/// One stream's state on its shard.
struct StreamSlot {
    /// Global stream id.
    id: usize,
    det: Detector,
    queue: RingQueue,
    /// Index into the shard's arch groups once the stream joined one.
    group: Option<usize>,
    /// Whether batching eligibility has been decided (checked once, at
    /// the warm-up transition — models materialize their networks there).
    eligibility_checked: bool,
}

/// One arch group: streams sharing a batchable architecture, partitioned
/// into weight-identical cohorts.
struct ArchGroup {
    arch: ArchKey,
    batch: InferBatch,
    /// f32 weight snapshots, one per cohort (`FleetConfig::f32_infer`).
    /// Unlike `batch` — which reads the live leader parameters and so can
    /// be shared by the whole group — a snapshot *owns* converted weights,
    /// so each cohort needs its own. Maintained by `rebuild_cohorts`:
    /// existing slots are re-synced in place (allocation-free), new
    /// cohorts get fresh snapshots, and surplus slots are dropped. Empty
    /// when f32 serving is off.
    f32_batches: Vec<InferBatchF32>,
    /// Whether this group serves through `f32_batches`.
    f32_infer: bool,
    /// Member slot indices (shard-local).
    members: Vec<usize>,
    /// Cohort id per member (parallel to `members`).
    cohort_of: Vec<usize>,
    n_cohorts: usize,
    /// Set on any member's training event; cohorts are rebuilt at the
    /// start of the next round.
    dirty: bool,
    /// Round scratch: positions (into `members`) with input this round.
    active: Vec<usize>,
    /// Round scratch: the subset of `active` in the cohort being served.
    cohort_rows: Vec<usize>,
}

/// One worker shard: a disjoint subset of streams plus their batching
/// state. All per-round buffers are reused; the steady-state drain loop
/// performs zero heap allocations (`fleet/tests/zero_alloc.rs`).
///
/// A slot is `None` when its stream has been retired
/// ([`DetectorFleet::retire`]); vacant slots are reused by later
/// admissions so slot indices stay stable for the group membership lists.
struct Shard {
    slots: Vec<Option<StreamSlot>>,
    /// Per-slot model-output buffer (sibling of `slots` so the batched
    /// path can borrow a slot's detector and its output buffer at once).
    out_bufs: Vec<ModelOutput>,
    /// Per-slot output of the current round.
    outs: Vec<Option<StepOutput>>,
    groups: Vec<ArchGroup>,
    batching: bool,
    f32_infer: bool,
    /// Gates the timed/shape telemetry (see [`FleetConfig::telemetry`]).
    telemetry: bool,
    metrics: ShardMetrics,
}

impl Shard {
    fn new(batching: bool, f32_infer: bool, telemetry: bool) -> Self {
        Self {
            slots: Vec::new(),
            out_bufs: Vec::new(),
            outs: Vec::new(),
            groups: Vec::new(),
            batching,
            f32_infer,
            telemetry,
            metrics: ShardMetrics::new(),
        }
    }

    /// Installs a stream into a vacant slot when one exists, else appends
    /// a new slot. Returns the slot index.
    fn push_stream(&mut self, id: usize, det: Detector, queue_capacity: usize) -> usize {
        let channels = det.config().channels;
        let slot = StreamSlot {
            id,
            det,
            queue: RingQueue::new(channels, queue_capacity),
            group: None,
            eligibility_checked: false,
        };
        if let Some(vacant) = self.slots.iter().position(Option::is_none) {
            self.slots[vacant] = Some(slot);
            // The vacated output buffer is kept — the first batched emit
            // right-sizes it for the new stream's model.
            self.outs[vacant] = None;
            return vacant;
        }
        self.slots.push(Some(slot));
        // Placeholder variant; the first batched emit replaces it with a
        // right-sized buffer that is then reused forever.
        self.out_bufs.push(ModelOutput::Score(0.0));
        self.outs.push(None);
        self.slots.len() - 1
    }

    /// Live (non-vacant) slot count.
    fn live(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Removes `slot` from the shard: drops the detector and any queued
    /// backlog, and detaches it from its arch group (the group rebuilds
    /// its cohorts at the next round).
    fn vacate(&mut self, slot: usize) {
        let stream = self.slots[slot].take().expect("retire of a live stream");
        if let Some(gi) = stream.group {
            let group = &mut self.groups[gi];
            let pos = group
                .members
                .iter()
                .position(|&m| m == slot)
                .expect("grouped slot is a member of its group");
            group.members.remove(pos);
            group.cohort_of.remove(pos);
            group.dirty = true;
        }
        self.outs[slot] = None;
        self.metrics.reg.inc(self.metrics.retired, 1);
    }

    /// Joins `slot` to the arch group matching its model, creating the
    /// group on first sight of the architecture. Group batch capacity is
    /// the shard's stream count — the widest batch a round can need.
    fn join_group(&mut self, slot: usize) {
        let det = &self.slots[slot].as_ref().expect("joining slot is live").det;
        let Some(arch) = batch_arch_key(det.model()) else { return };
        let gi = match self.groups.iter().position(|g| g.arch == arch) {
            Some(gi) => gi,
            None => {
                let capacity = self.slots.len();
                let Some(batch) = InferBatch::new(det.model(), capacity) else { return };
                self.groups.push(ArchGroup {
                    arch,
                    batch,
                    f32_batches: Vec::new(),
                    f32_infer: self.f32_infer,
                    members: Vec::new(),
                    cohort_of: Vec::new(),
                    n_cohorts: 0,
                    dirty: false,
                    active: Vec::new(),
                    cohort_rows: Vec::new(),
                });
                self.groups.len() - 1
            }
        };
        let group = &mut self.groups[gi];
        // Dynamic admission can grow a shard past the capacity the group's
        // shared workspace was sized for at creation; grow it here (a
        // training-event path, never per step). The f32 snapshots are
        // capacity-bound too — drop them and let the dirty rebuild below
        // recreate right-sized ones.
        if group.members.len() + 1 > group.batch.capacity() {
            let capacity = self.slots.len().max(group.members.len() + 1);
            group.batch =
                InferBatch::new(det.model(), capacity).expect("grouped arch stays batchable");
            group.f32_batches.clear();
        }
        group.members.push(slot);
        group.cohort_of.push(0);
        group.dirty = true;
        self.slots[slot].as_mut().expect("joining slot is live").group = Some(gi);
    }

    /// Re-partitions a group into weight-identical cohorts by exact
    /// parameter comparison against each cohort's first member. O(k·c)
    /// comparisons for k members and c cohorts — and it only runs on
    /// training events, never in the per-step hot path.
    fn rebuild_cohorts(group: &mut ArchGroup, slots: &[Option<StreamSlot>]) -> usize {
        let live = |slot: usize| slots[slot].as_ref().expect("group members are live");
        group.n_cohorts = 0;
        for i in 0..group.members.len() {
            let model = live(group.members[i]).det.model();
            let mut assigned = None;
            'cohorts: for c in 0..group.n_cohorts {
                // The cohort's representative: its first member.
                for j in 0..i {
                    if group.cohort_of[j] == c {
                        if infer_state_equal(model, live(group.members[j]).det.model()) {
                            assigned = Some(c);
                        }
                        continue 'cohorts;
                    }
                }
            }
            group.cohort_of[i] = assigned.unwrap_or_else(|| {
                group.n_cohorts += 1;
                group.n_cohorts - 1
            });
        }
        // f32 serving: re-sync one weight snapshot per cohort. This is the
        // training-event hook — it never runs in the per-step hot path, and
        // re-syncing an existing slot is allocation-free, so steady-state
        // rounds stay zero-alloc. Cohort ids shuffle across rebuilds;
        // slot `c` is simply re-synced from the *new* cohort `c`'s leader
        // (same architecture by the group invariant).
        let mut resyncs = 0;
        if group.f32_infer {
            let capacity = group.batch.capacity();
            for c in 0..group.n_cohorts {
                let leader_pos = (0..group.members.len())
                    .find(|&i| group.cohort_of[i] == c)
                    .expect("every cohort has a member");
                let leader = live(group.members[leader_pos]).det.model();
                if let Some(existing) = group.f32_batches.get_mut(c) {
                    existing.refresh(leader);
                } else {
                    group.f32_batches.push(
                        InferBatchF32::new(leader, capacity).expect("grouped models are batchable"),
                    );
                }
                resyncs += 1;
            }
            group.f32_batches.truncate(group.n_cohorts);
        }
        group.dirty = false;
        resyncs
    }

    /// Serves one round: each stream with queued input advances exactly
    /// one step. Results land in `self.outs` (slot order).
    fn round(&mut self) {
        // Timed/shape telemetry: clock reads and the queue-depth sweep are
        // the only per-round costs the flag adds — every recording call
        // below them is zero-alloc indexed arithmetic.
        let started = self.telemetry.then(std::time::Instant::now);
        if self.telemetry {
            for slot in self.slots.iter().flatten() {
                self.metrics
                    .reg
                    .gauge_max(self.metrics.queue_high_water, slot.queue.len() as f64);
            }
        }
        let steps_before = self.metrics.reg.counter(self.metrics.steps);

        for out in &mut self.outs {
            *out = None;
        }

        // ---- Scalar path: ungrouped streams (warm-up, non-NN models,
        // batching disabled).
        for i in 0..self.slots.len() {
            {
                let Some(slot) = self.slots[i].as_mut() else { continue };
                if slot.group.is_some() {
                    continue;
                }
                let Some(s) = slot.queue.front() else { continue };
                let out = slot.det.step(s);
                slot.queue.pop_front();
                self.outs[i] = out;
            }
            self.metrics.reg.inc(self.metrics.steps, 1);
            self.metrics.reg.inc(self.metrics.scalar_steps, 1);
            // Batching eligibility is decided once the model has fitted
            // (networks materialize at the warm-up fit).
            let slot = self.slots[i].as_ref().expect("slot was live above");
            if self.batching && !slot.eligibility_checked && slot.det.is_warmed_up() {
                self.slots[i].as_mut().expect("slot was live above").eligibility_checked = true;
                self.join_group(i);
            }
        }

        // ---- Batched path, one arch group at a time.
        let Shard { slots, out_bufs, outs, groups, telemetry, metrics, .. } = self;
        for group in groups.iter_mut() {
            if group.dirty {
                let resyncs = Self::rebuild_cohorts(group, slots);
                metrics.reg.inc(metrics.cohort_rebuilds, 1);
                metrics.reg.inc(metrics.f32_resyncs, resyncs as u64);
            }
            // begin_step every member with input; all are post-warm-up, so
            // every begin yields a feature vector.
            group.active.clear();
            for (pos, &si) in group.members.iter().enumerate() {
                let slot = slots[si].as_mut().expect("group members are live");
                let Some(s) = slot.queue.front() else { continue };
                let ready = slot.det.begin_step(s);
                slot.queue.pop_front();
                debug_assert!(ready, "grouped streams are past warm-up");
                if ready {
                    group.active.push(pos);
                }
            }
            // One shared forward pass per cohort with active members; the
            // cohort invariant makes any member's model a valid leader.
            for c in 0..group.n_cohorts {
                group.cohort_rows.clear();
                group
                    .cohort_rows
                    .extend(group.active.iter().copied().filter(|&pos| group.cohort_of[pos] == c));
                if group.cohort_rows.is_empty() {
                    continue;
                }
                let rows = group.cohort_rows.len();
                let leader_slot = group.members[group.cohort_rows[0]];
                // Scatter every row's output *before* any finish_step: a
                // fine-tune inside finish must not be able to perturb a
                // sibling's emit (it can't — fine-tunes never refit the
                // scaler — but the ordering makes parity unconditional).
                let live = |si: usize| slots[si].as_ref().expect("group members are live");
                if group.f32_infer {
                    // f32 snapshot path: the cohort's own snapshot holds
                    // converted weights and scaler, so no leader is read.
                    let batch = &mut group.f32_batches[c];
                    batch.begin(rows);
                    for (row, &pos) in group.cohort_rows.iter().enumerate() {
                        let si = group.members[pos];
                        batch.pack(row, live(si).det.feature());
                    }
                    batch.forward();
                    for (row, &pos) in group.cohort_rows.iter().enumerate() {
                        let si = group.members[pos];
                        batch.emit_into(row, &mut out_bufs[si]);
                    }
                    metrics.reg.inc(metrics.f32_rows, rows as u64);
                } else {
                    group.batch.begin(rows);
                    for (row, &pos) in group.cohort_rows.iter().enumerate() {
                        let si = group.members[pos];
                        group.batch.pack(
                            live(leader_slot).det.model(),
                            row,
                            live(si).det.feature(),
                        );
                    }
                    group.batch.forward(live(leader_slot).det.model());
                    for (row, &pos) in group.cohort_rows.iter().enumerate() {
                        let si = group.members[pos];
                        group.batch.emit_into(
                            live(leader_slot).det.model(),
                            row,
                            &mut out_bufs[si],
                        );
                    }
                }
                for &pos in group.cohort_rows.iter() {
                    let si = group.members[pos];
                    let slot = slots[si].as_mut().expect("group members are live");
                    let out = slot.det.finish_step(&out_bufs[si]);
                    if out.fine_tuned {
                        group.dirty = true;
                    }
                    outs[si] = Some(out);
                    metrics.reg.inc(metrics.steps, 1);
                    metrics.reg.inc(metrics.batched_rows, 1);
                }
                metrics.reg.inc(metrics.batches, 1);
                if *telemetry {
                    metrics.reg.record(metrics.batch_rows, rows as f64);
                }
            }
        }

        // Round latency covers rounds that actually served a step — an
        // idle drain would otherwise drag the percentiles toward zero.
        if let Some(started) = started {
            if self.metrics.reg.counter(self.metrics.steps) > steps_before {
                self.metrics
                    .reg
                    .record(self.metrics.round_seconds, started.elapsed().as_secs_f64());
            }
        }
    }

    /// Streams on this shard with at least one queued vector.
    fn pending(&self) -> usize {
        self.slots.iter().flatten().filter(|s| s.queue.len() > 0).count()
    }
}

/// A sharded multi-stream detector fleet. See the crate docs for the
/// batching and sharding model.
///
/// Streams can be fixed at construction ([`DetectorFleet::new`]) or come
/// and go dynamically ([`DetectorFleet::admit`] / [`DetectorFleet::retire`]
/// on a fleet started with [`DetectorFleet::open`]): every stream gets a
/// fresh monotonically-increasing id, and retired ids stay valid history
/// (outputs are indexed by id forever) while their shard slots are reused
/// by later admissions.
pub struct DetectorFleet {
    shards: Vec<Shard>,
    config: FleetConfig,
    /// Stream id → (shard, slot); `None` once the stream is retired.
    /// Fleets built by [`DetectorFleet::new`] lay ids out round-robin
    /// (`id % shards`, `id / shards`) — this table generalizes that
    /// arithmetic to dynamic admission.
    addr: Vec<Option<(usize, usize)>>,
}

impl DetectorFleet {
    /// Builds a fleet over `detectors` (stream `i` = `detectors[i]`,
    /// assigned to shard `i % config.shards`).
    ///
    /// # Panics
    /// Panics on an empty detector list or a zero shard count /
    /// queue capacity.
    pub fn new(detectors: Vec<Detector>, config: FleetConfig) -> Self {
        assert!(!detectors.is_empty(), "a fleet needs at least one stream");
        let n_shards = config.shards.min(detectors.len());
        let mut fleet = Self::open(FleetConfig { shards: n_shards, ..config });
        for (id, det) in detectors.into_iter().enumerate() {
            let slot = fleet.shards[id % n_shards].push_stream(id, det, fleet.config.queue_capacity);
            fleet.addr.push(Some((id % n_shards, slot)));
        }
        fleet
    }

    /// Opens an *empty* fleet with exactly `config.shards` shards, ready
    /// for dynamic admission — the serving-engine entry point, where
    /// entities appear on first contact rather than at construction.
    ///
    /// # Panics
    /// Panics on a zero shard count / queue capacity.
    pub fn open(config: FleetConfig) -> Self {
        assert!(config.shards > 0, "shard count must be positive");
        assert!(config.queue_capacity > 0, "queue capacity must be positive");
        let shards: Vec<Shard> = (0..config.shards)
            .map(|_| {
                Shard::new(config.batching, config.batching && config.f32_infer, config.telemetry)
            })
            .collect();
        Self { shards, config, addr: Vec::new() }
    }

    /// Admits a new stream: the detector lands on the shard with the
    /// fewest live streams (lowest index on ties — deterministic), reusing
    /// a retired slot when one exists. Returns the new stream id.
    pub fn admit(&mut self, det: Detector) -> usize {
        let shard = (0..self.shards.len())
            .min_by_key(|&i| (self.shards[i].live(), i))
            .expect("a fleet has at least one shard");
        let slot = self.shards[shard].push_stream(self.addr.len(), det, self.config.queue_capacity);
        let m = &mut self.shards[shard].metrics;
        m.reg.inc(m.admitted, 1);
        self.addr.push(Some((shard, slot)));
        self.addr.len() - 1
    }

    /// Retires `stream`: its detector (and any queued backlog) is dropped
    /// and the slot becomes reusable by a later [`Self::admit`]. The id
    /// stays valid history — [`Self::is_live`] turns `false`, and
    /// re-admitting the same entity later builds a fresh detector.
    ///
    /// # Panics
    /// Panics if `stream` is out of range or already retired.
    pub fn retire(&mut self, stream: usize) {
        assert!(stream < self.addr.len(), "stream {stream} out of 0..{}", self.addr.len());
        let (shard, slot) = self.addr[stream].take().expect("retire of a live stream");
        self.shards[shard].vacate(slot);
    }

    /// Whether `stream` is currently live (admitted and not retired).
    pub fn is_live(&self, stream: usize) -> bool {
        self.addr.get(stream).is_some_and(Option::is_some)
    }

    /// Number of live streams.
    pub fn live(&self) -> usize {
        self.addr.iter().filter(|a| a.is_some()).count()
    }

    /// Number of stream ids ever issued (live + retired).
    pub fn len(&self) -> usize {
        self.addr.len()
    }

    /// Whether the fleet has never had a stream.
    pub fn is_empty(&self) -> bool {
        self.addr.is_empty()
    }

    /// Queued (not yet served) vectors for `stream`.
    ///
    /// # Panics
    /// Panics if `stream` is out of range or retired.
    pub fn queued(&self, stream: usize) -> usize {
        let (shard, slot) = self.live_addr(stream);
        self.shards[shard].slots[slot].as_ref().expect("addressed slot is live").queue.len()
    }

    fn live_addr(&self, stream: usize) -> (usize, usize) {
        assert!(stream < self.addr.len(), "stream {stream} out of 0..{}", self.addr.len());
        self.addr[stream].expect("stream has been retired")
    }

    /// Enqueues one stream vector for `stream`; `false` when that
    /// stream's queue is full (drain first).
    ///
    /// # Panics
    /// Panics if `stream` is out of range or retired, or `s` has the
    /// wrong channel count.
    pub fn enqueue(&mut self, stream: usize, s: &[f64]) -> bool {
        let (shard, slot) = self.live_addr(stream);
        self.shards[shard].slots[slot].as_mut().expect("addressed slot is live").queue.push(s)
    }

    /// Enqueues one stream vector under a back-pressure `policy`: like
    /// [`Self::enqueue`], but a full queue is resolved per policy (refuse /
    /// drop the incoming vector / evict the oldest queued one) and the
    /// outcome is counted in the owning shard's metric registry
    /// (`sad_fleet_bp_*_total`). Zero-alloc — safe on the ingest hot path.
    ///
    /// # Panics
    /// Panics if `stream` is out of range or retired, or `s` has the
    /// wrong channel count.
    pub fn offer(&mut self, stream: usize, s: &[f64], policy: BackpressurePolicy) -> OfferOutcome {
        let (shard, slot) = self.live_addr(stream);
        let sh = &mut self.shards[shard];
        let queue = &mut sh.slots[slot].as_mut().expect("addressed slot is live").queue;
        if queue.push(s) {
            return OfferOutcome::Enqueued;
        }
        let m = &mut sh.metrics;
        match policy {
            BackpressurePolicy::Block => {
                m.reg.inc(m.bp_blocked, 1);
                OfferOutcome::WouldBlock
            }
            BackpressurePolicy::DropNewest => {
                m.reg.inc(m.bp_dropped_newest, 1);
                OfferOutcome::DroppedNewest
            }
            BackpressurePolicy::DropOldest => {
                queue.pop_front();
                let accepted = queue.push(s);
                debug_assert!(accepted, "eviction frees exactly one slot");
                m.reg.inc(m.bp_dropped_oldest, 1);
                OfferOutcome::DroppedOldest
            }
        }
    }

    /// Drains one round: every stream with queued input advances exactly
    /// one step. `out` is resized to one entry per stream (stream-id
    /// order); `out[i]` is `Some` iff stream `i` consumed a vector *and*
    /// is past warm-up — exactly `Detector::step`'s contract. Returns the
    /// number of vectors consumed.
    pub fn drain_round(&mut self, out: &mut Vec<Option<StepOutput>>) -> usize {
        out.resize(self.addr.len(), None);
        for o in out.iter_mut() {
            *o = None;
        }
        let consumed: usize = self.shards.iter().map(Shard::pending).sum();

        if self.config.parallel && self.shards.len() > 1 {
            // One scoped worker per shard; shards own disjoint state.
            std::thread::scope(|scope| {
                for shard in &mut self.shards {
                    scope.spawn(|| shard.round());
                }
            });
        } else {
            for shard in &mut self.shards {
                shard.round();
            }
        }

        // Scatter shard-local outputs back into stream-id order.
        for shard in &self.shards {
            for (slot, o) in shard.slots.iter().zip(&shard.outs) {
                if let Some(slot) = slot {
                    out[slot.id] = *o;
                }
            }
        }
        consumed
    }

    /// Convenience driver: streams `series[i]` into stream `i` and
    /// returns each stream's post-warm-up outputs — per stream, the exact
    /// trace of a standalone `Detector::run` over the same series.
    pub fn run(&mut self, series: &[Vec<Vec<f64>>]) -> Vec<Vec<StepOutput>> {
        assert_eq!(series.len(), self.addr.len(), "one series per stream");
        let n_streams = self.addr.len();
        let mut traces: Vec<Vec<StepOutput>> = (0..n_streams).map(|_| Vec::new()).collect();
        let mut round_out: Vec<Option<StepOutput>> = Vec::new();
        let longest = series.iter().map(Vec::len).max().unwrap_or(0);
        let mut cursor = vec![0usize; n_streams];
        for _ in 0..longest {
            for (i, s) in series.iter().enumerate() {
                if cursor[i] < s.len() {
                    let accepted = self.enqueue(i, &s[cursor[i]]);
                    assert!(accepted, "queues cannot fill at one vector per round");
                    cursor[i] += 1;
                }
            }
            self.drain_round(&mut round_out);
            for (trace, o) in traces.iter_mut().zip(&round_out) {
                if let Some(o) = o {
                    trace.push(*o);
                }
            }
        }
        traces
    }

    /// The detector serving `stream`.
    ///
    /// # Panics
    /// Panics if `stream` is out of range or retired.
    pub fn detector(&self, stream: usize) -> &Detector {
        let (shard, slot) = self.live_addr(stream);
        &self.shards[shard].slots[slot].as_ref().expect("addressed slot is live").det
    }

    /// Cumulative serving counters — a snapshot of the per-shard metric
    /// registries, summed over shards.
    pub fn stats(&self) -> FleetStats {
        let mut total = FleetStats::default();
        for shard in &self.shards {
            let m = &shard.metrics;
            total.steps += m.reg.counter(m.steps) as usize;
            total.scalar_steps += m.reg.counter(m.scalar_steps) as usize;
            total.batched_rows += m.reg.counter(m.batched_rows) as usize;
            total.batches += m.reg.counter(m.batches) as usize;
            total.f32_rows += m.reg.counter(m.f32_rows) as usize;
            total.cohort_rebuilds += m.reg.counter(m.cohort_rebuilds) as usize;
            total.f32_resyncs += m.reg.counter(m.f32_resyncs) as usize;
            total.bp_blocked += m.reg.counter(m.bp_blocked) as usize;
            total.bp_dropped_newest += m.reg.counter(m.bp_dropped_newest) as usize;
            total.bp_dropped_oldest += m.reg.counter(m.bp_dropped_oldest) as usize;
            total.admitted += m.reg.counter(m.admitted) as usize;
            total.retired += m.reg.counter(m.retired) as usize;
        }
        total
    }

    /// Exports the fleet's full metric registry: the per-shard serving
    /// registries folded together (counters add, the queue high-water
    /// gauge takes the max, latency/batch-width histograms merge
    /// bucket-wise), the aggregated per-detector lifecycle registries, and
    /// two fleet-shape gauges (`sad_fleet_streams`, `sad_fleet_shards`).
    /// Allocates — export path only, never called from `drain_round`.
    pub fn export_metrics(&self) -> Registry {
        let mut reg = self.shards[0].metrics.reg.clone();
        for shard in &self.shards[1..] {
            reg.merge_from(&shard.metrics.reg);
        }
        let streams = reg.register_gauge("sad_fleet_streams", "Live streams served by this fleet.");
        reg.set_gauge(streams, self.live() as f64);
        let shards = reg.register_gauge("sad_fleet_shards", "Worker shards.");
        reg.set_gauge(shards, self.shards.len() as f64);

        // Detector lifecycle aggregate: every live detector's snapshot
        // shares one schema, so they fold into a single population
        // registry. Retired detectors are gone — their serving history
        // stays in the shard counters above.
        let mut lifecycle: Option<Registry> = None;
        for shard in &self.shards {
            for slot in shard.slots.iter().flatten() {
                let snap = slot.det.export_metrics();
                match &mut lifecycle {
                    None => lifecycle = Some(snap),
                    Some(acc) => acc.merge_from(&snap),
                }
            }
        }
        if let Some(lifecycle) = lifecycle {
            reg.absorb(&lifecycle);
        }
        reg
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sad_core::{DetectorConfig, ScoreKind};
    use sad_models::{build_detector, BuildParams};

    fn series(len: usize, phase: f64) -> Vec<Vec<f64>> {
        (0..len)
            .map(|t| {
                let x = t as f64 * 0.07 + phase;
                vec![x.sin(), (x * 0.6).cos()]
            })
            .collect()
    }

    fn ae_detector(seed: u64) -> Detector {
        let config = DetectorConfig {
            window: 6,
            channels: 2,
            warmup: 60,
            initial_epochs: 2,
            fine_tune_epochs: 1,
        };
        let spec = sad_core::paper_algorithms()
            .iter()
            .copied()
            .find(|s| s.label().contains("AE") && s.label().contains("SW"))
            .expect("AE/SW combination exists");
        let params =
            BuildParams::new(config).with_capacity(20).with_score(ScoreKind::Raw).with_seed(seed);
        build_detector(spec, &params)
    }

    #[test]
    fn ring_queue_round_trips_in_order() {
        let mut q = RingQueue::new(2, 3);
        assert!(q.push(&[1.0, 2.0]));
        assert!(q.push(&[3.0, 4.0]));
        assert!(q.push(&[5.0, 6.0]));
        assert!(!q.push(&[7.0, 8.0]), "full queue rejects");
        assert_eq!(q.front().unwrap(), &[1.0, 2.0]);
        q.pop_front();
        assert!(q.push(&[7.0, 8.0]), "slot freed");
        assert_eq!(q.front().unwrap(), &[3.0, 4.0]);
        q.pop_front();
        q.pop_front();
        assert_eq!(q.front().unwrap(), &[7.0, 8.0]);
        q.pop_front();
        assert!(q.front().is_none());
    }

    #[test]
    fn fleet_runs_and_reports_batched_rows() {
        // Two identically-seeded AE streams on identical warm-up data stay
        // one cohort: their steps are served batched.
        let fleet_series = vec![series(140, 0.0), series(140, 0.0)];
        let mut fleet =
            DetectorFleet::new(vec![ae_detector(7), ae_detector(7)], FleetConfig::default());
        let traces = fleet.run(&fleet_series);
        assert_eq!(traces[0].len(), 80);
        assert_eq!(traces[1].len(), 80);
        let stats = fleet.stats();
        assert!(stats.batched_rows >= 140, "post-warm-up steps batch: {stats:?}");
        assert!(stats.batches <= stats.batched_rows / 2 + 2, "rows amortize: {stats:?}");
    }

    #[test]
    fn batching_disabled_serves_everything_scalar() {
        let fleet_series = vec![series(100, 0.0), series(100, 0.0)];
        let config = FleetConfig { batching: false, ..FleetConfig::default() };
        let mut fleet = DetectorFleet::new(vec![ae_detector(7), ae_detector(7)], config);
        let _ = fleet.run(&fleet_series);
        let stats = fleet.stats();
        assert_eq!(stats.batched_rows, 0);
        assert_eq!(stats.scalar_steps, 200);
    }

    #[test]
    fn enqueue_backpressure_reports_full_queue() {
        let config = FleetConfig { queue_capacity: 2, ..FleetConfig::default() };
        let mut fleet = DetectorFleet::new(vec![ae_detector(1)], config);
        assert!(fleet.enqueue(0, &[0.0, 0.0]));
        assert!(fleet.enqueue(0, &[0.0, 0.0]));
        assert!(!fleet.enqueue(0, &[0.0, 0.0]), "queue of 2 is full");
        let mut out = Vec::new();
        assert_eq!(fleet.drain_round(&mut out), 1, "one round serves one step per stream");
        assert!(fleet.enqueue(0, &[0.0, 0.0]), "drained slot is reusable");
    }

    #[test]
    #[should_panic(expected = "at least one stream")]
    fn empty_fleet_panics() {
        let _ = DetectorFleet::new(Vec::new(), FleetConfig::default());
    }

    #[test]
    fn offer_policies_resolve_full_queues_and_count() {
        let config = FleetConfig { queue_capacity: 2, ..FleetConfig::default() };
        let mut fleet = DetectorFleet::new(vec![ae_detector(1)], config);
        assert_eq!(fleet.offer(0, &[1.0, 0.0], BackpressurePolicy::Block), OfferOutcome::Enqueued);
        assert_eq!(fleet.offer(0, &[2.0, 0.0], BackpressurePolicy::Block), OfferOutcome::Enqueued);
        assert_eq!(fleet.queued(0), 2);
        // Full queue: each policy resolves it its own way.
        assert_eq!(
            fleet.offer(0, &[3.0, 0.0], BackpressurePolicy::Block),
            OfferOutcome::WouldBlock
        );
        assert_eq!(fleet.queued(0), 2, "block leaves the queue untouched");
        assert_eq!(
            fleet.offer(0, &[4.0, 0.0], BackpressurePolicy::DropNewest),
            OfferOutcome::DroppedNewest
        );
        assert_eq!(fleet.queued(0), 2, "drop-newest discards the incoming vector");
        assert_eq!(
            fleet.offer(0, &[5.0, 0.0], BackpressurePolicy::DropOldest),
            OfferOutcome::DroppedOldest
        );
        assert_eq!(fleet.queued(0), 2, "drop-oldest evicts to make room");
        let stats = fleet.stats();
        assert_eq!(
            (stats.bp_blocked, stats.bp_dropped_newest, stats.bp_dropped_oldest),
            (1, 1, 1),
            "per-policy counters: {stats:?}",
        );
        // After the eviction the queue holds [2.0, 5.0]: vector 1 was
        // evicted, 5.0 took its place at the back.
        let mut out = Vec::new();
        fleet.drain_round(&mut out);
        fleet.drain_round(&mut out);
        assert_eq!(fleet.queued(0), 0);
        let reg = fleet.export_metrics();
        assert_eq!(reg.counter_by_name("sad_fleet_bp_dropped_oldest_total"), Some(1));
    }

    #[test]
    fn admit_and_retire_reuse_slots_and_keep_ids_stable() {
        let config = FleetConfig { shards: 2, ..FleetConfig::default() };
        let mut fleet = DetectorFleet::open(config);
        assert!(fleet.is_empty());
        let a = fleet.admit(ae_detector(1));
        let b = fleet.admit(ae_detector(2));
        let c = fleet.admit(ae_detector(3));
        assert_eq!((a, b, c), (0, 1, 2));
        assert_eq!(fleet.live(), 3);

        // Serve a few rounds across all three streams.
        let data = series(40, 0.0);
        let mut out = Vec::new();
        for s in &data {
            for id in [a, b, c] {
                assert!(fleet.enqueue(id, s));
            }
            fleet.drain_round(&mut out);
            assert_eq!(out.len(), 3);
        }

        // Retire b: its id goes dead, everyone else keeps serving.
        fleet.retire(b);
        assert!(!fleet.is_live(b));
        assert_eq!(fleet.live(), 2);
        for s in &data {
            for id in [a, c] {
                assert!(fleet.enqueue(id, s));
            }
            fleet.drain_round(&mut out);
            assert_eq!(out[b], None, "retired id yields no output");
        }

        // A later admission reuses b's slot under a fresh id.
        let d = fleet.admit(ae_detector(4));
        assert_eq!(d, 3);
        assert_eq!(fleet.live(), 3);
        assert!(fleet.enqueue(d, &data[0]));
        fleet.drain_round(&mut out);
        assert_eq!(out.len(), 4, "outputs indexed by id history");
        let stats = fleet.stats();
        assert_eq!((stats.admitted, stats.retired), (4, 1), "{stats:?}");
        let reg = fleet.export_metrics();
        assert_eq!(reg.gauge_by_name("sad_fleet_streams"), Some(3.0), "live streams gauge");
    }

    #[test]
    #[should_panic(expected = "retired")]
    fn enqueue_to_retired_stream_panics() {
        let mut fleet = DetectorFleet::open(FleetConfig::default());
        let id = fleet.admit(ae_detector(1));
        fleet.retire(id);
        let _ = fleet.enqueue(id, &[0.0, 0.0]);
    }

    /// Dynamically-admitted replicas of a construction-time fleet must
    /// batch together: admission joins the same arch groups and cohorts
    /// once the stream warms up.
    #[test]
    fn admitted_replicas_join_the_batching_cohort() {
        let data = series(220, 0.0);
        let config = FleetConfig { shards: 1, ..FleetConfig::default() };
        let mut fleet = DetectorFleet::new(vec![ae_detector(7)], config);
        let b = fleet.admit(ae_detector(7));
        let mut out = Vec::new();
        for s in &data {
            assert!(fleet.enqueue(0, s));
            assert!(fleet.enqueue(b, s));
            fleet.drain_round(&mut out);
        }
        let stats = fleet.stats();
        assert!(stats.batched_rows > 0, "admitted twin joins the cohort: {stats:?}");
        assert!(
            stats.batches <= stats.batched_rows / 2 + 2,
            "twin rows amortize into shared passes: {stats:?}",
        );
    }

    /// The exported registry agrees with the `stats()` snapshot, carries
    /// the fleet-shape gauges and the detector lifecycle aggregate, and
    /// its round-latency histogram saw every non-idle round.
    #[test]
    fn export_metrics_matches_stats_and_aggregates_lifecycle() {
        let fleet_series = vec![series(140, 0.0), series(140, 0.25)];
        let config = FleetConfig { shards: 2, ..FleetConfig::default() };
        let mut fleet = DetectorFleet::new(vec![ae_detector(7), ae_detector(8)], config);
        let _ = fleet.run(&fleet_series);
        let stats = fleet.stats();
        let reg = fleet.export_metrics();
        assert_eq!(reg.counter_by_name("sad_fleet_steps_total"), Some(stats.steps as u64));
        assert_eq!(
            reg.counter_by_name("sad_fleet_scalar_steps_total"),
            Some(stats.scalar_steps as u64)
        );
        assert_eq!(
            reg.counter_by_name("sad_fleet_batched_rows_total"),
            Some(stats.batched_rows as u64)
        );
        assert_eq!(reg.gauge_by_name("sad_fleet_streams"), Some(2.0));
        assert_eq!(reg.gauge_by_name("sad_fleet_shards"), Some(2.0));
        assert!(reg.gauge_by_name("sad_fleet_queue_high_water").unwrap() >= 1.0);
        let latency = reg.histogram_by_name("sad_fleet_round_seconds").unwrap();
        assert!(latency.count() > 0, "timed rounds were recorded");
        // Lifecycle aggregate: both detectors warmed up and stepped.
        assert_eq!(reg.counter_by_name("sad_detector_warmup_completions_total"), Some(2));
        assert_eq!(reg.counter_by_name("sad_detector_steps_total"), Some(160));
        assert_eq!(
            reg.histogram_by_name("sad_detector_nonconformity").unwrap().count(),
            160
        );
        // Telemetry off: counters still flow, timed telemetry stays empty.
        let quiet_cfg = FleetConfig { telemetry: false, ..FleetConfig::default() };
        let mut quiet = DetectorFleet::new(vec![ae_detector(7)], quiet_cfg);
        let _ = quiet.run(&[series(120, 0.0)]);
        let qreg = quiet.export_metrics();
        assert_eq!(qreg.counter_by_name("sad_fleet_steps_total"), Some(120));
        assert_eq!(qreg.histogram_by_name("sad_fleet_round_seconds").unwrap().count(), 0);
        assert_eq!(qreg.gauge_by_name("sad_fleet_queue_high_water"), Some(0.0));
    }
}
