//! Allocation-count guard for the fleet's steady-state shard loop.
//!
//! Extends the counting-allocator pattern of `sad-core/tests/zero_alloc.rs`
//! to the serving layer: once a cohort has formed and every reusable
//! buffer has reached its steady-state capacity, a full serving round —
//! per-stream `enqueue` into the ring queues, batch packing via
//! `transform_into`, the shared `forward_batch`, `emit_into` scatter into
//! the reused output buffers, and `finish_step` — must not allocate at
//! all on a drift-free stream.
//!
//! Unlike the core guard (which pins the framework under a heap-free
//! stand-in model), this one runs a real 2-layer AE: the batched
//! inference path is exactly what makes the NN predict step heap-free —
//! the scalar `predict` builds its scaled/inverse vectors per call, while
//! `InferBatch` owns them once per cohort.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ARMED: Cell<bool> = const { Cell::new(false) };
    static ALLOCS: Cell<usize> = const { Cell::new(0) };
}

struct CountingAllocator;

impl CountingAllocator {
    fn record() {
        let _ = ARMED.try_with(|armed| {
            if armed.get() {
                let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
            }
        });
    }
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        Self::record();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        Self::record();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        Self::record();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn count_allocs(f: impl FnOnce()) -> usize {
    ALLOCS.with(|c| c.set(0));
    ARMED.with(|a| a.set(true));
    f();
    ARMED.with(|a| a.set(false));
    ALLOCS.with(|c| c.get())
}

use sad_core::{Detector, DetectorConfig, ScoreKind, StepOutput};
use sad_fleet::{DetectorFleet, FleetConfig};
use sad_models::{build_detector, BuildParams};

const CHANNELS: usize = 2;
const STREAMS: usize = 2;

/// Stationary stream, periodic with the detector's window length (8):
/// every window holds the same multiset of values per channel, so the
/// training-set statistics are constant and μ/σ-Change never fires — the
/// armed rounds below are pure steady-state serving.
fn stream_vector(t: usize) -> [f64; CHANNELS] {
    let phase = std::f64::consts::TAU * (t % 8) as f64 / 8.0;
    [phase.sin(), phase.cos() * 0.5]
}

fn ae_detector() -> Detector {
    let config = DetectorConfig {
        window: 8,
        channels: CHANNELS,
        warmup: 64,
        initial_epochs: 1,
        fine_tune_epochs: 1,
    };
    let spec = sad_core::paper_algorithms()
        .iter()
        .copied()
        .find(|s| s.label().contains("AE") && s.label().contains("SW") && s.label().contains("μ"))
        .expect("AE / SW / μσ combination exists");
    let params =
        BuildParams::new(config).with_capacity(16).with_score(ScoreKind::Raw).with_seed(11);
    build_detector(spec, &params)
}

/// Both streams identically seeded on an identical stationary stream:
/// they form (and keep) one cohort, so the armed window measures the
/// batched shard loop, not the scalar fallback.
#[test]
fn steady_state_fleet_round_is_allocation_free() {
    let dets: Vec<Detector> = (0..STREAMS).map(|_| ae_detector()).collect();
    let mut fleet = DetectorFleet::new(dets, FleetConfig::default());
    let mut out: Vec<Option<StepOutput>> = Vec::new();
    let mut t = 0usize;

    // Settle: warm-up (64) plus well past every ring's fill point and the
    // first batched emit (which right-sizes the per-slot output buffers).
    for _ in 0..192 {
        let s = stream_vector(t);
        for i in 0..STREAMS {
            assert!(fleet.enqueue(i, &s));
        }
        fleet.drain_round(&mut out);
        t += 1;
    }
    for i in 0..STREAMS {
        assert!(
            fleet.detector(i).drift_times().is_empty(),
            "stream must be drift-free for this guard",
        );
    }
    let settled = fleet.stats();
    assert!(settled.batched_rows > 0, "cohort must have formed during settle: {settled:?}");

    let n = count_allocs(|| {
        for _ in 0..256 {
            let s = stream_vector(t);
            for i in 0..STREAMS {
                assert!(fleet.enqueue(i, &s));
            }
            let consumed = fleet.drain_round(&mut out);
            assert_eq!(consumed, STREAMS);
            for o in &out {
                let o = o.expect("past warm-up");
                assert!(!o.drift, "stream must stay drift-free");
            }
            t += 1;
        }
    });
    assert_eq!(n, 0, "steady-state fleet round must not allocate, saw {n}");

    // And the window really went through the batched path.
    let stats = fleet.stats();
    assert_eq!(
        stats.batched_rows - settled.batched_rows,
        256 * STREAMS,
        "armed window must be fully batched: {stats:?}",
    );
    assert_eq!(stats.cohort_rebuilds, settled.cohort_rebuilds, "no training events while armed");
}

/// Same guard for the f32 snapshot path (`FleetConfig::f32_infer`): the
/// per-cohort `InferBatchF32` owns every converted buffer, so a
/// steady-state round — f32 pack, snapshot `forward_batch`, widening
/// emit — must not allocate either.
#[test]
fn steady_state_f32_fleet_round_is_allocation_free() {
    let dets: Vec<Detector> = (0..STREAMS).map(|_| ae_detector()).collect();
    let config = FleetConfig { f32_infer: true, ..FleetConfig::default() };
    let mut fleet = DetectorFleet::new(dets, config);
    let mut out: Vec<Option<StepOutput>> = Vec::new();
    let mut t = 0usize;

    for _ in 0..192 {
        let s = stream_vector(t);
        for i in 0..STREAMS {
            assert!(fleet.enqueue(i, &s));
        }
        fleet.drain_round(&mut out);
        t += 1;
    }
    for i in 0..STREAMS {
        assert!(
            fleet.detector(i).drift_times().is_empty(),
            "stream must be drift-free for this guard",
        );
    }
    let settled = fleet.stats();
    assert!(settled.f32_rows > 0, "f32 cohort must have formed during settle: {settled:?}");

    let n = count_allocs(|| {
        for _ in 0..256 {
            let s = stream_vector(t);
            for i in 0..STREAMS {
                assert!(fleet.enqueue(i, &s));
            }
            let consumed = fleet.drain_round(&mut out);
            assert_eq!(consumed, STREAMS);
            t += 1;
        }
    });
    assert_eq!(n, 0, "steady-state f32 fleet round must not allocate, saw {n}");

    let stats = fleet.stats();
    assert_eq!(
        stats.f32_rows - settled.f32_rows,
        256 * STREAMS,
        "armed window must be fully f32-batched: {stats:?}",
    );
    assert_eq!(stats.cohort_rebuilds, settled.cohort_rebuilds, "no training events while armed");
}
