//! Bitwise parity of the sharded, cross-stream-batched fleet against K
//! standalone detectors.
//!
//! The tentpole guarantee of the fleet layer: serving K streams through
//! [`DetectorFleet`] — at any shard count, with batched NN stepping on or
//! off, serial or parallel — produces, per stream, the **bit-identical**
//! `StepOutput` trace of a standalone `Detector::run` over the same
//! series, plus identical drift times and fine-tune counts. The batched
//! path shares one `forward_batch` per weight-identical cohort, so the
//! mixed fleet below deliberately plants:
//!
//! - two AE streams with the same seed **and** the same series (they stay
//!   one cohort through every fine-tune and exercise the shared pass),
//! - a same-seed AE on a different series and a different-seed AE on the
//!   same series (same arch group, separate cohorts after the warm-up
//!   fit),
//! - a USAD and an N-BEATS stream (their own arch groups),
//! - a PCB-iForest stream (never batchable — permanent scalar path),
//!
//! and level shifts mid-series so drift → fine-tune → cohort-rebuild
//! events happen inside the measured window. Comparisons are `to_bits`
//! with no tolerance, in the style of `tree_parity.rs`.

use sad_core::{paper_algorithms, AlgorithmSpec, Detector, DetectorConfig, ScoreKind, StepOutput};
use sad_fleet::{DetectorFleet, FleetConfig};
use sad_models::{build_detector, BuildParams};

/// Table I algorithm by registry index, with a label guard so a registry
/// reshuffle fails loudly instead of silently testing the wrong model.
fn spec(idx: usize, expect: &str) -> AlgorithmSpec {
    let specs = paper_algorithms();
    let s = specs[idx];
    assert!(s.label().contains(expect), "registry moved: {} is {:?}", idx, s.label());
    s
}

fn tiny_config() -> DetectorConfig {
    DetectorConfig { window: 5, channels: 2, warmup: 50, initial_epochs: 2, fine_tune_epochs: 1 }
}

fn detector(idx: usize, expect: &str, seed: u64) -> Detector {
    let params = BuildParams::new(tiny_config())
        .with_capacity(16)
        .with_score(ScoreKind::Raw)
        .with_seed(seed);
    build_detector(spec(idx, expect), &params)
}

/// Deterministic 2-channel series; `shift_at` plants a level shift so the
/// μ/σ drift detector fires and fine-tunes land inside the trace.
fn series(len: usize, phase: f64, shift_at: Option<usize>) -> Vec<Vec<f64>> {
    (0..len)
        .map(|t| {
            let x = t as f64 * 0.09 + phase;
            let jump = match shift_at {
                Some(s) if t >= s => 2.5,
                _ => 0.0,
            };
            vec![x.sin() + jump, (x * 0.63).cos() - 0.5 * jump]
        })
        .collect()
}

/// One stream of the mixed fleet: algorithm index, label guard, seed, and
/// its input series.
fn mixed_streams() -> Vec<(usize, &'static str, u64, Vec<Vec<f64>>)> {
    vec![
        (6, "AE", 7, series(180, 0.0, Some(110))),
        (6, "AE", 7, series(180, 0.0, Some(110))), // cohort twin of stream 0
        (6, "AE", 7, series(180, 1.3, None)),      // same seed, different data
        (6, "AE", 9, series(180, 0.0, Some(110))), // same data, different seed
        (12, "USAD", 5, series(180, 0.7, Some(120))),
        (18, "N-BEATS", 11, series(180, 0.4, None)),
        (24, "PCB-iForest", 3, series(180, 0.9, Some(100))), // scalar forever
    ]
}

fn assert_traces_identical(fleet: &[StepOutput], standalone: &[StepOutput], label: &str) {
    assert_eq!(fleet.len(), standalone.len(), "{label}: trace length");
    for (t, (a, b)) in fleet.iter().zip(standalone).enumerate() {
        assert_eq!(a.t, b.t, "{label}: step index at trace position {t}");
        assert_eq!(
            a.nonconformity.to_bits(),
            b.nonconformity.to_bits(),
            "{label}: nonconformity diverges at t={}",
            a.t,
        );
        assert_eq!(
            a.anomaly_score.to_bits(),
            b.anomaly_score.to_bits(),
            "{label}: anomaly score diverges at t={}",
            a.t,
        );
        assert_eq!(a.drift, b.drift, "{label}: drift flag diverges at t={}", a.t);
        assert_eq!(a.fine_tuned, b.fine_tuned, "{label}: fine-tune flag diverges at t={}", a.t);
    }
}

/// The mixed fleet against standalone references, for shard counts 1/2/4
/// × batching on/off (the ISSUE acceptance matrix), plus a parallel
/// drain. Identical outputs everywhere.
#[test]
fn mixed_fleet_matches_standalone_detectors_at_all_shard_counts() {
    let streams = mixed_streams();
    let fleet_series: Vec<Vec<Vec<f64>>> = streams.iter().map(|s| s.3.clone()).collect();

    // Standalone references: one independent detector per stream.
    let mut references = Vec::new();
    for &(idx, expect, seed, ref data) in &streams {
        let mut det = detector(idx, expect, seed);
        let trace = det.run(data);
        references.push((trace, det));
    }
    // The planted level shifts must actually fine-tune an NN stream, or
    // the cohort-rebuild path is never exercised.
    assert!(
        references[0].1.fine_tune_count() > 0,
        "level shift must fine-tune the AE cohort stream",
    );

    for shards in [1usize, 2, 4] {
        for batching in [true, false] {
            for parallel in [false, true] {
                if parallel && (shards == 1 || !batching) {
                    continue; // parallelism is orthogonal; one batched probe per shard count
                }
                let label = format!("shards={shards} batching={batching} parallel={parallel}");
                let dets: Vec<Detector> =
                    streams.iter().map(|&(idx, expect, seed, _)| detector(idx, expect, seed)).collect();
                let config = FleetConfig { shards, batching, parallel, queue_capacity: 4, ..FleetConfig::default() };
                let mut fleet = DetectorFleet::new(dets, config);
                let traces = fleet.run(&fleet_series);
                for (i, (ref_trace, ref_det)) in references.iter().enumerate() {
                    let stream = format!("{label} stream {i}");
                    assert_traces_identical(&traces[i], ref_trace, &stream);
                    let det = fleet.detector(i);
                    assert_eq!(det.drift_times(), ref_det.drift_times(), "{stream}: drift times");
                    assert_eq!(
                        det.fine_tune_count(),
                        ref_det.fine_tune_count(),
                        "{stream}: fine-tune count",
                    );
                }
                let stats = fleet.stats();
                if batching {
                    assert!(stats.batched_rows > 0, "{label}: batched path never engaged");
                    assert!(stats.cohort_rebuilds > 0, "{label}: cohorts never rebuilt");
                } else {
                    assert_eq!(stats.batched_rows, 0, "{label}: batching off must stay scalar");
                }
                assert_eq!(
                    stats.steps,
                    streams.iter().map(|s| s.3.len()).sum::<usize>(),
                    "{label}: every vector consumed exactly once",
                );
            }
        }
    }
}

/// The cohort twins (streams 0 and 1 on one shard) really share forward
/// passes: strictly fewer batched passes than batched rows.
#[test]
fn cohort_twins_amortize_forward_passes() {
    let streams = mixed_streams();
    let fleet_series: Vec<Vec<Vec<f64>>> = streams.iter().map(|s| s.3.clone()).collect();
    let dets: Vec<Detector> =
        streams.iter().map(|&(idx, expect, seed, _)| detector(idx, expect, seed)).collect();
    let mut fleet = DetectorFleet::new(dets, FleetConfig::default());
    let _ = fleet.run(&fleet_series);
    let stats = fleet.stats();
    assert!(
        stats.batches < stats.batched_rows,
        "twin AE streams must share passes: {stats:?}",
    );
}

mod props {
    use super::*;
    use proptest::prelude::*;

    /// Decode one generated pick into (algorithm index, label guard, seed).
    /// Seeds repeat (mod 3) so same-arch same-seed cohorts arise by chance.
    fn decode(pick: usize) -> (usize, &'static str, u64) {
        let table = [(6, "AE"), (12, "USAD"), (18, "N-BEATS"), (24, "PCB-iForest")];
        let (idx, expect) = table[pick % 4];
        (idx, expect, (pick / 4) as u64 % 3)
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

        /// Random fleet composition (2–5 streams over all four model
        /// families × 3 seeds), random shard count, batching on or off:
        /// per-stream bitwise parity with standalone detectors.
        #[test]
        fn random_fleet_matches_standalone(
            picks in collection::vec(0usize..12, 2..=5),
            shards in 1usize..=4,
            batching in 0u8..2,
            shift in 90usize..130,
        ) {
            let batching = batching == 1;
            let streams: Vec<(usize, &'static str, u64)> =
                picks.iter().map(|&p| decode(p)).collect();
            let fleet_series: Vec<Vec<Vec<f64>>> = streams
                .iter()
                .enumerate()
                .map(|(i, _)| series(150, (i % 2) as f64 * 0.8, Some(shift)))
                .collect();

            let mut references = Vec::new();
            for (i, &(idx, expect, seed)) in streams.iter().enumerate() {
                let mut det = detector(idx, expect, seed);
                let trace = det.run(&fleet_series[i]);
                references.push((trace, det));
            }

            let dets: Vec<Detector> =
                streams.iter().map(|&(idx, expect, seed)| detector(idx, expect, seed)).collect();
            let config = FleetConfig { shards, batching, parallel: false, queue_capacity: 4, ..FleetConfig::default() };
            let mut fleet = DetectorFleet::new(dets, config);
            let traces = fleet.run(&fleet_series);

            for (i, (ref_trace, ref_det)) in references.iter().enumerate() {
                let label = format!(
                    "picks={picks:?} shards={shards} batching={batching} stream {i}"
                );
                assert_traces_identical(&traces[i], ref_trace, &label);
                prop_assert_eq!(fleet.detector(i).drift_times(), ref_det.drift_times());
                prop_assert_eq!(fleet.detector(i).fine_tune_count(), ref_det.fine_tune_count());
            }
        }
    }
}
