//! f32 serving agreement: the `FleetConfig::f32_infer` snapshot path
//! against the bitwise-parity f64 fleet, on the standard mixed fleet from
//! `fleet_parity.rs`.
//!
//! What "agreement" means here is precise, not hand-wavy:
//!
//! * **Training is bitwise untouched.** The f32 path only perturbs emitted
//!   model outputs; every stream in this fleet maintains its training set
//!   with a sliding window and detects drift from *stream* statistics
//!   (μ/σ-Change, KS), neither of which reads a score. So drift times,
//!   fine-tune counts and flags must be **exactly** equal — any divergence
//!   is a bug, not rounding. (Components that branch on scores would not
//!   get this guarantee; see EXPERIMENTS.md §E12's eligibility rule.)
//! * **Scores agree to f32 accuracy.** Nonconformity and anomaly score
//!   per step within a small absolute + relative tolerance.

use sad_core::{paper_algorithms, AlgorithmSpec, Detector, DetectorConfig, ScoreKind, StepOutput};
use sad_fleet::{DetectorFleet, FleetConfig};
use sad_models::{build_detector, BuildParams};

fn spec(idx: usize, expect: &str) -> AlgorithmSpec {
    let specs = paper_algorithms();
    let s = specs[idx];
    assert!(s.label().contains(expect), "registry moved: {} is {:?}", idx, s.label());
    s
}

fn detector(idx: usize, expect: &str, seed: u64) -> Detector {
    let config =
        DetectorConfig { window: 5, channels: 2, warmup: 50, initial_epochs: 2, fine_tune_epochs: 1 };
    let params =
        BuildParams::new(config).with_capacity(16).with_score(ScoreKind::Raw).with_seed(seed);
    build_detector(spec(idx, expect), &params)
}

fn series(len: usize, phase: f64, shift_at: Option<usize>) -> Vec<Vec<f64>> {
    (0..len)
        .map(|t| {
            let x = t as f64 * 0.09 + phase;
            let jump = match shift_at {
                Some(s) if t >= s => 2.5,
                _ => 0.0,
            };
            vec![x.sin() + jump, (x * 0.63).cos() - 0.5 * jump]
        })
        .collect()
}

/// The `fleet_parity.rs` mixed fleet: cohort twins, same-arch separate
/// cohorts, three NN families, one never-batchable stream, and planted
/// level shifts so fine-tune → refresh events land inside the trace.
fn mixed_streams() -> Vec<(usize, &'static str, u64, Vec<Vec<f64>>)> {
    vec![
        (6, "AE", 7, series(180, 0.0, Some(110))),
        (6, "AE", 7, series(180, 0.0, Some(110))),
        (6, "AE", 7, series(180, 1.3, None)),
        (6, "AE", 9, series(180, 0.0, Some(110))),
        (12, "USAD", 5, series(180, 0.7, Some(120))),
        (18, "N-BEATS", 11, series(180, 0.4, None)),
        (24, "PCB-iForest", 3, series(180, 0.9, Some(100))),
    ]
}

const ABS_TOL: f64 = 5e-3;

fn assert_scores_close(f32_trace: &[StepOutput], f64_trace: &[StepOutput], label: &str) {
    assert_eq!(f32_trace.len(), f64_trace.len(), "{label}: trace length");
    for (a, b) in f32_trace.iter().zip(f64_trace) {
        assert_eq!(a.t, b.t, "{label}: step index");
        assert_eq!(a.drift, b.drift, "{label}: drift flag diverges at t={}", a.t);
        assert_eq!(a.fine_tuned, b.fine_tuned, "{label}: fine-tune flag diverges at t={}", a.t);
        let tol = |want: f64| ABS_TOL * want.abs().max(1.0);
        assert!(
            (a.nonconformity - b.nonconformity).abs() <= tol(b.nonconformity),
            "{label}: nonconformity {} vs {} at t={}",
            a.nonconformity,
            b.nonconformity,
            a.t,
        );
        assert!(
            (a.anomaly_score - b.anomaly_score).abs() <= tol(b.anomaly_score),
            "{label}: anomaly score {} vs {} at t={}",
            a.anomaly_score,
            b.anomaly_score,
            a.t,
        );
    }
}

#[test]
fn f32_infer_agrees_with_f64_on_mixed_fleet() {
    let streams = mixed_streams();
    let fleet_series: Vec<Vec<Vec<f64>>> = streams.iter().map(|s| s.3.clone()).collect();

    let build = |f32_infer: bool| {
        let dets: Vec<Detector> =
            streams.iter().map(|&(idx, expect, seed, _)| detector(idx, expect, seed)).collect();
        let config = FleetConfig { f32_infer, ..FleetConfig::default() };
        DetectorFleet::new(dets, config)
    };

    let mut f64_fleet = build(false);
    let f64_traces = f64_fleet.run(&fleet_series);
    let mut f32_fleet = build(true);
    let f32_traces = f32_fleet.run(&fleet_series);

    for i in 0..streams.len() {
        let label = format!("stream {i}");
        assert_scores_close(&f32_traces[i], &f64_traces[i], &label);
        // Training is score-independent here → exact equality.
        assert_eq!(
            f32_fleet.detector(i).drift_times(),
            f64_fleet.detector(i).drift_times(),
            "{label}: drift times",
        );
        assert_eq!(
            f32_fleet.detector(i).fine_tune_count(),
            f64_fleet.detector(i).fine_tune_count(),
            "{label}: fine-tune count",
        );
    }

    // The fleets really took different serving paths.
    let f64_stats = f64_fleet.stats();
    let f32_stats = f32_fleet.stats();
    assert_eq!(f64_stats.f32_rows, 0, "f64 fleet must not touch the snapshot path");
    assert!(f32_stats.batched_rows > 0, "batched path engaged");
    assert_eq!(
        f32_stats.f32_rows, f32_stats.batched_rows,
        "every batched row served through an f32 snapshot: {f32_stats:?}",
    );
    // Fine-tunes landed inside the trace, so snapshots were refreshed via
    // the dirty-on-training-event hook (not just built once).
    assert!(f32_stats.cohort_rebuilds > 1, "snapshot refreshes exercised: {f32_stats:?}");
    // The structural serving counters agree: same batching decisions.
    assert_eq!(f32_stats.steps, f64_stats.steps);
    assert_eq!(f32_stats.batched_rows, f64_stats.batched_rows);
    assert_eq!(f32_stats.scalar_steps, f64_stats.scalar_steps);
    assert_eq!(f32_stats.cohort_rebuilds, f64_stats.cohort_rebuilds);
}

/// Scores must not be *identical* either — an f32 path that bitwise equals
/// f64 on every step would mean the snapshot path silently isn't running.
#[test]
fn f32_infer_actually_runs_in_reduced_precision() {
    let data = series(180, 0.0, None);
    let run = |f32_infer: bool| {
        let config = FleetConfig { f32_infer, ..FleetConfig::default() };
        let mut fleet = DetectorFleet::new(vec![detector(6, "AE", 7)], config);
        fleet.run(std::slice::from_ref(&data))
    };
    let f64_trace = run(false);
    let f32_trace = run(true);
    assert!(
        f64_trace[0]
            .iter()
            .zip(&f32_trace[0])
            .any(|(a, b)| a.nonconformity.to_bits() != b.nonconformity.to_bits()),
        "f32 serving must produce f32-rounded scores, not the f64 bits",
    );
}
