use sad_core::{Detector, DetectorConfig, ScoreKind, StepOutput};
use sad_fleet::{DetectorFleet, FleetConfig};
use sad_models::{build_detector, BuildParams};

fn ae_detector(seed: u64) -> Detector {
    let config = DetectorConfig {
        window: 6, channels: 2, warmup: 60, initial_epochs: 2, fine_tune_epochs: 1,
    };
    let spec = sad_core::paper_algorithms().iter().copied()
        .find(|s| s.label().contains("AE") && s.label().contains("SW"))
        .unwrap();
    let params = BuildParams::new(config).with_capacity(20).with_score(ScoreKind::Raw).with_seed(seed);
    build_detector(spec, &params)
}

fn vec_at(t: usize) -> Vec<f64> {
    let x = t as f64 * 0.07;
    vec![x.sin(), (x * 0.6).cos()]
}

#[test]
fn probe_warm_started_detector_loses_first_output() {
    // Warm-start a template past warm-up, as examples/server_fleet.rs does.
    let mut template = ae_detector(7);
    let mut reference = ae_detector(7);
    for t in 0..70 {
        template.step(&vec_at(t));
        reference.step(&vec_at(t));
    }
    assert!(template.is_warmed_up());

    let config = FleetConfig { queue_capacity: 8, ..FleetConfig::default() };
    let mut fleet = DetectorFleet::new(vec![template], config);
    // Two vectors queued before the first drain.
    assert!(fleet.enqueue(0, &vec_at(70)));
    assert!(fleet.enqueue(0, &vec_at(71)));
    let mut out: Vec<Option<StepOutput>> = Vec::new();
    let consumed = fleet.drain_round(&mut out);
    let got = out[0].expect("post-warm-up step yields output");
    let want = reference.step(&vec_at(70)).unwrap();
    eprintln!("consumed={consumed} got t={} want t={} steps={}", got.t, want.t, fleet.stats().steps);
    assert_eq!(got.t, want.t, "first drain must report the FIRST queued vector's step");
    assert_eq!(got.anomaly_score.to_bits(), want.anomaly_score.to_bits());
}
