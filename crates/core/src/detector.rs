//! The streaming detector pipeline: wires all four framework components
//! plus the ML model into one `step`-per-stream-vector state machine.
//!
//! Lifecycle (matching the paper's experimental protocol, §V-B):
//!
//! 1. **Warm-up** — the first `warmup` stream steps only fill the data
//!    representation and the training set (the paper builds the initial
//!    training set from the first 5000 time steps). At the end of warm-up
//!    the model is trained for `initial_epochs` and every drift detector
//!    snapshots its reference statistics.
//! 2. **Streaming** — for every subsequent stream vector:
//!    representation → model prediction → nonconformity `a_t` → anomaly
//!    score `f_t` → Task-1 training-set update (using `f_t`, which is what
//!    ARES needs) → Task-2 drift check → optional fine-tune (one epoch, per
//!    the Table I caption).

use crate::drift::DriftDetector;
use crate::model::{ModelOutput, StreamModel};
use crate::nonconformity::nonconformity;
use crate::repr::{FeatureVector, RawWindow};
use crate::score::{AnomalyScorer, ScorerBank};
use crate::strategy::{SetUpdate, TrainingSetStrategy};
use crate::telemetry::LifecycleTelemetry;

/// Static configuration of a [`Detector`].
#[derive(Debug, Clone)]
pub struct DetectorConfig {
    /// Data representation length `w` (the paper's experiments use 100).
    pub window: usize,
    /// Channel count `N` of the stream.
    pub channels: usize,
    /// Number of initial stream steps used to build the first training set
    /// (the paper uses 5000).
    pub warmup: usize,
    /// Epochs for the initial fit at the end of warm-up.
    pub initial_epochs: usize,
    /// Epochs per fine-tune after drift (the paper uses 1).
    pub fine_tune_epochs: usize,
}

impl DetectorConfig {
    /// A small configuration suitable for tests and examples.
    pub fn small(channels: usize) -> Self {
        Self { window: 10, channels, warmup: 100, initial_epochs: 5, fine_tune_epochs: 1 }
    }

    /// The paper's experimental configuration (`w = 100`, warm-up 5000).
    pub fn paper(channels: usize) -> Self {
        Self { window: 100, channels, warmup: 5000, initial_epochs: 10, fine_tune_epochs: 1 }
    }
}

/// Per-step detector output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepOutput {
    /// Stream time step (0-based).
    pub t: usize,
    /// Nonconformity score `a_t ∈ [0, 1]`.
    pub nonconformity: f64,
    /// Final anomaly score `f_t ∈ [0, 1]`.
    pub anomaly_score: f64,
    /// Whether the Task-2 detector flagged drift at this step.
    pub drift: bool,
    /// Whether the model was fine-tuned at this step.
    pub fine_tuned: bool,
}

/// Result of a single-pass multi-scorer stream ([`Detector::run_fanout`]).
#[derive(Debug, Clone, PartialEq)]
pub struct FanoutRun {
    /// One full score trace per bank scorer, in bank order:
    /// `traces[k][i]` is scorer `k`'s score for stream step `offset + i`.
    pub traces: Vec<Vec<f64>>,
    /// Stream step of the first post-warm-up output (`series.len()` when
    /// the series ended inside warm-up, leaving all traces empty).
    pub offset: usize,
}

/// A complete streaming anomaly detector.
#[derive(Clone)]
pub struct Detector {
    config: DetectorConfig,
    repr: RawWindow,
    model: Box<dyn StreamModel>,
    strategy: Box<dyn TrainingSetStrategy>,
    drift: Box<dyn DriftDetector>,
    scorer: Box<dyn AnomalyScorer>,
    /// Reusable `x_t` buffer: [`RawWindow::push_into`] overwrites it every
    /// step, so the steady-state hot loop never allocates a feature vector.
    scratch: FeatureVector,
    t: usize,
    warmed_up: bool,
    /// Split-step guard: set by a `true` [`Detector::begin_step`], cleared
    /// by [`Detector::finish_step`].
    mid_step: bool,
    drift_times: Vec<usize>,
    fine_tunes: usize,
    /// Cumulative wall time spent inside the model's training entry points
    /// (`fit_initial` at warm-up plus every drift-triggered `fine_tune`).
    train_time: std::time::Duration,
    /// Lifecycle metric registry (warm-up, drift, fine-tune, per-step
    /// nonconformity). Pure observation — never feeds back into detection.
    telemetry: LifecycleTelemetry,
}

impl Detector {
    /// Assembles a detector from its five components.
    pub fn new(
        config: DetectorConfig,
        model: Box<dyn StreamModel>,
        strategy: Box<dyn TrainingSetStrategy>,
        drift: Box<dyn DriftDetector>,
        scorer: Box<dyn AnomalyScorer>,
    ) -> Self {
        assert!(config.window > 0 && config.channels > 0, "window/channels must be positive");
        assert!(
            config.warmup >= config.window,
            "warm-up ({}) must cover at least one window ({})",
            config.warmup,
            config.window
        );
        let repr = RawWindow::new(config.window, config.channels);
        let scratch = FeatureVector::zeroed(config.window, config.channels);
        let telemetry = LifecycleTelemetry::new(drift.name());
        Self {
            config,
            repr,
            model,
            strategy,
            drift,
            scorer,
            scratch,
            t: 0,
            warmed_up: false,
            mid_step: false,
            drift_times: Vec::new(),
            fine_tunes: 0,
            train_time: std::time::Duration::ZERO,
            telemetry,
        }
    }

    /// Feeds one stream vector `s_t`; returns `None` during warm-up.
    ///
    /// # Panics
    /// Panics if `s.len() != config.channels`.
    pub fn step(&mut self, s: &[f64]) -> Option<StepOutput> {
        self.advance(s, None)
    }

    /// Feeds one stream vector and **tees the nonconformity score into a
    /// scorer bank**: one detector pass produces one anomaly score per
    /// bank scorer (written to `out` in bank order) on top of the
    /// detector's own [`StepOutput`].
    ///
    /// The detector's embedded scorer remains the *driver*: its `f_t` is
    /// what feeds the Task-1 strategy, exactly as in [`Self::step`], so
    /// the detector trajectory is unchanged. During warm-up the bank is
    /// not touched (scorers see their first `a_t` at the same step they
    /// would in a standalone run) and `out` is cleared.
    ///
    /// When [`Self::scorer_feedback_free`] holds, each bank scorer's trace
    /// is bitwise identical to a standalone per-scorer detector run; with
    /// an anomaly-feedback strategy (ARES) the teed traces are still
    /// well-defined but correspond to the *driver's* trajectory.
    pub fn step_fanout(
        &mut self,
        s: &[f64],
        bank: &mut ScorerBank,
        out: &mut Vec<f64>,
    ) -> Option<StepOutput> {
        let output = self.advance(s, Some((bank, out)));
        if output.is_none() {
            out.clear();
        }
        output
    }

    fn advance(
        &mut self,
        s: &[f64],
        bank: Option<(&mut ScorerBank, &mut Vec<f64>)>,
    ) -> Option<StepOutput> {
        if !self.begin_step(s) {
            return None;
        }
        let output = self.model.predict(&self.scratch);
        Some(self.finish_step_banked(&output, bank))
    }

    /// First half of the split-step API used by external serving layers
    /// (the fleet's cross-stream batched stepping): ingests `s_t` into the
    /// representation and runs the whole warm-up state machine.
    ///
    /// Returns `true` when the detector is warmed up and a feature vector
    /// is ready in [`Self::feature`] — the caller must then compute the
    /// model output (e.g. via a shared batched forward pass) and complete
    /// the step with [`Self::finish_step`]. Returns `false` during warm-up,
    /// including the step on which the initial fit runs; no
    /// [`Self::finish_step`] call must follow a `false` return.
    ///
    /// `begin_step` followed by `model().predict(feature())` and
    /// `finish_step` is exactly [`Self::step`].
    ///
    /// # Panics
    /// Panics if `s.len() != config.channels`, or when called again before
    /// a `true` return was consumed by [`Self::finish_step`].
    pub fn begin_step(&mut self, s: &[f64]) -> bool {
        assert!(!self.mid_step, "begin_step called twice without finish_step");
        self.t += 1;
        let has_x = self.repr.push_into(s, &mut self.scratch);

        if !self.warmed_up {
            if has_x {
                // During warm-up everything is assumed normal (f_t = 0). The
                // drift detector must still observe every update so its
                // incremental statistics (running μ/σ, KSWIN sorted sets)
                // track the training set; its verdict is ignored.
                let update = self.strategy.update(&self.scratch, 0.0);
                let _ = self.drift.observe(&self.scratch, &update, self.strategy.training_set());
                if let SetUpdate::Replaced { removed } = update {
                    self.strategy.recycle(removed);
                }
            }
            if self.t >= self.config.warmup {
                let started = std::time::Instant::now();
                self.model.fit_initial(self.strategy.training_set(), self.config.initial_epochs);
                self.train_time += started.elapsed();
                self.drift.on_fine_tune(self.strategy.training_set());
                self.warmed_up = true;
                self.telemetry.on_warmup_complete();
            }
            return false;
        }

        assert!(has_x, "window is full after warm-up");
        self.mid_step = true;
        true
    }

    /// The feature vector `x_t` produced by the last [`Self::begin_step`]
    /// (valid between a `true` `begin_step` and its `finish_step`).
    pub fn feature(&self) -> &FeatureVector {
        &self.scratch
    }

    /// Second half of the split-step API: completes the step begun by a
    /// `true` [`Self::begin_step`] using an externally-computed model
    /// output for [`Self::feature`].
    ///
    /// Feeding back `model().predict(feature())` reproduces [`Self::step`]
    /// bitwise; the fleet instead feeds the per-row result of one shared
    /// batched forward pass (proven bitwise-identical to per-stream
    /// inference).
    ///
    /// # Panics
    /// Panics if no step is in progress.
    pub fn finish_step(&mut self, output: &ModelOutput) -> StepOutput {
        self.finish_step_banked(output, None)
    }

    fn finish_step_banked(
        &mut self,
        output: &ModelOutput,
        bank: Option<(&mut ScorerBank, &mut Vec<f64>)>,
    ) -> StepOutput {
        assert!(self.mid_step, "finish_step without a pending begin_step");
        self.mid_step = false;
        let t = self.t - 1;
        let a_t = nonconformity(&self.scratch, output);
        self.telemetry.record_step(a_t);
        let f_t = self.scorer.update(a_t);
        if let Some((bank, out)) = bank {
            bank.update_into(a_t, out);
        }
        let update = self.strategy.update(&self.scratch, f_t);
        let drift = self.drift.observe(&self.scratch, &update, self.strategy.training_set());
        if let SetUpdate::Replaced { removed } = update {
            self.strategy.recycle(removed);
        }
        let mut fine_tuned = false;
        if drift {
            self.drift_times.push(t);
            self.telemetry.on_drift();
            let started = std::time::Instant::now();
            for _ in 0..self.config.fine_tune_epochs {
                self.model.fine_tune(self.strategy.training_set());
            }
            self.train_time += started.elapsed();
            // Re-anchor the drift reference even when the model is frozen
            // (fine_tune_epochs = 0), so a frozen fork doesn't fire every
            // step after the first drift.
            self.drift.on_fine_tune(self.strategy.training_set());
            fine_tuned = self.config.fine_tune_epochs > 0;
            if fine_tuned {
                self.fine_tunes += 1;
                self.telemetry.on_fine_tune();
            }
        }
        StepOutput { t, nonconformity: a_t, anomaly_score: f_t, drift, fine_tuned }
    }

    /// Expected number of outputs from streaming `len` more vectors (the
    /// steps left after whatever warm-up remains).
    fn expected_outputs(&self, len: usize) -> usize {
        len.saturating_sub(self.config.warmup.saturating_sub(self.t))
    }

    /// Runs the detector over a whole series (`series[t]` is `s_t`).
    ///
    /// Returns one [`StepOutput`] per post-warm-up step.
    pub fn run(&mut self, series: &[Vec<f64>]) -> Vec<StepOutput> {
        let mut outputs = Vec::with_capacity(self.expected_outputs(series.len()));
        outputs.extend(series.iter().filter_map(|s| self.step(s)));
        outputs
    }

    /// Streams a whole series **once** and returns one full score trace per
    /// bank scorer (see [`Self::step_fanout`]).
    ///
    /// `traces[k][i]` is bank scorer `k`'s anomaly score for stream step
    /// `offset + i`; `offset` is the first post-warm-up step (or
    /// `series.len()` if warm-up never completed).
    pub fn run_fanout(&mut self, series: &[Vec<f64>], bank: &mut ScorerBank) -> FanoutRun {
        // When the detector trajectory is provably scorer-independent, run
        // the (expensive) detector pass alone, packing the nonconformity
        // stream into one contiguous trace, then let each bank scorer
        // consume the whole trace scorer-major
        // ([`ScorerBank::replay_packed`]). The bank never feeds back into
        // `advance`, so the trace — and therefore every scorer's output
        // sequence — is bit-for-bit the interleaved path's; the fan-out
        // parity suite pins this. ARES-style feedback strategies keep the
        // per-step teeing (the driver trajectory is the reference there).
        if self.scorer_feedback_free() && !bank.is_empty() {
            let mut trace = Vec::with_capacity(self.expected_outputs(series.len()));
            let mut offset = series.len();
            for s in series {
                if let Some(out) = self.step(s) {
                    offset = offset.min(out.t);
                    trace.push(out.nonconformity);
                }
            }
            return FanoutRun { traces: bank.replay_packed(&trace), offset };
        }
        let expected = self.expected_outputs(series.len());
        let mut traces: Vec<Vec<f64>> =
            (0..bank.len()).map(|_| Vec::with_capacity(expected)).collect();
        let mut offset = series.len();
        let mut step_scores = Vec::with_capacity(bank.len());
        for s in series {
            if let Some(out) = self.step_fanout(s, bank, &mut step_scores) {
                offset = offset.min(out.t);
                for (trace, &f) in traces.iter_mut().zip(&step_scores) {
                    trace.push(f);
                }
            }
        }
        FanoutRun { traces, offset }
    }

    /// Scores a whole labelled series and returns `(scores, offset)` where
    /// `scores[i]` is the anomaly score for stream step `offset + i`.
    pub fn score_series(&mut self, series: &[Vec<f64>]) -> (Vec<f64>, usize) {
        let outputs = self.run(series);
        let offset = outputs.first().map_or(series.len(), |o| o.t);
        (outputs.into_iter().map(|o| o.anomaly_score).collect(), offset)
    }

    /// Whether the detector trajectory is provably independent of the
    /// anomaly scoring function.
    ///
    /// True when the Task-1 strategy ignores `f_t` (see
    /// [`TrainingSetStrategy::uses_anomaly_feedback`]): the nonconformity
    /// stream, training set, drift triggers and fine-tunes are then a pure
    /// function of the input series, and one [`Self::run_fanout`] pass
    /// reproduces every per-scorer run bitwise.
    pub fn scorer_feedback_free(&self) -> bool {
        !self.strategy.uses_anomaly_feedback()
    }

    /// Replaces the anomaly scorer.
    ///
    /// Intended for the warm-up-sharing evaluation path: the scorer is
    /// never consulted during warm-up (`f_t` is fixed to 0), so a detector
    /// can be warmed up once, cloned per scorer, and each clone handed its
    /// own fresh scorer — each clone is then bitwise identical to a
    /// detector built with that scorer from the start.
    ///
    /// Swapping a scorer that has already accumulated state discards that
    /// state; post-warm-up callers should know what they are doing.
    pub fn set_scorer(&mut self, scorer: Box<dyn AnomalyScorer>) {
        self.scorer = scorer;
    }

    /// Clones the detector with a fresh scorer swapped in — the per-scorer
    /// fork of the warm-up-sharing evaluation path (see
    /// [`Self::set_scorer`] for why this is bitwise sound after warm-up).
    pub fn fork_with_scorer(&self, scorer: Box<dyn AnomalyScorer>) -> Detector {
        let mut fork = self.clone();
        fork.set_scorer(scorer);
        fork
    }

    /// Disables fine-tuning: drift is still detected and recorded, but the
    /// model parameters are never updated again.
    ///
    /// This is the "previous model, which is not finetuned" arm of the
    /// paper's Figure 1 experiment — fork the detector with `clone()`,
    /// freeze one fork, and stream the same data into both.
    pub fn freeze_model(&mut self) {
        self.config.fine_tune_epochs = 0;
    }

    /// Steps at which drift fired so far.
    pub fn drift_times(&self) -> &[usize] {
        &self.drift_times
    }

    /// Number of fine-tune sessions so far. Unlike [`Self::drift_times`],
    /// this does not advance on drift events observed while the model is
    /// frozen.
    pub fn fine_tune_count(&self) -> usize {
        self.fine_tunes
    }

    /// Cumulative wall time spent training the model (initial fit plus all
    /// fine-tune sessions). This is the hot loop the batched NN path
    /// optimizes; the bench harness surfaces it per grid cell in the
    /// timing artifact.
    pub fn train_time(&self) -> std::time::Duration {
        self.train_time
    }

    /// Whether warm-up has completed.
    pub fn is_warmed_up(&self) -> bool {
        self.warmed_up
    }

    /// Current stream time.
    pub fn time(&self) -> usize {
        self.t
    }

    /// The embedded model (e.g. to inspect it in experiments).
    pub fn model(&self) -> &dyn StreamModel {
        self.model.as_ref()
    }

    /// The detector's static configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// The Task-1 strategy's current training set.
    pub fn training_set(&self) -> &[crate::repr::FeatureVector] {
        self.strategy.training_set()
    }

    /// Cumulative drift-detector operation tally (Table II).
    pub fn drift_ops(&self) -> sad_stats::OpCount {
        self.drift.ops()
    }

    /// Training-set removals the Task-2 detector could not honor (KSWIN
    /// only — see [`DriftDetector::removal_misses`]). Non-zero flags a
    /// Task-1 strategy bug.
    pub fn drift_removal_misses(&self) -> u64 {
        self.drift.removal_misses()
    }

    /// The detector's lifecycle telemetry (read-only).
    pub fn telemetry(&self) -> &LifecycleTelemetry {
        &self.telemetry
    }

    /// Snapshots the full per-detector metric registry: the lifecycle
    /// registry plus `sad_detector_removal_misses_total` and
    /// `sad_detector_train_seconds`. Snapshots of any two detectors merge
    /// via [`sad_obs::Registry::merge_from`] (the schema is shared across
    /// Task-2 variants). Allocates — export path only.
    pub fn export_metrics(&self) -> sad_obs::Registry {
        self.telemetry.snapshot(self.drift.removal_misses(), self.train_time)
    }

    /// Component names as `(model, task1, task2, scorer)` for reports.
    pub fn component_names(&self) -> (&'static str, &'static str, &'static str, &'static str) {
        (self.model.name(), self.strategy.name(), self.drift.name(), self.scorer.name())
    }
}

/// Shared-prefix warm-up driver: one warm-up + initial fit forked across
/// several Task-2 drift-detector variants.
///
/// The paper's component decomposition (Table I) pairs most detectors as
/// `(model, Task1)` × {μσ-Change, KSWIN}. During warm-up the drift verdict
/// is *ignored* (see [`Detector::step`]) and the anomaly score is pinned to
/// 0, so detectors sharing `(model, Task1)` are bitwise identical through
/// the whole warm-up segment **and** the initial fit — they diverge only at
/// the first post-warm-up fine-tune decision. `SharedWarmup` exploits that:
/// it streams the warm-up prefix once, feeding the representation and
/// Task-1 strategy a single time, feeding *every* variant's
/// [`DriftDetector::observe`] the exact update stream it would see
/// standalone, and running `fit_initial` once. [`Self::fork`] then assembles
/// one warmed [`Detector`] per variant (cloned model + strategy + repr
/// state, that variant's drift detector, a fresh scorer), each bitwise
/// identical to a detector that did the whole warm-up on its own.
///
/// Every component's RNG chain is seeded independently (model / Task-1 /
/// Task-2 draw from unrelated seeds), so sharing cannot reorder any random
/// draws relative to standalone runs.
pub struct SharedWarmup {
    config: DetectorConfig,
    repr: RawWindow,
    model: Box<dyn StreamModel>,
    strategy: Box<dyn TrainingSetStrategy>,
    drifts: Vec<Box<dyn DriftDetector>>,
    scratch: FeatureVector,
    t: usize,
    warmed_up: bool,
    train_time: std::time::Duration,
}

impl SharedWarmup {
    /// Creates the driver over one drift detector per variant.
    ///
    /// # Panics
    /// Panics on an empty variant list or an invalid configuration (same
    /// rules as [`Detector::new`]).
    pub fn new(
        config: DetectorConfig,
        model: Box<dyn StreamModel>,
        strategy: Box<dyn TrainingSetStrategy>,
        drifts: Vec<Box<dyn DriftDetector>>,
    ) -> Self {
        assert!(!drifts.is_empty(), "at least one drift variant required");
        assert!(config.window > 0 && config.channels > 0, "window/channels must be positive");
        assert!(
            config.warmup >= config.window,
            "warm-up ({}) must cover at least one window ({})",
            config.warmup,
            config.window
        );
        let repr = RawWindow::new(config.window, config.channels);
        let scratch = FeatureVector::zeroed(config.window, config.channels);
        Self {
            config,
            repr,
            model,
            strategy,
            drifts,
            scratch,
            t: 0,
            warmed_up: false,
            train_time: std::time::Duration::ZERO,
        }
    }

    /// Feeds one warm-up stream vector, mirroring the warm-up branch of
    /// [`Detector::step`] exactly — except that every drift variant
    /// observes the (single) training-set update. At the end of warm-up the
    /// model is fitted **once** and every variant snapshots its reference
    /// statistics.
    ///
    /// # Panics
    /// Panics if called after warm-up completed (the variants' trajectories
    /// diverge there — fork instead) or if `s.len() != config.channels`.
    pub fn step(&mut self, s: &[f64]) {
        assert!(!self.warmed_up, "SharedWarmup stepped past the end of warm-up; fork instead");
        self.t += 1;
        if self.repr.push_into(s, &mut self.scratch) {
            let update = self.strategy.update(&self.scratch, 0.0);
            for drift in &mut self.drifts {
                let _ = drift.observe(&self.scratch, &update, self.strategy.training_set());
            }
            if let SetUpdate::Replaced { removed } = update {
                self.strategy.recycle(removed);
            }
        }
        if self.t >= self.config.warmup {
            let started = std::time::Instant::now();
            self.model.fit_initial(self.strategy.training_set(), self.config.initial_epochs);
            self.train_time += started.elapsed();
            for drift in &mut self.drifts {
                drift.on_fine_tune(self.strategy.training_set());
            }
            self.warmed_up = true;
        }
    }

    /// Assembles a warmed [`Detector`] for drift variant `variant` with the
    /// given (fresh) scorer.
    ///
    /// The fork owns clones of the shared model / strategy / representation
    /// state plus the variant's drift detector; its `train_time` telemetry
    /// carries the shared initial fit so per-detector accounting matches a
    /// standalone run's shape. Forking before warm-up completed is allowed
    /// (each fork simply finishes warm-up on its own — at which point
    /// nothing was shared).
    ///
    /// # Panics
    /// Panics if `variant >= self.variants()`.
    pub fn fork(&self, variant: usize, scorer: Box<dyn AnomalyScorer>) -> Detector {
        let mut telemetry = LifecycleTelemetry::new(self.drifts[variant].name());
        if self.warmed_up {
            // The shared warm-up + initial fit belong to every fork's
            // lifecycle, same as the shared `train_time` below.
            telemetry.on_warmup_complete();
        }
        Detector {
            config: self.config.clone(),
            repr: self.repr.clone(),
            model: self.model.clone(),
            strategy: self.strategy.clone(),
            drift: self.drifts[variant].clone(),
            scorer,
            scratch: self.scratch.clone(),
            t: self.t,
            warmed_up: self.warmed_up,
            mid_step: false,
            drift_times: Vec::new(),
            fine_tunes: 0,
            train_time: self.train_time,
            telemetry,
        }
    }

    /// Number of drift variants.
    pub fn variants(&self) -> usize {
        self.drifts.len()
    }

    /// Whether the shared initial fit has run.
    pub fn is_warmed_up(&self) -> bool {
        self.warmed_up
    }

    /// Current stream time.
    pub fn time(&self) -> usize {
        self.t
    }

    /// Wall time of the shared initial fit (zero until warm-up completes).
    pub fn train_time(&self) -> std::time::Duration {
        self.train_time
    }

    /// Whether post-warm-up trajectories are scorer-independent (see
    /// [`Detector::scorer_feedback_free`]).
    pub fn scorer_feedback_free(&self) -> bool {
        !self.strategy.uses_anomaly_feedback()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drift::{MuSigmaChange, RegularInterval};
    use crate::model::testing::{LastValueModel, PerfectReconstructor};
    use crate::score::{MovingAverage, RawScore};
    use crate::strategy::SlidingWindowSet;

    fn smooth_series(len: usize) -> Vec<Vec<f64>> {
        (0..len).map(|t| vec![(t as f64 * 0.05).sin(), (t as f64 * 0.05).cos()]).collect()
    }

    fn make_detector(warmup: usize) -> Detector {
        let config = DetectorConfig {
            window: 5,
            channels: 2,
            warmup,
            initial_epochs: 1,
            fine_tune_epochs: 1,
        };
        Detector::new(
            config,
            Box::new(LastValueModel::default()),
            Box::new(SlidingWindowSet::new(10)),
            Box::new(MuSigmaChange::new()),
            Box::new(MovingAverage::new(5)),
        )
    }

    #[test]
    fn warmup_produces_no_output() {
        let mut det = make_detector(20);
        let series = smooth_series(50);
        let outputs = det.run(&series);
        assert_eq!(outputs.len(), 30);
        assert_eq!(outputs[0].t, 20);
        assert!(det.is_warmed_up());
    }

    #[test]
    fn perfect_model_scores_near_zero() {
        let config = DetectorConfig { window: 4, channels: 2, warmup: 10, initial_epochs: 1, fine_tune_epochs: 1 };
        let mut det = Detector::new(
            config,
            Box::new(PerfectReconstructor),
            Box::new(SlidingWindowSet::new(5)),
            Box::new(MuSigmaChange::new()),
            Box::new(RawScore),
        );
        for out in det.run(&smooth_series(40)) {
            assert!(out.anomaly_score < 1e-9, "perfect reconstruction → zero score");
        }
    }

    #[test]
    fn smooth_series_scores_low_for_forecaster() {
        let mut det = make_detector(20);
        let outputs = det.run(&smooth_series(200));
        let mean: f64 =
            outputs.iter().map(|o| o.anomaly_score).sum::<f64>() / outputs.len() as f64;
        assert!(mean < 0.05, "slowly varying series is predictable, mean score {mean}");
    }

    #[test]
    fn regular_interval_fine_tunes_model() {
        let config = DetectorConfig { window: 3, channels: 2, warmup: 10, initial_epochs: 1, fine_tune_epochs: 1 };
        let mut det = Detector::new(
            config,
            Box::new(LastValueModel::default()),
            Box::new(SlidingWindowSet::new(5)),
            Box::new(RegularInterval::new(10)),
            Box::new(RawScore),
        );
        let _ = det.run(&smooth_series(60));
        // 50 post-warm-up steps with interval 10 -> 5 fine-tunes.
        assert_eq!(det.fine_tune_count(), 5);
        assert_eq!(det.drift_times(), &[19, 29, 39, 49, 59]);
    }

    #[test]
    fn detector_is_cloneable_and_fork_diverges() {
        let mut det = make_detector(20);
        let series = smooth_series(100);
        for s in series.iter().take(60) {
            det.step(s);
        }
        let mut fork = det.clone();
        // Same next input -> identical output on both.
        let a = det.step(&series[60]).unwrap();
        let b = fork.step(&series[60]).unwrap();
        assert_eq!(a, b);
        // Different inputs -> the forks diverge.
        let c = det.step(&[5.0, -5.0]).unwrap();
        let d = fork.step(&series[61]).unwrap();
        assert_ne!(c.nonconformity, d.nonconformity);
    }

    #[test]
    fn score_series_reports_offset() {
        let mut det = make_detector(25);
        let (scores, offset) = det.score_series(&smooth_series(70));
        assert_eq!(offset, 25);
        assert_eq!(scores.len(), 45);
    }

    /// Fan-out over a feedback-free strategy (SW) reproduces each
    /// standalone per-scorer run bitwise from one detector pass.
    #[test]
    fn fanout_traces_match_standalone_runs_bitwise() {
        use crate::score::{AnomalyLikelihood, RawScore, ScorerBank};
        let series = smooth_series(120);
        let config = DetectorConfig {
            window: 5,
            channels: 2,
            warmup: 30,
            initial_epochs: 1,
            fine_tune_epochs: 1,
        };
        let build = |scorer: Box<dyn AnomalyScorer>| {
            Detector::new(
                config.clone(),
                Box::new(LastValueModel::default()),
                Box::new(SlidingWindowSet::new(10)),
                Box::new(MuSigmaChange::new()),
                scorer,
            )
        };

        let mut shared = build(Box::new(RawScore));
        assert!(shared.scorer_feedback_free());
        let mut bank = ScorerBank::new(vec![
            Box::new(RawScore),
            Box::new(MovingAverage::new(5)),
            Box::new(AnomalyLikelihood::new(20, 3)),
        ]);
        let fanout = shared.run_fanout(&series, &mut bank);
        assert_eq!(fanout.offset, 30);
        assert_eq!(fanout.traces.len(), 3);

        let standalone: [Box<dyn AnomalyScorer>; 3] = [
            Box::new(RawScore),
            Box::new(MovingAverage::new(5)),
            Box::new(AnomalyLikelihood::new(20, 3)),
        ];
        for (k, scorer) in standalone.into_iter().enumerate() {
            let mut det = build(scorer);
            let (scores, offset) = det.score_series(&series);
            assert_eq!(offset, fanout.offset);
            assert_eq!(scores.len(), fanout.traces[k].len());
            for (i, (a, b)) in scores.iter().zip(&fanout.traces[k]).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "scorer {k}, step {i}");
            }
        }
    }

    /// Warm-up sharing: warming one detector, cloning it and swapping in a
    /// fresh scorer is bitwise identical to building with that scorer from
    /// the start (the scorer is untouched during warm-up).
    #[test]
    fn warmup_clone_plus_set_scorer_matches_fresh_build() {
        let series = smooth_series(90);
        let warmup = 25;
        let mut base = make_detector(warmup);
        for s in &series[..warmup] {
            assert!(base.step(s).is_none());
        }
        assert!(base.is_warmed_up());

        let mut fork = base.clone();
        fork.set_scorer(Box::new(RawScore));
        let forked: Vec<f64> =
            series[warmup..].iter().filter_map(|s| fork.step(s)).map(|o| o.anomaly_score).collect();

        // Fresh build with RawScore from the start.
        let config = DetectorConfig {
            window: 5,
            channels: 2,
            warmup,
            initial_epochs: 1,
            fine_tune_epochs: 1,
        };
        let mut fresh = Detector::new(
            config,
            Box::new(LastValueModel::default()),
            Box::new(SlidingWindowSet::new(10)),
            Box::new(MuSigmaChange::new()),
            Box::new(RawScore),
        );
        let (scores, offset) = fresh.score_series(&series);
        assert_eq!(offset, warmup);
        assert_eq!(scores.len(), forked.len());
        for (a, b) in scores.iter().zip(&forked) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// ARES feeds `f_t` back into the training set, so the detector must
    /// report that its trajectory is scorer-dependent.
    #[test]
    fn ares_is_not_scorer_feedback_free() {
        use crate::strategy::{AnomalyAwareReservoir, UniformReservoir};
        let config = DetectorConfig {
            window: 5,
            channels: 2,
            warmup: 20,
            initial_epochs: 1,
            fine_tune_epochs: 1,
        };
        let build = |strategy: Box<dyn TrainingSetStrategy>| {
            Detector::new(
                config.clone(),
                Box::new(LastValueModel::default()),
                strategy,
                Box::new(MuSigmaChange::new()),
                Box::new(RawScore),
            )
        };
        assert!(!build(Box::new(AnomalyAwareReservoir::new(10, 1))).scorer_feedback_free());
        assert!(build(Box::new(UniformReservoir::new(10, 1))).scorer_feedback_free());
        assert!(build(Box::new(SlidingWindowSet::new(10))).scorer_feedback_free());
    }

    /// A series ending inside warm-up yields empty traces and
    /// `offset == series.len()`, mirroring `score_series`.
    #[test]
    fn fanout_on_warmup_only_series_is_empty() {
        use crate::score::ScorerBank;
        let mut det = make_detector(50);
        let series = smooth_series(30);
        let mut bank = ScorerBank::new(vec![Box::new(RawScore)]);
        let run = det.run_fanout(&series, &mut bank);
        assert_eq!(run.offset, 30);
        assert_eq!(run.traces, vec![Vec::<f64>::new()]);
    }

    /// The tentpole guarantee: warming once through `SharedWarmup` and
    /// forking per drift variant is bitwise identical to two standalone
    /// detectors that each did their own warm-up + initial fit.
    #[test]
    fn shared_warmup_forks_match_standalone_detectors_bitwise() {
        use crate::drift::KswinDetector;
        let series = smooth_series(160);
        let warmup = 40;
        let config = DetectorConfig {
            window: 5,
            channels: 2,
            warmup,
            initial_epochs: 2,
            fine_tune_epochs: 1,
        };
        let drifts: [fn() -> Box<dyn DriftDetector>; 2] =
            [|| Box::new(MuSigmaChange::new()), || Box::new(KswinDetector::new(0.01))];

        let mut shared = SharedWarmup::new(
            config.clone(),
            Box::new(LastValueModel::default()),
            Box::new(SlidingWindowSet::new(10)),
            drifts.iter().map(|d| d()).collect(),
        );
        assert!(shared.scorer_feedback_free());
        for s in &series[..warmup] {
            shared.step(s);
        }
        assert!(shared.is_warmed_up());
        assert_eq!(shared.time(), warmup);

        for (v, make_drift) in drifts.iter().enumerate() {
            let mut fork = shared.fork(v, Box::new(MovingAverage::new(5)));
            assert!(fork.is_warmed_up());
            let mut standalone = Detector::new(
                config.clone(),
                Box::new(LastValueModel::default()),
                Box::new(SlidingWindowSet::new(10)),
                make_drift(),
                Box::new(MovingAverage::new(5)),
            );
            for s in &series[..warmup] {
                assert!(standalone.step(s).is_none());
            }
            for (i, s) in series[warmup..].iter().enumerate() {
                let a = fork.step(s).expect("warmed fork emits every step");
                let b = standalone.step(s).expect("warmed detector emits every step");
                assert_eq!(a.t, b.t, "variant {v}, step {i}");
                assert_eq!(
                    a.nonconformity.to_bits(),
                    b.nonconformity.to_bits(),
                    "variant {v}, step {i}"
                );
                assert_eq!(
                    a.anomaly_score.to_bits(),
                    b.anomaly_score.to_bits(),
                    "variant {v}, step {i}"
                );
                assert_eq!(a.drift, b.drift, "variant {v}, step {i}");
                assert_eq!(a.fine_tuned, b.fine_tuned, "variant {v}, step {i}");
            }
            assert_eq!(fork.drift_times(), standalone.drift_times(), "variant {v}");
            assert_eq!(fork.drift_ops(), standalone.drift_ops(), "variant {v}");
        }
    }

    /// Forking before warm-up completes is allowed: the fork finishes
    /// warm-up on its own and still matches a standalone detector.
    #[test]
    fn shared_warmup_early_fork_finishes_warmup_standalone() {
        let series = smooth_series(80);
        let config = DetectorConfig {
            window: 5,
            channels: 2,
            warmup: 30,
            initial_epochs: 1,
            fine_tune_epochs: 1,
        };
        let mut shared = SharedWarmup::new(
            config.clone(),
            Box::new(LastValueModel::default()),
            Box::new(SlidingWindowSet::new(10)),
            vec![Box::new(MuSigmaChange::new())],
        );
        for s in &series[..15] {
            shared.step(s);
        }
        assert!(!shared.is_warmed_up());
        let mut fork = shared.fork(0, Box::new(RawScore));
        let mut standalone = Detector::new(
            config,
            Box::new(LastValueModel::default()),
            Box::new(SlidingWindowSet::new(10)),
            Box::new(MuSigmaChange::new()),
            Box::new(RawScore),
        );
        for s in &series[..15] {
            assert!(standalone.step(s).is_none());
        }
        for s in &series[15..] {
            let a = fork.step(s);
            let b = standalone.step(s);
            assert_eq!(a.is_some(), b.is_some());
            if let (Some(a), Some(b)) = (a, b) {
                assert_eq!(a.anomaly_score.to_bits(), b.anomaly_score.to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "fork instead")]
    fn shared_warmup_step_past_warmup_panics() {
        let series = smooth_series(25);
        let mut shared = SharedWarmup::new(
            DetectorConfig {
                window: 5,
                channels: 2,
                warmup: 20,
                initial_epochs: 1,
                fine_tune_epochs: 1,
            },
            Box::new(LastValueModel::default()),
            Box::new(SlidingWindowSet::new(10)),
            vec![Box::new(MuSigmaChange::new())],
        );
        for s in &series {
            shared.step(s);
        }
    }

    #[test]
    #[should_panic(expected = "at least one drift variant")]
    fn shared_warmup_needs_a_variant() {
        let _ = SharedWarmup::new(
            DetectorConfig::small(2),
            Box::new(LastValueModel::default()),
            Box::new(SlidingWindowSet::new(10)),
            Vec::new(),
        );
    }

    /// The split-step contract behind the fleet: `begin_step` +
    /// `model().predict(feature())` + `finish_step` reproduces `step`
    /// bitwise — across warm-up, the fitting step, steady state, and
    /// forced fine-tune events.
    #[test]
    fn split_step_matches_step_bitwise() {
        let series = smooth_series(80);
        let config = DetectorConfig {
            window: 4,
            channels: 2,
            warmup: 15,
            initial_epochs: 1,
            fine_tune_epochs: 1,
        };
        let build = || {
            Detector::new(
                config.clone(),
                Box::new(LastValueModel::default()),
                Box::new(SlidingWindowSet::new(8)),
                Box::new(RegularInterval::new(7)),
                Box::new(MovingAverage::new(5)),
            )
        };
        let mut whole = build();
        let mut split = build();
        for (i, s) in series.iter().enumerate() {
            let a = whole.step(s);
            let b = if split.begin_step(s) {
                // Mirror `advance`: predict on the scratch feature, then
                // complete the step with the externally-held output.
                let output = split.model.predict(&split.scratch);
                Some(split.finish_step(&output))
            } else {
                None
            };
            assert_eq!(a.is_some(), b.is_some(), "step {i}");
            if let (Some(a), Some(b)) = (a, b) {
                assert_eq!(a.t, b.t, "step {i}");
                assert_eq!(a.nonconformity.to_bits(), b.nonconformity.to_bits(), "step {i}");
                assert_eq!(a.anomaly_score.to_bits(), b.anomaly_score.to_bits(), "step {i}");
                assert_eq!(a.drift, b.drift, "step {i}");
                assert_eq!(a.fine_tuned, b.fine_tuned, "step {i}");
            }
        }
        assert_eq!(whole.drift_times(), split.drift_times());
        assert_eq!(whole.fine_tune_count(), split.fine_tune_count());
    }

    #[test]
    #[should_panic(expected = "finish_step without a pending begin_step")]
    fn finish_step_without_begin_panics() {
        let mut det = make_detector(20);
        let _ = det.finish_step(&ModelOutput::Score(0.5));
    }

    #[test]
    #[should_panic(expected = "begin_step called twice")]
    fn double_begin_step_panics() {
        let mut det = make_detector(5);
        let series = smooth_series(10);
        for s in &series[..6] {
            det.step(s);
        }
        assert!(det.begin_step(&series[6]));
        let _ = det.begin_step(&series[7]);
    }

    #[test]
    #[should_panic(expected = "warm-up")]
    fn warmup_shorter_than_window_panics() {
        let config = DetectorConfig { window: 10, channels: 1, warmup: 5, initial_epochs: 1, fine_tune_epochs: 1 };
        let _ = Detector::new(
            config,
            Box::new(LastValueModel::default()),
            Box::new(SlidingWindowSet::new(5)),
            Box::new(MuSigmaChange::new()),
            Box::new(RawScore),
        );
    }
}
