//! Detector lifecycle telemetry: each [`Detector`](crate::Detector) owns a
//! [`LifecycleTelemetry`] — a private `sad_obs` registry tracking warm-up
//! completion, the initial fit, drift triggers (labelled by Task-2
//! variant), fine-tune sessions, and a per-step nonconformity histogram.
//!
//! Recording is pure observation: nothing here feeds back into the
//! detection trajectory, and every hot-path call (`record_step`, the event
//! counters) is zero-alloc by the `sad_obs` registry contract — the fleet's
//! steady-state allocation guards run with this telemetry live.
//!
//! Every registry carries the same schema (all three paper Task-2 variant
//! labels are pre-registered even though each detector only ever increments
//! its own), so snapshots from any two detectors merge cleanly when a
//! serving layer aggregates a population.

use sad_obs::{with_label, CounterId, Histogram, HistogramId, Registry};

/// Full metric name of the per-variant drift counter.
fn drift_counter_name(variant: &str) -> String {
    with_label("sad_detector_drift_events_total", "task2", variant)
}

/// The paper's three Task-2 variants (Table I); pre-registered in every
/// telemetry registry so all detector snapshots share one merge schema.
const PAPER_TASK2_VARIANTS: [&str; 3] = ["Regular", "μ/σ", "KS"];

/// Per-detector lifecycle metrics. See the module docs.
#[derive(Debug, Clone)]
pub struct LifecycleTelemetry {
    registry: Registry,
    steps: CounterId,
    warmup_completions: CounterId,
    initial_fits: CounterId,
    drift_events: CounterId,
    fine_tune_events: CounterId,
    nonconformity: HistogramId,
}

impl LifecycleTelemetry {
    /// Builds the telemetry registry for a detector whose Task-2 variant is
    /// named `variant` (see [`DriftDetector::name`](crate::DriftDetector::name)).
    pub fn new(variant: &str) -> Self {
        let mut registry = Registry::new();
        let steps =
            registry.register_counter("sad_detector_steps_total", "Post-warm-up detector steps.");
        let warmup_completions = registry.register_counter(
            "sad_detector_warmup_completions_total",
            "Warm-up segments completed.",
        );
        let initial_fits = registry.register_counter(
            "sad_detector_initial_fits_total",
            "Initial model fits at the end of warm-up.",
        );
        let mut drift_events = None;
        for known in PAPER_TASK2_VARIANTS {
            let id = registry.register_counter(
                &drift_counter_name(known),
                "Drift triggers by Task-2 variant.",
            );
            if known == variant {
                drift_events = Some(id);
            }
        }
        let drift_events = drift_events.unwrap_or_else(|| {
            registry
                .register_counter(&drift_counter_name(variant), "Drift triggers by Task-2 variant.")
        });
        let fine_tune_events = registry.register_counter(
            "sad_detector_fine_tune_events_total",
            "Fine-tune sessions (drift events with a trainable model).",
        );
        let nonconformity = registry.register_histogram(
            "sad_detector_nonconformity",
            "Per-step nonconformity scores a_t.",
            Histogram::linear(0.0, 1.0, 20),
        );
        Self {
            registry,
            steps,
            warmup_completions,
            initial_fits,
            drift_events,
            fine_tune_events,
            nonconformity,
        }
    }

    /// Records one completed post-warm-up step and its nonconformity
    /// score. Zero-alloc.
    #[inline]
    pub fn record_step(&mut self, a_t: f64) {
        self.registry.inc(self.steps, 1);
        self.registry.record(self.nonconformity, a_t);
    }

    /// Records warm-up completion and its initial model fit. Zero-alloc.
    #[inline]
    pub fn on_warmup_complete(&mut self) {
        self.registry.inc(self.warmup_completions, 1);
        self.registry.inc(self.initial_fits, 1);
    }

    /// Records one drift trigger. Zero-alloc.
    #[inline]
    pub fn on_drift(&mut self) {
        self.registry.inc(self.drift_events, 1);
    }

    /// Records one fine-tune session. Zero-alloc.
    #[inline]
    pub fn on_fine_tune(&mut self) {
        self.registry.inc(self.fine_tune_events, 1);
    }

    /// The underlying registry (read-only).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Snapshots the lifecycle registry plus the two export-time metrics
    /// that live outside it: `sad_detector_removal_misses_total` (pulled
    /// from the Task-2 detector) and `sad_detector_train_seconds` (the
    /// cumulative training wall time). Allocates — export path only.
    pub fn snapshot(&self, removal_misses: u64, train_time: std::time::Duration) -> Registry {
        let mut reg = self.registry.clone();
        let rm = reg.register_counter(
            "sad_detector_removal_misses_total",
            "Training-set removals the Task-2 detector could not honor.",
        );
        reg.inc(rm, removal_misses);
        let tt = reg.register_gauge(
            "sad_detector_train_seconds",
            "Cumulative model training wall time (max across merged detectors).",
        );
        reg.set_gauge(tt, train_time.as_secs_f64());
        reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schemas_merge_across_task2_variants() {
        let mut a = LifecycleTelemetry::new("KS");
        let mut b = LifecycleTelemetry::new("μ/σ");
        a.record_step(0.2);
        a.on_drift();
        b.record_step(0.8);
        b.record_step(0.9);
        b.on_drift();
        b.on_fine_tune();
        let mut merged = a.snapshot(3, std::time::Duration::from_secs(2));
        merged.merge_from(&b.snapshot(0, std::time::Duration::from_secs(5)));
        assert_eq!(merged.counter_by_name("sad_detector_steps_total"), Some(3));
        assert_eq!(merged.counter_by_name(&drift_counter_name("KS")), Some(1));
        assert_eq!(merged.counter_by_name(&drift_counter_name("μ/σ")), Some(1));
        assert_eq!(merged.counter_by_name(&drift_counter_name("Regular")), Some(0));
        assert_eq!(merged.counter_by_name("sad_detector_fine_tune_events_total"), Some(1));
        assert_eq!(merged.counter_by_name("sad_detector_removal_misses_total"), Some(3));
        assert_eq!(merged.gauge_by_name("sad_detector_train_seconds"), Some(5.0));
        assert_eq!(merged.histogram_by_name("sad_detector_nonconformity").unwrap().count(), 3);
    }

    #[test]
    fn unknown_variant_gets_its_own_labelled_counter() {
        let mut t = LifecycleTelemetry::new("Custom");
        t.on_drift();
        assert_eq!(t.registry().counter_by_name(&drift_counter_name("Custom")), Some(1));
        assert_eq!(t.registry().counter_by_name(&drift_counter_name("KS")), Some(0));
    }
}
