//! Anomaly scoring (paper Definition III.4 and §IV-E).
//!
//! An anomaly scoring function maps the window of the last `k`
//! nonconformity scores to the final anomaly score `f_t`. The paper
//! evaluates three: the raw pass-through, the window **average**, and the
//! Numenta **anomaly likelihood** `f_t = 1 − Q((μ̃_t − μ_t)/σ_t)` comparing
//! a short-term mean `μ̃` (window `k' ≪ k`) against the long-term mean `μ`.

use sad_stats::q_function;
use std::collections::VecDeque;

/// An anomaly scoring function `F` consuming one nonconformity score per
/// step and emitting the final anomaly score `f_t ∈ [0, 1]`.
pub trait AnomalyScorer: Send {
    /// Short name ("Raw", "Avg", "AL").
    fn name(&self) -> &'static str;

    /// Consumes `a_t`, returns `f_t`.
    fn update(&mut self, a_t: f64) -> f64;

    /// Clears accumulated state.
    fn reset(&mut self);

    /// Clones the scorer behind the trait object.
    fn clone_box(&self) -> Box<dyn AnomalyScorer>;
}

impl Clone for Box<dyn AnomalyScorer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// A bank of independent anomaly scorers fed from one nonconformity
/// stream.
///
/// Definition III.4 makes the anomaly scoring function a pure
/// post-processing stage over `a_t`: scorers never feed back into the
/// nonconformity computation. A bank exploits that — the detector streams
/// the series **once** and tees each per-step `a_t` into every scorer,
/// producing one score trace per scorer from a single (expensive) detector
/// pass. Each scorer in the bank evolves exactly as it would in its own
/// detector, so the traces are bitwise identical to per-scorer runs
/// whenever the detector trajectory itself is scorer-independent (see
/// [`crate::TrainingSetStrategy::uses_anomaly_feedback`]).
#[derive(Clone, Default)]
pub struct ScorerBank {
    scorers: Vec<Box<dyn AnomalyScorer>>,
}

impl ScorerBank {
    /// Creates a bank over the given scorers (order is preserved).
    pub fn new(scorers: Vec<Box<dyn AnomalyScorer>>) -> Self {
        Self { scorers }
    }

    /// Number of scorers in the bank.
    pub fn len(&self) -> usize {
        self.scorers.len()
    }

    /// `true` when the bank holds no scorers.
    pub fn is_empty(&self) -> bool {
        self.scorers.is_empty()
    }

    /// Short names of the scorers, in bank order.
    pub fn names(&self) -> Vec<&'static str> {
        self.scorers.iter().map(|s| s.name()).collect()
    }

    /// Feeds `a_t` to every scorer, appending one `f_t` per scorer (in
    /// bank order) to `out`. `out` is cleared first, so it can be reused
    /// across steps without reallocating.
    pub fn update_into(&mut self, a_t: f64, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.scorers.iter_mut().map(|s| s.update(a_t)));
    }

    /// Replays a packed nonconformity trace **scorer-major**: each scorer
    /// consumes the entire contiguous trace before the next one starts,
    /// returning one full score trace per scorer (bank order).
    ///
    /// Scorers are independent state machines over the `a_t` sequence, so
    /// scorer-major replay produces bit-for-bit the traces the per-step
    /// interleaved teeing ([`Self::update_into`] once per step) would —
    /// while each scorer's state stays hot in cache and the trace is read
    /// as a contiguous streaming scan instead of being re-touched `len`
    /// times per step. This is the offline counterpart of the packed
    /// snapshot idiom: build the contiguous trace once, then sweep it.
    pub fn replay_packed(&mut self, trace: &[f64]) -> Vec<Vec<f64>> {
        self.scorers
            .iter_mut()
            .map(|s| trace.iter().map(|&a| s.update(a)).collect())
            .collect()
    }

    /// Resets every scorer in the bank.
    pub fn reset(&mut self) {
        for s in &mut self.scorers {
            s.reset();
        }
    }
}

impl std::fmt::Debug for ScorerBank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScorerBank").field("scorers", &self.names()).finish()
    }
}

/// The raw nonconformity score, unmodified (the paper's "Raw" baseline row
/// in Table III).
#[derive(Debug, Clone, Default)]
pub struct RawScore;

impl AnomalyScorer for RawScore {
    fn name(&self) -> &'static str {
        "Raw"
    }

    fn update(&mut self, a_t: f64) -> f64 {
        a_t
    }

    fn reset(&mut self) {}

    fn clone_box(&self) -> Box<dyn AnomalyScorer> {
        Box::new(self.clone())
    }
}

/// Moving average over the last `k` nonconformity scores.
#[derive(Debug, Clone)]
pub struct MovingAverage {
    k: usize,
    buf: VecDeque<f64>,
    sum: f64,
}

impl MovingAverage {
    /// Creates an averager over window `k`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "window length must be positive");
        Self { k, buf: VecDeque::with_capacity(k), sum: 0.0 }
    }
}

impl AnomalyScorer for MovingAverage {
    fn name(&self) -> &'static str {
        "Avg"
    }

    fn update(&mut self, a_t: f64) -> f64 {
        if self.buf.len() == self.k {
            self.sum -= self.buf.pop_front().expect("non-empty at capacity");
        }
        self.buf.push_back(a_t);
        self.sum += a_t;
        (self.sum / self.buf.len() as f64).clamp(0.0, 1.0)
    }

    fn reset(&mut self) {
        self.buf.clear();
        self.sum = 0.0;
    }

    fn clone_box(&self) -> Box<dyn AnomalyScorer> {
        Box::new(self.clone())
    }
}

/// The Numenta anomaly likelihood (Lavin & Ahmad 2015, as adopted in §IV-E).
///
/// `f_t = 1 − Q((μ̃_t − μ_t)/σ_t)` with `μ_t, σ_t` over the long window `k`
/// and `μ̃_t` over the short window `k'`. A short-term mean above the
/// long-term mean pushes the likelihood toward 1.
#[derive(Debug, Clone)]
pub struct AnomalyLikelihood {
    k: usize,
    k_short: usize,
    buf: VecDeque<f64>,
}

impl AnomalyLikelihood {
    /// σ floor preventing division blow-ups on constant score streams.
    const SIGMA_FLOOR: f64 = 1e-6;

    /// Creates the scorer with long window `k` and short window `k_short`
    /// (`k_short < k` as the paper requires `k' ≪ k`).
    pub fn new(k: usize, k_short: usize) -> Self {
        assert!(k_short >= 1 && k_short < k, "need 1 <= k' < k");
        Self { k, k_short, buf: VecDeque::with_capacity(k) }
    }
}

impl AnomalyScorer for AnomalyLikelihood {
    fn name(&self) -> &'static str {
        "AL"
    }

    fn update(&mut self, a_t: f64) -> f64 {
        if self.buf.len() == self.k {
            self.buf.pop_front();
        }
        self.buf.push_back(a_t);
        let n = self.buf.len();
        let mu: f64 = self.buf.iter().sum::<f64>() / n as f64;
        let var: f64 = self.buf.iter().map(|v| (v - mu) * (v - mu)).sum::<f64>() / n as f64;
        let sigma = var.sqrt().max(Self::SIGMA_FLOOR);
        let short_n = self.k_short.min(n);
        let mu_short: f64 =
            self.buf.iter().rev().take(short_n).sum::<f64>() / short_n as f64;
        1.0 - q_function((mu_short - mu) / sigma)
    }

    fn reset(&mut self) {
        self.buf.clear();
    }

    fn clone_box(&self) -> Box<dyn AnomalyScorer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_is_identity() {
        let mut s = RawScore;
        assert_eq!(s.update(0.37), 0.37);
        assert_eq!(s.update(0.0), 0.0);
    }

    #[test]
    fn moving_average_known_sequence() {
        let mut s = MovingAverage::new(3);
        assert!((s.update(0.3) - 0.3).abs() < 1e-12);
        assert!((s.update(0.6) - 0.45).abs() < 1e-12);
        assert!((s.update(0.9) - 0.6).abs() < 1e-12);
        // Window slides: (0.6 + 0.9 + 0.0) / 3
        assert!((s.update(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn moving_average_smooths_spikes() {
        let mut s = MovingAverage::new(10);
        for _ in 0..10 {
            s.update(0.1);
        }
        let spiked = s.update(1.0);
        assert!(spiked < 0.3, "single spike is damped, got {spiked}");
    }

    #[test]
    fn likelihood_spikes_on_score_jump() {
        let mut s = AnomalyLikelihood::new(50, 5);
        let mut last = 0.0;
        for _ in 0..50 {
            last = s.update(0.1 + 0.001 * (last - 0.1)); // ~constant baseline
        }
        let baseline = s.update(0.1);
        // Five high scores lift the short-term mean well above μ.
        let mut spiked = 0.0;
        for _ in 0..5 {
            spiked = s.update(0.9);
        }
        assert!(spiked > 0.9, "jump must push likelihood toward 1, got {spiked}");
        assert!(baseline < 0.8, "baseline likelihood moderate, got {baseline}");
    }

    #[test]
    fn likelihood_constant_stream_is_midscale() {
        let mut s = AnomalyLikelihood::new(20, 3);
        let mut f = 0.0;
        for _ in 0..40 {
            f = s.update(0.5);
        }
        // μ̃ == μ on a constant stream -> Q(0) = 0.5.
        assert!((f - 0.5).abs() < 1e-6, "got {f}");
    }

    #[test]
    fn likelihood_in_unit_interval() {
        let mut s = AnomalyLikelihood::new(10, 2);
        for i in 0..200 {
            let a = ((i * 37) % 100) as f64 / 100.0;
            let f = s.update(a);
            assert!((0.0..=1.0).contains(&f), "f={f}");
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut s = MovingAverage::new(3);
        s.update(0.9);
        s.reset();
        assert!((s.update(0.3) - 0.3).abs() < 1e-12);

        let mut al = AnomalyLikelihood::new(5, 2);
        al.update(0.9);
        al.reset();
        let f = al.update(0.1);
        assert!((f - 0.5).abs() < 1e-6, "single sample => μ̃ == μ, got {f}");
    }

    #[test]
    #[should_panic(expected = "need 1 <= k' < k")]
    fn bad_likelihood_windows_panic() {
        let _ = AnomalyLikelihood::new(5, 5);
    }

    #[test]
    fn bank_matches_independent_scorers_bitwise() {
        let mut bank = ScorerBank::new(vec![
            Box::new(RawScore),
            Box::new(MovingAverage::new(7)),
            Box::new(AnomalyLikelihood::new(20, 4)),
        ]);
        let mut raw = RawScore;
        let mut avg = MovingAverage::new(7);
        let mut al = AnomalyLikelihood::new(20, 4);
        let mut out = Vec::new();
        for i in 0..100 {
            let a = ((i * 37) % 100) as f64 / 100.0;
            bank.update_into(a, &mut out);
            assert_eq!(out.len(), 3);
            assert_eq!(out[0].to_bits(), raw.update(a).to_bits());
            assert_eq!(out[1].to_bits(), avg.update(a).to_bits());
            assert_eq!(out[2].to_bits(), al.update(a).to_bits());
        }
    }

    #[test]
    fn bank_reset_and_names() {
        let mut bank =
            ScorerBank::new(vec![Box::new(MovingAverage::new(3)), Box::new(RawScore)]);
        assert_eq!(bank.names(), vec!["Avg", "Raw"]);
        assert_eq!(bank.len(), 2);
        assert!(!bank.is_empty());
        let mut out = Vec::new();
        bank.update_into(0.9, &mut out);
        bank.reset();
        bank.update_into(0.3, &mut out);
        // After reset the moving average starts over: a single sample.
        assert!((out[0] - 0.3).abs() < 1e-12);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// All scorers map [0,1] nonconformities into [0,1] scores.
            #[test]
            fn outputs_in_unit_interval(
                scores in proptest::collection::vec(0.0f64..=1.0, 1..200),
                which in 0u8..3,
            ) {
                let mut scorer: Box<dyn AnomalyScorer> = match which {
                    0 => Box::new(RawScore),
                    1 => Box::new(MovingAverage::new(10)),
                    _ => Box::new(AnomalyLikelihood::new(20, 4)),
                };
                for &a in &scores {
                    let f = scorer.update(a);
                    prop_assert!((0.0..=1.0).contains(&f), "f={}", f);
                }
            }
        }
    }
}
