//! # sad-core
//!
//! The extended SAFARI framework for multivariate streaming anomaly
//! detection — the primary contribution of the reproduced paper.
//!
//! The framework decomposes every streaming detector into four components
//! (paper §III):
//!
//! 1. **Data representation** `x_t = D(s_{t−w+1}, …, s_t)` — [`repr`]. The
//!    paper uses exactly one representation, the raw window of the last `w`
//!    stream vectors.
//! 2. **Learning strategy** `θ_t = L(x_t, θ_{t−1})` over reference
//!    parameters `θ = {θ_model, R_train}`, split into
//!    * **Task 1** — maintaining the training set `R_train`: sliding window
//!      (SW), uniform reservoir (URES), anomaly-aware reservoir (ARES) —
//!      [`strategy`];
//!    * **Task 2** — deciding when to fine-tune `θ_model`: regular
//!      interval, μ/σ-Change, KSWIN — [`drift`].
//! 3. **Nonconformity measure** `a_t = A(x_t, θ_t)` — [`mod@nonconformity`]:
//!    cosine-similarity-based for reconstruction/forecast models, the
//!    native isolation-forest score for PCB-iForest.
//! 4. **Anomaly scoring** `f_t = F(a_{t−k+1}, …, a_t)` — [`score`]: raw
//!    pass-through, moving average, and the Numenta anomaly likelihood.
//!
//! [`detector::Detector`] wires the four components plus a [`model`] into
//! the streaming pipeline, and [`registry`] enumerates the paper's Table I —
//! the 26 evaluated component combinations.

pub mod detector;
pub mod drift;
pub mod model;
pub mod nonconformity;
pub mod registry;
pub mod repr;
pub mod score;
pub mod strategy;
pub mod telemetry;

pub use detector::{Detector, DetectorConfig, FanoutRun, SharedWarmup, StepOutput};
pub use drift::{DriftDetector, KswinDetector, MuSigmaChange, RegularInterval};
pub use model::{ModelOutput, StreamModel};
pub use nonconformity::{nonconformity, NonconformityKind};
pub use registry::{paper_algorithms, AlgorithmSpec, ModelKind, ScoreKind, Task1, Task2};
pub use repr::{DataRepresentation, FeatureVector, RawWindow};
pub use score::{AnomalyLikelihood, AnomalyScorer, MovingAverage, RawScore, ScorerBank};
pub use strategy::{
    AnomalyAwareReservoir, SetUpdate, SlidingWindowSet, TrainingSetStrategy, UniformReservoir,
};
pub use telemetry::LifecycleTelemetry;
