//! Data representation (paper Definition III.1).
//!
//! A stream `S = {s_1, …, s_t}` with `s_i ∈ R^N` is transformed into a
//! feature vector `x_t = D(s_{t−w+1}, …, s_t)`. The paper's experiments use
//! one representation — the raw window `x_t = [s_{t−w+1}, …, s_t]ᵀ` — since
//! the ML models learn their own representations internally (§IV-A).

/// A feature vector `x_t ∈ R^{w×N}`: the last `w` stream vectors, stored
/// row-major as `data[step * n + channel]` (oldest step first, so the last
/// row is `s_t`).
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureVector {
    data: Vec<f64>,
    w: usize,
    n: usize,
}

impl FeatureVector {
    /// Creates a feature vector from row-major window data.
    ///
    /// # Panics
    /// Panics if `data.len() != w * n` or either dimension is zero.
    pub fn new(data: Vec<f64>, w: usize, n: usize) -> Self {
        assert!(w > 0 && n > 0, "feature vector dimensions must be positive");
        assert_eq!(data.len(), w * n, "feature vector data length mismatch");
        Self { data, w, n }
    }

    /// Representation length `w` (number of time steps).
    #[inline]
    pub fn w(&self) -> usize {
        self.w
    }

    /// Channel count `N`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Flat dimensionality `w · N`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.data.len()
    }

    /// The flattened feature vector (reshaping operation `r(x_t)` of §IV-C).
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The stream vector at window position `i` (`0` = oldest).
    #[inline]
    pub fn step(&self, i: usize) -> &[f64] {
        assert!(i < self.w, "step index out of range");
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// The most recent stream vector `s_t`.
    #[inline]
    pub fn last_step(&self) -> &[f64] {
        self.step(self.w - 1)
    }

    /// All `w` values of channel `j`, oldest first.
    ///
    /// Allocates; per-step hot paths should walk [`Self::channel_iter`]
    /// (or extend a reusable scratch buffer from it) instead.
    pub fn channel(&self, j: usize) -> Vec<f64> {
        self.channel_iter(j).collect()
    }

    /// Strided iterator over the `w` values of channel `j`, oldest first —
    /// the allocation-free counterpart of [`Self::channel`].
    #[inline]
    pub fn channel_iter(&self, j: usize) -> impl Iterator<Item = f64> + '_ {
        assert!(j < self.n, "channel index out of range");
        self.data.iter().skip(j).step_by(self.n).copied()
    }

    /// `true` if every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// An all-zero feature vector of the given shape — a reusable scratch
    /// buffer for [`RawWindow::push_into`].
    pub fn zeroed(w: usize, n: usize) -> Self {
        Self::new(vec![0.0; w * n], w, n)
    }

    /// Overwrites this vector's contents with `other`'s, without touching
    /// the heap.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    #[inline]
    pub fn copy_from(&mut self, other: &FeatureVector) {
        assert!(self.w == other.w && self.n == other.n, "feature vector shape mismatch");
        self.data.copy_from_slice(&other.data);
    }
}

/// A data representation function `D` (Definition III.1).
///
/// Implementations consume the stream one vector at a time and emit a
/// feature vector once enough history has accumulated.
pub trait DataRepresentation {
    /// Window length `w` this representation needs.
    fn window(&self) -> usize;

    /// Pushes stream vector `s_t`; returns `Some(x_t)` once `w` vectors
    /// have been observed (and on every step thereafter).
    fn push(&mut self, s: &[f64]) -> Option<FeatureVector>;

    /// Clears the internal history.
    fn reset(&mut self);
}

/// The paper's raw-window representation `x_t = [s_{t−w+1}, …, s_t]ᵀ`.
///
/// The history is a flat row-major ring (`w` rows of `n` values) so the
/// per-step hot path touches no heap: [`Self::push_into`] overwrites the
/// oldest row in place and copies the ordered window into a caller-owned
/// scratch [`FeatureVector`].
#[derive(Debug, Clone)]
pub struct RawWindow {
    w: usize,
    n: usize,
    /// Flat `w × n` ring storage; row `head` is the oldest once full.
    ring: Vec<f64>,
    /// Rows filled so far (saturates at `w`).
    len: usize,
    /// Index of the oldest row once the ring is full.
    head: usize,
}

impl RawWindow {
    /// Creates the representation for window length `w` over `n` channels.
    pub fn new(w: usize, n: usize) -> Self {
        assert!(w > 0 && n > 0, "window and channel count must be positive");
        Self { w, n, ring: vec![0.0; w * n], len: 0, head: 0 }
    }

    /// Channel count `N`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Pushes stream vector `s_t` without allocating: the ring row holding
    /// the oldest step is overwritten in place, and once `w` vectors have
    /// been observed the ordered window is copied into `out` (oldest step
    /// first). Returns `true` iff `out` now holds `x_t`.
    ///
    /// # Panics
    /// Panics if `s.len() != n` or `out`'s shape is not `(w, n)`.
    pub fn push_into(&mut self, s: &[f64], out: &mut FeatureVector) -> bool {
        assert_eq!(s.len(), self.n, "stream vector channel count mismatch");
        assert!(out.w == self.w && out.n == self.n, "scratch feature vector shape mismatch");
        let n = self.n;
        if self.len < self.w {
            self.ring[self.len * n..(self.len + 1) * n].copy_from_slice(s);
            self.len += 1;
            if self.len < self.w {
                return false;
            }
        } else {
            self.ring[self.head * n..(self.head + 1) * n].copy_from_slice(s);
            self.head = (self.head + 1) % self.w;
        }
        // Unroll the ring into chronological order: rows head..w, then
        // 0..head.
        let tail_rows = self.w - self.head;
        out.data[..tail_rows * n].copy_from_slice(&self.ring[self.head * n..]);
        out.data[tail_rows * n..].copy_from_slice(&self.ring[..self.head * n]);
        true
    }
}

impl DataRepresentation for RawWindow {
    fn window(&self) -> usize {
        self.w
    }

    fn push(&mut self, s: &[f64]) -> Option<FeatureVector> {
        let mut out = FeatureVector::zeroed(self.w, self.n);
        self.push_into(s, &mut out).then_some(out)
    }

    fn reset(&mut self) {
        self.len = 0;
        self.head = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_agree_with_layout() {
        // w=3 steps, n=2 channels.
        let fv = FeatureVector::new(vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0], 3, 2);
        assert_eq!(fv.dim(), 6);
        assert_eq!(fv.step(0), &[1.0, 10.0]);
        assert_eq!(fv.last_step(), &[3.0, 30.0]);
        assert_eq!(fv.channel(0), vec![1.0, 2.0, 3.0]);
        assert_eq!(fv.channel(1), vec![10.0, 20.0, 30.0]);
    }

    #[test]
    fn raw_window_emits_after_w_steps() {
        let mut repr = RawWindow::new(3, 1);
        assert!(repr.push(&[1.0]).is_none());
        assert!(repr.push(&[2.0]).is_none());
        let x = repr.push(&[3.0]).expect("third push fills the window");
        assert_eq!(x.as_slice(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn raw_window_slides() {
        let mut repr = RawWindow::new(2, 2);
        repr.push(&[1.0, 1.5]);
        repr.push(&[2.0, 2.5]);
        let x = repr.push(&[3.0, 3.5]).unwrap();
        assert_eq!(x.as_slice(), &[2.0, 2.5, 3.0, 3.5]);
        assert_eq!(x.last_step(), &[3.0, 3.5]);
    }

    #[test]
    fn reset_clears_history() {
        let mut repr = RawWindow::new(2, 1);
        repr.push(&[1.0]);
        repr.push(&[2.0]);
        repr.reset();
        assert!(repr.push(&[3.0]).is_none());
    }

    #[test]
    fn push_into_matches_push_bitwise() {
        let mut a = RawWindow::new(4, 2);
        let mut b = RawWindow::new(4, 2);
        let mut scratch = FeatureVector::zeroed(4, 2);
        for t in 0..30 {
            let s = [(t as f64 * 0.37).sin(), (t as f64 * 0.11).cos()];
            let via_push = a.push(&s);
            let filled = b.push_into(&s, &mut scratch);
            assert_eq!(via_push.is_some(), filled, "t={t}");
            if let Some(x) = via_push {
                assert_eq!(x.as_slice(), scratch.as_slice(), "t={t}");
            }
        }
    }

    #[test]
    fn push_into_survives_reset() {
        let mut repr = RawWindow::new(2, 1);
        let mut scratch = FeatureVector::zeroed(2, 1);
        assert!(!repr.push_into(&[1.0], &mut scratch));
        assert!(repr.push_into(&[2.0], &mut scratch));
        repr.reset();
        assert!(!repr.push_into(&[3.0], &mut scratch));
        assert!(repr.push_into(&[4.0], &mut scratch));
        assert_eq!(scratch.as_slice(), &[3.0, 4.0]);
    }

    #[test]
    fn copy_from_overwrites_in_place() {
        let mut dst = FeatureVector::zeroed(2, 2);
        let src = FeatureVector::new(vec![1.0, 2.0, 3.0, 4.0], 2, 2);
        dst.copy_from(&src);
        assert_eq!(dst.as_slice(), src.as_slice());
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn copy_from_shape_mismatch_panics() {
        let mut dst = FeatureVector::zeroed(2, 2);
        dst.copy_from(&FeatureVector::zeroed(2, 3));
    }

    #[test]
    fn is_finite_flags_nan() {
        let ok = FeatureVector::new(vec![0.0; 4], 2, 2);
        assert!(ok.is_finite());
        let bad = FeatureVector::new(vec![0.0, f64::NAN, 0.0, 0.0], 2, 2);
        assert!(!bad.is_finite());
    }

    #[test]
    #[should_panic(expected = "channel count mismatch")]
    fn wrong_channel_count_panics() {
        let mut repr = RawWindow::new(2, 2);
        let _ = repr.push(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "data length mismatch")]
    fn bad_data_length_panics() {
        let _ = FeatureVector::new(vec![1.0; 5], 2, 2);
    }
}
