//! Learning strategy Task 2: concept-drift detection / fine-tune triggering
//! (paper §IV-B).
//!
//! Three strategies decide *when* the model parameters are re-estimated on
//! the current training set:
//!
//! * [`RegularInterval`] — fine-tune every `m` steps (the paper's "regular
//!   fine-tuning" baseline);
//! * [`MuSigmaChange`] — maintain a running mean feature vector and
//!   standard deviation of the training set; trigger when the mean drifts
//!   by more than the reference σ, or σ changes by a factor of 2. The
//!   paper's printed condition `(1/2)σ_i > σ_t > 2σ_i` is unsatisfiable;
//!   the evident intent `σ_t < σ_i/2 ∨ σ_t > 2σ_i` is implemented (see
//!   DESIGN.md substitution #5);
//! * [`KswinDetector`] — per-channel two-sample Kolmogorov–Smirnov test
//!   between the training set at the last fine-tune and the current one
//!   (Raab et al. 2020), with the `α* = α/r` repeated-testing correction.
//!
//! Every detector tallies its arithmetic into an [`OpCount`], which the
//! Table II bench compares against the paper's closed forms.

use crate::repr::FeatureVector;
use crate::strategy::SetUpdate;
use sad_stats::{ks_critical_value, ks_statistic_sorted, OpCount, VectorRunningStats};

/// A Task-2 strategy: decides at every step whether the model should be
/// fine-tuned on the current training set.
pub trait DriftDetector: Send {
    /// Short name matching the paper ("Regular", "μ/σ", "KS").
    fn name(&self) -> &'static str;

    /// Observes the step-`t` training-set update; returns `true` when
    /// fine-tuning should occur.
    fn observe(&mut self, x: &FeatureVector, update: &SetUpdate, train: &[FeatureVector]) -> bool;

    /// Notifies the detector that fine-tuning happened, so it can snapshot
    /// the reference training-set statistics.
    fn on_fine_tune(&mut self, train: &[FeatureVector]);

    /// Cumulative arithmetic-operation tally (Table II instrumentation).
    fn ops(&self) -> OpCount;

    /// How many training-set removals could not be honored because the
    /// value was absent from the detector's internal state. Only
    /// [`KswinDetector`] maintains removable state, so the default is 0;
    /// a non-zero count flags a Task-1 strategy bug (surfaced through the
    /// telemetry registry as `sad_detector_removal_misses_total`).
    fn removal_misses(&self) -> u64 {
        0
    }

    /// Clones the detector behind the trait object.
    fn clone_box(&self) -> Box<dyn DriftDetector>;
}

impl Clone for Box<dyn DriftDetector> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Fine-tune after every fixed number of steps (paper: "retrain the model
/// parameters after a regular time interval ... after every m time steps").
#[derive(Debug, Clone)]
pub struct RegularInterval {
    every: usize,
    since: usize,
}

impl RegularInterval {
    /// Creates a detector firing every `every` steps.
    pub fn new(every: usize) -> Self {
        assert!(every > 0, "interval must be positive");
        Self { every, since: 0 }
    }
}

impl DriftDetector for RegularInterval {
    fn name(&self) -> &'static str {
        "Regular"
    }

    fn observe(&mut self, _x: &FeatureVector, _update: &SetUpdate, _train: &[FeatureVector]) -> bool {
        self.since += 1;
        self.since >= self.every
    }

    fn on_fine_tune(&mut self, _train: &[FeatureVector]) {
        self.since = 0;
    }

    fn ops(&self) -> OpCount {
        OpCount::default()
    }

    fn clone_box(&self) -> Box<dyn DriftDetector> {
        Box::new(self.clone())
    }
}

/// The μ/σ-Change strategy.
///
/// Keeps element-wise running statistics of the training set (updated in
/// `O(Nw)` from the [`SetUpdate`] delta) and a snapshot `(μ_i, σ_i)` taken
/// at the last fine-tune. Triggers when
/// `d(μ_i, μ_t) > σ_i` (RMS distance across the `Nw` dimensions) or when
/// `σ_t` leaves `[σ_i/2, 2σ_i]`.
#[derive(Debug, Clone)]
pub struct MuSigmaChange {
    stats: Option<VectorRunningStats>,
    ref_mean: Vec<f64>,
    ref_sigma: f64,
    has_ref: bool,
    ops: OpCount,
}

impl MuSigmaChange {
    /// Floor applied to the reference σ so a perfectly constant warm-up
    /// window does not trigger on numerical dust every step.
    const SIGMA_FLOOR: f64 = 1e-9;

    /// Creates the detector (statistics are sized lazily on first update).
    pub fn new() -> Self {
        Self { stats: None, ref_mean: Vec::new(), ref_sigma: 0.0, has_ref: false, ops: OpCount::default() }
    }

    fn stats_mut(&mut self, dim: usize) -> &mut VectorRunningStats {
        self.stats.get_or_insert_with(|| VectorRunningStats::new(dim))
    }
}

impl Default for MuSigmaChange {
    fn default() -> Self {
        Self::new()
    }
}

impl DriftDetector for MuSigmaChange {
    fn name(&self) -> &'static str {
        "μ/σ"
    }

    fn observe(&mut self, x: &FeatureVector, update: &SetUpdate, _train: &[FeatureVector]) -> bool {
        let d = x.dim() as u64;
        let stats = self.stats_mut(x.dim());
        match update {
            SetUpdate::Appended => {
                stats.insert(x.as_slice());
                // per dim: sum += v (1 add), sum_sq += v*v (1 add, 1 mul)
                self.ops.additions += 2 * d;
                self.ops.multiplications += d;
            }
            SetUpdate::Replaced { removed } => {
                stats.replace(removed.as_slice(), x.as_slice());
                // per dim: sum += new-old (2 adds), sum_sq += new²-old² (2 adds, 2 muls)
                self.ops.additions += 4 * d;
                self.ops.multiplications += 2 * d;
            }
            SetUpdate::Unchanged => {}
        }
        if !self.has_ref {
            return false;
        }
        let stats = self.stats.as_ref().expect("stats initialized above");
        if stats.count() < 2 {
            return false;
        }
        // RMS distance between the reference and current mean vectors,
        // streamed per dimension (no temporary mean vector on the heap).
        let dist_sq: f64 = self
            .ref_mean
            .iter()
            .zip(stats.means())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / stats.dim() as f64;
        let dist = dist_sq.sqrt();
        let sigma_t = stats.mean_std_dev();
        // per dim: mean (1 mul), diff² (1 add, 1 mul), variance (2 mul, 1 add), sqrt
        self.ops.additions += 2 * d;
        self.ops.multiplications += 4 * d;
        self.ops.comparisons += 3; // the three trigger comparisons
        let sigma_ref = self.ref_sigma.max(Self::SIGMA_FLOOR);
        dist > sigma_ref || sigma_t > 2.0 * sigma_ref || sigma_t < 0.5 * sigma_ref
    }

    fn on_fine_tune(&mut self, _train: &[FeatureVector]) {
        if let Some(stats) = &self.stats {
            // Reuse the reference buffer's capacity after the first snapshot.
            self.ref_mean.clear();
            self.ref_mean.extend(stats.means());
            self.ref_sigma = stats.mean_std_dev();
            self.has_ref = true;
        }
    }

    fn ops(&self) -> OpCount {
        self.ops
    }

    fn clone_box(&self) -> Box<dyn DriftDetector> {
        Box::new(self.clone())
    }
}

/// The KSWIN strategy: per-channel two-sample KS test against the training
/// set snapshot taken at the last fine-tune (Raab et al. 2020).
///
/// Each channel's sample is the multiset of all `m·w` values that channel
/// contributes to the training set. Both the snapshot and the live set are
/// kept as sorted arrays; live updates insert/remove via binary search —
/// the very operation the paper's Table II charges the
/// `(1+4m)Nw·log₂(mw)` comparison term for.
#[derive(Debug, Clone)]
pub struct KswinDetector {
    alpha: f64,
    stride: usize,
    since_check: usize,
    snapshot: Vec<Vec<f64>>,
    current: Vec<Vec<f64>>,
    ops: OpCount,
    /// Count of removal requests for values not actually present in the
    /// sorted multiset (see [`Self::removal_misses`]).
    removal_misses: u64,
}

impl KswinDetector {
    /// The significance level used throughout the paper's experiments
    /// (Raab et al.'s default).
    pub const DEFAULT_ALPHA: f64 = 0.01;

    /// Creates the detector testing at significance `alpha` on every step.
    pub fn new(alpha: f64) -> Self {
        Self::with_stride(alpha, 1)
    }

    /// Creates the detector testing only every `stride` steps (the set
    /// bookkeeping still runs every step). A stride > 1 trades detection
    /// latency for throughput in long evaluation sweeps.
    pub fn with_stride(alpha: f64, stride: usize) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
        assert!(stride > 0, "stride must be positive");
        Self {
            alpha,
            stride,
            since_check: 0,
            snapshot: Vec::new(),
            current: Vec::new(),
            ops: OpCount::default(),
            removal_misses: 0,
        }
    }

    /// How many times a caller asked to remove a value that was not in the
    /// sorted multiset. Always 0 when the detector is driven by a
    /// well-behaved Task-1 strategy (every `Replaced.removed` vector was
    /// previously inserted verbatim); a non-zero count flags a strategy
    /// bug without corrupting the multiset (the bogus removal is skipped).
    pub fn removal_misses(&self) -> u64 {
        self.removal_misses
    }

    fn ensure_channels(&mut self, n: usize) {
        if self.current.len() != n {
            self.current = vec![Vec::new(); n];
        }
    }

    fn insert_sorted(channel: &mut Vec<f64>, value: f64, ops: &mut OpCount) {
        let idx = channel.partition_point(|&v| v < value);
        ops.comparisons += (channel.len().max(2) as f64).log2().ceil() as u64;
        channel.insert(idx, value);
    }

    /// Removes one occurrence of `value` from the sorted channel; returns
    /// `false` when the value is genuinely absent.
    ///
    /// The value was previously inserted verbatim, so exact float equality
    /// holds on the fast path. A miss used to `debug_assert!(false)` —
    /// which silently *skipped or corrupted nothing but hid the bug* in
    /// release builds; it now degrades to a bit-pattern scan (covers
    /// orderings `partition_point` cannot see, e.g. NaN payloads) and
    /// reports the outcome so the caller can log and count the anomaly
    /// instead of silently desynchronizing the multiset.
    fn remove_sorted(channel: &mut Vec<f64>, value: f64, ops: &mut OpCount) -> bool {
        let idx = channel.partition_point(|&v| v < value);
        ops.comparisons += (channel.len().max(2) as f64).log2().ceil() as u64;
        if idx < channel.len() && channel[idx] == value {
            channel.remove(idx);
            return true;
        }
        if let Some(pos) = channel.iter().position(|v| v.to_bits() == value.to_bits()) {
            channel.remove(pos);
            return true;
        }
        false
    }

    fn add_feature_vector(&mut self, x: &FeatureVector) {
        let mut ops = OpCount::default();
        for j in 0..x.n() {
            for i in 0..x.w() {
                Self::insert_sorted(&mut self.current[j], x.step(i)[j], &mut ops);
            }
        }
        self.ops += ops;
    }

    fn remove_feature_vector(&mut self, x: &FeatureVector) {
        let mut ops = OpCount::default();
        for j in 0..x.n() {
            for i in 0..x.w() {
                if !Self::remove_sorted(&mut self.current[j], x.step(i)[j], &mut ops) {
                    if self.removal_misses == 0 {
                        eprintln!(
                            "sad-core: KSWIN was asked to remove a value not present in \
                             channel {j}; skipping (multiset left intact, logged once)"
                        );
                    }
                    self.removal_misses += 1;
                }
            }
        }
        self.ops += ops;
    }
}

impl DriftDetector for KswinDetector {
    fn name(&self) -> &'static str {
        "KS"
    }

    fn removal_misses(&self) -> u64 {
        self.removal_misses
    }

    fn observe(&mut self, x: &FeatureVector, update: &SetUpdate, _train: &[FeatureVector]) -> bool {
        self.ensure_channels(x.n());
        match update {
            SetUpdate::Appended => self.add_feature_vector(x),
            SetUpdate::Replaced { removed } => {
                self.remove_feature_vector(removed);
                self.add_feature_vector(x);
            }
            SetUpdate::Unchanged => {}
        }
        if self.snapshot.is_empty() {
            return false;
        }
        self.since_check += 1;
        if self.since_check < self.stride {
            return false;
        }
        self.since_check = 0;

        let mut ops = OpCount::default();
        let mut drift = false;
        for (snap, cur) in self.snapshot.iter().zip(&self.current) {
            if snap.is_empty() || cur.is_empty() {
                continue;
            }
            let dist = ks_statistic_sorted(snap, cur, Some(&mut ops));
            // Repeated-testing correction of Raab et al.: α* = α / r.
            let alpha_star = (self.alpha / cur.len() as f64).max(f64::MIN_POSITIVE);
            let critical = ks_critical_value(alpha_star, snap.len(), cur.len());
            ops.comparisons += 1;
            if dist > critical {
                drift = true;
                break;
            }
        }
        self.ops += ops;
        drift
    }

    fn on_fine_tune(&mut self, _train: &[FeatureVector]) {
        self.snapshot = self.current.clone();
        self.since_check = 0;
    }

    fn ops(&self) -> OpCount {
        self.ops
    }

    fn clone_box(&self) -> Box<dyn DriftDetector> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{SlidingWindowSet, TrainingSetStrategy};

    /// Builds a feature vector with constant value `v` (w=4, n=2).
    fn fv(v: f64) -> FeatureVector {
        FeatureVector::new(vec![v; 8], 4, 2)
    }

    /// Feeds `values` through a sliding-window strategy and the detector,
    /// returning the steps at which drift fired (fine-tuning after each).
    fn run(det: &mut dyn DriftDetector, values: &[f64], m: usize) -> Vec<usize> {
        let mut strat = SlidingWindowSet::new(m);
        let mut fired = Vec::new();
        for (t, &v) in values.iter().enumerate() {
            let x = fv(v);
            let update = strat.update(&x, 0.0);
            let drift = det.observe(&x, &update, strat.training_set());
            // Mirror the detector pipeline: take the reference snapshot once
            // the warm-up set is full, then after every firing.
            if t + 1 == m {
                det.on_fine_tune(strat.training_set());
            }
            if drift && t + 1 > m {
                fired.push(t);
                det.on_fine_tune(strat.training_set());
            }
        }
        fired
    }

    #[test]
    fn regular_interval_fires_periodically() {
        let mut det = RegularInterval::new(5);
        let mut strat = SlidingWindowSet::new(3);
        let mut fired = Vec::new();
        for t in 0..20 {
            let x = fv(t as f64);
            let update = strat.update(&x, 0.0);
            if det.observe(&x, &update, strat.training_set()) {
                fired.push(t);
                det.on_fine_tune(strat.training_set());
            }
        }
        assert_eq!(fired, vec![4, 9, 14, 19]);
    }

    #[test]
    fn mu_sigma_stays_quiet_on_stationary_stream() {
        let mut det = MuSigmaChange::new();
        // Mildly varying but stationary values.
        let values: Vec<f64> = (0..200).map(|i| ((i * 17) % 7) as f64 * 0.01).collect();
        let fired = run(&mut det, &values, 20);
        assert!(fired.is_empty(), "no drift expected, fired at {fired:?}");
    }

    #[test]
    fn mu_sigma_detects_mean_shift() {
        let mut det = MuSigmaChange::new();
        let mut values: Vec<f64> = (0..100).map(|i| ((i * 17) % 7) as f64 * 0.01).collect();
        values.extend((0..100).map(|i| 5.0 + ((i * 13) % 5) as f64 * 0.01));
        let fired = run(&mut det, &values, 20);
        assert!(!fired.is_empty(), "mean shift must trigger");
        assert!(fired[0] >= 100 && fired[0] < 130, "trigger near the shift, got {}", fired[0]);
    }

    #[test]
    fn mu_sigma_detects_variance_blowup() {
        let mut det = MuSigmaChange::new();
        // Zero-mean alternating stream whose amplitude quadruples at t=100.
        let mut values: Vec<f64> = (0..100).map(|i| if i % 2 == 0 { 0.1 } else { -0.1 }).collect();
        values.extend((0..100).map(|i| if i % 2 == 0 { 0.4 } else { -0.4 }));
        let fired = run(&mut det, &values, 20);
        assert!(!fired.is_empty(), "variance change must trigger");
    }

    #[test]
    fn mu_sigma_counts_operations() {
        let mut det = MuSigmaChange::new();
        let values: Vec<f64> = (0..50).map(|i| i as f64 * 0.001).collect();
        let _ = run(&mut det, &values, 10);
        let ops = det.ops();
        assert!(ops.additions > 0 && ops.multiplications > 0);
    }

    #[test]
    fn kswin_stays_quiet_on_stationary_stream() {
        let mut det = KswinDetector::new(0.01);
        let values: Vec<f64> = (0..200).map(|i| ((i * 29) % 11) as f64 * 0.01).collect();
        let fired = run(&mut det, &values, 20);
        assert!(fired.is_empty(), "no drift expected, fired at {fired:?}");
    }

    #[test]
    fn kswin_detects_distribution_shift() {
        let mut det = KswinDetector::new(0.01);
        let mut values: Vec<f64> = (0..100).map(|i| ((i * 29) % 11) as f64 * 0.01).collect();
        values.extend((0..100).map(|i| 3.0 + ((i * 23) % 13) as f64 * 0.01));
        let fired = run(&mut det, &values, 20);
        assert!(!fired.is_empty(), "distribution shift must trigger");
        assert!(fired[0] >= 100 && fired[0] < 140, "trigger near the shift, got {}", fired[0]);
    }

    #[test]
    fn kswin_and_mu_sigma_agree_on_clear_drift() {
        // The paper's headline §V-B finding: the two strategies behave near
        // identically on training-set drift. On an unambiguous level shift
        // both must fire within a few steps of each other.
        let mut values: Vec<f64> = (0..150).map(|i| ((i * 7) % 5) as f64 * 0.02).collect();
        values.extend((0..150).map(|i| 10.0 + ((i * 11) % 5) as f64 * 0.02));
        let f_ks = run(&mut KswinDetector::new(0.01), &values, 25);
        let f_ms = run(&mut MuSigmaChange::new(), &values, 25);
        assert!(!f_ks.is_empty() && !f_ms.is_empty());
        let diff = (f_ks[0] as i64 - f_ms[0] as i64).abs();
        assert!(diff <= 25, "first triggers {} vs {} too far apart", f_ks[0], f_ms[0]);
    }

    #[test]
    fn kswin_stride_skips_checks() {
        let mut values: Vec<f64> = (0..100).map(|i| ((i * 7) % 5) as f64 * 0.02).collect();
        values.extend((0..100).map(|i| 10.0 + ((i * 11) % 5) as f64 * 0.02));
        let f1 = run(&mut KswinDetector::new(0.01), &values, 20);
        let f5 = run(&mut KswinDetector::with_stride(0.01, 5), &values, 20);
        assert!(!f5.is_empty());
        // Strided detection fires no earlier than per-step detection.
        assert!(f5[0] >= f1[0]);
    }

    #[test]
    fn kswin_ops_dominate_mu_sigma_ops() {
        // Table II's point: KSWIN costs far more arithmetic than μ/σ-Change
        // on the same stream.
        let values: Vec<f64> = (0..300).map(|i| ((i * 31) % 17) as f64 * 0.01).collect();
        let mut ks = KswinDetector::new(0.01);
        let mut ms = MuSigmaChange::new();
        let _ = run(&mut ks, &values, 30);
        let _ = run(&mut ms, &values, 30);
        assert!(
            ks.ops().total() > 5 * ms.ops().total(),
            "KSWIN {} vs μ/σ {}",
            ks.ops().total(),
            ms.ops().total()
        );
    }

    #[test]
    fn detectors_are_cloneable_behind_box() {
        let det: Box<dyn DriftDetector> = Box::new(KswinDetector::new(0.05));
        let cloned = det.clone();
        assert_eq!(cloned.name(), "KS");
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1)")]
    fn invalid_alpha_panics() {
        let _ = KswinDetector::new(1.5);
    }

    /// The incrementally maintained per-channel arrays must always equal
    /// the actual training-set contents, sorted — through appends, sliding
    /// replacements and reservoir-style rejections.
    #[test]
    fn kswin_sorted_arrays_track_training_set_exactly() {
        use crate::strategy::UniformReservoir;
        let mut det = KswinDetector::new(0.01);
        let mut strat = UniformReservoir::new(8, 42);
        for t in 0..120 {
            let x = FeatureVector::new(
                (0..6).map(|i| ((t * 7 + i) as f64 * 0.13).sin()).collect(),
                3,
                2,
            );
            let update = strat.update(&x, 0.0);
            det.observe(&x, &update, strat.training_set());

            for j in 0..2 {
                let mut expected: Vec<f64> = strat
                    .training_set()
                    .iter()
                    .flat_map(|fv| fv.channel_iter(j))
                    .collect();
                expected.sort_by(f64::total_cmp);
                assert_eq!(
                    det.current[j], expected,
                    "channel {j} diverged at t={t}"
                );
            }
        }
    }

    /// After `on_fine_tune` the snapshot equals the live arrays, so the
    /// immediate next test cannot reject.
    #[test]
    fn kswin_snapshot_resets_comparison() {
        let mut det = KswinDetector::new(0.01);
        let mut strat = SlidingWindowSet::new(10);
        let mut last_x = None;
        for t in 0..30 {
            let x = fv(t as f64);
            let update = strat.update(&x, 0.0);
            det.observe(&x, &update, strat.training_set());
            last_x = Some(x);
        }
        det.on_fine_tune(strat.training_set());
        assert_eq!(det.snapshot, det.current);
        // One more identical-regime step: statistic is tiny, no rejection.
        let x = last_x.unwrap();
        let update = strat.update(&x, 0.0);
        assert!(!det.observe(&x, &update, strat.training_set()));
    }

    /// Regression: a `Replaced.removed` vector that was never inserted
    /// must not panic (old behaviour in debug builds), must not corrupt
    /// the multiset (old behaviour in release builds silently removed
    /// nothing while the caller assumed success), and must be counted.
    #[test]
    fn kswin_bogus_removal_is_skipped_and_counted() {
        let mut det = KswinDetector::new(0.01);
        let mut strat = SlidingWindowSet::new(5);
        for t in 0..5 {
            let x = fv(t as f64);
            let update = strat.update(&x, 0.0);
            det.observe(&x, &update, strat.training_set());
        }
        let before = det.current.clone();
        assert_eq!(det.removal_misses(), 0);

        // A replacement whose `removed` vector was never inserted: the
        // incoming vector is added, the bogus removal is skipped.
        let incoming = fv(7.0);
        let bogus = SetUpdate::Replaced { removed: fv(99.0) };
        det.observe(&incoming, &bogus, strat.training_set());
        assert_eq!(det.removal_misses(), 8, "one miss per (w x n) element");

        // Every channel gained exactly the incoming values and lost none.
        for (j, channel) in det.current.iter().enumerate() {
            let mut expected = before[j].clone();
            for i in 0..incoming.w() {
                expected.push(incoming.step(i)[j]);
            }
            expected.sort_by(f64::total_cmp);
            assert_eq!(channel, &expected, "channel {j} must stay a coherent multiset");
        }

        // A well-formed removal afterwards still works.
        let fine = SetUpdate::Replaced { removed: fv(0.0) };
        det.observe(&fv(8.0), &fine, strat.training_set());
        assert_eq!(det.removal_misses(), 8, "valid removal adds no misses");
    }

    /// The degraded scan finds bit-identical values even when
    /// `partition_point` cannot (NaN sorts nowhere in `<` order).
    #[test]
    fn kswin_remove_sorted_falls_back_to_bit_scan() {
        let mut ops = OpCount::default();
        let mut channel = vec![1.0, 2.0, f64::NAN, 3.0];
        assert!(KswinDetector::remove_sorted(&mut channel, f64::NAN, &mut ops));
        assert_eq!(channel.iter().filter(|v| v.is_nan()).count(), 0);
        assert_eq!(channel.len(), 3);
        assert!(!KswinDetector::remove_sorted(&mut channel, 9.0, &mut ops));
        assert_eq!(channel.len(), 3);
    }

    /// The Unchanged update (reservoir rejection) must not mutate the
    /// arrays nor count operations for insertion.
    #[test]
    fn kswin_unchanged_update_is_free() {
        let mut det = KswinDetector::new(0.01);
        let mut strat = SlidingWindowSet::new(5);
        for t in 0..5 {
            let x = fv(t as f64);
            let update = strat.update(&x, 0.0);
            det.observe(&x, &update, strat.training_set());
        }
        det.on_fine_tune(strat.training_set());
        let before = det.current.clone();
        let ops_before = det.ops();
        let x = fv(99.0);
        let _ = det.observe(&x, &SetUpdate::Unchanged, strat.training_set());
        assert_eq!(det.current, before, "Unchanged must not touch the arrays");
        // Only the KS test itself may add operations, no insertions.
        assert!(det.ops().total() >= ops_before.total());
    }
}
