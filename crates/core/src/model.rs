//! The model half of the reference parameters (paper Eq. 5).
//!
//! The extended framework generalizes SAFARI's reference *group* to
//! reference *parameters* `θ_t = {θ_model, R_train,t}`. [`StreamModel`]
//! abstracts over `θ_model`: the five paper models (online ARIMA,
//! PCB-iForest, 2-layer AE, USAD, N-BEATS) live in the `sad-models` crate
//! and implement this trait.

use crate::repr::FeatureVector;

/// What a model produces for a feature vector — determines which
/// nonconformity formula applies (paper §IV-D).
#[derive(Debug, Clone, PartialEq)]
pub enum ModelOutput {
    /// A reconstruction `x̂_t` of the whole feature vector (autoencoders).
    /// Must have the same flat dimensionality `w·N` as the input.
    Reconstruction(Vec<f64>),
    /// A forecast `ŝ_t` of the most recent stream vector (ARIMA, VAR,
    /// N-BEATS). Must have dimensionality `N`.
    Forecast(Vec<f64>),
    /// A direct nonconformity score in `[0, 1]` (PCB-iForest's native
    /// isolation score `2^{−E(h)/c(n)}`).
    Score(f64),
}

/// A machine-learning model embedded in the streaming pipeline.
///
/// Lifecycle driven by [`crate::detector::Detector`]:
/// 1. [`StreamModel::fit_initial`] once on the warm-up training set;
/// 2. [`StreamModel::predict`] every stream step (streaming models such as
///    PCB-iForest may update internal state here — hence `&mut self`);
/// 3. [`StreamModel::fine_tune`] for one epoch whenever the Task-2 drift
///    detector fires, on the then-current training set (paper Table I
///    caption: "the ML model will be trained on the training set for one
///    epoch").
pub trait StreamModel: Send {
    /// Human-readable model name (e.g. `"USAD"`).
    fn name(&self) -> &'static str;

    /// Produces the model output for feature vector `x_t`.
    fn predict(&mut self, x: &FeatureVector) -> ModelOutput;

    /// Initial training on the warm-up training set.
    fn fit_initial(&mut self, train: &[FeatureVector], epochs: usize);

    /// One fine-tuning epoch on the current training set after drift.
    fn fine_tune(&mut self, train: &[FeatureVector]);

    /// Clones the model behind the trait object (needed by the Fig. 1
    /// fine-tune-vs-frozen fork experiment).
    fn clone_box(&self) -> Box<dyn StreamModel>;

    /// Concrete-type escape hatch for serving layers that recognize
    /// specific model families (e.g. the fleet's cross-stream batched
    /// NN stepping downcasts to the AE/USAD/N-BEATS types to read their
    /// networks and scalers).
    ///
    /// The default `None` keeps every existing model opaque; models that
    /// opt into external inference override this with `Some(self)`.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

impl Clone for Box<dyn StreamModel> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

#[cfg(test)]
pub(crate) mod testing {
    use super::*;

    /// A trivial forecasting model predicting the previous stream vector
    /// (used across the core test suite).
    #[derive(Debug, Clone, Default)]
    pub struct LastValueModel {
        pub fine_tune_calls: usize,
        pub fit_calls: usize,
    }

    impl StreamModel for LastValueModel {
        fn name(&self) -> &'static str {
            "LastValue"
        }

        fn predict(&mut self, x: &FeatureVector) -> ModelOutput {
            let prev = if x.w() >= 2 { x.step(x.w() - 2) } else { x.last_step() };
            ModelOutput::Forecast(prev.to_vec())
        }

        fn fit_initial(&mut self, _train: &[FeatureVector], _epochs: usize) {
            self.fit_calls += 1;
        }

        fn fine_tune(&mut self, _train: &[FeatureVector]) {
            self.fine_tune_calls += 1;
        }

        fn clone_box(&self) -> Box<dyn StreamModel> {
            Box::new(self.clone())
        }
    }

    /// A model that reconstructs the input exactly (zero nonconformity).
    #[derive(Debug, Clone, Default)]
    pub struct PerfectReconstructor;

    impl StreamModel for PerfectReconstructor {
        fn name(&self) -> &'static str {
            "PerfectReconstructor"
        }

        fn predict(&mut self, x: &FeatureVector) -> ModelOutput {
            ModelOutput::Reconstruction(x.as_slice().to_vec())
        }

        fn fit_initial(&mut self, _train: &[FeatureVector], _epochs: usize) {}

        fn fine_tune(&mut self, _train: &[FeatureVector]) {}

        fn clone_box(&self) -> Box<dyn StreamModel> {
            Box::new(self.clone())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testing::*;
    use super::*;

    #[test]
    fn boxed_model_clones() {
        let model: Box<dyn StreamModel> = Box::new(LastValueModel::default());
        let cloned = model.clone();
        assert_eq!(cloned.name(), "LastValue");
    }

    #[test]
    fn last_value_model_forecasts_previous_step() {
        let mut m = LastValueModel::default();
        let x = FeatureVector::new(vec![1.0, 2.0, 3.0], 3, 1);
        match m.predict(&x) {
            ModelOutput::Forecast(f) => assert_eq!(f, vec![2.0]),
            other => panic!("unexpected output {other:?}"),
        }
    }

    #[test]
    fn perfect_reconstructor_echoes_input() {
        let mut m = PerfectReconstructor;
        let x = FeatureVector::new(vec![1.0, 2.0, 3.0, 4.0], 2, 2);
        match m.predict(&x) {
            ModelOutput::Reconstruction(r) => assert_eq!(r, x.as_slice()),
            other => panic!("unexpected output {other:?}"),
        }
    }
}
