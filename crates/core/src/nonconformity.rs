//! Nonconformity measures (paper Definition III.3 and §IV-D).
//!
//! A nonconformity measure maps `(x_t, θ_t)` to a score in `[0, 1]` with 0
//! meaning "normal" and 1 "anomalous". The paper uses two:
//!
//! * **Cosine similarity**: `a_t = 1 − cos(x_t, x̂_t)` for reconstruction
//!   models, or `1 − cos(s_t, ŝ_t)` for forecasting models in the
//!   multivariate case.
//! * **Isolation-forest score**: PCB-iForest's native `2^{−E(h)/c(n)}`,
//!   which is already in `[0, 1]`.
//!
//! `1 − cos` naturally lives in `[0, 2]`; values above 1 (anti-correlated
//! prediction) are clamped to 1, which keeps the paper's "map to `[0, 1]`"
//! requirement while preserving the ordering of all anomalous scores below
//! the clamp.

use crate::model::ModelOutput;
use crate::repr::FeatureVector;
use sad_tensor::cosine_similarity;

/// Which nonconformity formula a pipeline uses (for reporting/registry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NonconformityKind {
    /// `1 − cosine similarity` between input and prediction.
    CosineSimilarity,
    /// The isolation-forest score passed through unchanged.
    IForestScore,
}

impl NonconformityKind {
    /// Display label matching the paper's Table I.
    pub fn label(self) -> &'static str {
        match self {
            NonconformityKind::CosineSimilarity => "Cosine similarity",
            NonconformityKind::IForestScore => "iForest score",
        }
    }
}

/// Computes the nonconformity score `a_t ∈ [0, 1]` for a model output.
///
/// Dispatch follows §IV-D: reconstructions compare against the full feature
/// vector, forecasts against the most recent stream vector `s_t`, and
/// direct scores pass through (clamped defensively).
///
/// # Panics
/// Panics if a reconstruction/forecast has the wrong dimensionality.
pub fn nonconformity(x: &FeatureVector, output: &ModelOutput) -> f64 {
    match output {
        ModelOutput::Reconstruction(r) => {
            assert_eq!(r.len(), x.dim(), "reconstruction dimensionality mismatch");
            (1.0 - cosine_similarity(x.as_slice(), r)).clamp(0.0, 1.0)
        }
        ModelOutput::Forecast(f) => {
            assert_eq!(f.len(), x.n(), "forecast dimensionality mismatch");
            (1.0 - cosine_similarity(x.last_step(), f)).clamp(0.0, 1.0)
        }
        ModelOutput::Score(s) => {
            if s.is_nan() {
                1.0 // a NaN score is maximally suspicious, not silently normal
            } else {
                s.clamp(0.0, 1.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fv(data: Vec<f64>, w: usize, n: usize) -> FeatureVector {
        FeatureVector::new(data, w, n)
    }

    #[test]
    fn perfect_reconstruction_scores_zero() {
        let x = fv(vec![1.0, 2.0, 3.0, 4.0], 2, 2);
        let a = nonconformity(&x, &ModelOutput::Reconstruction(x.as_slice().to_vec()));
        assert!(a.abs() < 1e-12);
    }

    #[test]
    fn scaled_reconstruction_still_scores_zero() {
        // Cosine similarity is scale invariant — the paper's measure judges
        // direction, not magnitude.
        let x = fv(vec![1.0, 2.0, 3.0, 4.0], 2, 2);
        let scaled: Vec<f64> = x.as_slice().iter().map(|v| v * 3.0).collect();
        let a = nonconformity(&x, &ModelOutput::Reconstruction(scaled));
        assert!(a.abs() < 1e-12);
    }

    #[test]
    fn orthogonal_reconstruction_scores_one() {
        let x = fv(vec![1.0, 0.0], 2, 1);
        let a = nonconformity(&x, &ModelOutput::Reconstruction(vec![0.0, 1.0]));
        assert!((a - 1.0).abs() < 1e-12);
    }

    #[test]
    fn anti_correlated_reconstruction_clamps_to_one() {
        let x = fv(vec![1.0, 1.0], 2, 1);
        let a = nonconformity(&x, &ModelOutput::Reconstruction(vec![-1.0, -1.0]));
        assert_eq!(a, 1.0);
    }

    #[test]
    fn forecast_compares_last_stream_vector() {
        let x = fv(vec![9.0, 9.0, 1.0, 0.0], 2, 2); // s_t = [1, 0]
        let perfect = nonconformity(&x, &ModelOutput::Forecast(vec![2.0, 0.0]));
        assert!(perfect.abs() < 1e-12, "same direction forecast is normal");
        let orthogonal = nonconformity(&x, &ModelOutput::Forecast(vec![0.0, 5.0]));
        assert!((orthogonal - 1.0).abs() < 1e-12);
    }

    #[test]
    fn direct_score_passes_through_clamped() {
        let x = fv(vec![0.0, 0.0], 2, 1);
        assert_eq!(nonconformity(&x, &ModelOutput::Score(0.42)), 0.42);
        assert_eq!(nonconformity(&x, &ModelOutput::Score(7.0)), 1.0);
        assert_eq!(nonconformity(&x, &ModelOutput::Score(-1.0)), 0.0);
        assert_eq!(nonconformity(&x, &ModelOutput::Score(f64::NAN)), 1.0);
    }

    #[test]
    fn zero_input_is_maximally_strange() {
        // A zero feature vector has no direction: cosine is defined as 0,
        // so the nonconformity saturates at 1 (conservative).
        let x = fv(vec![0.0, 0.0], 2, 1);
        let a = nonconformity(&x, &ModelOutput::Reconstruction(vec![1.0, 1.0]));
        assert_eq!(a, 1.0);
    }

    #[test]
    #[should_panic(expected = "forecast dimensionality mismatch")]
    fn wrong_forecast_dim_panics() {
        let x = fv(vec![0.0, 0.0], 2, 1);
        let _ = nonconformity(&x, &ModelOutput::Forecast(vec![1.0, 2.0]));
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Nonconformity always lands in [0, 1] for any finite inputs.
            #[test]
            fn always_in_unit_interval(
                xs in proptest::collection::vec(-1e3f64..1e3, 4),
                rs in proptest::collection::vec(-1e3f64..1e3, 4),
            ) {
                let x = fv(xs, 2, 2);
                let a = nonconformity(&x, &ModelOutput::Reconstruction(rs));
                prop_assert!((0.0..=1.0).contains(&a));
            }
        }
    }
}
