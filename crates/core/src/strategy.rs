//! Learning strategy Task 1: maintaining the training set (paper §IV-B).
//!
//! The training set `R_train` is the feature-vector half of the reference
//! parameters `θ = {θ_model, R_train}`. Three maintenance strategies from
//! SAFARI apply unchanged:
//!
//! * **Sliding window (SW)** — keep the `m` most recent feature vectors;
//! * **Uniform reservoir (URES)** — classic reservoir sampling: once full,
//!   admit `x_t` with probability `m/t` and evict a uniformly random
//!   resident;
//! * **Anomaly-aware reservoir (ARES)** — priority sampling biased toward
//!   "normal" vectors: `p_t = u^{λ₁ / exp(−λ₂ f_t)}` with `u ∈ [0.7, 0.9]`
//!   and `λ₁ = λ₂ = 3` (the paper's restricted parameterization); `x_t`
//!   replaces the lowest-priority resident whose priority falls below
//!   `p_t`.
//!
//! Every update reports a [`SetUpdate`] carrying the evicted vector, which
//! is what lets the μ/σ-Change drift detector maintain its running mean in
//! `O(Nw)` per step instead of rescanning the whole set.

use crate::repr::FeatureVector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The effect one stream step had on the training set.
#[derive(Debug, Clone, PartialEq)]
pub enum SetUpdate {
    /// `x_t` was appended (set still growing).
    Appended,
    /// `x_t` replaced `removed`.
    Replaced {
        /// The evicted feature vector.
        removed: FeatureVector,
    },
    /// The set was left unchanged (`x_t` rejected).
    Unchanged,
}

/// A Task-1 learning strategy: decides how and when the training set is
/// updated (paper §IV-B, Task 1).
pub trait TrainingSetStrategy: Send {
    /// Short name matching the paper's Table I ("SW", "URES", "ARES").
    fn name(&self) -> &'static str;

    /// Offers `x_t` (with its anomaly score `f_t`) to the training set.
    fn update(&mut self, x: &FeatureVector, anomaly_score: f64) -> SetUpdate;

    /// Whether [`Self::update`] actually reads the anomaly score `f_t`.
    ///
    /// Strategies that ignore `f_t` (sliding window, uniform reservoir)
    /// make the whole detector trajectory — model, training set, drift
    /// triggers, fine-tunes, nonconformity stream — independent of the
    /// anomaly scoring function, which is what lets the evaluation
    /// harness tee one detector pass into a [`crate::ScorerBank`] and
    /// reproduce every per-scorer run bitwise from a single stream.
    /// Defaults to `true` (the conservative answer).
    fn uses_anomaly_feedback(&self) -> bool {
        true
    }

    /// Hands an evicted feature vector back to the strategy for reuse.
    ///
    /// The detector hot loop calls this with the `Replaced.removed` buffer
    /// once the drift detector is done reading it; strategies keep it as a
    /// spare and overwrite it on the next insertion instead of cloning
    /// `x_t`, making the steady-state update allocation-free. Purely an
    /// optimization: dropping the buffer (the default) is always correct.
    fn recycle(&mut self, _spare: FeatureVector) {}

    /// The current training set (order unspecified).
    fn training_set(&self) -> &[FeatureVector];

    /// Maximum training-set size `m`.
    fn capacity(&self) -> usize;

    /// Number of vectors currently held.
    fn len(&self) -> usize {
        self.training_set().len()
    }

    /// `true` while the set is still filling.
    fn is_empty(&self) -> bool {
        self.training_set().is_empty()
    }

    /// Clones the strategy behind the trait object.
    fn clone_box(&self) -> Box<dyn TrainingSetStrategy>;
}

impl Clone for Box<dyn TrainingSetStrategy> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Materializes `x` into a recycled spare buffer when one with the right
/// shape is available, cloning only as a fallback. The stored values are
/// identical either way, so reuse cannot perturb the trajectory.
fn store(spare: &mut Option<FeatureVector>, x: &FeatureVector) -> FeatureVector {
    match spare.take() {
        Some(mut buf) if buf.w() == x.w() && buf.n() == x.n() => {
            buf.copy_from(x);
            buf
        }
        _ => x.clone(),
    }
}

/// Sliding window: keep the `m` most recent feature vectors.
#[derive(Debug, Clone)]
pub struct SlidingWindowSet {
    m: usize,
    // A Vec-based ring (index of oldest) keeps `training_set()` borrowable
    // as a contiguous slice, which the trait requires.
    set: Vec<FeatureVector>,
    next: usize,
    spare: Option<FeatureVector>,
}

impl SlidingWindowSet {
    /// Creates a sliding window of capacity `m`.
    pub fn new(m: usize) -> Self {
        assert!(m > 0, "training-set capacity must be positive");
        Self { m, set: Vec::with_capacity(m), next: 0, spare: None }
    }
}

impl TrainingSetStrategy for SlidingWindowSet {
    fn name(&self) -> &'static str {
        "SW"
    }

    fn update(&mut self, x: &FeatureVector, _anomaly_score: f64) -> SetUpdate {
        let stored = store(&mut self.spare, x);
        if self.set.len() < self.m {
            self.set.push(stored);
            return SetUpdate::Appended;
        }
        let removed = std::mem::replace(&mut self.set[self.next], stored);
        self.next = (self.next + 1) % self.m;
        SetUpdate::Replaced { removed }
    }

    fn uses_anomaly_feedback(&self) -> bool {
        false
    }

    fn recycle(&mut self, spare: FeatureVector) {
        self.spare = Some(spare);
    }

    fn training_set(&self) -> &[FeatureVector] {
        &self.set
    }

    fn capacity(&self) -> usize {
        self.m
    }

    fn clone_box(&self) -> Box<dyn TrainingSetStrategy> {
        Box::new(self.clone())
    }
}

/// Uniform reservoir sampling (Vitter's algorithm R shape, as in SAFARI).
#[derive(Debug, Clone)]
pub struct UniformReservoir {
    m: usize,
    t: u64,
    set: Vec<FeatureVector>,
    rng: StdRng,
    spare: Option<FeatureVector>,
}

impl UniformReservoir {
    /// Creates a reservoir of capacity `m` with a deterministic seed.
    pub fn new(m: usize, seed: u64) -> Self {
        assert!(m > 0, "training-set capacity must be positive");
        Self { m, t: 0, set: Vec::with_capacity(m), rng: StdRng::seed_from_u64(seed), spare: None }
    }
}

impl TrainingSetStrategy for UniformReservoir {
    fn name(&self) -> &'static str {
        "URES"
    }

    fn update(&mut self, x: &FeatureVector, _anomaly_score: f64) -> SetUpdate {
        self.t += 1;
        if self.set.len() < self.m {
            self.set.push(store(&mut self.spare, x));
            return SetUpdate::Appended;
        }
        let p: f64 = self.rng.random_range(0.0..1.0);
        if p < self.m as f64 / self.t as f64 {
            let victim = self.rng.random_range(0..self.m);
            let removed = std::mem::replace(&mut self.set[victim], store(&mut self.spare, x));
            SetUpdate::Replaced { removed }
        } else {
            SetUpdate::Unchanged
        }
    }

    fn uses_anomaly_feedback(&self) -> bool {
        false
    }

    fn recycle(&mut self, spare: FeatureVector) {
        self.spare = Some(spare);
    }

    fn training_set(&self) -> &[FeatureVector] {
        &self.set
    }

    fn capacity(&self) -> usize {
        self.m
    }

    fn clone_box(&self) -> Box<dyn TrainingSetStrategy> {
        Box::new(self.clone())
    }
}

/// Anomaly-aware reservoir: retain the most "normal" feature vectors.
#[derive(Debug, Clone)]
pub struct AnomalyAwareReservoir {
    m: usize,
    set: Vec<FeatureVector>,
    priorities: Vec<f64>,
    rng: StdRng,
    lambda1: f64,
    lambda2: f64,
    u_lo: f64,
    u_hi: f64,
    spare: Option<FeatureVector>,
}

impl AnomalyAwareReservoir {
    /// Creates an ARES reservoir with the paper's restricted parameters
    /// `u ∈ [0.7, 0.9]`, `λ₁ = λ₂ = 3`.
    pub fn new(m: usize, seed: u64) -> Self {
        Self::with_params(m, seed, 3.0, 3.0, 0.7, 0.9)
    }

    /// Fully parameterized constructor (`λ₁, λ₂ > 0`, `0 < u_lo < u_hi < 1`).
    pub fn with_params(m: usize, seed: u64, lambda1: f64, lambda2: f64, u_lo: f64, u_hi: f64) -> Self {
        assert!(m > 0, "training-set capacity must be positive");
        assert!(lambda1 > 0.0 && lambda2 > 0.0, "lambdas must be positive");
        assert!(0.0 < u_lo && u_lo < u_hi && u_hi < 1.0, "u range must satisfy 0 < lo < hi < 1");
        Self {
            m,
            set: Vec::with_capacity(m),
            priorities: Vec::with_capacity(m),
            rng: StdRng::seed_from_u64(seed),
            lambda1,
            lambda2,
            u_lo,
            u_hi,
            spare: None,
        }
    }

    /// The paper's priority function `p_t = u^{λ₁ / exp(−λ₂ f_t)}`.
    ///
    /// Monotonically decreasing in `f_t` (for `u < 1`): more anomalous
    /// vectors get lower priority and are evicted first, while the random
    /// base `u` keeps the reservoir from freezing onto a fixed set.
    fn priority(&mut self, anomaly_score: f64) -> f64 {
        let u: f64 = self.rng.random_range(self.u_lo..self.u_hi);
        let exponent = self.lambda1 / (-self.lambda2 * anomaly_score).exp();
        u.powf(exponent)
    }

    /// Index of the resident implementing the paper's helper
    /// `c(ps, p_t) = argmin_{p_j} {p ∈ ps | p < p_t}` — the lowest priority
    /// strictly below `p_t` — or `None` if every resident outranks `x_t`.
    fn eviction_candidate(&self, p_t: f64) -> Option<usize> {
        let (idx, &p_min) = self
            .priorities
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))?;
        (p_min < p_t).then_some(idx)
    }
}

impl TrainingSetStrategy for AnomalyAwareReservoir {
    fn name(&self) -> &'static str {
        "ARES"
    }

    fn update(&mut self, x: &FeatureVector, anomaly_score: f64) -> SetUpdate {
        let p_t = self.priority(anomaly_score);
        if self.set.len() < self.m {
            self.set.push(store(&mut self.spare, x));
            self.priorities.push(p_t);
            return SetUpdate::Appended;
        }
        match self.eviction_candidate(p_t) {
            Some(idx) => {
                let removed = std::mem::replace(&mut self.set[idx], store(&mut self.spare, x));
                self.priorities[idx] = p_t;
                SetUpdate::Replaced { removed }
            }
            None => SetUpdate::Unchanged,
        }
    }

    fn recycle(&mut self, spare: FeatureVector) {
        self.spare = Some(spare);
    }

    /// ARES priorities are a function of `f_t`, so the detector trajectory
    /// genuinely depends on the anomaly scorer: the shared-pass fan-out
    /// must not reuse one stream across scorers here (warm-up sharing is
    /// still sound — `f_t = 0` for every warm-up step).
    fn uses_anomaly_feedback(&self) -> bool {
        true
    }

    fn training_set(&self) -> &[FeatureVector] {
        &self.set
    }

    fn capacity(&self) -> usize {
        self.m
    }

    fn clone_box(&self) -> Box<dyn TrainingSetStrategy> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fv(v: f64) -> FeatureVector {
        FeatureVector::new(vec![v, v + 0.5], 2, 1)
    }

    #[test]
    fn sliding_window_keeps_most_recent() {
        let mut sw = SlidingWindowSet::new(3);
        for i in 0..5 {
            sw.update(&fv(i as f64), 0.0);
        }
        let values: Vec<f64> = sw.training_set().iter().map(|x| x.as_slice()[0]).collect();
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(sorted, vec![2.0, 3.0, 4.0]);
        assert_eq!(sw.len(), 3);
    }

    #[test]
    fn sliding_window_reports_evictions_in_fifo_order() {
        let mut sw = SlidingWindowSet::new(2);
        assert_eq!(sw.update(&fv(0.0), 0.0), SetUpdate::Appended);
        assert_eq!(sw.update(&fv(1.0), 0.0), SetUpdate::Appended);
        match sw.update(&fv(2.0), 0.0) {
            SetUpdate::Replaced { removed } => assert_eq!(removed.as_slice()[0], 0.0),
            other => panic!("expected replacement, got {other:?}"),
        }
        match sw.update(&fv(3.0), 0.0) {
            SetUpdate::Replaced { removed } => assert_eq!(removed.as_slice()[0], 1.0),
            other => panic!("expected replacement, got {other:?}"),
        }
    }

    #[test]
    fn uniform_reservoir_never_exceeds_capacity() {
        let mut ures = UniformReservoir::new(10, 42);
        for i in 0..500 {
            ures.update(&fv(i as f64), 0.0);
            assert!(ures.len() <= 10);
        }
        assert_eq!(ures.len(), 10);
    }

    #[test]
    fn uniform_reservoir_admission_rate_decays() {
        // After t >> m, the admission probability is m/t; over the stream the
        // expected number of replacements is m * (H_T - H_m) ≈ m ln(T/m).
        let mut ures = UniformReservoir::new(20, 7);
        let mut replacements = 0;
        for i in 0..2000 {
            if let SetUpdate::Replaced { .. } = ures.update(&fv(i as f64), 0.0) {
                replacements += 1;
            }
        }
        let expected = 20.0 * (2000.0f64 / 20.0).ln(); // ≈ 92
        assert!(
            (replacements as f64) > expected * 0.5 && (replacements as f64) < expected * 2.0,
            "replacements {replacements}, expected ≈ {expected}"
        );
    }

    #[test]
    fn ares_priority_is_monotone_in_anomaly_score() {
        let mut ares = AnomalyAwareReservoir::new(5, 1);
        // Average priorities over many draws to smooth the random base u.
        let avg = |ares: &mut AnomalyAwareReservoir, f: f64| -> f64 {
            (0..200).map(|_| ares.priority(f)).sum::<f64>() / 200.0
        };
        let p_normal = avg(&mut ares, 0.0);
        let p_mid = avg(&mut ares, 0.5);
        let p_anom = avg(&mut ares, 1.0);
        assert!(p_normal > p_mid && p_mid > p_anom, "{p_normal} > {p_mid} > {p_anom}");
    }

    #[test]
    fn ares_keeps_normal_vectors() {
        let mut ares = AnomalyAwareReservoir::new(10, 3);
        // Fill with normal vectors, then offer anomalous ones: the reservoir
        // should mostly reject them (their priority is lower than residents').
        for i in 0..10 {
            ares.update(&fv(i as f64), 0.0);
        }
        let mut rejected = 0;
        for i in 0..100 {
            if let SetUpdate::Unchanged = ares.update(&fv(100.0 + i as f64), 1.0) {
                rejected += 1;
            }
        }
        assert!(rejected > 60, "anomalous vectors mostly rejected, got {rejected}/100");
    }

    #[test]
    fn ares_admits_normal_over_anomalous_residents() {
        let mut ares = AnomalyAwareReservoir::new(5, 9);
        // Fill with anomalous vectors (low priority)...
        for i in 0..5 {
            ares.update(&fv(i as f64), 1.0);
        }
        // ...then normal vectors must displace them: anomalous priorities are
        // u^{3e³} ≈ 0 while normal ones are u³ ∈ [0.34, 0.73], so the first
        // five normal offers evict all five anomalous residents.
        for i in 0..5 {
            match ares.update(&fv(50.0 + i as f64), 0.0) {
                SetUpdate::Replaced { .. } => {}
                other => panic!("normal vector {i} should displace an anomalous resident, got {other:?}"),
            }
        }
    }

    #[test]
    fn ares_capacity_invariant() {
        let mut ares = AnomalyAwareReservoir::new(8, 5);
        for i in 0..300 {
            ares.update(&fv(i as f64), (i % 3) as f64 / 2.0);
            assert!(ares.len() <= 8);
            assert_eq!(ares.priorities.len(), ares.set.len());
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = SlidingWindowSet::new(0);
    }

    /// Recycling evicted buffers must be invisible: a strategy whose
    /// `Replaced` buffers are handed back produces the exact same update
    /// stream and training set as one that lets them drop.
    #[test]
    fn recycle_is_bitwise_transparent() {
        let make = |which: u8| -> Box<dyn TrainingSetStrategy> {
            match which {
                0 => Box::new(SlidingWindowSet::new(7)),
                1 => Box::new(UniformReservoir::new(7, 99)),
                _ => Box::new(AnomalyAwareReservoir::new(7, 99)),
            }
        };
        for which in 0..3u8 {
            let mut recycled = make(which);
            let mut plain = make(which);
            for i in 0..120 {
                let x = fv(i as f64 * 0.31);
                let f = ((i * 13) % 10) as f64 / 10.0;
                let a = recycled.update(&x, f);
                let b = plain.update(&x, f);
                assert_eq!(a, b, "strategy {which}, step {i}");
                if let SetUpdate::Replaced { removed } = a {
                    recycled.recycle(removed);
                }
            }
            assert_eq!(recycled.len(), plain.len());
            for (a, b) in recycled.training_set().iter().zip(plain.training_set()) {
                assert_eq!(a.as_slice(), b.as_slice(), "strategy {which}");
            }
        }
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// No strategy ever exceeds its capacity, and the update report
            /// is consistent with the set size change.
            #[test]
            fn capacity_and_report_consistency(
                m in 1usize..20,
                scores in proptest::collection::vec(0.0f64..1.0, 1..100),
                which in 0u8..3,
            ) {
                let mut strategy: Box<dyn TrainingSetStrategy> = match which {
                    0 => Box::new(SlidingWindowSet::new(m)),
                    1 => Box::new(UniformReservoir::new(m, 11)),
                    _ => Box::new(AnomalyAwareReservoir::new(m, 11)),
                };
                for (i, &f) in scores.iter().enumerate() {
                    let before = strategy.len();
                    let update = strategy.update(&fv(i as f64), f);
                    let after = strategy.len();
                    prop_assert!(after <= m);
                    match update {
                        SetUpdate::Appended => prop_assert_eq!(after, before + 1),
                        SetUpdate::Replaced { .. } | SetUpdate::Unchanged => {
                            prop_assert_eq!(after, before)
                        }
                    }
                }
            }

            /// Priorities stay within (0, 1) for all anomaly scores.
            #[test]
            fn ares_priority_in_unit_interval(f in 0.0f64..1.0) {
                let mut ares = AnomalyAwareReservoir::new(3, 2);
                let p = ares.priority(f);
                prop_assert!(p > 0.0 && p < 1.0);
            }
        }
    }
}
