//! The paper's Table I: the 26 evaluated component combinations.
//!
//! | Task 1 | Task 2 | Model | Nonconformity | Anomaly score |
//! |---|---|---|---|---|
//! | SW, URES, ARES | μ/σ, KS | Online ARIMA | Cosine | Avg, AL |
//! | SW, ARES | KS | PCB-iForest | iForest | AL |
//! | SW, URES, ARES | μ/σ, KS | 2-layer AE | Cosine | Avg, AL |
//! | SW, URES, ARES | μ/σ, KS | USAD | Cosine | Avg, AL |
//! | SW, URES, ARES | μ/σ, KS | N-BEATS | Cosine | Avg, AL |
//!
//! An *algorithm* in Table III is a `(model, task1, task2)` triple; results
//! are averaged across both anomaly scores. That yields
//! `4 models × 3 × 2 + 1 model × 2 × 1 = 26` distinct algorithms.
//!
//! This module only *names* the combinations; `sad-models` turns an
//! [`AlgorithmSpec`] into a runnable [`crate::detector::Detector`].

use crate::nonconformity::NonconformityKind;

/// The five evaluated ML models (§IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Online ARIMA (Liu et al. 2016 approximation).
    OnlineArima,
    /// PCB-iForest (Heigl et al. 2021).
    PcbIForest,
    /// Two-layer reconstruction autoencoder.
    TwoLayerAe,
    /// USAD adversarial autoencoder (Audibert et al. 2020).
    Usad,
    /// N-BEATS forecaster (Oreshkin et al. 2020).
    NBeats,
}

impl ModelKind {
    /// Display label matching Table I.
    pub fn label(self) -> &'static str {
        match self {
            ModelKind::OnlineArima => "Online ARIMA",
            ModelKind::PcbIForest => "PCB-iForest",
            ModelKind::TwoLayerAe => "2-layer AE",
            ModelKind::Usad => "USAD",
            ModelKind::NBeats => "N-BEATS",
        }
    }

    /// The nonconformity measure tied to the model (Table I).
    pub fn nonconformity(self) -> NonconformityKind {
        match self {
            ModelKind::PcbIForest => NonconformityKind::IForestScore,
            _ => NonconformityKind::CosineSimilarity,
        }
    }

    /// All five models in Table I order.
    pub fn all() -> [ModelKind; 5] {
        [
            ModelKind::OnlineArima,
            ModelKind::TwoLayerAe,
            ModelKind::Usad,
            ModelKind::NBeats,
            ModelKind::PcbIForest,
        ]
    }
}

/// Task-1 training-set strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Task1 {
    /// Sliding window.
    SlidingWindow,
    /// Uniform reservoir.
    UniformReservoir,
    /// Anomaly-aware reservoir.
    AnomalyAwareReservoir,
}

impl Task1 {
    /// Display label matching Table I.
    pub fn label(self) -> &'static str {
        match self {
            Task1::SlidingWindow => "SW",
            Task1::UniformReservoir => "URES",
            Task1::AnomalyAwareReservoir => "ARES",
        }
    }
}

/// Task-2 drift strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Task2 {
    /// μ/σ-Change.
    MuSigma,
    /// KSWIN (per-channel two-sample KS test).
    Kswin,
}

impl Task2 {
    /// Display label matching Table I.
    pub fn label(self) -> &'static str {
        match self {
            Task2::MuSigma => "μ/σ",
            Task2::Kswin => "KS",
        }
    }
}

/// Anomaly scoring functions (§IV-E). Raw is the Table III baseline row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScoreKind {
    /// Raw nonconformity pass-through.
    Raw,
    /// Moving average over `k` scores.
    Average,
    /// Numenta anomaly likelihood.
    AnomalyLikelihood,
}

impl ScoreKind {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            ScoreKind::Raw => "Raw",
            ScoreKind::Average => "Avg",
            ScoreKind::AnomalyLikelihood => "AL",
        }
    }
}

/// One of the paper's 26 evaluated algorithms: a `(model, task1, task2)`
/// combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AlgorithmSpec {
    /// The ML model.
    pub model: ModelKind,
    /// Training-set maintenance strategy.
    pub task1: Task1,
    /// Drift-detection strategy.
    pub task2: Task2,
}

impl AlgorithmSpec {
    /// Display label, e.g. `"USAD / ARES / KS"`.
    pub fn label(&self) -> String {
        format!("{} / {} / {}", self.model.label(), self.task1.label(), self.task2.label())
    }

    /// Anomaly scores this algorithm is evaluated with (Table I, last
    /// column): PCB-iForest uses only the anomaly likelihood, everything
    /// else averages over both.
    pub fn scores(&self) -> &'static [ScoreKind] {
        match self.model {
            ModelKind::PcbIForest => &[ScoreKind::AnomalyLikelihood],
            _ => &[ScoreKind::Average, ScoreKind::AnomalyLikelihood],
        }
    }
}

/// Enumerates the paper's 26 algorithms in Table III row order.
pub fn paper_algorithms() -> Vec<AlgorithmSpec> {
    let full = [Task1::SlidingWindow, Task1::UniformReservoir, Task1::AnomalyAwareReservoir];
    let both = [Task2::MuSigma, Task2::Kswin];
    let mut specs = Vec::with_capacity(26);
    for model in
        [ModelKind::OnlineArima, ModelKind::TwoLayerAe, ModelKind::Usad, ModelKind::NBeats]
    {
        for task1 in full {
            for task2 in both {
                specs.push(AlgorithmSpec { model, task1, task2 });
            }
        }
    }
    // PCB-iForest: SW and ARES, KSWIN only (its drift reaction is defined in
    // terms of KSWIN in Heigl et al.).
    for task1 in [Task1::SlidingWindow, Task1::AnomalyAwareReservoir] {
        specs.push(AlgorithmSpec { model: ModelKind::PcbIForest, task1, task2: Task2::Kswin });
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn twenty_six_algorithms() {
        assert_eq!(paper_algorithms().len(), 26);
    }

    #[test]
    fn all_specs_distinct() {
        let specs = paper_algorithms();
        let unique: HashSet<_> = specs.iter().collect();
        assert_eq!(unique.len(), 26);
    }

    #[test]
    fn pcb_iforest_restricted_to_ks_and_two_strategies() {
        for spec in paper_algorithms() {
            if spec.model == ModelKind::PcbIForest {
                assert_eq!(spec.task2, Task2::Kswin);
                assert_ne!(spec.task1, Task1::UniformReservoir);
                assert_eq!(spec.scores(), &[ScoreKind::AnomalyLikelihood]);
            } else {
                assert_eq!(spec.scores().len(), 2);
            }
        }
    }

    #[test]
    fn model_counts_match_table_one() {
        let specs = paper_algorithms();
        let count = |m: ModelKind| specs.iter().filter(|s| s.model == m).count();
        assert_eq!(count(ModelKind::OnlineArima), 6);
        assert_eq!(count(ModelKind::TwoLayerAe), 6);
        assert_eq!(count(ModelKind::Usad), 6);
        assert_eq!(count(ModelKind::NBeats), 6);
        assert_eq!(count(ModelKind::PcbIForest), 2);
    }

    #[test]
    fn nonconformity_assignment_matches_table_one() {
        assert_eq!(ModelKind::PcbIForest.nonconformity(), NonconformityKind::IForestScore);
        for m in [ModelKind::OnlineArima, ModelKind::TwoLayerAe, ModelKind::Usad, ModelKind::NBeats]
        {
            assert_eq!(m.nonconformity(), NonconformityKind::CosineSimilarity);
        }
    }

    #[test]
    fn labels_are_stable() {
        let spec = AlgorithmSpec {
            model: ModelKind::Usad,
            task1: Task1::AnomalyAwareReservoir,
            task2: Task2::Kswin,
        };
        assert_eq!(spec.label(), "USAD / ARES / KS");
    }
}
