//! Allocation-count guard for the steady-state detector step.
//!
//! The shared-prefix tree makes the detector hot loop the dominant cost of
//! the Table III grid, so it must stay off the heap: `RawWindow::push_into`
//! overwrites the detector's scratch feature vector in place, the Task-1
//! strategies recycle evicted training windows through a spare buffer, the
//! μ/σ drift detector keeps its running statistics in preallocated rows,
//! and the scorers run over fixed-capacity rings. This guard pins all of
//! that: after warm-up, `Detector::step` (and the scorer-bank
//! `step_fanout`) on a drift-free stream must not allocate at all.
//!
//! The model under the detector emits a direct [`ModelOutput::Score`] so
//! the guard isolates the framework machinery — the model layers have
//! their own guards (`sad-nn` / `sad-models` `zero_alloc` tests).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ARMED: Cell<bool> = const { Cell::new(false) };
    static ALLOCS: Cell<usize> = const { Cell::new(0) };
}

struct CountingAllocator;

impl CountingAllocator {
    fn record() {
        let _ = ARMED.try_with(|armed| {
            if armed.get() {
                let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
            }
        });
    }
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        Self::record();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        Self::record();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        Self::record();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn count_allocs(f: impl FnOnce()) -> usize {
    ALLOCS.with(|c| c.set(0));
    ARMED.with(|a| a.set(true));
    f();
    ARMED.with(|a| a.set(false));
    ALLOCS.with(|c| c.get())
}

use sad_core::{
    AnomalyLikelihood, AnomalyScorer, Detector, DetectorConfig, FeatureVector, ModelOutput,
    MovingAverage, MuSigmaChange, RawScore, ScorerBank, SlidingWindowSet, StreamModel,
};

/// Heap-free stand-in model: a direct nonconformity score computed from the
/// feature vector without touching the heap, so every allocation the guard
/// sees belongs to the detector machinery itself.
#[derive(Debug, Clone)]
struct HeapFreeScore;

impl StreamModel for HeapFreeScore {
    fn name(&self) -> &'static str {
        "heap-free score"
    }

    fn predict(&mut self, x: &FeatureVector) -> ModelOutput {
        let s: f64 = x.last_step().iter().map(|v| v.abs()).sum::<f64>()
            / x.last_step().len() as f64;
        ModelOutput::Score((s * 0.5).clamp(0.0, 1.0))
    }

    fn fit_initial(&mut self, _train: &[FeatureVector], _epochs: usize) {}

    fn fine_tune(&mut self, _train: &[FeatureVector]) {}

    fn clone_box(&self) -> Box<dyn StreamModel> {
        Box::new(self.clone())
    }
}

const CHANNELS: usize = 3;

/// Stationary stream, periodic with the detector's window length: every
/// length-8 window holds the same multiset of values per channel, so the
/// training-set statistics are constant and μ/σ-Change never fires — the
/// measured window below is pure steady-state stepping.
fn stream_vector(t: usize) -> [f64; CHANNELS] {
    let phase = std::f64::consts::TAU * (t % 8) as f64 / 8.0;
    [phase.sin(), phase.cos() * 0.5, (2.0 * phase).sin() * 0.25]
}

fn detector_with(scorer: Box<dyn AnomalyScorer>) -> Detector {
    let config = DetectorConfig {
        window: 8,
        channels: CHANNELS,
        warmup: 64,
        initial_epochs: 1,
        fine_tune_epochs: 1,
    };
    Detector::new(
        config,
        Box::new(HeapFreeScore),
        Box::new(SlidingWindowSet::new(16)),
        Box::new(MuSigmaChange::new()),
        scorer,
    )
}

/// Warm up and then step well past every ring's fill point, so the armed
/// window below measures nothing but the steady state.
fn settle(det: &mut Detector, until: &mut usize) {
    for _ in 0..128 {
        det.step(&stream_vector(*until));
        *until += 1;
    }
    assert!(det.drift_times().is_empty(), "stream must be drift-free for this guard");
}

fn assert_step_is_allocation_free(scorer: Box<dyn AnomalyScorer>, label: &str) {
    let mut det = detector_with(scorer);
    let mut t = 0usize;
    settle(&mut det, &mut t);
    let n = count_allocs(|| {
        for _ in 0..256 {
            let out = det.step(&stream_vector(t)).expect("past warm-up");
            assert!(!out.drift, "stream must stay drift-free");
            t += 1;
        }
    });
    assert_eq!(n, 0, "{label}: steady-state Detector::step must not allocate, saw {n}");
}

#[test]
fn steady_state_step_is_allocation_free_raw() {
    assert_step_is_allocation_free(Box::new(RawScore), "SW + μ/σ + Raw");
}

#[test]
fn steady_state_step_is_allocation_free_moving_average() {
    assert_step_is_allocation_free(Box::new(MovingAverage::new(8)), "SW + μ/σ + Avg");
}

#[test]
fn steady_state_step_is_allocation_free_anomaly_likelihood() {
    assert_step_is_allocation_free(Box::new(AnomalyLikelihood::new(12, 3)), "SW + μ/σ + AL");
}

/// The scorer fan-out used by the grid shares the guarantee: once the teed
/// output vector has its capacity, `step_fanout` stays off the heap too.
#[test]
fn steady_state_fanout_step_is_allocation_free() {
    let mut det = detector_with(Box::new(RawScore));
    let mut t = 0usize;
    settle(&mut det, &mut t);
    let mut bank = ScorerBank::new(vec![
        Box::new(RawScore) as Box<dyn AnomalyScorer>,
        Box::new(MovingAverage::new(8)),
        Box::new(AnomalyLikelihood::new(12, 3)),
    ]);
    let mut teed = Vec::with_capacity(3);
    // One unarmed pass fills the teed vector to its final length.
    det.step_fanout(&stream_vector(t), &mut bank, &mut teed);
    t += 1;
    let n = count_allocs(|| {
        for _ in 0..256 {
            let out = det.step_fanout(&stream_vector(t), &mut bank, &mut teed);
            assert!(out.is_some() && teed.len() == 3);
            t += 1;
        }
    });
    assert_eq!(n, 0, "steady-state step_fanout must not allocate, saw {n}");
}
