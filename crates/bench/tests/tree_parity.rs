//! Bitwise parity of the shared-prefix evaluation tree against the
//! per-group evaluation path it replaced.
//!
//! The tentpole guarantee of the tree refactor: streaming the warm-up
//! segment ONCE per `(model, Task1, corpus, series)` root — one repr +
//! Task-1 pass, every drift variant observing the same update stream, one
//! `fit_initial` — and then forking one detector per drift variant
//! produces **bit-identical** score traces and metric rows to the
//! previous protocol of one independent warm-up + fit per
//! `(model, Task1, Task2)` spec, for every Table I spec, every scorer,
//! and at any worker count.
//!
//! The per-group reference is replicated here verbatim (one
//! `build_detector` per spec, full-series `run_fanout` / warm-up-share
//! scorer forks, the five-metric sweep) so the comparison does not depend
//! on the refactored code path under test.

use sad_bench::{
    cell_index, evaluate_tree, harness_params, plan_roots, run_grid, EvalRow, GridDims,
    HarnessScale, JobPool,
};
use sad_core::{paper_algorithms, AlgorithmSpec, DetectorConfig, ModelKind, ScoreKind};
use sad_data::{daphnet_like, smd_like, Corpus, CorpusParams};
use sad_metrics::{best_f1, best_nab, pr_auc, vus_pr};
use sad_models::{
    build_detector, build_scorer, build_scorer_bank, build_shared_warmup, BuildParams,
};

const ALL_SCORERS: [ScoreKind; 3] =
    [ScoreKind::Raw, ScoreKind::Average, ScoreKind::AnomalyLikelihood];

/// Small-but-real detector configuration for trace-level checks.
fn tiny_params(channels: usize, seed: u64) -> BuildParams {
    let config = DetectorConfig {
        window: 6,
        channels,
        warmup: 80,
        initial_epochs: 2,
        fine_tune_epochs: 1,
    };
    BuildParams::new(config).with_capacity(12).with_kswin_stride(3).with_seed(seed)
}

/// The five-metric sweep, replicated from the eval module.
fn metrics_row(scores: &[f64], labels: &[bool], window: usize) -> EvalRow {
    let n_thresholds = 40;
    let (_th, precision, recall, _f1) = best_f1(scores, labels, n_thresholds);
    let auc = pr_auc(scores, labels, n_thresholds);
    let vus = vus_pr(scores, labels, window, n_thresholds);
    let (_nab_th, report) = best_nab(scores, labels, n_thresholds);
    EvalRow { precision, recall, auc, vus, nab: report.score, train_seconds: 0.0 }
}

/// The per-group evaluation protocol this PR replaced, replicated
/// verbatim: ONE independent detector (own warm-up, own `fit_initial`)
/// per `(model, Task1, Task2)` spec; inside it the scorer fan-out of the
/// previous refactor (shared full-series pass for feedback-free
/// strategies, warm-up-share `clone` + `set_scorer` forks for ARES).
/// Returns one corpus-averaged row per scorer.
fn group_reference(
    spec: AlgorithmSpec,
    params: &BuildParams,
    corpus: &Corpus,
    scorers: &[ScoreKind],
) -> Vec<EvalRow> {
    let window = params.config.window;
    let mut per_scorer: Vec<Vec<EvalRow>> = vec![Vec::new(); scorers.len()];
    for series in &corpus.series {
        let p = params.clone().with_score(scorers[0]);
        let mut detector = build_detector(spec, &p);
        if detector.scorer_feedback_free() {
            let mut bank = build_scorer_bank(scorers, params);
            let run = detector.run_fanout(&series.data, &mut bank);
            let labels = &series.labels[run.offset..];
            for (k, trace) in run.traces.iter().enumerate() {
                per_scorer[k].push(metrics_row(trace, labels, window));
            }
        } else {
            let warm = params.config.warmup.min(series.data.len());
            for s in &series.data[..warm] {
                assert!(detector.step(s).is_none(), "warm-up step produced output");
            }
            for (k, &kind) in scorers.iter().enumerate() {
                let mut fork = detector.clone();
                fork.set_scorer(build_scorer(kind, params));
                let mut scores = Vec::new();
                let mut offset = series.data.len();
                for s in &series.data[warm..] {
                    if let Some(out) = fork.step(s) {
                        if scores.is_empty() {
                            offset = out.t;
                        }
                        scores.push(out.anomaly_score);
                    }
                }
                per_scorer[k].push(metrics_row(&scores, &series.labels[offset..], window));
            }
        }
    }
    per_scorer.iter().map(|rows| EvalRow::mean(rows)).collect()
}

fn row_bits(row: &EvalRow) -> [u64; 5] {
    [
        row.precision.to_bits(),
        row.recall.to_bits(),
        row.auc.to_bits(),
        row.vus.to_bits(),
        row.nab.to_bits(),
    ]
}

/// Deterministic synthetic multivariate series with a planted level shift.
fn synthetic_series(len: usize, channels: usize, seed: u64) -> Vec<Vec<f64>> {
    (0..len)
        .map(|t| {
            (0..channels)
                .map(|c| {
                    let phase = (seed % 17) as f64 * 0.31 + c as f64 * 0.7;
                    let base = ((t as f64) * 0.11 + phase).sin();
                    let shift = if t > 2 * len / 3 { 0.8 } else { 0.0 };
                    base + 0.05 * (((t * (c + 3)) % 23) as f64 - 11.0) / 11.0 + shift
                })
                .collect()
        })
        .collect()
}

/// EvalRow-level parity over a real (small) corpus: every Table I root,
/// every drift variant, every scorer, against the independent-warm-up
/// reference — and one shared `fit_initial` per root, not one per member.
#[test]
fn tree_rows_match_group_reference_for_all_26_specs() {
    let cp = CorpusParams { length: 520, n_series: 1, anomalies_per_series: 2, with_drift: true };
    let corpus = smd_like(3, cp);
    let channels = corpus.series[0].channels();
    let specs = paper_algorithms();
    let roots = plan_roots(&specs);
    assert_eq!(roots.len(), 14);
    let mut covered = 0usize;
    for root in &roots {
        let params = tiny_params(channels, 21);
        let tree = evaluate_tree(root.model, root.task1, &root.task2s, &params, &corpus, &ALL_SCORERS);
        assert_eq!(tree.rows.len(), root.members.len());
        assert_eq!(tree.initial_fits, corpus.series.len(), "{}", root.label());
        for (v, &spec_idx) in root.members.iter().enumerate() {
            let spec = specs[spec_idx];
            let reference = group_reference(spec, &params, &corpus, &ALL_SCORERS);
            for (k, &kind) in ALL_SCORERS.iter().enumerate() {
                assert_eq!(
                    row_bits(&tree.rows[v][k]),
                    row_bits(&reference[k]),
                    "{} / {kind:?}: EvalRow diverges from independent-warm-up run",
                    spec.label(),
                );
            }
            covered += 1;
        }
    }
    assert_eq!(covered, 26);
}

/// Trace-level parity: the warmed forks' post-warm-up score traces equal
/// the full-series traces of independently warmed detectors, bitwise, for
/// every spec (feedback-free specs via the scorer bank, ARES specs via
/// per-scorer forks).
#[test]
fn tree_traces_match_group_reference_for_all_26_specs() {
    let series = synthetic_series(260, 2, 5);
    let specs = paper_algorithms();
    for root in plan_roots(&specs) {
        let params = tiny_params(2, 9);
        let warm = params.config.warmup.min(series.len());
        let mut shared = build_shared_warmup(root.model, root.task1, &root.task2s, &params);
        for s in &series[..warm] {
            shared.step(s);
        }
        for (v, &spec_idx) in root.members.iter().enumerate() {
            let spec = specs[spec_idx];
            // Independent warm-up reference for this member.
            let p0 = params.clone().with_score(ALL_SCORERS[0]);
            let mut reference = build_detector(spec, &p0);
            if shared.scorer_feedback_free() {
                let mut fork = shared.fork(v, build_scorer(ALL_SCORERS[0], &params));
                let mut fork_bank = build_scorer_bank(&ALL_SCORERS, &params);
                let fork_run = fork.run_fanout(&series[warm..], &mut fork_bank);
                let mut ref_bank = build_scorer_bank(&ALL_SCORERS, &params);
                let ref_run = reference.run_fanout(&series, &mut ref_bank);
                for (k, (a, b)) in fork_run.traces.iter().zip(&ref_run.traces).enumerate() {
                    assert_eq!(a.len(), b.len(), "{}: trace length", spec.label());
                    for (t, (x, y)) in a.iter().zip(b).enumerate() {
                        assert_eq!(
                            x.to_bits(),
                            y.to_bits(),
                            "{} / {:?}: trace diverges at step {t}",
                            spec.label(),
                            ALL_SCORERS[k],
                        );
                    }
                }
                assert_eq!(fork.drift_times(), reference.drift_times(), "{}", spec.label());
            } else {
                for s in &series[..warm] {
                    assert!(reference.step(s).is_none());
                }
                for &kind in &ALL_SCORERS {
                    let mut fork = shared.fork(v, build_scorer(kind, &params));
                    let mut ref_fork = reference.fork_with_scorer(build_scorer(kind, &params));
                    for (t, s) in series[warm..].iter().enumerate() {
                        let a = fork.step(s);
                        let b = ref_fork.step(s);
                        assert_eq!(a.is_some(), b.is_some(), "{}: step {t}", spec.label());
                        if let (Some(a), Some(b)) = (a, b) {
                            assert_eq!(
                                a.anomaly_score.to_bits(),
                                b.anomaly_score.to_bits(),
                                "{} / {kind:?}: trace diverges at step {t}",
                                spec.label(),
                            );
                            assert_eq!(a.drift, b.drift, "{}: step {t}", spec.label());
                        }
                    }
                }
            }
        }
    }
}

/// The root-scheduled grid must scatter rows into exactly the per-cell
/// layout of the independent-warm-up reference, bitwise, at --serial and
/// --jobs 2/4/8.
#[test]
fn tree_grid_matches_group_reference_at_every_worker_count() {
    let cp = CorpusParams { length: 600, n_series: 1, anomalies_per_series: 2, with_drift: true };
    let corpora: Vec<Corpus> = vec![daphnet_like(13, cp), smd_like(13, cp)];
    // A cheap slice covering paired roots (ARIMA × all three Task-1
    // strategies) and a PCB singleton root.
    let specs: Vec<AlgorithmSpec> = paper_algorithms()
        .into_iter()
        .filter(|s| matches!(s.model, ModelKind::OnlineArima | ModelKind::PcbIForest))
        .collect();
    assert_eq!(specs.len(), 8);
    let dims = GridDims { corpora: corpora.len(), scorers: ALL_SCORERS.len() };

    let mut reference = Vec::new();
    for spec in &specs {
        for corpus in &corpora {
            let params = harness_params(corpus.series[0].channels(), HarnessScale::Quick);
            reference.extend(group_reference(*spec, &params, corpus, &ALL_SCORERS));
        }
    }

    let n_roots = plan_roots(&specs).len() * corpora.len();
    for jobs in [1usize, 2, 4, 8] {
        let grid =
            run_grid(&specs, &corpora, &ALL_SCORERS, HarnessScale::Quick, JobPool::new(jobs));
        assert_eq!(grid.rows.len(), reference.len(), "jobs={jobs}");
        assert_eq!(grid.root_times.len(), n_roots, "jobs={jobs}");
        assert_eq!(grid.group_labels.len(), specs.len() * corpora.len());
        // Every root fitted once per series, regardless of variant count.
        assert_eq!(grid.initial_fits(), n_roots, "jobs={jobs}");
        for (si, spec) in specs.iter().enumerate() {
            for ci in 0..corpora.len() {
                for (ki, kind) in ALL_SCORERS.iter().enumerate() {
                    let idx = cell_index(si, ci, ki, dims);
                    assert_eq!(
                        row_bits(&grid.rows[idx]),
                        row_bits(&reference[idx]),
                        "jobs={jobs}: cell {} ({} / {kind:?}) diverges",
                        grid.labels[idx],
                        spec.label(),
                    );
                }
            }
        }
    }
}

mod props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

        /// A random root (spec pair or singleton), random seed, random
        /// series: the tree rows equal the independent-warm-up reference
        /// bitwise for every member and scorer.
        #[test]
        fn random_root_seed_series_tree_parity(
            root_idx in 0usize..14,
            seed in 0u64..1000,
            len in 200usize..320,
        ) {
            let specs = paper_algorithms();
            let roots = plan_roots(&specs);
            let root = &roots[root_idx];
            let series = synthetic_series(len, 2, seed);
            let labels: Vec<bool> = (0..series.len()).map(|t| t > 3 * series.len() / 4).collect();
            let corpus = Corpus {
                name: "prop".into(),
                series: vec![sad_data::LabeledSeries::new("prop-s0", series, labels)],
            };
            let params = tiny_params(2, seed);
            let tree =
                evaluate_tree(root.model, root.task1, &root.task2s, &params, &corpus, &ALL_SCORERS);
            prop_assert_eq!(tree.initial_fits, 1);
            for (v, &spec_idx) in root.members.iter().enumerate() {
                let reference = group_reference(specs[spec_idx], &params, &corpus, &ALL_SCORERS);
                for (k, _) in ALL_SCORERS.iter().enumerate() {
                    prop_assert_eq!(row_bits(&tree.rows[v][k]), row_bits(&reference[k]));
                }
            }
        }
    }
}
