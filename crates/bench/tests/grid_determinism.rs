//! Determinism of the parallel evaluation grid.
//!
//! The harness's headline guarantee: `run_grid` output is *bit-identical*
//! at any worker count, because every cell is a pure function of its index
//! (own RNG chain, own detector) and results land in fixed slots. This
//! test runs a small but real slice of the Table III grid serially and on
//! four workers and compares every metric **bitwise** (`f64::to_bits`, not
//! an epsilon) — any scheduling leak into the numerics fails loudly.

use sad_bench::{run_grid, EvalRow, HarnessScale, JobPool};
use sad_core::{paper_algorithms, ScoreKind};
use sad_data::{daphnet_like, smd_like, Corpus, CorpusParams};

fn bits(row: &EvalRow) -> [u64; 5] {
    [
        row.precision.to_bits(),
        row.recall.to_bits(),
        row.auc.to_bits(),
        row.vus.to_bits(),
        row.nab.to_bits(),
    ]
}

#[test]
fn parallel_grid_is_bit_identical_to_serial() {
    let cp = CorpusParams { length: 700, n_series: 1, anomalies_per_series: 2, with_drift: true };
    let corpora: Vec<Corpus> = vec![daphnet_like(7, cp), smd_like(7, cp)];
    // A cheap, representative slice of the Table I specs (skip the slow
    // deep models: determinism does not depend on which spec runs).
    let specs: Vec<_> = paper_algorithms().into_iter().take(4).collect();
    let scorers = [ScoreKind::Raw, ScoreKind::AnomalyLikelihood];

    let serial = run_grid(&specs, &corpora, &scorers, HarnessScale::Quick, JobPool::new(1));
    let parallel = run_grid(&specs, &corpora, &scorers, HarnessScale::Quick, JobPool::new(4));

    assert_eq!(serial.rows.len(), specs.len() * corpora.len() * scorers.len());
    assert_eq!(serial.rows.len(), parallel.rows.len());
    assert_eq!(serial.labels, parallel.labels);
    assert_eq!(serial.jobs_used, 1);
    assert!(parallel.jobs_used > 1);
    for (i, (s, p)) in serial.rows.iter().zip(&parallel.rows).enumerate() {
        assert_eq!(
            bits(s),
            bits(p),
            "cell {i} ({}) differs between jobs=1 and jobs=4",
            serial.labels[i]
        );
    }
}

#[test]
fn rerunning_the_grid_reproduces_itself() {
    // Same pool size twice: the grid must also be deterministic across
    // runs (fresh corpora built from the same seed).
    let cp = CorpusParams { length: 600, n_series: 1, anomalies_per_series: 2, with_drift: false };
    let specs: Vec<_> = paper_algorithms().into_iter().take(2).collect();
    let scorers = [ScoreKind::Average];

    let run = |seed: u64| {
        let corpora = vec![daphnet_like(seed, cp)];
        run_grid(&specs, &corpora, &scorers, HarnessScale::Quick, JobPool::new(2))
    };
    let a = run(11);
    let b = run(11);
    for (x, y) in a.rows.iter().zip(&b.rows) {
        assert_eq!(bits(x), bits(y));
    }
}
