//! Bitwise parity of the single-pass scorer fan-out against legacy
//! per-scorer runs.
//!
//! The tentpole guarantee of the fan-out refactor: teeing the per-step
//! nonconformity `a_t` through a [`sad_core::ScorerBank`] (one detector
//! pass, all scorers) produces **bit-identical** score traces and metric
//! rows to the pre-fan-out protocol of one detector per `(spec, corpus,
//! scorer)` cell — for every scorer, every training strategy (including
//! the anomaly-feedback ARES path, which shares only the warm-up and
//! forks per scorer), and at any worker count.
//!
//! The legacy reference is replicated here verbatim (one detector per
//! scorer, `score_series`, the five-metric sweep) so the comparison does
//! not depend on the refactored code path under test.

use sad_bench::{
    cell_index, evaluate_spec_scorers, harness_params, run_grid, EvalRow, GridDims, HarnessScale,
    JobPool,
};
use sad_core::{paper_algorithms, AlgorithmSpec, DetectorConfig, ScoreKind, Task1};
use sad_data::{daphnet_like, smd_like, Corpus, CorpusParams};
use sad_metrics::{best_f1, best_nab, pr_auc, vus_pr};
use sad_models::{build_detector, build_scorer_bank, BuildParams};

const ALL_SCORERS: [ScoreKind; 3] =
    [ScoreKind::Raw, ScoreKind::Average, ScoreKind::AnomalyLikelihood];

/// Small-but-real detector configuration for trace-level checks.
fn tiny_params(channels: usize, seed: u64) -> BuildParams {
    let config = DetectorConfig {
        window: 6,
        channels,
        warmup: 80,
        initial_epochs: 2,
        fine_tune_epochs: 1,
    };
    BuildParams::new(config).with_capacity(12).with_kswin_stride(3).with_seed(seed)
}

/// The pre-fan-out scoring protocol: one fresh detector per scorer.
fn legacy_traces(
    spec: AlgorithmSpec,
    params: &BuildParams,
    series: &[Vec<f64>],
) -> Vec<(Vec<f64>, usize)> {
    ALL_SCORERS
        .iter()
        .map(|&kind| {
            let p = params.clone().with_score(kind);
            let mut det = build_detector(spec, &p);
            det.score_series(series)
        })
        .collect()
}

/// The pre-fan-out metric row: legacy trace + the five-metric sweep.
fn legacy_row(
    spec: AlgorithmSpec,
    params: &BuildParams,
    corpus: &Corpus,
    score: ScoreKind,
) -> EvalRow {
    let n_thresholds = 40;
    let rows: Vec<EvalRow> = corpus
        .series
        .iter()
        .map(|series| {
            let p = params.clone().with_score(score);
            let mut detector = build_detector(spec, &p);
            let (scores, offset) = detector.score_series(&series.data);
            let labels = &series.labels[offset..];
            let (_th, precision, recall, _f1) = best_f1(&scores, labels, n_thresholds);
            let auc = pr_auc(&scores, labels, n_thresholds);
            let vus = vus_pr(&scores, labels, params.config.window, n_thresholds);
            let (_nab_th, report) = best_nab(&scores, labels, n_thresholds);
            EvalRow {
                precision,
                recall,
                auc,
                vus,
                nab: report.score,
                train_seconds: detector.train_time().as_secs_f64(),
            }
        })
        .collect();
    EvalRow::mean(&rows)
}

fn row_bits(row: &EvalRow) -> [u64; 5] {
    [
        row.precision.to_bits(),
        row.recall.to_bits(),
        row.auc.to_bits(),
        row.vus.to_bits(),
        row.nab.to_bits(),
    ]
}

/// Deterministic synthetic multivariate series with a planted level shift.
fn synthetic_series(len: usize, channels: usize, seed: u64) -> Vec<Vec<f64>> {
    (0..len)
        .map(|t| {
            (0..channels)
                .map(|c| {
                    let phase = (seed % 17) as f64 * 0.31 + c as f64 * 0.7;
                    let base = ((t as f64) * 0.11 + phase).sin();
                    let shift = if t > 2 * len / 3 { 0.8 } else { 0.0 };
                    base + 0.05 * (((t * (c + 3)) % 23) as f64 - 11.0) / 11.0 + shift
                })
                .collect()
        })
        .collect()
}

#[test]
fn fanout_traces_match_legacy_for_every_spec_and_scorer() {
    // Every Table I spec: feedback-free ones take the shared-pass branch,
    // ARES ones the warm-up-share fork branch inside
    // `evaluate_spec_scorers`; at trace level only feedback-free specs
    // can use `run_fanout` directly.
    let series = synthetic_series(260, 2, 5);
    for spec in paper_algorithms() {
        let params = tiny_params(2, 9);
        let p0 = params.clone().with_score(ALL_SCORERS[0]);
        let mut det = build_detector(spec, &p0);
        if !det.scorer_feedback_free() {
            continue; // ARES: covered at EvalRow level below.
        }
        let mut bank = build_scorer_bank(&ALL_SCORERS, &params);
        let run = det.run_fanout(&series, &mut bank);
        let legacy = legacy_traces(spec, &params, &series);
        for (k, (trace, (legacy_trace, legacy_offset))) in
            run.traces.iter().zip(&legacy).enumerate()
        {
            assert_eq!(run.offset, *legacy_offset, "{}: offset", spec.label());
            assert_eq!(trace.len(), legacy_trace.len(), "{}: trace length", spec.label());
            for (t, (a, b)) in trace.iter().zip(legacy_trace).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{} / {:?}: trace diverges at step {t}",
                    spec.label(),
                    ALL_SCORERS[k],
                );
            }
        }
    }
}

#[test]
fn group_rows_match_legacy_for_every_spec() {
    // EvalRow-level parity over a real (small) corpus for all 26 specs —
    // exercises both the shared-pass and the ARES fork branch.
    let cp = CorpusParams { length: 520, n_series: 1, anomalies_per_series: 2, with_drift: true };
    let corpus = smd_like(3, cp);
    let channels = corpus.series[0].channels();
    for spec in paper_algorithms() {
        let params = tiny_params(channels, 21);
        let group = evaluate_spec_scorers(spec, &params, &corpus, &ALL_SCORERS);
        assert_eq!(group.rows.len(), ALL_SCORERS.len());
        assert_eq!(group.shared_pass, spec.task1 != Task1::AnomalyAwareReservoir, "{}", spec.label());
        for (k, &kind) in ALL_SCORERS.iter().enumerate() {
            let legacy = legacy_row(spec, &params, &corpus, kind);
            assert_eq!(
                row_bits(&group.rows[k]),
                row_bits(&legacy),
                "{} / {kind:?}: EvalRow diverges from legacy per-scorer run",
                spec.label(),
            );
        }
    }
}

#[test]
fn grid_matches_legacy_cells_at_every_worker_count() {
    // The grouped grid must scatter rows into exactly the legacy per-cell
    // layout, bitwise, at --serial and --jobs 2/4/8.
    let cp = CorpusParams { length: 600, n_series: 1, anomalies_per_series: 2, with_drift: true };
    let corpora: Vec<Corpus> = vec![daphnet_like(13, cp), smd_like(13, cp)];
    let specs: Vec<AlgorithmSpec> = paper_algorithms()
        .into_iter()
        .filter(|s| {
            // A cheap slice covering all three Task-1 strategies.
            matches!(
                s.task1,
                Task1::SlidingWindow | Task1::UniformReservoir | Task1::AnomalyAwareReservoir
            )
        })
        .take(6)
        .collect();
    let dims = GridDims { corpora: corpora.len(), scorers: ALL_SCORERS.len() };

    // Legacy reference: one detector per (spec, corpus, scorer) cell.
    let mut legacy = Vec::new();
    for spec in &specs {
        for corpus in &corpora {
            let params = harness_params(corpus.series[0].channels(), HarnessScale::Quick);
            for &kind in &ALL_SCORERS {
                legacy.push(legacy_row(*spec, &params, corpus, kind));
            }
        }
    }

    for jobs in [1usize, 2, 4, 8] {
        let grid =
            run_grid(&specs, &corpora, &ALL_SCORERS, HarnessScale::Quick, JobPool::new(jobs));
        assert_eq!(grid.rows.len(), legacy.len(), "jobs={jobs}");
        assert_eq!(grid.group_labels.len(), specs.len() * corpora.len());
        assert_eq!(grid.group_times.len(), grid.group_labels.len());
        assert_eq!(grid.group_shared.len(), grid.group_labels.len());
        for (si, spec) in specs.iter().enumerate() {
            for ci in 0..corpora.len() {
                for (ki, kind) in ALL_SCORERS.iter().enumerate() {
                    let idx = cell_index(si, ci, ki, dims);
                    assert_eq!(
                        row_bits(&grid.rows[idx]),
                        row_bits(&legacy[idx]),
                        "jobs={jobs}: cell {} ({} / {kind:?}) diverges",
                        grid.labels[idx],
                        spec.label(),
                    );
                }
            }
        }
    }
}

mod props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

        /// Fan-out traces equal legacy per-scorer traces bitwise for a
        /// random feedback-free spec, random seed, and random series.
        #[test]
        fn random_spec_seed_series_fanout_parity(
            spec_idx in 0usize..26,
            seed in 0u64..1000,
            len in 200usize..320,
        ) {
            let spec = paper_algorithms()[spec_idx];
            let series = synthetic_series(len, 2, seed);
            let params = tiny_params(2, seed);
            let p0 = params.clone().with_score(ALL_SCORERS[0]);
            let mut det = build_detector(spec, &p0);
            if det.scorer_feedback_free() {
                let mut bank = build_scorer_bank(&ALL_SCORERS, &params);
                let run = det.run_fanout(&series, &mut bank);
                let legacy = legacy_traces(spec, &params, &series);
                for (trace, (legacy_trace, legacy_offset)) in run.traces.iter().zip(&legacy) {
                    prop_assert_eq!(run.offset, *legacy_offset);
                    prop_assert_eq!(trace.len(), legacy_trace.len());
                    for (a, b) in trace.iter().zip(legacy_trace) {
                        prop_assert_eq!(a.to_bits(), b.to_bits());
                    }
                }
            } else {
                // ARES: the fork path must still reproduce legacy rows.
                // Label a slice of the planted level shift as anomalous so
                // the metric sweep is non-degenerate.
                let labels: Vec<bool> =
                    (0..series.len()).map(|t| t > 3 * series.len() / 4).collect();
                let corpus = Corpus {
                    name: "prop".into(),
                    series: vec![sad_data::LabeledSeries::new("prop-s0", series.clone(), labels)],
                };
                let group = evaluate_spec_scorers(spec, &params, &corpus, &ALL_SCORERS);
                for (k, &kind) in ALL_SCORERS.iter().enumerate() {
                    let legacy = legacy_row(spec, &params, &corpus, kind);
                    prop_assert_eq!(row_bits(&group.rows[k]), row_bits(&legacy));
                }
            }
        }
    }
}
