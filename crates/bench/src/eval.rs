//! Shared evaluation loop: run one Table I algorithm over one corpus and
//! compute the paper's five metrics.
//!
//! Protocol (mirroring §V-B): per series, the detector warms up on the
//! prefix, streams the remainder, and its anomaly scores are evaluated
//! against the post-warm-up labels. Precision and recall are reported at
//! the best-F1 threshold of the score sweep (the paper does not state its
//! thresholding rule; best-F1 is the conventional choice and is applied
//! uniformly to every algorithm). Metrics are averaged across the corpus's
//! series.

use sad_core::{AlgorithmSpec, DetectorConfig, ModelKind, ScoreKind, Task1, Task2};
use sad_data::Corpus;
use sad_metrics::{best_f1, best_nab, pr_auc, vus_pr};
use sad_models::{build_scorer, build_scorer_bank, build_shared_warmup, BuildParams};

/// One row of Table III: the five metrics for one algorithm on one corpus.
#[derive(Debug, Clone, Copy, Default)]
pub struct EvalRow {
    /// Range-based precision at the best-F1 threshold.
    pub precision: f64,
    /// Range-based recall at the best-F1 threshold.
    pub recall: f64,
    /// Area under the range-based precision-recall curve.
    pub auc: f64,
    /// Volume under the PR surface.
    pub vus: f64,
    /// Point-wise NAB score.
    pub nab: f64,
    /// Wall time (seconds) the detectors spent in model training (initial
    /// fit + drift-triggered fine-tunes), summed over the corpus's series.
    /// Telemetry, not a metric: excluded from the table output and from
    /// the bitwise-determinism guarantees, surfaced per cell in the
    /// timing artifact.
    pub train_seconds: f64,
}

impl EvalRow {
    /// Element-wise mean of several rows, skipping NaN cells per metric.
    ///
    /// A NaN metric (e.g. a VUS that degenerated on an all-negative series)
    /// previously poisoned the whole averaged row. Each metric now averages
    /// only its finite values; a metric with *no* finite values stays NaN so
    /// the degenerate case remains visible instead of being silently zeroed.
    pub fn mean(rows: &[EvalRow]) -> EvalRow {
        if rows.is_empty() {
            return EvalRow::default();
        }
        let mean_of = |field: fn(&EvalRow) -> f64| -> f64 {
            let mut sum = 0.0;
            let mut n = 0usize;
            for row in rows {
                let v = field(row);
                if !v.is_nan() {
                    sum += v;
                    n += 1;
                }
            }
            if n == 0 {
                f64::NAN
            } else {
                sum / n as f64
            }
        };
        EvalRow {
            precision: mean_of(|r| r.precision),
            recall: mean_of(|r| r.recall),
            auc: mean_of(|r| r.auc),
            vus: mean_of(|r| r.vus),
            nab: mean_of(|r| r.nab),
            // Wall time is a cost, not a quality metric: totals add up.
            train_seconds: rows.iter().map(|r| r.train_seconds).sum(),
        }
    }
}

/// Harness size profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HarnessScale {
    /// Fast profile for iteration: short series, strided KSWIN.
    Quick,
    /// Paper-shaped profile: `w = 100`, warm-up 5000, per-step KSWIN.
    Full,
}

/// Build parameters for a corpus with `channels` channels under a scale
/// profile.
pub fn harness_params(channels: usize, scale: HarnessScale) -> BuildParams {
    match scale {
        HarnessScale::Quick => {
            let config = DetectorConfig {
                window: 20,
                channels,
                warmup: 400,
                initial_epochs: 5,
                fine_tune_epochs: 1,
            };
            BuildParams::new(config).with_capacity(40).with_kswin_stride(5)
        }
        HarnessScale::Full => {
            let config = DetectorConfig::paper(channels);
            BuildParams::new(config).with_capacity(50).with_kswin_stride(1)
        }
    }
}

/// Number of thresholds in every metric sweep (one value for the whole
/// harness so PR curves are comparable across algorithms).
const N_THRESHOLDS: usize = 40;

/// Computes the five-metric row for one score trace against its aligned
/// labels.
fn metrics_row(
    scores: &[f64],
    labels: &[bool],
    window: usize,
    train_seconds: f64,
) -> EvalRow {
    debug_assert_eq!(scores.len(), labels.len());
    let (_th, precision, recall, _f1) = best_f1(scores, labels, N_THRESHOLDS);
    let auc = pr_auc(scores, labels, N_THRESHOLDS);
    let vus = vus_pr(scores, labels, window, N_THRESHOLDS);
    // NAB gets its own best operating point, symmetric with the best-F1
    // treatment of precision/recall (the paper does not state its
    // thresholding rule).
    let (_nab_th, report) = best_nab(scores, labels, N_THRESHOLDS);
    EvalRow { precision, recall, auc, vus, nab: report.score, train_seconds }
}

/// Result of evaluating one `(spec, corpus)` group over several scorers at
/// once.
#[derive(Debug, Clone)]
pub struct GroupEval {
    /// One corpus-averaged metric row per requested scorer, in input order.
    pub rows: Vec<EvalRow>,
    /// Whether the scorer fan-out shared a single detector pass per series.
    /// `false` only for anomaly-feedback strategies (ARES), which share the
    /// warm-up + initial fit and then fork one detector per scorer.
    pub shared_pass: bool,
    /// True training wall time of the group (seconds): shared work counted
    /// once, unlike summing the per-scorer `train_seconds` telemetry.
    pub train_seconds: f64,
}

/// Result of evaluating one **root** of the shared-prefix evaluation tree:
/// a `(model, Task1, corpus)` node whose warm-up segment + initial fit is
/// streamed ONCE and forked across several Task-2 drift variants, each
/// fork fanned out over every scorer (PR 3's scorer bank).
#[derive(Debug, Clone)]
pub struct TreeEval {
    /// `rows[variant][scorer]`: one corpus-averaged metric row per
    /// `(drift variant, scorer)` leaf, both in input order.
    pub rows: Vec<Vec<EvalRow>>,
    /// Whether the scorer fan-out shared a single detector pass per fork.
    /// `false` only for anomaly-feedback strategies (ARES) evaluated over
    /// several scorers.
    pub shared_pass: bool,
    /// Legacy per-variant training seconds: each variant's view counts the
    /// shared warm-up fit as its own, matching what a standalone
    /// `(spec, corpus)` group run would have reported. Sums to more than
    /// [`Self::train_seconds`] whenever the fit was actually shared.
    pub variant_train_seconds: Vec<f64>,
    /// True training wall time of the root (seconds): the shared initial
    /// fit counted ONCE across all variants and scorers, plus every fork's
    /// own fine-tune cost.
    pub train_seconds: f64,
    /// Number of `fit_initial` invocations actually performed — one per
    /// series that reached warm-up, *regardless of the variant count*.
    pub initial_fits: usize,
}

/// Evaluates one shared-prefix root: `(model, task1)` on `corpus`, forked
/// over the drift variants in `task2s`, fanned out over `scorers`.
///
/// Bitwise identical to one [`evaluate_spec_scorers`] call per
/// `(model, task1, task2)` spec, but the expensive shared prefix — warm-up
/// streaming of the representation + Task-1 strategy and the initial model
/// fit — is computed once per series instead of once per variant. This is
/// sound because the warm-up trajectory is drift-verdict-independent (the
/// verdict is ignored and `f_t` is pinned to 0; see
/// [`sad_core::SharedWarmup`]) and every component seeds its own RNG
/// chain.
///
/// Per fork the scorer dimension then collapses exactly as in
/// [`evaluate_spec_scorers`]:
///
/// * **Shared pass** (SW / URES): one [`sad_core::Detector::run_fanout`]
///   pass over the post-warm-up suffix tees the nonconformity stream
///   through a [`sad_core::ScorerBank`].
/// * **Scorer forks** (ARES): `f_t` feeds the reservoir, so each scorer
///   gets its own fork of the warmed root.
pub fn evaluate_tree(
    model: ModelKind,
    task1: Task1,
    task2s: &[Task2],
    params: &BuildParams,
    corpus: &Corpus,
    scorers: &[ScoreKind],
) -> TreeEval {
    assert!(!task2s.is_empty(), "at least one drift variant required");
    assert!(!scorers.is_empty(), "at least one scorer required");
    let window = params.config.window;
    // Per-(variant, scorer) accumulation of per-series rows.
    let mut per_leaf: Vec<Vec<Vec<EvalRow>>> =
        vec![vec![Vec::new(); scorers.len()]; task2s.len()];
    let mut variant_train = vec![0.0f64; task2s.len()];
    let mut root_train = 0.0f64;
    let mut initial_fits = 0usize;
    let mut shared_pass = true;
    for series in &corpus.series {
        // One warm-up + initial fit for the whole variant fan.
        let mut shared = build_shared_warmup(model, task1, task2s, params);
        let warm = params.config.warmup.min(series.data.len());
        for s in &series.data[..warm] {
            shared.step(s);
        }
        let base_train = shared.train_time().as_secs_f64();
        root_train += base_train;
        initial_fits += shared.is_warmed_up() as usize;
        // A series ending inside warm-up has `warm == series.data.len()`,
        // so this uniformly aligns labels with the (possibly empty)
        // post-warm-up traces.
        let labels = &series.labels[warm..];
        if shared.scorer_feedback_free() {
            for (v, leaves) in per_leaf.iter_mut().enumerate() {
                // The fork's own scorer drives `f_t` exactly as a
                // standalone detector built with `scorers[0]` would; the
                // bank tees the remaining scorers off the same pass.
                let mut fork = shared.fork(v, build_scorer(scorers[0], params));
                let mut bank = build_scorer_bank(scorers, params);
                let run = fork.run_fanout(&series.data[warm..], &mut bank);
                let train = fork.train_time().as_secs_f64();
                variant_train[v] += train;
                // The fork's telemetry carries the shared fit; only its
                // post-fork fine-tunes are new cost for the root.
                root_train += train - base_train;
                for (k, trace) in run.traces.iter().enumerate() {
                    leaves[k].push(metrics_row(trace, labels, window, train));
                }
            }
        } else {
            shared_pass = scorers.len() == 1;
            for (v, leaves) in per_leaf.iter_mut().enumerate() {
                variant_train[v] += base_train;
                for (k, &kind) in scorers.iter().enumerate() {
                    let mut fork = shared.fork(v, build_scorer(kind, params));
                    let mut scores = Vec::with_capacity(series.data.len() - warm);
                    for s in &series.data[warm..] {
                        if let Some(out) = fork.step(s) {
                            scores.push(out.anomaly_score);
                        }
                    }
                    let fork_train = fork.train_time().as_secs_f64();
                    variant_train[v] += fork_train - base_train;
                    root_train += fork_train - base_train;
                    leaves[k].push(metrics_row(&scores, labels, window, fork_train));
                }
            }
        }
    }
    TreeEval {
        rows: per_leaf
            .iter()
            .map(|leaves| leaves.iter().map(|rows| EvalRow::mean(rows)).collect())
            .collect(),
        shared_pass,
        variant_train_seconds: variant_train,
        train_seconds: root_train,
        initial_fits,
    }
}

/// Runs `spec` over every series of `corpus` once per series (when the
/// algorithm permits) and returns one corpus-averaged metric row **per
/// scorer** in `scorers`.
///
/// Single-variant special case of [`evaluate_tree`]: the shared-prefix
/// machinery degenerates to one warm-up + fit + fork per series, which is
/// bitwise identical to the pre-tree group evaluation (and hence to
/// per-scorer [`evaluate_spec`] runs).
pub fn evaluate_spec_scorers(
    spec: AlgorithmSpec,
    params: &BuildParams,
    corpus: &Corpus,
    scorers: &[ScoreKind],
) -> GroupEval {
    let tree = evaluate_tree(spec.model, spec.task1, &[spec.task2], params, corpus, scorers);
    let TreeEval { rows, shared_pass, train_seconds, .. } = tree;
    GroupEval {
        rows: rows.into_iter().next().expect("exactly one variant"),
        shared_pass,
        train_seconds,
    }
}

/// Runs `spec` with anomaly scorer `score` over every series of `corpus`
/// and returns the corpus-averaged metric row.
///
/// Single-scorer special case of [`evaluate_spec_scorers`]; the fan-out
/// machinery degenerates to the legacy one-detector-one-scorer loop and
/// reproduces it bitwise.
pub fn evaluate_spec(
    spec: AlgorithmSpec,
    params: &BuildParams,
    corpus: &Corpus,
    score: ScoreKind,
) -> EvalRow {
    evaluate_spec_scorers(spec, params, corpus, &[score]).rows[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sad_core::paper_algorithms;
    use sad_data::{daphnet_like, CorpusParams};
    use sad_models::build_detector;

    #[test]
    fn quick_profile_evaluates_one_algorithm() {
        let mut params = CorpusParams::small();
        params.length = 900;
        params.n_series = 1;
        let corpus = daphnet_like(3, params);
        let spec = paper_algorithms()[0]; // Online ARIMA / SW / μσ
        let bp = harness_params(9, HarnessScale::Quick);
        let row = evaluate_spec(spec, &bp, &corpus, ScoreKind::AnomalyLikelihood);
        assert!((0.0..=1.0).contains(&row.precision));
        assert!((0.0..=1.0).contains(&row.recall));
        assert!((0.0..=1.0).contains(&row.auc));
        assert!((0.0..=1.0).contains(&row.vus));
        assert!(row.nab.is_finite());
    }

    /// Replicates the pre-fan-out evaluation loop (one detector per
    /// scorer, `score_series`) as the parity reference.
    fn legacy_evaluate(
        spec: AlgorithmSpec,
        params: &BuildParams,
        corpus: &sad_data::Corpus,
        score: ScoreKind,
    ) -> EvalRow {
        let rows: Vec<EvalRow> = corpus
            .series
            .iter()
            .map(|series| {
                let p = params.clone().with_score(score);
                let mut detector = build_detector(spec, &p);
                let (scores, offset) = detector.score_series(&series.data);
                let labels = &series.labels[offset..];
                metrics_row(&scores, labels, params.config.window, detector.train_time().as_secs_f64())
            })
            .collect();
        EvalRow::mean(&rows)
    }

    fn assert_rows_bitwise(a: &EvalRow, b: &EvalRow, what: &str) {
        assert_eq!(a.precision.to_bits(), b.precision.to_bits(), "{what}: precision");
        assert_eq!(a.recall.to_bits(), b.recall.to_bits(), "{what}: recall");
        assert_eq!(a.auc.to_bits(), b.auc.to_bits(), "{what}: auc");
        assert_eq!(a.vus.to_bits(), b.vus.to_bits(), "{what}: vus");
        assert_eq!(a.nab.to_bits(), b.nab.to_bits(), "{what}: nab");
        // train_seconds is wall-clock telemetry: excluded on purpose.
    }

    #[test]
    fn group_eval_matches_legacy_per_scorer_runs_bitwise() {
        use sad_core::Task1;
        let mut cp = CorpusParams::small();
        cp.length = 700;
        cp.n_series = 2;
        let corpus = daphnet_like(2, cp);
        let config = DetectorConfig {
            window: 8,
            channels: corpus.series[0].channels(),
            warmup: 250,
            initial_epochs: 2,
            fine_tune_epochs: 1,
        };
        let bp = BuildParams::new(config).with_capacity(20).with_kswin_stride(5);
        let kinds = [ScoreKind::Raw, ScoreKind::Average, ScoreKind::AnomalyLikelihood];
        // One feedback-free spec (shared pass) and one ARES spec
        // (warm-up-share fork path).
        let shared_spec = paper_algorithms()
            .into_iter()
            .find(|s| s.task1 == Task1::SlidingWindow)
            .unwrap();
        let ares_spec = paper_algorithms()
            .into_iter()
            .find(|s| s.task1 == Task1::AnomalyAwareReservoir)
            .unwrap();
        for (spec, expect_shared) in [(shared_spec, true), (ares_spec, false)] {
            let group = evaluate_spec_scorers(spec, &bp, &corpus, &kinds);
            assert_eq!(group.shared_pass, expect_shared, "{}", spec.label());
            assert_eq!(group.rows.len(), kinds.len());
            assert!(group.train_seconds >= 0.0);
            for (k, &kind) in kinds.iter().enumerate() {
                let legacy = legacy_evaluate(spec, &bp, &corpus, kind);
                assert_rows_bitwise(
                    &group.rows[k],
                    &legacy,
                    &format!("{} / {kind:?}", spec.label()),
                );
            }
        }
    }

    /// A paired tree root (both drift variants of one `(model, Task1)`)
    /// reproduces the two per-spec group evaluations bitwise, while
    /// running `fit_initial` only once per series.
    #[test]
    fn tree_eval_matches_per_spec_groups_bitwise() {
        use sad_core::{ModelKind, Task1};
        let mut cp = CorpusParams::small();
        cp.length = 700;
        cp.n_series = 2;
        let corpus = daphnet_like(2, cp);
        let config = DetectorConfig {
            window: 8,
            channels: corpus.series[0].channels(),
            warmup: 250,
            initial_epochs: 2,
            fine_tune_epochs: 1,
        };
        let bp = BuildParams::new(config).with_capacity(20).with_kswin_stride(5);
        let kinds = [ScoreKind::Raw, ScoreKind::Average, ScoreKind::AnomalyLikelihood];
        for (model, task1) in [
            (ModelKind::OnlineArima, Task1::SlidingWindow),
            (ModelKind::OnlineArima, Task1::AnomalyAwareReservoir),
        ] {
            let pair: Vec<_> = paper_algorithms()
                .into_iter()
                .filter(|s| s.model == model && s.task1 == task1)
                .collect();
            assert_eq!(pair.len(), 2);
            let task2s: Vec<_> = pair.iter().map(|s| s.task2).collect();
            let tree = evaluate_tree(model, task1, &task2s, &bp, &corpus, &kinds);
            assert_eq!(tree.rows.len(), 2);
            assert_eq!(tree.variant_train_seconds.len(), 2);
            // One shared fit per series, not one per variant.
            assert_eq!(tree.initial_fits, corpus.series.len());
            // The shared fit is counted once in the root total but in
            // both legacy per-variant views.
            assert!(tree.variant_train_seconds.iter().sum::<f64>() >= tree.train_seconds);
            for (v, &spec) in pair.iter().enumerate() {
                let group = evaluate_spec_scorers(spec, &bp, &corpus, &kinds);
                assert_eq!(tree.shared_pass, group.shared_pass, "{}", spec.label());
                for (k, kind) in kinds.iter().enumerate() {
                    assert_rows_bitwise(
                        &tree.rows[v][k],
                        &group.rows[k],
                        &format!("{} / {kind:?}", spec.label()),
                    );
                }
            }
        }
    }

    #[test]
    fn evaluate_spec_is_single_scorer_group() {
        let mut cp = CorpusParams::small();
        cp.length = 600;
        cp.n_series = 1;
        let corpus = daphnet_like(2, cp);
        let bp = harness_params(corpus.series[0].channels(), HarnessScale::Quick);
        let spec = paper_algorithms()[0];
        let single = evaluate_spec(spec, &bp, &corpus, ScoreKind::Average);
        let group = evaluate_spec_scorers(spec, &bp, &corpus, &[ScoreKind::Average]);
        assert!(group.shared_pass);
        assert_rows_bitwise(&single, &group.rows[0], "single-scorer delegation");
    }

    #[test]
    fn mean_skips_nan_cells_per_metric() {
        let rows = [
            EvalRow { precision: 0.8, recall: 0.6, auc: 0.5, vus: f64::NAN, nab: 1.0, ..EvalRow::default() },
            EvalRow { precision: 0.4, recall: 0.2, auc: 0.7, vus: 0.3, nab: 3.0, ..EvalRow::default() },
        ];
        let m = EvalRow::mean(&rows);
        // NaN VUS in one row must not poison the other metrics…
        assert!((m.precision - 0.6).abs() < 1e-12);
        assert!((m.recall - 0.4).abs() < 1e-12);
        assert!((m.auc - 0.6).abs() < 1e-12);
        assert!((m.nab - 2.0).abs() < 1e-12);
        // …and VUS averages only its finite values.
        assert!((m.vus - 0.3).abs() < 1e-12);
    }

    #[test]
    fn mean_with_all_nan_metric_stays_nan() {
        let rows = [
            EvalRow { vus: f64::NAN, ..EvalRow::default() },
            EvalRow { vus: f64::NAN, ..EvalRow::default() },
        ];
        let m = EvalRow::mean(&rows);
        assert!(m.vus.is_nan(), "fully-degenerate metric must stay visible");
        assert_eq!(m.precision, 0.0);
    }

    #[test]
    fn mean_of_rows() {
        let rows = [
            EvalRow { precision: 1.0, recall: 0.0, auc: 0.5, vus: 0.2, nab: -2.0, train_seconds: 0.5 },
            EvalRow { precision: 0.0, recall: 1.0, auc: 0.5, vus: 0.4, nab: 4.0, train_seconds: 0.25 },
        ];
        let m = EvalRow::mean(&rows);
        assert_eq!(m.precision, 0.5);
        assert_eq!(m.recall, 0.5);
        assert_eq!(m.auc, 0.5);
        assert!((m.vus - 0.3).abs() < 1e-12);
        assert_eq!(m.nab, 1.0);
        // Train time is a cost: it sums instead of averaging.
        assert!((m.train_seconds - 0.75).abs() < 1e-12);
    }
}
