//! Shared evaluation loop: run one Table I algorithm over one corpus and
//! compute the paper's five metrics.
//!
//! Protocol (mirroring §V-B): per series, the detector warms up on the
//! prefix, streams the remainder, and its anomaly scores are evaluated
//! against the post-warm-up labels. Precision and recall are reported at
//! the best-F1 threshold of the score sweep (the paper does not state its
//! thresholding rule; best-F1 is the conventional choice and is applied
//! uniformly to every algorithm). Metrics are averaged across the corpus's
//! series.

use sad_core::{AlgorithmSpec, DetectorConfig, ScoreKind};
use sad_data::Corpus;
use sad_metrics::{best_f1, best_nab, pr_auc, vus_pr};
use sad_models::{build_detector, BuildParams};

/// One row of Table III: the five metrics for one algorithm on one corpus.
#[derive(Debug, Clone, Copy, Default)]
pub struct EvalRow {
    /// Range-based precision at the best-F1 threshold.
    pub precision: f64,
    /// Range-based recall at the best-F1 threshold.
    pub recall: f64,
    /// Area under the range-based precision-recall curve.
    pub auc: f64,
    /// Volume under the PR surface.
    pub vus: f64,
    /// Point-wise NAB score.
    pub nab: f64,
    /// Wall time (seconds) the detectors spent in model training (initial
    /// fit + drift-triggered fine-tunes), summed over the corpus's series.
    /// Telemetry, not a metric: excluded from the table output and from
    /// the bitwise-determinism guarantees, surfaced per cell in the
    /// timing artifact.
    pub train_seconds: f64,
}

impl EvalRow {
    /// Element-wise mean of several rows, skipping NaN cells per metric.
    ///
    /// A NaN metric (e.g. a VUS that degenerated on an all-negative series)
    /// previously poisoned the whole averaged row. Each metric now averages
    /// only its finite values; a metric with *no* finite values stays NaN so
    /// the degenerate case remains visible instead of being silently zeroed.
    pub fn mean(rows: &[EvalRow]) -> EvalRow {
        if rows.is_empty() {
            return EvalRow::default();
        }
        let mean_of = |field: fn(&EvalRow) -> f64| -> f64 {
            let mut sum = 0.0;
            let mut n = 0usize;
            for row in rows {
                let v = field(row);
                if !v.is_nan() {
                    sum += v;
                    n += 1;
                }
            }
            if n == 0 {
                f64::NAN
            } else {
                sum / n as f64
            }
        };
        EvalRow {
            precision: mean_of(|r| r.precision),
            recall: mean_of(|r| r.recall),
            auc: mean_of(|r| r.auc),
            vus: mean_of(|r| r.vus),
            nab: mean_of(|r| r.nab),
            // Wall time is a cost, not a quality metric: totals add up.
            train_seconds: rows.iter().map(|r| r.train_seconds).sum(),
        }
    }
}

/// Harness size profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HarnessScale {
    /// Fast profile for iteration: short series, strided KSWIN.
    Quick,
    /// Paper-shaped profile: `w = 100`, warm-up 5000, per-step KSWIN.
    Full,
}

/// Build parameters for a corpus with `channels` channels under a scale
/// profile.
pub fn harness_params(channels: usize, scale: HarnessScale) -> BuildParams {
    match scale {
        HarnessScale::Quick => {
            let config = DetectorConfig {
                window: 20,
                channels,
                warmup: 400,
                initial_epochs: 5,
                fine_tune_epochs: 1,
            };
            BuildParams::new(config).with_capacity(40).with_kswin_stride(5)
        }
        HarnessScale::Full => {
            let config = DetectorConfig::paper(channels);
            BuildParams::new(config).with_capacity(50).with_kswin_stride(1)
        }
    }
}

/// Runs `spec` with anomaly scorer `score` over every series of `corpus`
/// and returns the corpus-averaged metric row.
pub fn evaluate_spec(
    spec: AlgorithmSpec,
    params: &BuildParams,
    corpus: &Corpus,
    score: ScoreKind,
) -> EvalRow {
    let n_thresholds = 40;
    let rows: Vec<EvalRow> = corpus
        .series
        .iter()
        .map(|series| {
            let p = params.clone().with_score(score);
            let mut detector = build_detector(spec, &p);
            let (scores, offset) = detector.score_series(&series.data);
            let labels = &series.labels[offset..];
            debug_assert_eq!(scores.len(), labels.len());
            let (_th, precision, recall, _f1) = best_f1(&scores, labels, n_thresholds);
            let auc = pr_auc(&scores, labels, n_thresholds);
            let vus = vus_pr(&scores, labels, params.config.window, n_thresholds);
            // NAB gets its own best operating point, symmetric with the
            // best-F1 treatment of precision/recall (the paper does not
            // state its thresholding rule).
            let (_nab_th, report) = best_nab(&scores, labels, n_thresholds);
            EvalRow {
                precision,
                recall,
                auc,
                vus,
                nab: report.score,
                train_seconds: detector.train_time().as_secs_f64(),
            }
        })
        .collect();
    EvalRow::mean(&rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sad_core::paper_algorithms;
    use sad_data::{daphnet_like, CorpusParams};

    #[test]
    fn quick_profile_evaluates_one_algorithm() {
        let mut params = CorpusParams::small();
        params.length = 900;
        params.n_series = 1;
        let corpus = daphnet_like(3, params);
        let spec = paper_algorithms()[0]; // Online ARIMA / SW / μσ
        let bp = harness_params(9, HarnessScale::Quick);
        let row = evaluate_spec(spec, &bp, &corpus, ScoreKind::AnomalyLikelihood);
        assert!((0.0..=1.0).contains(&row.precision));
        assert!((0.0..=1.0).contains(&row.recall));
        assert!((0.0..=1.0).contains(&row.auc));
        assert!((0.0..=1.0).contains(&row.vus));
        assert!(row.nab.is_finite());
    }

    #[test]
    fn mean_skips_nan_cells_per_metric() {
        let rows = [
            EvalRow { precision: 0.8, recall: 0.6, auc: 0.5, vus: f64::NAN, nab: 1.0, ..EvalRow::default() },
            EvalRow { precision: 0.4, recall: 0.2, auc: 0.7, vus: 0.3, nab: 3.0, ..EvalRow::default() },
        ];
        let m = EvalRow::mean(&rows);
        // NaN VUS in one row must not poison the other metrics…
        assert!((m.precision - 0.6).abs() < 1e-12);
        assert!((m.recall - 0.4).abs() < 1e-12);
        assert!((m.auc - 0.6).abs() < 1e-12);
        assert!((m.nab - 2.0).abs() < 1e-12);
        // …and VUS averages only its finite values.
        assert!((m.vus - 0.3).abs() < 1e-12);
    }

    #[test]
    fn mean_with_all_nan_metric_stays_nan() {
        let rows = [
            EvalRow { vus: f64::NAN, ..EvalRow::default() },
            EvalRow { vus: f64::NAN, ..EvalRow::default() },
        ];
        let m = EvalRow::mean(&rows);
        assert!(m.vus.is_nan(), "fully-degenerate metric must stay visible");
        assert_eq!(m.precision, 0.0);
    }

    #[test]
    fn mean_of_rows() {
        let rows = [
            EvalRow { precision: 1.0, recall: 0.0, auc: 0.5, vus: 0.2, nab: -2.0, train_seconds: 0.5 },
            EvalRow { precision: 0.0, recall: 1.0, auc: 0.5, vus: 0.4, nab: 4.0, train_seconds: 0.25 },
        ];
        let m = EvalRow::mean(&rows);
        assert_eq!(m.precision, 0.5);
        assert_eq!(m.recall, 0.5);
        assert_eq!(m.auc, 0.5);
        assert!((m.vus - 0.3).abs() < 1e-12);
        assert_eq!(m.nab, 1.0);
        // Train time is a cost: it sums instead of averaging.
        assert!((m.train_seconds - 0.75).abs() < 1e-12);
    }
}
