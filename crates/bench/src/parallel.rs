//! Scoped-thread job pool for the evaluation grid (std-only).
//!
//! The Table III grid is 234 independent `(spec, corpus, scorer)` cells —
//! embarrassingly parallel, but historically run serially on one core.
//! [`JobPool::run`] executes an indexed set of jobs on `N` worker threads
//! that self-schedule off a shared atomic cursor (each worker
//! `fetch_add`s the next cell index — the classic work-queue pattern, so
//! an unlucky worker stuck on a slow N-BEATS cell never blocks the rest
//! of the queue).
//!
//! **Determinism:** every job is a pure function of its index (each cell
//! seeds its own `StdRng` chain), and results land in a pre-allocated slot
//! vector indexed by cell id. Output is therefore *byte-identical* across
//! any `--jobs` value, including `--serial`; only wall time changes. The
//! `run_grid_determinism` integration test and the `pool_props` proptest
//! pin this down.
//!
//! Per-job wall times are captured and surfaced through [`JobReport`] so
//! harness binaries can emit a machine-readable timing artifact
//! (`bench_output/table3_timing.json`) for future perf regressions.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Outcome of one pool run: ordered results plus timing telemetry.
#[derive(Debug, Clone)]
pub struct JobReport<T> {
    /// Job results in submission order (slot `i` holds job `i`'s output),
    /// regardless of which worker ran which job when.
    pub results: Vec<T>,
    /// Per-job wall time, same order as `results`.
    pub job_times: Vec<Duration>,
    /// End-to-end wall time of the pool run.
    pub wall_time: Duration,
    /// Number of worker threads actually used.
    pub jobs_used: usize,
}

impl<T> JobReport<T> {
    /// Sum of per-job wall times.
    ///
    /// On an uncontended machine this is the serial-equivalent cost of the
    /// run. When more workers run than physical cores are available (e.g. a
    /// cgroup-limited container), concurrent jobs time-slice and each job's
    /// wall time — and therefore this sum — is inflated by the
    /// oversubscription factor, so `cpu_time / wall_time` measures observed
    /// *concurrency*, which is an upper bound on real speedup.
    pub fn cpu_time(&self) -> Duration {
        self.job_times.iter().sum()
    }
}

/// A fixed-width worker pool over scoped threads.
#[derive(Debug, Clone, Copy)]
pub struct JobPool {
    workers: usize,
}

impl JobPool {
    /// Creates a pool with exactly `workers` threads (min 1).
    pub fn new(workers: usize) -> Self {
        Self { workers: workers.max(1) }
    }

    /// Creates a pool sized to the machine's available parallelism.
    pub fn auto() -> Self {
        Self::new(available_workers())
    }

    /// Number of worker threads this pool will spawn.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `n_jobs` jobs, where job `i` computes `run(i)`, and returns
    /// the results in index order together with timing telemetry.
    ///
    /// With one worker (or one job) the pool degrades to a plain serial
    /// loop on the calling thread — the `--serial` escape hatch costs no
    /// thread spawns.
    pub fn run<T, F>(&self, n_jobs: usize, run: F) -> JobReport<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let started = Instant::now();
        let workers = self.workers.min(n_jobs).max(1);

        if workers <= 1 {
            let mut results = Vec::with_capacity(n_jobs);
            let mut job_times = Vec::with_capacity(n_jobs);
            for i in 0..n_jobs {
                let t0 = Instant::now();
                results.push(run(i));
                job_times.push(t0.elapsed());
            }
            return JobReport { results, job_times, wall_time: started.elapsed(), jobs_used: 1 };
        }

        // Shared cursor: workers self-schedule by claiming the next index.
        let cursor = AtomicUsize::new(0);
        let run = &run;
        let mut completed: Vec<(usize, T, Duration)> = Vec::with_capacity(n_jobs);

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cursor = &cursor;
                    scope.spawn(move || {
                        let mut local: Vec<(usize, T, Duration)> = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n_jobs {
                                break;
                            }
                            let t0 = Instant::now();
                            let out = run(i);
                            local.push((i, out, t0.elapsed()));
                        }
                        local
                    })
                })
                .collect();
            for handle in handles {
                completed.extend(handle.join().expect("pool worker panicked"));
            }
        });

        // Deterministic ordering: place every result in its slot by index.
        debug_assert_eq!(completed.len(), n_jobs, "every job runs exactly once");
        let mut slots: Vec<Option<(T, Duration)>> = (0..n_jobs).map(|_| None).collect();
        for (i, out, took) in completed {
            debug_assert!(slots[i].is_none(), "job {i} ran twice");
            slots[i] = Some((out, took));
        }
        let mut results = Vec::with_capacity(n_jobs);
        let mut job_times = Vec::with_capacity(n_jobs);
        for slot in slots {
            let (out, took) = slot.expect("every job slot filled");
            results.push(out);
            job_times.push(took);
        }
        JobReport { results, job_times, wall_time: started.elapsed(), jobs_used: workers }
    }
}

/// The machine's available parallelism (1 if it cannot be determined).
pub fn available_workers() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Shared CLI contract of the harness binaries.
///
/// ```text
/// --full        paper-shaped profile (where the binary supports it)
/// --jobs N      worker threads (default: available parallelism)
/// --serial      alias for --jobs 1
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HarnessArgs {
    /// `--full`: run the paper-shaped profile.
    pub full: bool,
    /// Worker-thread count after resolving `--jobs`/`--serial`.
    pub jobs: usize,
}

impl HarnessArgs {
    /// Parses the process arguments (panics with a usage message on
    /// malformed `--jobs`).
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (testable).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut full = false;
        let mut jobs: Option<usize> = None;
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--full" => full = true,
                "--serial" => jobs = Some(1),
                "--jobs" => {
                    let value = iter.next().unwrap_or_else(|| usage("--jobs needs a value"));
                    jobs = Some(parse_jobs(&value));
                }
                other => {
                    if let Some(value) = other.strip_prefix("--jobs=") {
                        jobs = Some(parse_jobs(value));
                    } else {
                        usage(&format!("unknown argument `{other}`"));
                    }
                }
            }
        }
        Self { full, jobs: jobs.unwrap_or_else(available_workers).max(1) }
    }

    /// The pool described by these arguments.
    pub fn pool(&self) -> JobPool {
        JobPool::new(self.jobs)
    }
}

fn parse_jobs(value: &str) -> usize {
    match value.parse::<usize>() {
        Ok(n) if n >= 1 => n,
        _ => usage(&format!("--jobs expects a positive integer, got `{value}`")),
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: [--full] [--jobs N | --serial]");
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn serial_and_parallel_results_are_identical() {
        let f = |i: usize| (i * 31 + 7) % 97;
        let serial = JobPool::new(1).run(40, f);
        let parallel = JobPool::new(4).run(40, f);
        assert_eq!(serial.results, parallel.results);
        assert_eq!(serial.jobs_used, 1);
        assert_eq!(parallel.jobs_used, 4);
    }

    #[test]
    fn results_are_in_submission_order() {
        let report = JobPool::new(8).run(100, |i| i);
        assert_eq!(report.results, (0..100).collect::<Vec<_>>());
        assert_eq!(report.job_times.len(), 100);
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counter = AtomicU64::new(0);
        let report = JobPool::new(3).run(57, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 57);
        let distinct: HashSet<usize> = report.results.iter().copied().collect();
        assert_eq!(distinct.len(), 57);
    }

    #[test]
    fn zero_jobs_is_fine() {
        let report = JobPool::new(4).run(0, |i| i);
        assert!(report.results.is_empty());
        assert!(report.job_times.is_empty());
    }

    #[test]
    fn pool_never_spawns_more_workers_than_jobs() {
        let report = JobPool::new(16).run(2, |i| i);
        assert!(report.jobs_used <= 2);
    }

    #[test]
    fn cpu_time_sums_job_times() {
        let report = JobPool::new(2).run(4, |i| {
            std::thread::sleep(Duration::from_millis(2));
            i
        });
        assert!(report.cpu_time() >= Duration::from_millis(8));
    }

    #[test]
    fn args_default_to_available_parallelism() {
        let args = HarnessArgs::parse(Vec::<String>::new());
        assert!(!args.full);
        assert_eq!(args.jobs, available_workers().max(1));
    }

    #[test]
    fn args_parse_jobs_and_serial() {
        let parse = |v: &[&str]| HarnessArgs::parse(v.iter().map(|s| s.to_string()));
        assert_eq!(parse(&["--jobs", "7"]).jobs, 7);
        assert_eq!(parse(&["--jobs=3"]).jobs, 3);
        assert_eq!(parse(&["--serial"]).jobs, 1);
        let full = parse(&["--full", "--jobs", "2"]);
        assert!(full.full);
        assert_eq!(full.jobs, 2);
    }

    mod pool_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The pool executes every submitted cell exactly once and
            /// keeps submission order, for arbitrary (n_jobs, n_cells).
            #[test]
            fn every_cell_exactly_once(workers in 1usize..9, n_cells in 0usize..120) {
                let counter = AtomicU64::new(0);
                let report = JobPool::new(workers).run(n_cells, |i| {
                    counter.fetch_add(1, Ordering::Relaxed);
                    i
                });
                prop_assert_eq!(counter.load(Ordering::Relaxed), n_cells as u64);
                prop_assert_eq!(report.results.len(), n_cells);
                prop_assert_eq!(report.job_times.len(), n_cells);
                prop_assert!(report.results.iter().enumerate().all(|(i, &r)| i == r));
            }

            /// Parallel output equals serial output for pure jobs.
            #[test]
            fn parallel_matches_serial(workers in 2usize..9, n_cells in 0usize..80) {
                let f = |i: usize| i.wrapping_mul(0x9E3779B9) ^ (i << 3);
                let serial = JobPool::new(1).run(n_cells, f);
                let parallel = JobPool::new(workers).run(n_cells, f);
                prop_assert_eq!(serial.results, parallel.results);
            }
        }
    }
}
