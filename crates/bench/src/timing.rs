//! Machine-readable timing artifacts for the harness binaries.
//!
//! Each grid run can be serialized to a small JSON file (e.g.
//! `bench_output/table3_timing.json`) holding total wall time, worker
//! count, and per-cell times — a perf trajectory for future PRs to
//! regress against. Written by hand with only `std` (the vendored serde
//! stand-in has no data format).

use std::io::Write;
use std::path::Path;
use std::time::Duration;

/// Timing telemetry of one harness run.
#[derive(Debug, Clone)]
pub struct TimingArtifact {
    /// Which artifact produced this (e.g. `"table3_results"`).
    pub harness: String,
    /// Profile name (`"quick"` / `"full"`).
    pub profile: String,
    /// Worker threads used.
    pub jobs: usize,
    /// End-to-end wall time.
    pub wall_time: Duration,
    /// Sum of per-job wall times (serial-equivalent cost when the
    /// workers were not oversubscribed; see `JobReport::cpu_time`).
    pub cpu_time: Duration,
    /// Per-cell timing breakdown (legacy amortized view: cells in one
    /// shared-pass group report the group's wall time divided by the
    /// scorer count).
    pub cells: Vec<CellTiming>,
    /// Per-group timing breakdown (amortized view since the shared-prefix
    /// tree: member groups of one root report the root's wall time divided
    /// by the variant count). Empty for harnesses that still time per
    /// cell.
    pub groups: Vec<GroupTiming>,
    /// Per-root timing breakdown — the actual scheduling unit since the
    /// shared-prefix evaluation tree (one warm-up + initial fit per
    /// `(model, Task1, corpus)` node, forked across drift variants).
    /// Empty for harnesses that still time per group or per cell.
    pub roots: Vec<RootTiming>,
}

/// Timing of one grid cell.
#[derive(Debug, Clone)]
pub struct CellTiming {
    /// Cell label (`spec @ corpus / scorer`).
    pub label: String,
    /// End-to-end cell wall time.
    pub wall: Duration,
    /// Seconds the cell's detectors spent in model training (initial fit
    /// plus drift-triggered fine-tunes, summed over the corpus's series) —
    /// the share of `wall` governed by the batched NN training path.
    pub train_seconds: f64,
}

/// Timing of one `(spec, corpus)` group — the shared-pass scheduling unit
/// introduced by the scorer fan-out.
#[derive(Debug, Clone)]
pub struct GroupTiming {
    /// Group label (`spec @ corpus`).
    pub label: String,
    /// Measured end-to-end group wall time (one shared detector pass per
    /// series covering every scorer, or warm-up-shared forks for
    /// anomaly-feedback strategies).
    pub wall: Duration,
    /// True training seconds of the group (shared work counted once —
    /// unlike summing the per-cell `train_seconds` telemetry, which
    /// repeats the shared pass per scorer).
    pub train_seconds: f64,
    /// Whether the group's scorers shared a single detector pass per
    /// series.
    pub shared_pass: bool,
    /// Number of scorers fanned out inside the group.
    pub scorers: usize,
}

/// Timing of one shared-prefix tree root — the `(model, Task1, corpus)`
/// scheduling unit whose warm-up + initial fit is forked across drift
/// variants.
#[derive(Debug, Clone)]
pub struct RootTiming {
    /// Root label (`model / task1 @ corpus`).
    pub label: String,
    /// Measured end-to-end root wall time (shared warm-up + initial fit,
    /// every drift-variant fork, every scorer).
    pub wall: Duration,
    /// True training seconds of the root: the shared initial fit counted
    /// once across all variants and scorers, plus per-fork fine-tunes.
    pub train_seconds: f64,
    /// Number of `fit_initial` invocations (one per series that reached
    /// warm-up — deduplicated across the root's drift variants).
    pub initial_fits: usize,
    /// Whether the root's scorers shared a single detector pass per fork.
    pub shared_pass: bool,
    /// Number of drift variants forked from the shared warm-up.
    pub variants: usize,
    /// Number of scorers fanned out inside each fork.
    pub scorers: usize,
}

impl TimingArtifact {
    /// Renders the artifact as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.cells.len() * 64);
        out.push_str("{\n");
        out.push_str(&format!("  \"harness\": {},\n", json_string(&self.harness)));
        out.push_str(&format!("  \"profile\": {},\n", json_string(&self.profile)));
        out.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        out.push_str(&format!("  \"wall_seconds\": {:.6},\n", self.wall_time.as_secs_f64()));
        out.push_str(&format!("  \"cpu_seconds\": {:.6},\n", self.cpu_time.as_secs_f64()));
        // Observed concurrency (sum of per-cell wall times over total wall
        // time). Equal to real speedup only when the workers had physical
        // cores to themselves; under cgroup CPU limits the per-cell times
        // are inflated by time-slicing, so this is an upper bound.
        out.push_str(&format!(
            "  \"concurrency\": {:.3},\n",
            self.cpu_time.as_secs_f64() / self.wall_time.as_secs_f64().max(1e-12)
        ));
        // Total model-training share (the hot loop the batched NN path
        // optimizes). Roots deduplicate the shared initial fit across
        // drift variants, so when root timings exist they are the
        // truthful total; groups repeat the shared fit per variant and
        // the per-cell sum additionally repeats the shared pass per
        // scorer — both are legacy views.
        let train_total = if !self.roots.is_empty() {
            self.roots.iter().map(|r| r.train_seconds).sum::<f64>()
        } else if !self.groups.is_empty() {
            self.groups.iter().map(|g| g.train_seconds).sum::<f64>()
        } else {
            self.cells.iter().map(|c| c.train_seconds).sum::<f64>()
        };
        out.push_str(&format!("  \"train_seconds_total\": {train_total:.6},\n"));
        // Total `fit_initial` invocations — the headline saving of the
        // shared-prefix tree (42 on the quick paper grid, down from 78).
        let fits_total: usize = self.roots.iter().map(|r| r.initial_fits).sum();
        out.push_str(&format!("  \"initial_fits_total\": {fits_total},\n"));
        out.push_str("  \"roots\": [\n");
        for (i, root) in self.roots.iter().enumerate() {
            let comma = if i + 1 == self.roots.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"label\": {}, \"seconds\": {:.6}, \"train_seconds\": {:.6}, \"initial_fits\": {}, \"shared_pass\": {}, \"variants\": {}, \"scorers\": {}}}{comma}\n",
                json_string(&root.label),
                root.wall.as_secs_f64(),
                root.train_seconds,
                root.initial_fits,
                root.shared_pass,
                root.variants,
                root.scorers,
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"groups\": [\n");
        for (i, group) in self.groups.iter().enumerate() {
            let comma = if i + 1 == self.groups.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"label\": {}, \"seconds\": {:.6}, \"train_seconds\": {:.6}, \"shared_pass\": {}, \"scorers\": {}}}{comma}\n",
                json_string(&group.label),
                group.wall.as_secs_f64(),
                group.train_seconds,
                group.shared_pass,
                group.scorers,
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"cells\": [\n");
        for (i, cell) in self.cells.iter().enumerate() {
            let comma = if i + 1 == self.cells.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"label\": {}, \"seconds\": {:.6}, \"train_seconds\": {:.6}}}{comma}\n",
                json_string(&cell.label),
                cell.wall.as_secs_f64(),
                cell.train_seconds,
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON artifact to `path`, creating parent directories.
    pub fn write(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.to_json().as_bytes())
    }

    /// Projects the run into a `sad_obs` registry so grid evaluations flow
    /// through the same telemetry substrate as the serving layers: run
    /// shape as gauges, per-root wall/train times as labelled gauges, and
    /// a wall-time histogram over the scheduling units (roots when
    /// present, else groups, else cells).
    pub fn to_registry(&self) -> sad_obs::Registry {
        use sad_obs::{with_label, Histogram, Registry};
        let mut reg = Registry::new();
        let jobs = reg.register_gauge("sad_grid_jobs", "Worker threads used.");
        reg.set_gauge(jobs, self.jobs as f64);
        let wall = reg.register_gauge("sad_grid_wall_seconds", "End-to-end grid wall time.");
        reg.set_gauge(wall, self.wall_time.as_secs_f64());
        let cpu = reg.register_gauge("sad_grid_cpu_seconds", "Serial-equivalent grid cost.");
        reg.set_gauge(cpu, self.cpu_time.as_secs_f64());
        let fits = reg.register_counter(
            "sad_grid_initial_fits_total",
            "fit_initial invocations across the grid.",
        );
        reg.inc(fits, self.roots.iter().map(|r| r.initial_fits as u64).sum());
        let unit_wall = reg.register_histogram(
            "sad_grid_unit_seconds",
            "Wall time per scheduling unit (root/group/cell).",
            Histogram::log2(1e-3, 4096.0),
        );
        let units: Vec<(&str, Duration, f64)> = if !self.roots.is_empty() {
            self.roots.iter().map(|r| (r.label.as_str(), r.wall, r.train_seconds)).collect()
        } else if !self.groups.is_empty() {
            self.groups.iter().map(|g| (g.label.as_str(), g.wall, g.train_seconds)).collect()
        } else {
            self.cells.iter().map(|c| (c.label.as_str(), c.wall, c.train_seconds)).collect()
        };
        for (label, wall, train) in units {
            reg.record(unit_wall, wall.as_secs_f64());
            let w = reg.register_gauge(
                &with_label("sad_grid_unit_wall_seconds", "unit", label),
                "Wall time of one scheduling unit.",
            );
            reg.set_gauge(w, wall.as_secs_f64());
            let t = reg.register_gauge(
                &with_label("sad_grid_unit_train_seconds", "unit", label),
                "Model-training share of one scheduling unit.",
            );
            reg.set_gauge(t, train);
        }
        reg
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact() -> TimingArtifact {
        TimingArtifact {
            harness: "table3_results".into(),
            profile: "quick".into(),
            jobs: 4,
            wall_time: Duration::from_millis(500),
            cpu_time: Duration::from_millis(1800),
            cells: vec![
                CellTiming {
                    label: "ARIMA @ daphnet-like / AL".into(),
                    wall: Duration::from_millis(900),
                    train_seconds: 0.25,
                },
                CellTiming {
                    label: "AE \"quoted\"".into(),
                    wall: Duration::from_millis(900),
                    train_seconds: 0.5,
                },
            ],
            groups: Vec::new(),
            roots: Vec::new(),
        }
    }

    fn grouped_artifact() -> TimingArtifact {
        let mut a = artifact();
        a.groups = vec![
            GroupTiming {
                label: "ARIMA @ daphnet-like".into(),
                wall: Duration::from_millis(1200),
                train_seconds: 0.25,
                shared_pass: true,
                scorers: 3,
            },
            GroupTiming {
                label: "AE / ARES @ smd-like".into(),
                wall: Duration::from_millis(600),
                train_seconds: 0.125,
                shared_pass: false,
                scorers: 3,
            },
        ];
        a
    }

    fn rooted_artifact() -> TimingArtifact {
        let mut a = grouped_artifact();
        a.roots = vec![
            RootTiming {
                label: "Online ARIMA / SW @ daphnet-like".into(),
                wall: Duration::from_millis(1500),
                train_seconds: 0.2,
                initial_fits: 1,
                shared_pass: true,
                variants: 2,
                scorers: 3,
            },
            RootTiming {
                label: "2-layer AE / ARES @ smd-like".into(),
                wall: Duration::from_millis(800),
                train_seconds: 0.1,
                initial_fits: 1,
                shared_pass: false,
                variants: 2,
                scorers: 3,
            },
        ];
        a
    }

    #[test]
    fn json_has_expected_fields() {
        let json = artifact().to_json();
        for needle in [
            "\"harness\": \"table3_results\"",
            "\"profile\": \"quick\"",
            "\"jobs\": 4",
            "\"wall_seconds\": 0.500000",
            "\"cpu_seconds\": 1.800000",
            "\"concurrency\": 3.600",
            "\"cells\": [",
            "\"seconds\": 0.900000",
            "\"train_seconds\": 0.250000",
            "\"train_seconds_total\": 0.750000",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
    }

    #[test]
    fn group_timings_serialize_and_own_the_train_total() {
        let json = grouped_artifact().to_json();
        for needle in [
            "\"groups\": [",
            "\"label\": \"ARIMA @ daphnet-like\"",
            "\"shared_pass\": true",
            "\"shared_pass\": false",
            "\"scorers\": 3",
            // Groups count shared work once: 0.25 + 0.125, not the
            // per-cell 0.75.
            "\"train_seconds_total\": 0.375000",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
    }

    #[test]
    fn cell_only_artifact_keeps_legacy_train_total() {
        let json = artifact().to_json();
        assert!(json.contains("\"train_seconds_total\": 0.750000"));
        assert!(json.contains("\"groups\": [\n  ],"), "empty groups array present:\n{json}");
    }

    #[test]
    fn root_timings_serialize_and_own_the_train_total() {
        let json = rooted_artifact().to_json();
        for needle in [
            "\"roots\": [",
            "\"label\": \"Online ARIMA / SW @ daphnet-like\"",
            "\"initial_fits\": 1",
            "\"variants\": 2",
            "\"initial_fits_total\": 2",
            // Roots deduplicate the shared fit: 0.2 + 0.1, not the
            // per-group 0.375 or the per-cell 0.75.
            "\"train_seconds_total\": 0.300000",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
    }

    #[test]
    fn registry_projection_tracks_scheduling_units() {
        let reg = rooted_artifact().to_registry();
        assert_eq!(reg.gauge_by_name("sad_grid_jobs"), Some(4.0));
        assert_eq!(reg.counter_by_name("sad_grid_initial_fits_total"), Some(2));
        let h = reg.histogram_by_name("sad_grid_unit_seconds").unwrap();
        assert_eq!(h.count(), 2, "roots are the scheduling unit when present");
        assert_eq!(
            reg.gauge_by_name(
                "sad_grid_unit_wall_seconds{unit=\"Online ARIMA / SW @ daphnet-like\"}"
            ),
            Some(1.5)
        );
        // Falls back to cells when no roots/groups were timed.
        let cell_reg = artifact().to_registry();
        assert_eq!(cell_reg.histogram_by_name("sad_grid_unit_seconds").unwrap().count(), 2);
        let mut prom = String::new();
        cell_reg.render_prometheus(&mut prom);
        assert!(prom.contains("# TYPE sad_grid_unit_wall_seconds gauge"), "{prom}");
    }

    #[test]
    fn strings_are_escaped() {
        let json = artifact().to_json();
        assert!(json.contains("AE \\\"quoted\\\""));
        assert_eq!(json_string("a\nb\\c"), "\"a\\nb\\\\c\"");
    }

    #[test]
    fn write_round_trips_to_disk() {
        let dir = std::env::temp_dir().join("sad_bench_timing_test");
        let path = dir.join("t.json");
        artifact().write(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with('{') && content.trim_end().ends_with('}'));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
