//! Regenerates the paper's **Table I**: the overview of all 26 evaluated
//! component combinations.
//!
//! ```sh
//! cargo run -p sad-bench --bin table1_combinations
//! ```

use sad_bench::Table;
use sad_core::paper_algorithms;

fn main() {
    let specs = paper_algorithms();
    let mut table = Table::new(&["#", "Task 1", "Task 2", "ML model", "Nonconformity score", "Anomaly score"]);
    for (i, spec) in specs.iter().enumerate() {
        let scores =
            spec.scores().iter().map(|s| s.label()).collect::<Vec<_>>().join(", ");
        table.row(vec![
            format!("{}", i + 1),
            spec.task1.label().to_string(),
            spec.task2.label().to_string(),
            spec.model.label().to_string(),
            spec.model.nonconformity().label().to_string(),
            scores,
        ]);
    }
    println!("Table I: overview of all combinations to be evaluated\n");
    println!("{}", table.render());
    println!("total distinct algorithms: {}", specs.len());
    assert_eq!(specs.len(), 26, "the paper evaluates exactly 26 algorithms");
}
