//! Ablation E6: the Task-1 strategy sweep.
//!
//! The paper observes (§V-B) that "in many cases, a performance increase
//! can be observed for the anomaly-aware reservoir". This ablation holds
//! model and Task-2 strategy fixed and sweeps SW / URES / ARES across all
//! models and corpora.
//!
//! ```sh
//! cargo run --release -p sad-bench --bin ablation_task1
//! cargo run --release -p sad-bench --bin ablation_task1 -- --jobs 4
//! cargo run --release -p sad-bench --bin ablation_task1 -- --serial
//! ```
//!
//! The `corpus × model × strategy` cells are independent and run on the
//! shared [`sad_bench::JobPool`]; output is byte-identical at any
//! `--jobs` value.

use sad_bench::{evaluate_spec, harness_params, HarnessArgs, HarnessScale, Table};
use sad_core::{AlgorithmSpec, ModelKind, ScoreKind, Task1, Task2};
use sad_data::{daphnet_like, smd_like, CorpusParams};

const MODELS: [ModelKind; 4] =
    [ModelKind::OnlineArima, ModelKind::TwoLayerAe, ModelKind::Usad, ModelKind::NBeats];
const STRATEGIES: [Task1; 3] =
    [Task1::SlidingWindow, Task1::UniformReservoir, Task1::AnomalyAwareReservoir];

fn main() {
    let args = HarnessArgs::from_env();
    let cp = CorpusParams { length: 1600, n_series: 1, anomalies_per_series: 4, with_drift: true };
    let corpora = [daphnet_like(33, cp), smd_like(33, cp)];

    // One flat job per (corpus, model, strategy) cell.
    let n_cells = corpora.len() * MODELS.len() * STRATEGIES.len();
    let report = args.pool().run(n_cells, |idx| {
        let s = idx % STRATEGIES.len();
        let m = (idx / STRATEGIES.len()) % MODELS.len();
        let c = idx / (STRATEGIES.len() * MODELS.len());
        let corpus = &corpora[c];
        let params = harness_params(corpus.series[0].channels(), HarnessScale::Quick);
        let spec =
            AlgorithmSpec { model: MODELS[m], task1: STRATEGIES[s], task2: Task2::MuSigma };
        evaluate_spec(spec, &params, corpus, ScoreKind::AnomalyLikelihood).auc
    });
    let auc_at = |c: usize, m: usize, s: usize| -> f64 {
        report.results[(c * MODELS.len() + m) * STRATEGIES.len() + s]
    };

    let mut table = Table::new(&["Corpus", "Model", "SW AUC", "URES AUC", "ARES AUC", "winner"]);
    let mut ares_wins = 0usize;
    let mut ares_beats_sw = 0usize;
    let mut rows = 0usize;
    for (c, corpus) in corpora.iter().enumerate() {
        for (m, model) in MODELS.iter().enumerate() {
            let (sw, ures, ares) = (auc_at(c, m, 0), auc_at(c, m, 1), auc_at(c, m, 2));
            let winner = if ares >= sw && ares >= ures {
                ares_wins += 1;
                "ARES"
            } else if sw >= ures {
                "SW"
            } else {
                "URES"
            };
            if ares >= sw {
                ares_beats_sw += 1;
            }
            rows += 1;
            table.row(vec![
                corpus.name.clone(),
                model.label().to_string(),
                format!("{sw:.3}"),
                format!("{ures:.3}"),
                format!("{ares:.3}"),
                winner.to_string(),
            ]);
        }
    }
    println!("Task-1 strategy sweep (Task 2 fixed to μ/σ, anomaly likelihood scorer)\n");
    println!("{}", table.render());
    println!("ARES is the outright winner in {ares_wins}/{rows} cells and beats the");
    println!("sliding window in {ares_beats_sw}/{rows} — the paper reports \"in many cases, a");
    println!("performance increase ... for the anomaly-aware reservoir\".");
    eprintln!(
        "wall {:.2}s, cpu {:.2}s, {} jobs",
        report.wall_time.as_secs_f64(),
        report.cpu_time().as_secs_f64(),
        report.jobs_used,
    );
}
