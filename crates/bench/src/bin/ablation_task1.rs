//! Ablation E6: the Task-1 strategy sweep.
//!
//! The paper observes (§V-B) that "in many cases, a performance increase
//! can be observed for the anomaly-aware reservoir". This ablation holds
//! model and Task-2 strategy fixed and sweeps SW / URES / ARES across all
//! models and corpora.
//!
//! ```sh
//! cargo run --release -p sad-bench --bin ablation_task1
//! ```

use sad_bench::{evaluate_spec, harness_params, HarnessScale, Table};
use sad_core::{AlgorithmSpec, ModelKind, ScoreKind, Task1, Task2};
use sad_data::{daphnet_like, smd_like, CorpusParams};

fn main() {
    let cp = CorpusParams { length: 1600, n_series: 1, anomalies_per_series: 4, with_drift: true };
    let corpora = vec![daphnet_like(33, cp), smd_like(33, cp)];

    let mut table = Table::new(&["Corpus", "Model", "SW AUC", "URES AUC", "ARES AUC", "winner"]);
    let mut ares_wins = 0usize;
    let mut ares_beats_sw = 0usize;
    let mut rows = 0usize;
    for corpus in &corpora {
        let params = harness_params(corpus.series[0].channels(), HarnessScale::Quick);
        for model in [ModelKind::OnlineArima, ModelKind::TwoLayerAe, ModelKind::Usad, ModelKind::NBeats] {
            let auc_of = |task1: Task1| -> f64 {
                let spec = AlgorithmSpec { model, task1, task2: Task2::MuSigma };
                evaluate_spec(spec, &params, corpus, ScoreKind::AnomalyLikelihood).auc
            };
            let sw = auc_of(Task1::SlidingWindow);
            let ures = auc_of(Task1::UniformReservoir);
            let ares = auc_of(Task1::AnomalyAwareReservoir);
            let winner = if ares >= sw && ares >= ures {
                ares_wins += 1;
                "ARES"
            } else if sw >= ures {
                "SW"
            } else {
                "URES"
            };
            if ares >= sw {
                ares_beats_sw += 1;
            }
            rows += 1;
            table.row(vec![
                corpus.name.clone(),
                model.label().to_string(),
                format!("{sw:.3}"),
                format!("{ures:.3}"),
                format!("{ares:.3}"),
                winner.to_string(),
            ]);
        }
    }
    println!("Task-1 strategy sweep (Task 2 fixed to μ/σ, anomaly likelihood scorer)\n");
    println!("{}", table.render());
    println!("ARES is the outright winner in {ares_wins}/{rows} cells and beats the");
    println!("sliding window in {ares_beats_sw}/{rows} — the paper reports \"in many cases, a");
    println!("performance increase ... for the anomaly-aware reservoir\".");
}
