//! Fleet serving throughput: cross-stream batched NN stepping vs the
//! scalar per-stream path (§E11 of EXPERIMENTS.md).
//!
//! Scenario: one AE rolled out to a fleet of identical streams — the
//! replica-serving pattern where the batched path is eligible end to end.
//! Every detector is built with the same seed and fed the same
//! window-periodic (drift-free) 38-channel stream, so all fleet members
//! stay one weight cohort and the steady state is pure inference: the
//! measured delta is exactly the shared `forward_batch` against N scalar
//! `predict` calls, single-threaded (shards = 1, parallel off — the
//! batching win must not lean on parallelism).
//!
//! Three modes per fleet size: `scalar` (per-stream `Detector::step`),
//! `batched` (shared f64 `forward_batch` per cohort — bitwise-parity
//! mode), and `batched_f32` (`--f32-infer`: cohort forward passes through
//! f32 weight snapshots — tolerance mode, ~half the weight traffic).
//!
//! Writes `bench_output/fleet_throughput.json`: per fleet size, each
//! mode's steps/sec, round-latency p50/p99, and the cohort counters
//! proving the batched runs actually amortized (rows/pass ≈ fleet size,
//! one cohort rebuild at group formation).
//!
//! Also measures the telemetry tax: the 64-stream batched leg is re-run
//! with `FleetConfig::telemetry` on and off (interleaved best-of-K,
//! escalating reps while the gap is over budget), and the comparison
//! lands in `bench_output/obs_overhead.json` with an in-bin assertion
//! that the overhead stays ≤ 3%.
//!
//! ```sh
//! cargo run --release --bin fleet_throughput            # quick (default)
//! cargo run --release --bin fleet_throughput -- --full  # more rounds
//! ```

use std::time::Instant;

use sad_core::{paper_algorithms, AlgorithmSpec, Detector, DetectorConfig, ModelKind, ScoreKind};
use sad_fleet::{DetectorFleet, FleetConfig, FleetStats};
use sad_models::{build_detector, BuildParams};
use sad_obs::Histogram;

const CHANNELS: usize = 38;
const WINDOW: usize = 10;
const WARMUP: usize = 200;
const SEED: u64 = 42;

/// Window-periodic stream: every length-10 window holds the same multiset
/// of values per channel, so the training-set statistics are constant,
/// μ/σ-Change never fires, and the timed region never fine-tunes.
fn stream_vector(t: usize, buf: &mut [f64]) {
    let phase = std::f64::consts::TAU * (t % WINDOW) as f64 / WINDOW as f64;
    for (c, v) in buf.iter_mut().enumerate() {
        let scale = 1.0 + c as f64 * 0.1;
        *v = (phase + c as f64 * 0.37).sin() * scale + c as f64;
    }
}

fn ae_spec() -> AlgorithmSpec {
    paper_algorithms()
        .into_iter()
        .find(|s| {
            s.model == ModelKind::TwoLayerAe
                && s.label().contains("SW")
                && s.label().contains("μ")
        })
        .expect("AE / SW / μσ is in Table I")
}

fn detector() -> Detector {
    let config = DetectorConfig {
        window: WINDOW,
        channels: CHANNELS,
        warmup: WARMUP,
        initial_epochs: 4,
        fine_tune_epochs: 1,
    };
    let params = BuildParams::new(config)
        .with_capacity(32)
        .with_score(ScoreKind::Raw)
        .with_seed(SEED);
    build_detector(ae_spec(), &params)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Scalar,
    Batched,
    BatchedF32,
}

struct ModeResult {
    steps: usize,
    steps_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
    stats: FleetStats,
}

/// Round-latency histogram: log-scale from 1 µs to 16 s at quarter-octave
/// resolution (bounds grow by 2^¼ ≈ 19% — fine enough that interpolated
/// p50/p99 track the exact sorted-sample percentiles closely).
fn latency_histogram() -> Histogram {
    let mut bounds = vec![1e-6];
    while *bounds.last().unwrap() < 16.0 {
        bounds.push(bounds.last().unwrap() * std::f64::consts::SQRT_2.sqrt());
    }
    Histogram::new(bounds)
}

/// Serves `rounds` timed rounds (after untimed warm-up + settling) on a
/// fresh fleet of `n` identically-seeded detectors.
fn serve(n: usize, mode: Mode, rounds: usize, telemetry: bool) -> ModeResult {
    let detectors: Vec<Detector> = (0..n).map(|_| detector()).collect();
    let config = FleetConfig {
        shards: 1,
        batching: mode != Mode::Scalar,
        parallel: false,
        queue_capacity: 4,
        f32_infer: mode == Mode::BatchedF32,
        telemetry,
    };
    let mut fleet = DetectorFleet::new(detectors, config);

    let mut buf = vec![0.0; CHANNELS];
    let mut out = Vec::new();
    let mut t = 0usize;
    // Untimed: warm-up, the initial fit, group/cohort formation, and
    // buffer right-sizing, so the timed region is steady state only.
    for _ in 0..WARMUP + 32 {
        stream_vector(t, &mut buf);
        for i in 0..n {
            assert!(fleet.enqueue(i, &buf));
        }
        fleet.drain_round(&mut out);
        t += 1;
    }
    let settled = fleet.stats();

    let mut latency = latency_histogram();
    let timed = Instant::now();
    for _ in 0..rounds {
        stream_vector(t, &mut buf);
        for i in 0..n {
            assert!(fleet.enqueue(i, &buf));
        }
        let start = Instant::now();
        fleet.drain_round(&mut out);
        latency.record(start.elapsed().as_secs_f64());
        t += 1;
    }
    let wall = timed.elapsed().as_secs_f64();

    let stats = fleet.stats();
    assert_eq!(stats.cohort_rebuilds, settled.cohort_rebuilds, "timed region must not fine-tune");
    let steps = stats.steps - settled.steps;
    assert_eq!(steps, rounds * n, "every stream serves every round");
    match mode {
        Mode::Scalar => assert_eq!(stats.batched_rows, 0, "batching off must stay scalar"),
        Mode::Batched | Mode::BatchedF32 => {
            assert_eq!(
                stats.batched_rows - settled.batched_rows,
                steps,
                "identical replicas must stay one cohort",
            );
            if mode == Mode::BatchedF32 {
                assert_eq!(
                    stats.f32_rows - settled.f32_rows,
                    steps,
                    "f32 mode must serve every batched row through a snapshot",
                );
            } else {
                assert_eq!(stats.f32_rows, 0, "f64 mode must not touch the f32 path");
            }
        }
    }

    ModeResult {
        steps,
        steps_per_sec: steps as f64 / wall.max(1e-12),
        p50_us: latency.quantile(0.50) * 1e6,
        p99_us: latency.quantile(0.99) * 1e6,
        stats,
    }
}

fn json_mode(r: &ModeResult) -> String {
    format!(
        "{{\"steps\": {}, \"steps_per_sec\": {:.1}, \"round_p50_us\": {:.2}, \
         \"round_p99_us\": {:.2}, \"batched_rows\": {}, \"batches\": {}, \
         \"f32_rows\": {}, \"cohort_rebuilds\": {}}}",
        r.steps,
        r.steps_per_sec,
        r.p50_us,
        r.p99_us,
        r.stats.batched_rows,
        r.stats.batches,
        r.stats.f32_rows,
        r.stats.cohort_rebuilds,
    )
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let rounds = if full { 1200 } else { 400 };
    let sizes: &[usize] = &[8, 64];

    println!(
        "fleet throughput: AE w={WINDOW} x {CHANNELS}ch, warm-up {WARMUP}, {rounds} timed rounds, single-threaded",
    );
    let mut entries = Vec::new();
    for &n in sizes {
        let batched = serve(n, Mode::Batched, rounds, true);
        let batched_f32 = serve(n, Mode::BatchedF32, rounds, true);
        let scalar = serve(n, Mode::Scalar, rounds, true);
        let speedup = batched.steps_per_sec / scalar.steps_per_sec.max(1e-12);
        let speedup_f32 = batched_f32.steps_per_sec / scalar.steps_per_sec.max(1e-12);
        println!(
            "  {n:>3} streams: batched {:>9.0} steps/s  f32 {:>9.0} steps/s  scalar {:>9.0} steps/s  speedup {speedup:.2}x / {speedup_f32:.2}x",
            batched.steps_per_sec, batched_f32.steps_per_sec, scalar.steps_per_sec,
        );
        entries.push(format!(
            "    {{\"streams\": {n}, \"speedup\": {speedup:.3}, \"speedup_f32\": {speedup_f32:.3},\n      \"batched\": {},\n      \"batched_f32\": {},\n      \"scalar\": {}}}",
            json_mode(&batched),
            json_mode(&batched_f32),
            json_mode(&scalar),
        ));
    }

    let json = format!(
        "{{\n  \"harness\": \"fleet_throughput\",\n  \"profile\": \"{}\",\n  \
         \"model\": \"2-layer AE / SW / μ/σ\",\n  \"window\": {WINDOW},\n  \
         \"channels\": {CHANNELS},\n  \"warmup\": {WARMUP},\n  \"rounds\": {rounds},\n  \
         \"shards\": 1,\n  \"parallel\": false,\n  \"fleets\": [\n{}\n  ]\n}}\n",
        if full { "full" } else { "quick" },
        entries.join(",\n"),
    );
    match std::fs::create_dir_all("bench_output")
        .and_then(|()| std::fs::write("bench_output/fleet_throughput.json", &json))
    {
        Ok(()) => println!("-> bench_output/fleet_throughput.json"),
        Err(e) => eprintln!("could not write artifact: {e}"),
    }

    // ---- Telemetry overhead: the 64-stream batched leg with the timed
    // telemetry on vs off, interleaved best-of-K (the interleave cancels
    // thermal/frequency drift; best-of cancels scheduler noise). Reps
    // escalate past the minimum when the gap is still over budget — a
    // transiently loaded machine can fake a large overhead on a short
    // timed region, and more best-of reps converge both legs to their
    // quiet-machine speed.
    let obs_n = *sizes.last().expect("sizes is non-empty");
    let (min_reps, max_reps) = (3, 9);
    let mut obs_reps = 0;
    let mut best_on = f64::MIN;
    let mut best_off = f64::MIN;
    let overhead_pct = loop {
        best_off = best_off.max(serve(obs_n, Mode::Batched, rounds, false).steps_per_sec);
        best_on = best_on.max(serve(obs_n, Mode::Batched, rounds, true).steps_per_sec);
        obs_reps += 1;
        let pct = (best_off / best_on.max(1e-12) - 1.0) * 100.0;
        if (obs_reps >= min_reps && pct <= 3.0) || obs_reps >= max_reps {
            break pct;
        }
    };
    println!(
        "telemetry overhead @ {obs_n} streams: on {best_on:.0} steps/s, off {best_off:.0} steps/s, {overhead_pct:+.2}%",
    );
    let obs_json = format!(
        "{{\n  \"harness\": \"fleet_throughput\",\n  \"experiment\": \"obs_overhead\",\n  \
         \"streams\": {obs_n},\n  \"rounds\": {rounds},\n  \"reps\": {obs_reps},\n  \
         \"mode\": \"batched\",\n  \
         \"steps_per_sec_telemetry_on\": {best_on:.1},\n  \
         \"steps_per_sec_telemetry_off\": {best_off:.1},\n  \
         \"overhead_pct\": {overhead_pct:.3},\n  \"budget_pct\": 3.0\n}}\n",
    );
    match std::fs::write("bench_output/obs_overhead.json", &obs_json) {
        Ok(()) => println!("-> bench_output/obs_overhead.json"),
        Err(e) => eprintln!("could not write artifact: {e}"),
    }
    assert!(
        overhead_pct <= 3.0,
        "telemetry overhead {overhead_pct:.2}% exceeds the 3% budget \
         (on {best_on:.0} vs off {best_off:.0} steps/s)",
    );
}
