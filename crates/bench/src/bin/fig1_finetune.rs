//! Regenerates the paper's **Figure 1** experiment: after concept drift is
//! detected (USAD model, sliding window, μ/σ-Change — the paper's exact
//! combination, on a Daphnet-like series), two model arms are maintained —
//! one fine-tuned on the newest training set, one frozen. An artificial
//! anomaly is inserted ~90 steps after the fine-tuning session and both
//! arms' nonconformity scores are compared.
//!
//! The figure's error bars are the difference between the average
//! nonconformity before the anomaly and the maximum observed during it;
//! the paper reports the fine-tuned arm's bar is clearly larger.
//!
//! ```sh
//! cargo run --release -p sad-bench --bin fig1_finetune
//! ```

use sad_core::{Detector, DetectorConfig, MovingAverage, MuSigmaChange, SlidingWindowSet};
use sad_data::{daphnet_like, inject_anomaly, inject_drift, AnomalyKind, CorpusParams, DriftKind};
use sad_models::Usad;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A Daphnet-like series (the paper uses S03R01E0) with its usual
    // mid-series drift but no pre-planted anomalies: we plant ours at a
    // controlled offset after the drift reaction.
    let params = CorpusParams {
        length: 3000,
        n_series: 1,
        anomalies_per_series: 0,
        with_drift: true,
    };
    let corpus = daphnet_like(42, params);
    let mut series = corpus.series[0].clone();
    let n = series.channels();
    // The corpus ships an amplitude drift; a gait change also shifts the
    // posture baseline, which is what makes the drift visible to the
    // scale-invariant cosine nonconformity. Layer a mean shift on top.
    inject_drift(&mut series, 1500, 400, DriftKind::MeanShift(5.0));

    // The corpus drift ramps in at t = 1500 over a 400-step ramp; the
    // μ/σ trigger (σ_t > 2σ_ref) crosses roughly two thirds into the ramp.
    // Insert the artificial anomaly ~100 steps after that reaction point
    // (paper: "from 90 - 110 after concept drift has been detected").
    let drift_expected = 1500;
    let anomaly_start = drift_expected + 550;
    let mut rng = StdRng::seed_from_u64(7);
    inject_anomaly(
        &mut series,
        anomaly_start,
        20,
        AnomalyKind::Tremor { amplitude: 8.0, period: 6.0 },
        &[0, 1, 2, 3, 4, 5],
        &mut rng,
    );

    let config = DetectorConfig {
        window: 50, // the paper uses 100; 50 keeps the demo fast
        channels: n,
        warmup: 800,
        initial_epochs: 10,
        fine_tune_epochs: 2,
    };
    let mut adapted = Detector::new(
        config,
        Box::new(Usad::for_dim(50 * n, 3)),
        Box::new(SlidingWindowSet::new(50)),
        Box::new(MuSigmaChange::new()),
        Box::new(MovingAverage::new(10)),
    );

    // Stream up to just before the drift, fork the frozen arm.
    let fork_at = drift_expected - 10;
    for s in series.data.iter().take(fork_at) {
        adapted.step(s);
    }
    let mut frozen = adapted.clone();
    frozen.freeze_model();

    let mut adapted_trace = Vec::new();
    let mut frozen_trace = Vec::new();
    let mut first_fine_tune = None;
    for (t, s) in series.data.iter().enumerate().skip(fork_at) {
        // Fix both models before the anomaly so neither trains on it.
        if t == anomaly_start - 50 {
            adapted.freeze_model();
        }
        if let Some(o) = adapted.step(s) {
            if o.fine_tuned && first_fine_tune.is_none() {
                first_fine_tune = Some(t);
            }
            adapted_trace.push((t, o.nonconformity));
        }
        if let Some(o) = frozen.step(s) {
            frozen_trace.push((t, o.nonconformity));
        }
    }

    match first_fine_tune {
        Some(t) => println!("concept drift detected; fine-tuning session at t = {t}"),
        None => println!(
            "warning: no fine-tune fired before the anomaly (drift triggers: {:?})",
            adapted.drift_times()
        ),
    }
    println!("artificial anomaly inserted at t = {anomaly_start}..{}", anomaly_start + 20);
    println!();

    let report = |name: &str, trace: &[(usize, f64)]| -> f64 {
        let prior: Vec<f64> = trace
            .iter()
            .filter(|(t, _)| (anomaly_start - 120..anomaly_start - 5).contains(t))
            .map(|&(_, a)| a)
            .collect();
        let avg = prior.iter().sum::<f64>() / prior.len().max(1) as f64;
        // "the maximum score could be observed as long as [anomaly end +
        // data representation length]" — windows containing anomaly rows.
        let peak = trace
            .iter()
            .filter(|(t, _)| (anomaly_start..anomaly_start + 20 + 50).contains(t))
            .map(|&(_, a)| a)
            .fold(0.0f64, f64::max);
        let bar = peak - avg;
        println!(
            "{name}: prior avg {avg:.4}, anomaly max {peak:.4}, error bar {bar:.4}, peak/prior {:.2}x",
            peak / avg.max(1e-9)
        );
        bar
    };
    let bar_adapted = report("fine-tuned model", &adapted_trace);
    let bar_frozen = report("frozen model    ", &frozen_trace);
    println!();
    if bar_adapted > bar_frozen {
        println!(
            "=> the fine-tuned model's error bar is larger ({:.3} vs {:.3}),",
            bar_adapted, bar_frozen
        );
        println!("   reproducing the paper's Figure 1 conclusion.");
    } else {
        println!(
            "=> error bars: fine-tuned {:.3} vs frozen {:.3} (paper expects fine-tuned larger)",
            bar_adapted, bar_frozen
        );
    }

    // Emit the traces as CSV for plotting.
    let out = std::env::temp_dir().join("fig1_traces.csv");
    let mut text = String::from("t,adapted,frozen\n");
    for ((t, a), (_, f)) in adapted_trace.iter().zip(&frozen_trace) {
        text.push_str(&format!("{t},{a},{f}\n"));
    }
    if std::fs::write(&out, text).is_ok() {
        println!("traces written to {}", out.display());
    }
}
