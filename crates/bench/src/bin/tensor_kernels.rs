//! Roofline-style kernel measurement for the dense GEMM behind fleet
//! serving plus the kNN snapshot sweep (§E12/§E13 of EXPERIMENTS.md).
//!
//! Five kernels per shape, all computing `A · Bᵀ` (the serving GEMM —
//! one `X · Wᵀ` per NN layer):
//!
//! * `f64_legacy` — naive single-accumulator dot per output element, the
//!   pre-tiling reference;
//! * `f64_tiled`  — one pinned 4-lane [`Scalar::dot`] per output element
//!   (the pre-micro-kernel serving GEMM; AVX2 dot under `simd`);
//! * `f64_micro`  — [`Matrix::<f64>::matmul_transpose_b_into`], which under
//!   `simd` dispatches to the register-blocked 2×4 AVX2 panel kernel
//!   (bitwise-identical to `f64_tiled`, proven in `precision_parity`);
//! * `f32_tiled` / `f32_micro` — the same pair at 8 lanes and half the
//!   bytes per element (inference-plan mode).
//!
//! For each we report GFLOP/s (`2·m·n·k / t`) and the streamed-footprint
//! bandwidth GB/s (`(m·k + k·n + m·n) · sizeof(T) / t`). Shapes are the AE
//! layer GEMM (k = w·N = 180 input dim, n = 45 hidden) at serving batch
//! sizes B ∈ {1, 8, 16, 64} plus the square/tall shapes from the tensor
//! benches.
//!
//! The binary asserts the acceptance bars — f32 must reach ≥1.5× the
//! scalar-f64 legacy GFLOP/s on at least one shape, and the f32
//! register-blocked panel must clear ≥1.5× the f32 tiled dot-loop at
//! B = 16 — so the committed artifact can only be regenerated while the
//! claims hold. It also times the kNN k-th-neighbour query per-point vs
//! over the packed snapshot (`KnnDistanceModel`), the §E13 table source.
//!
//! ```sh
//! cargo run --release --bin tensor_kernels            # quick (default)
//! cargo run --release --bin tensor_kernels -- --full  # more repetitions
//! ```

use std::time::Instant;

use sad_core::{FeatureVector, StreamModel};
use sad_models::KnnDistanceModel;
use sad_tensor::{Matrix, Scalar};

/// Deterministic dense fill, same LCG as the criterion benches.
fn dense(rows: usize, cols: usize, salt: u64) -> Matrix<f64> {
    let mut state = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    Matrix::from_fn(rows, cols, |_, _| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    })
}

/// `A (m×k) · Bᵀ (n×k)` with one scalar accumulator per output element —
/// the shape of the kernel before tiling, kept here as the baseline.
fn legacy_gemm_tb(a: &Matrix<f64>, b: &Matrix<f64>, out: &mut Matrix<f64>) {
    let (m, kk) = a.shape();
    let n = b.rows();
    for i in 0..m {
        let ar = a.row(i);
        let or = out.row_mut(i);
        for (j, o) in or.iter_mut().enumerate().take(n) {
            let br = b.row(j);
            let mut acc = 0.0;
            for k in 0..kk {
                acc += ar[k] * br[k];
            }
            *o = acc;
        }
    }
}

/// One pinned-lane `Scalar::dot` per output element — the serving GEMM as
/// shipped before the register-blocked panel kernel (what
/// `matmul_transpose_b_into` compiled to in the previous release).
fn tiled_gemm_tb<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>, out: &mut Matrix<T>) {
    let m = a.rows();
    let n = b.rows();
    for i in 0..m {
        let ar = a.row(i);
        let or = out.row_mut(i);
        for (j, o) in or.iter_mut().enumerate().take(n) {
            *o = T::dot(ar, b.row(j));
        }
    }
}

/// Best-of-`reps` time for `iters` back-to-back invocations of `f`,
/// reported as seconds per single invocation.
fn best_time(reps: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let t = start.elapsed().as_secs_f64() / iters as f64;
        if t < best {
            best = t;
        }
    }
    best
}

struct KernelResult {
    kernel: &'static str,
    secs: f64,
    gflops: f64,
    gbps: f64,
}

fn result(kernel: &'static str, secs: f64, m: usize, n: usize, k: usize, elem: usize) -> KernelResult {
    let flops = 2.0 * m as f64 * n as f64 * k as f64;
    let bytes = ((m * k + k * n + m * n) * elem) as f64;
    KernelResult { kernel, secs, gflops: flops / secs / 1e9, gbps: bytes / secs / 1e9 }
}

/// Times the kNN k-th-neighbour query per-point (frozen legacy path) vs
/// over the packed transposed snapshot, asserting the answers stay
/// bitwise-equal while timing. Returns `(t_per_point, t_snapshot)`.
fn time_knn_sweep(reps: usize, m: usize, dim: usize, k: usize) -> (f64, f64) {
    let mut state = 0xfeed_beefu64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    };
    let refs: Vec<FeatureVector> =
        (0..m).map(|_| FeatureVector::new((0..dim).map(|_| next()).collect(), dim, 1)).collect();
    let queries: Vec<FeatureVector> =
        (0..32).map(|_| FeatureVector::new((0..dim).map(|_| next()).collect(), dim, 1)).collect();
    let mut model = KnnDistanceModel::new(k);
    model.fine_tune(&refs);
    for q in &queries {
        assert_eq!(
            model.snapshot_kth_distance(k, q).map(f64::to_bits),
            KnnDistanceModel::kth_distance_of(k, q, &refs).map(f64::to_bits),
            "snapshot sweep diverged from per-point reference",
        );
    }
    let iters = (20_000 / m).clamp(2, 400);
    let t_per_point = best_time(reps, iters, || {
        for q in &queries {
            std::hint::black_box(KnnDistanceModel::kth_distance_of(
                k,
                std::hint::black_box(q),
                &refs,
            ));
        }
    });
    let t_snapshot = best_time(reps, iters, || {
        for q in &queries {
            std::hint::black_box(model.snapshot_kth_distance(k, std::hint::black_box(q)));
        }
    });
    (t_per_point / queries.len() as f64, t_snapshot / queries.len() as f64)
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let (reps, target_iters_ns) = if full { (9, 80_000_000u64) } else { (5, 25_000_000u64) };

    // (label, m, n, k): out = A(m×k) · Bᵀ(n×k).  The AE serving shapes use
    // the Table III quick profile dims (w=20, N=9 → in 180, hidden 45) at
    // serving batch sizes B ∈ {1, 8, 16, 64}.
    let shapes: &[(&str, usize, usize, usize)] = &[
        ("ae_layer_batch1_180x45", 1, 45, 180),
        ("ae_layer_batch8_180x45", 8, 45, 180),
        ("ae_layer_batch16_180x45", 16, 45, 180),
        ("ae_layer_batch64_180x45", 64, 45, 180),
        ("square_64x64x64", 64, 64, 64),
        ("tall_256x64x64", 256, 64, 64),
    ];

    println!(
        "tensor kernels: A·Bᵀ GEMM, best of {reps} reps, {} profile",
        if full { "full" } else { "quick" },
    );
    let mut entries = Vec::new();
    let mut best_f32_vs_legacy = 0.0f64;
    let mut f32_micro_vs_tiled_b16 = 0.0f64;
    for &(label, m, n, k) in shapes {
        let a64 = dense(m, k, 1);
        let b64 = dense(n, k, 2);
        let mut out64 = Matrix::<f64>::zeros(m, n);
        let a32 = Matrix::<f32>::from_precision(&a64);
        let b32 = Matrix::<f32>::from_precision(&b64);
        let mut out32 = Matrix::<f32>::zeros(m, n);

        // Calibrate iteration count off one legacy pass so every kernel is
        // timed over a comparable wall-clock span.
        let once = best_time(1, 1, || legacy_gemm_tb(&a64, &b64, &mut out64));
        let iters = ((target_iters_ns as f64 / 1e9 / once.max(1e-9)) as usize).clamp(4, 200_000);

        let t_legacy = best_time(reps, iters, || {
            legacy_gemm_tb(std::hint::black_box(&a64), std::hint::black_box(&b64), &mut out64)
        });
        let t_f64_tiled = best_time(reps, iters, || {
            tiled_gemm_tb(std::hint::black_box(&a64), std::hint::black_box(&b64), &mut out64)
        });
        let t_f64_micro = best_time(reps, iters, || {
            std::hint::black_box(&a64).matmul_transpose_b_into(std::hint::black_box(&b64), &mut out64)
        });
        let t_f32_tiled = best_time(reps, iters, || {
            tiled_gemm_tb(std::hint::black_box(&a32), std::hint::black_box(&b32), &mut out32)
        });
        let t_f32_micro = best_time(reps, iters, || {
            std::hint::black_box(&a32).matmul_transpose_b_into(std::hint::black_box(&b32), &mut out32)
        });

        let rows = [
            result("f64_legacy", t_legacy, m, n, k, 8),
            result("f64_tiled", t_f64_tiled, m, n, k, 8),
            result("f64_micro", t_f64_micro, m, n, k, 8),
            result("f32_tiled", t_f32_tiled, m, n, k, 4),
            result("f32_micro", t_f32_micro, m, n, k, 4),
        ];
        let f64_tiled_vs_legacy = t_legacy / t_f64_tiled;
        let f64_micro_vs_tiled = t_f64_tiled / t_f64_micro;
        let f32_tiled_vs_legacy = t_legacy / t_f32_tiled;
        let f32_micro_vs_tiled = t_f32_tiled / t_f32_micro;
        best_f32_vs_legacy = best_f32_vs_legacy.max(t_legacy / t_f32_micro);
        if m == 16 && k == 180 {
            f32_micro_vs_tiled_b16 = f32_micro_vs_tiled;
        }
        println!("  {label} (m={m} n={n} k={k}, {iters} iters):");
        for r in &rows {
            println!(
                "    {:<11} {:>9.2} us  {:>7.2} GFLOP/s  {:>7.2} GB/s",
                r.kernel,
                r.secs * 1e6,
                r.gflops,
                r.gbps,
            );
        }
        println!(
            "    speedup: f64 tiled/legacy {f64_tiled_vs_legacy:.2}x, f64 micro/tiled {f64_micro_vs_tiled:.2}x, \
             f32 tiled/legacy {f32_tiled_vs_legacy:.2}x, f32 micro/tiled {f32_micro_vs_tiled:.2}x",
        );

        let kernel_json: Vec<String> = rows
            .iter()
            .map(|r| {
                format!(
                    "        {{\"kernel\": \"{}\", \"time_us\": {:.3}, \"gflops\": {:.3}, \"gbps\": {:.3}}}",
                    r.kernel,
                    r.secs * 1e6,
                    r.gflops,
                    r.gbps,
                )
            })
            .collect();
        entries.push(format!(
            "    {{\"shape\": \"{label}\", \"m\": {m}, \"n\": {n}, \"k\": {k}, \"iters\": {iters},\n      \
             \"speedup_f64_tiled_vs_legacy\": {f64_tiled_vs_legacy:.3},\n      \
             \"speedup_f64_micro_vs_tiled\": {f64_micro_vs_tiled:.3},\n      \
             \"speedup_f32_tiled_vs_legacy\": {f32_tiled_vs_legacy:.3},\n      \
             \"speedup_f32_micro_vs_tiled\": {f32_micro_vs_tiled:.3},\n      \"kernels\": [\n{}\n      ]}}",
            kernel_json.join(",\n"),
        ));
    }

    // Acceptance bars from the PRs: the committed artifact must witness
    // the f32 serving GEMM at ≥1.5× scalar f64 on at least one hot shape,
    // and the register-blocked f32 panel at ≥1.5× the f32 dot-loop at the
    // B = 16 serving batch. The portable leg (no `simd`) compiles micro ==
    // tiled, so the second bar is only meaningful — and only enforced —
    // with the dispatch actually live.
    assert!(
        best_f32_vs_legacy >= 1.5,
        "f32 must reach 1.5x scalar f64 on some shape (best {best_f32_vs_legacy:.2}x)",
    );
    let simd = sad_tensor::simd_enabled();
    if simd {
        assert!(
            f32_micro_vs_tiled_b16 >= 1.5,
            "f32 micro-kernel must reach 1.5x tiled f32 at B=16 (got {f32_micro_vs_tiled_b16:.2}x)",
        );
    }

    // kNN offline scoring: per-point k-th-neighbour query vs the packed
    // snapshot sweep, at the Table III quick-profile feature dim (w·N =
    // 180) and a post-warm-up reference set size.
    let (knn_m, knn_dim, knn_k) = (200usize, 180usize, 5usize);
    let (t_per_point, t_snapshot) = time_knn_sweep(reps, knn_m, knn_dim, knn_k);
    let knn_speedup = t_per_point / t_snapshot;
    println!(
        "  knn_kth_distance (m={knn_m} dim={knn_dim} k={knn_k}):\n    \
         per_point  {:>9.2} us/query\n    snapshot   {:>9.2} us/query\n    \
         speedup: {knn_speedup:.2}x (bitwise-equal answers)",
        t_per_point * 1e6,
        t_snapshot * 1e6,
    );

    let json = format!(
        "{{\n  \"harness\": \"tensor_kernels\",\n  \"profile\": \"{}\",\n  \
         \"gemm\": \"A(mxk) . B^T(nxk)\",\n  \"simd_feature\": {simd},\n  \
         \"best_f32_vs_legacy\": {best_f32_vs_legacy:.3},\n  \
         \"f32_micro_vs_tiled_b16\": {f32_micro_vs_tiled_b16:.3},\n  \"shapes\": [\n{}\n  ],\n  \
         \"knn_sweep\": {{\"m\": {knn_m}, \"dim\": {knn_dim}, \"k\": {knn_k}, \
         \"per_point_us\": {:.3}, \"snapshot_us\": {:.3}, \"speedup\": {knn_speedup:.3}}}\n}}\n",
        if full { "full" } else { "quick" },
        entries.join(",\n"),
        t_per_point * 1e6,
        t_snapshot * 1e6,
    );
    match std::fs::create_dir_all("bench_output")
        .and_then(|()| std::fs::write("bench_output/tensor_kernels.json", &json))
    {
        Ok(()) => println!("-> bench_output/tensor_kernels.json"),
        Err(e) => eprintln!("could not write artifact: {e}"),
    }
}
