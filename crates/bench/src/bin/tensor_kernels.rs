//! Roofline-style kernel measurement for the dense GEMM behind fleet
//! serving (§E12 of EXPERIMENTS.md).
//!
//! Three kernels per shape, all computing `A · Bᵀ` (the serving GEMM —
//! one `X · Wᵀ` per NN layer):
//!
//! * `f64_legacy` — naive single-accumulator dot per output element, the
//!   pre-tiling reference;
//! * `f64_tiled`  — [`Matrix::<f64>::matmul_transpose_b_into`], the 4-lane
//!   pinned-reduce kernel (bitwise-parity mode);
//! * `f32_tiled`  — [`Matrix::<f32>::matmul_transpose_b_into`], the 8-lane
//!   kernel at half the bytes per element (inference-plan mode).
//!
//! For each we report GFLOP/s (`2·m·n·k / t`) and the streamed-footprint
//! bandwidth GB/s (`(m·k + k·n + m·n) · sizeof(T) / t` — the working set
//! touched per product, which at serving shapes fits cache and bounds the
//! kernel). Shapes are the ones the fleet actually runs: AE layer GEMMs at
//! serving batch sizes (rows = cohort batch, k = w·N input dim, n = hidden)
//! plus the square 64×64 layer shape from the tensor benches.
//!
//! The binary asserts the PR's acceptance bar — f32 tiled must reach ≥1.5×
//! the scalar-f64 legacy GFLOP/s on at least one shape — so the committed
//! artifact can only be regenerated while the claim holds.
//!
//! ```sh
//! cargo run --release --bin tensor_kernels            # quick (default)
//! cargo run --release --bin tensor_kernels -- --full  # more repetitions
//! ```

use std::time::Instant;

use sad_tensor::Matrix;

/// Deterministic dense fill, same LCG as the criterion benches.
fn dense(rows: usize, cols: usize, salt: u64) -> Matrix<f64> {
    let mut state = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    Matrix::from_fn(rows, cols, |_, _| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    })
}

/// `A (m×k) · Bᵀ (n×k)` with one scalar accumulator per output element —
/// the shape of the kernel before tiling, kept here as the baseline.
fn legacy_gemm_tb(a: &Matrix<f64>, b: &Matrix<f64>, out: &mut Matrix<f64>) {
    let (m, kk) = a.shape();
    let n = b.rows();
    for i in 0..m {
        let ar = a.row(i);
        let or = out.row_mut(i);
        for (j, o) in or.iter_mut().enumerate().take(n) {
            let br = b.row(j);
            let mut acc = 0.0;
            for k in 0..kk {
                acc += ar[k] * br[k];
            }
            *o = acc;
        }
    }
}

/// Best-of-`reps` time for `iters` back-to-back invocations of `f`,
/// reported as seconds per single invocation.
fn best_time(reps: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let t = start.elapsed().as_secs_f64() / iters as f64;
        if t < best {
            best = t;
        }
    }
    best
}

struct KernelResult {
    kernel: &'static str,
    secs: f64,
    gflops: f64,
    gbps: f64,
}

fn result(kernel: &'static str, secs: f64, m: usize, n: usize, k: usize, elem: usize) -> KernelResult {
    let flops = 2.0 * m as f64 * n as f64 * k as f64;
    let bytes = ((m * k + k * n + m * n) * elem) as f64;
    KernelResult { kernel, secs, gflops: flops / secs / 1e9, gbps: bytes / secs / 1e9 }
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let (reps, target_iters_ns) = if full { (9, 80_000_000u64) } else { (5, 25_000_000u64) };

    // (label, m, n, k): out = A(m×k) · Bᵀ(n×k).  The AE serving shapes use
    // the Table III quick profile dims (w=20, N=9 → in 180, hidden 45).
    let shapes: &[(&str, usize, usize, usize)] = &[
        ("ae_layer_batch8_180x45", 8, 45, 180),
        ("ae_layer_batch64_180x45", 64, 45, 180),
        ("square_64x64x64", 64, 64, 64),
        ("tall_256x64x64", 256, 64, 64),
    ];

    println!(
        "tensor kernels: A·Bᵀ GEMM, best of {reps} reps, {} profile",
        if full { "full" } else { "quick" },
    );
    let mut entries = Vec::new();
    let mut best_f32_vs_legacy = 0.0f64;
    for &(label, m, n, k) in shapes {
        let a64 = dense(m, k, 1);
        let b64 = dense(n, k, 2);
        let mut out64 = Matrix::<f64>::zeros(m, n);
        let a32 = Matrix::<f32>::from_precision(&a64);
        let b32 = Matrix::<f32>::from_precision(&b64);
        let mut out32 = Matrix::<f32>::zeros(m, n);

        // Calibrate iteration count off one legacy pass so every kernel is
        // timed over a comparable wall-clock span.
        let once = best_time(1, 1, || legacy_gemm_tb(&a64, &b64, &mut out64));
        let iters = ((target_iters_ns as f64 / 1e9 / once.max(1e-9)) as usize).clamp(4, 200_000);

        let t_legacy = best_time(reps, iters, || {
            legacy_gemm_tb(std::hint::black_box(&a64), std::hint::black_box(&b64), &mut out64)
        });
        let t_f64 = best_time(reps, iters, || {
            std::hint::black_box(&a64).matmul_transpose_b_into(std::hint::black_box(&b64), &mut out64)
        });
        let t_f32 = best_time(reps, iters, || {
            std::hint::black_box(&a32).matmul_transpose_b_into(std::hint::black_box(&b32), &mut out32)
        });

        let rows = [
            result("f64_legacy", t_legacy, m, n, k, 8),
            result("f64_tiled", t_f64, m, n, k, 8),
            result("f32_tiled", t_f32, m, n, k, 4),
        ];
        let f32_vs_legacy = rows[0].secs / rows[2].secs;
        let f64_vs_legacy = rows[0].secs / rows[1].secs;
        best_f32_vs_legacy = best_f32_vs_legacy.max(f32_vs_legacy);
        println!("  {label} (m={m} n={n} k={k}, {iters} iters):");
        for r in &rows {
            println!(
                "    {:<11} {:>9.2} us  {:>7.2} GFLOP/s  {:>7.2} GB/s",
                r.kernel,
                r.secs * 1e6,
                r.gflops,
                r.gbps,
            );
        }
        println!("    speedup vs legacy: f64 tiled {f64_vs_legacy:.2}x, f32 tiled {f32_vs_legacy:.2}x");

        let kernel_json: Vec<String> = rows
            .iter()
            .map(|r| {
                format!(
                    "        {{\"kernel\": \"{}\", \"time_us\": {:.3}, \"gflops\": {:.3}, \"gbps\": {:.3}}}",
                    r.kernel,
                    r.secs * 1e6,
                    r.gflops,
                    r.gbps,
                )
            })
            .collect();
        entries.push(format!(
            "    {{\"shape\": \"{label}\", \"m\": {m}, \"n\": {n}, \"k\": {k}, \"iters\": {iters},\n      \
             \"speedup_f64_tiled_vs_legacy\": {f64_vs_legacy:.3},\n      \
             \"speedup_f32_tiled_vs_legacy\": {f32_vs_legacy:.3},\n      \"kernels\": [\n{}\n      ]}}",
            kernel_json.join(",\n"),
        ));
    }

    // Acceptance bar from the PR: the committed artifact must witness the
    // f32 tiled kernel at ≥1.5× scalar f64 on at least one hot shape.
    assert!(
        best_f32_vs_legacy >= 1.5,
        "f32 tiled must reach 1.5x scalar f64 on some shape (best {best_f32_vs_legacy:.2}x)",
    );

    let simd = sad_tensor::simd_enabled();
    let json = format!(
        "{{\n  \"harness\": \"tensor_kernels\",\n  \"profile\": \"{}\",\n  \
         \"gemm\": \"A(mxk) . B^T(nxk)\",\n  \"simd_feature\": {simd},\n  \
         \"best_f32_tiled_vs_legacy\": {best_f32_vs_legacy:.3},\n  \"shapes\": [\n{}\n  ]\n}}\n",
        if full { "full" } else { "quick" },
        entries.join(",\n"),
    );
    match std::fs::create_dir_all("bench_output")
        .and_then(|()| std::fs::write("bench_output/tensor_kernels.json", &json))
    {
        Ok(()) => println!("-> bench_output/tensor_kernels.json"),
        Err(e) => eprintln!("could not write artifact: {e}"),
    }
}
